//! Benchmark harness reproducing every figure in the evaluation section
//! (§6) of *Spark SQL: Relational Data Processing in Spark*:
//!
//! * **Figure 4** (`fig4` bin / `fig4_codegen` bench): evaluating
//!   `x+x+x` — interpreted vs compiled ("code-generated") vs hand-written.
//! * **Figure 8** (`fig8` bin / `fig8_bigdata` bench): the AMPLab big
//!   data benchmark, Shark-like vs Spark SQL vs a hand-written native
//!   ("Impala-like") baseline.
//! * **Figure 9** (`fig9` bin / `fig9_aggregation` bench): a distributed
//!   aggregation via dynamically-typed RDD code ("Python"), typed RDD
//!   code ("Scala"), and the DataFrame API.
//! * **Figure 10** (`fig10` bin / `fig10_pipeline` bench): filter + word
//!   count as two separate jobs with a disk handoff vs one integrated
//!   DataFrame pipeline.
//!
//! Plus `mem_footprint` (the §3.6 columnar-cache claim), `range_join`
//! (§7.2) and `ablations` (per-feature on/off switches).

pub mod amplab;
pub mod dynvalue;
pub mod textgen;

/// Format a duration as fractional milliseconds.
pub fn ms(d: std::time::Duration) -> f64 {
    d.as_secs_f64() * 1e3
}

/// Time one closure.
pub fn time<R>(f: impl FnOnce() -> R) -> (R, std::time::Duration) {
    let t = std::time::Instant::now();
    let r = f();
    (r, t.elapsed())
}

/// Run `f` `n` times, return the median duration.
pub fn median_time<R>(n: usize, mut f: impl FnMut() -> R) -> std::time::Duration {
    let mut times: Vec<std::time::Duration> = (0..n.max(1)).map(|_| time(&mut f).1).collect();
    times.sort();
    times[times.len() / 2]
}
