//! §7.2: range join scaling — nested loop vs interval-tree extension,
//! swept over input size to show the asymptotic gap a specialized
//! planning rule buys.
//!
//! Run with: `cargo run --release -p bench --bin range_join`

use bench::{ms, time};
use catalyst::value::Value;
use catalyst::Row;
use catalyst::{DataType, Schema, StructField};
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};
use spark_sql::SQLContext;
use spark_sql_repro::extensions::interval_join::IntervalJoinStrategy;
use std::sync::Arc;

fn regions(n: usize, seed: u64) -> Vec<Row> {
    let mut rng = StdRng::seed_from_u64(seed);
    (0..n)
        .map(|_| {
            let start = rng.random_range(0..1_000_000i64);
            Row::new(vec![
                Value::Long(start),
                Value::Long(start + rng.random_range(1..300)),
            ])
        })
        .collect()
}

fn context(n: usize, with_extension: bool) -> SQLContext {
    let ctx = SQLContext::new_local(4);
    let a_schema = Arc::new(Schema::new(vec![
        StructField::new("start", DataType::Long, false),
        StructField::new("end", DataType::Long, false),
    ]));
    let b_schema = Arc::new(Schema::new(vec![
        StructField::new("bstart", DataType::Long, false),
        StructField::new("bend", DataType::Long, false),
    ]));
    ctx.register_rows("a", a_schema, regions(n, 1)).unwrap();
    ctx.register_rows("b", b_schema, regions(n, 2)).unwrap();
    if with_extension {
        ctx.add_strategy(Arc::new(IntervalJoinStrategy));
    }
    ctx
}

const QUERY: &str = "SELECT * FROM a JOIN b \
                     WHERE start < \"end\" AND bstart < bend \
                       AND start < bstart AND bstart < \"end\"";

fn main() {
    println!("§7.2 range join: nested loop vs interval-tree strategy\n");
    println!(
        "{:>8} {:>16} {:>16} {:>10} {:>12}",
        "rows/side", "nested loop (ms)", "interval (ms)", "speedup", "pairs"
    );
    for n in [500usize, 1000, 2000, 4000, 8000] {
        let plain = context(n, false);
        let fast = context(n, true);
        let (c1, t_plain) = time(|| plain.sql(QUERY).unwrap().count().unwrap());
        let (c2, t_fast) = time(|| fast.sql(QUERY).unwrap().count().unwrap());
        assert_eq!(c1, c2);
        println!(
            "{:>8} {:>16.1} {:>16.1} {:>9.1}x {:>12}",
            n,
            ms(t_plain),
            ms(t_fast),
            t_plain.as_secs_f64() / t_fast.as_secs_f64(),
            c1
        );
    }
    println!("\nnested loop grows O(n²); the interval tree O(n log n + matches).");
}
