//! Ablations for the design choices DESIGN.md calls out: each Catalyst
//! feature is toggled in isolation and measured on a workload that
//! exercises it.
//!
//! * codegen on/off        → AMPLab query 1c (CPU-bound scan+filter);
//! * filter pushdown       → federation query (bytes over the wire);
//! * columnar cache on/off → cached-table scan footprint + query time;
//! * broadcast threshold   → join strategy crossover sweep.
//!
//! Run with: `cargo run --release -p bench --bin ablations`

use bench::amplab::{self, AmplabScale};
use bench::{median_time, ms};
use catalyst::value::Value;
use catalyst::Row;
use catalyst::{DataType, Schema, StructField};
use datasources::{register_database, RemoteDb};
use spark_sql::{SQLContext, SqlConf};
use std::sync::Arc;

fn main() {
    codegen_ablation();
    pushdown_ablation();
    cache_ablation();
    broadcast_crossover();
}

fn codegen_ablation() {
    println!("== codegen on/off (AMPLab q1c + q2a) ==");
    let data = amplab::generate(AmplabScale {
        pages: 100_000,
        visits: 200_000,
        documents: 0,
    });
    for (label, codegen) in [("codegen on", true), ("codegen off", false)] {
        let conf = SqlConf {
            codegen_enabled: codegen,
            ..SqlConf::default()
        };
        let ctx = amplab::make_context(&data, conf, 4);
        let t1 = median_time(3, || {
            ctx.sql(&amplab::query("1c")).unwrap().count().unwrap()
        });
        let t2 = median_time(3, || {
            ctx.sql(&amplab::query("2a")).unwrap().count().unwrap()
        });
        println!(
            "  {label:<12} q1c {:>7.1}ms   q2a {:>7.1}ms",
            ms(t1),
            ms(t2)
        );
    }
    println!();
}

fn pushdown_ablation() {
    println!("== filter/projection pushdown (federation wire bytes) ==");
    let db = RemoteDb::new();
    let schema = Arc::new(Schema::new(vec![
        StructField::new("id", DataType::Long, false),
        StructField::new("grp", DataType::Long, false),
        StructField::new("payload", DataType::String, false),
    ]));
    let rows: Vec<Row> = (0..50_000)
        .map(|i| {
            Row::new(vec![
                Value::Long(i),
                Value::Long(i % 100),
                Value::str("x".repeat(64)),
            ])
        })
        .collect();
    db.create_table("events", schema, rows);
    register_database("jdbc:sim://events", db.clone());

    for (label, pushdown) in [("pushdown on", true), ("pushdown off", false)] {
        let ctx = SQLContext::new_local(4);
        ctx.set_conf(|c| {
            c.pushdown_enabled = pushdown;
            c.column_pruning_enabled = pushdown;
        });
        ctx.sql(
            "CREATE TEMPORARY TABLE events USING jdbc \
                 OPTIONS(url 'jdbc:sim://events', table 'events')",
        )
        .unwrap();
        db.reset_meters();
        let n = ctx
            .sql("SELECT id FROM events WHERE grp = 7")
            .unwrap()
            .count()
            .unwrap();
        println!(
            "  {label:<13} rows={n:<6} wire bytes={:>12} wire rows={}",
            db.bytes_transferred(),
            db.rows_transferred()
        );
    }
    println!();
}

fn cache_ablation() {
    println!("== columnar vs object cache (1M-row cached table) ==");
    let data = amplab::generate(AmplabScale {
        pages: 300_000,
        visits: 0,
        documents: 0,
    });
    for (label, columnar) in [("columnar cache", true), ("object cache", false)] {
        let conf = SqlConf {
            columnar_cache_enabled: columnar,
            ..SqlConf::default()
        };
        let ctx = amplab::make_context(&data, conf, 4);
        ctx.sql("CACHE TABLE rankings").unwrap();
        // Materialize + query.
        let t = median_time(3, || {
            ctx.sql("SELECT count(*) FROM rankings WHERE pageRank > 5000")
                .unwrap()
                .collect()
                .unwrap()
        });
        println!("  {label:<15} filtered count query {:>8.1}ms", ms(t));
    }
    println!();
}

fn broadcast_crossover() {
    println!("== broadcast vs shuffled join crossover (build-side sweep) ==");
    let ctx_for = |threshold: u64| {
        let ctx = SQLContext::new_local(4);
        ctx.set_conf(|c| c.broadcast_threshold = threshold);
        ctx
    };
    let dim_schema = Arc::new(Schema::new(vec![
        StructField::new("k", DataType::Long, false),
        StructField::new("label", DataType::String, false),
    ]));
    let fact_schema = Arc::new(Schema::new(vec![
        StructField::new("fk", DataType::Long, false),
        StructField::new("v", DataType::Double, false),
    ]));
    let facts: Vec<Row> = (0..400_000)
        .map(|i| Row::new(vec![Value::Long(i % 10_000), Value::Double(i as f64)]))
        .collect();
    println!(
        "  {:>10} {:>18} {:>18}",
        "dim rows", "broadcast (ms)", "shuffled (ms)"
    );
    for dim_rows in [100i64, 1_000, 10_000, 100_000] {
        let dims: Vec<Row> = (0..dim_rows)
            .map(|i| Row::new(vec![Value::Long(i), Value::str(format!("d{i}"))]))
            .collect();
        let mut times = Vec::new();
        for threshold in [u64::MAX / 8, 0] {
            let ctx = ctx_for(threshold);
            ctx.register_rows("dim", dim_schema.clone(), dims.clone())
                .unwrap();
            ctx.register_rows("fact", fact_schema.clone(), facts.clone())
                .unwrap();
            let t = median_time(3, || {
                ctx.sql("SELECT count(*) FROM fact JOIN dim ON fact.fk = dim.k")
                    .unwrap()
                    .collect()
                    .unwrap()
            });
            times.push(t);
        }
        println!(
            "  {:>10} {:>18.1} {:>18.1}",
            dim_rows,
            ms(times[0]),
            ms(times[1])
        );
    }
    println!("\nsmall build sides favor broadcast; the gap narrows as the build side grows.");
}
