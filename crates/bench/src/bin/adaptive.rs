//! Adaptive-execution benchmark: the three runtime re-planning rules
//! against the same queries statically planned.
//!
//! 1. *Dynamic broadcast demotion* — a skewed fact table joins a small
//!    dimension table, but both arrive as bare RDDs with unknown
//!    statistics, so the static planner must shuffle both sides. The
//!    adaptive run materializes the dimension's map output first,
//!    measures it under the broadcast threshold, and demotes the join —
//!    the fact side is never shuffled at all.
//! 2. *Skew splitting* — a shuffled join whose hot key lands >80% of the
//!    rows in one reduce partition; adaptive execution splits that
//!    partition by map ranges so the join runs on all cores.
//! 3. *Partition coalescing* — an aggregate planned with 64 reduce
//!    partitions over data that measures a few hundred KB; adaptive
//!    execution merges the post-shuffle partitions to the size target.
//!
//! Writes `BENCH_adaptive.json` to the working directory.
//!
//! Run with: `cargo run --release -p bench --bin adaptive`

use catalyst::adaptive::AdaptiveRule;
use spark_sql::prelude::*;
use std::sync::Arc;
use std::time::Instant;

fn splitmix(i: u64) -> u64 {
    let mut z = i.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

fn fact_schema() -> SchemaRef {
    Arc::new(Schema::new(vec![
        StructField::new("k", DataType::Long, false),
        StructField::new("v", DataType::Long, false),
    ]))
}

fn dim_schema() -> SchemaRef {
    Arc::new(Schema::new(vec![
        StructField::new("dk", DataType::Long, false),
        StructField::new("w", DataType::String, false),
    ]))
}

/// `n` fact rows; `hot_pct` percent carry key 3, the rest spread over
/// `[0, domain)`.
fn fact_rows(n: usize, hot_pct: u64, domain: i64) -> Vec<Row> {
    (0..n)
        .map(|i| {
            let z = splitmix(i as u64);
            let k = if z % 100 < hot_pct {
                3
            } else {
                (z >> 8) as i64 % domain
            };
            Row::new(vec![Value::Long(k), Value::Long(i as i64)])
        })
        .collect()
}

fn dim_rows(n: i64) -> Vec<Row> {
    (0..n)
        .map(|i| Row::new(vec![Value::Long(i), Value::str(format!("d{i}"))]))
        .collect()
}

/// A fact⋈dim DataFrame whose inputs are bare RDDs: statistics unknown,
/// so the static planner cannot broadcast either side.
fn join_df(ctx: &SQLContext, fact: &[Row], dim: &[Row]) -> DataFrame {
    let f = ctx.spark_context().parallelize(fact.to_vec(), 8);
    let fact = ctx
        .dataframe_from_rdd("fact", fact_schema(), f)
        .expect("fact");
    let d = ctx.spark_context().parallelize(dim.to_vec(), 2);
    let dim = ctx.dataframe_from_rdd("dim", dim_schema(), d).expect("dim");
    fact.join(&dim, JoinType::Inner, Some(col("k").eq(col("dk"))))
        .expect("join")
}

/// Warmup once, then min-of-3 wall clock of `collect().len()`.
fn time_min3(mut f: impl FnMut() -> usize) -> (u128, usize) {
    let n = f();
    let mut best = u128::MAX;
    for _ in 0..3 {
        let t = Instant::now();
        let got = f();
        assert_eq!(got, n, "non-deterministic result");
        best = best.min(t.elapsed().as_nanos());
    }
    (best, n)
}

/// Assert the adaptive run actually fired `rule` on this query.
fn assert_fires(df: &DataFrame, rule: AdaptiveRule) {
    let qe = df.query_execution().expect("query_execution");
    qe.collect().expect("collect");
    let changes = qe.adaptive_changes();
    assert!(
        changes.iter().any(|c| c.rule == rule),
        "expected {rule:?} to fire, got: {changes:?}"
    );
}

struct Workload {
    name: &'static str,
    static_ns: u128,
    adaptive_ns: u128,
    rows_out: usize,
}

impl Workload {
    fn speedup(&self) -> f64 {
        self.static_ns as f64 / self.adaptive_ns as f64
    }
    fn print(&self) {
        println!("{:<22} ({} rows out)", self.name, self.rows_out);
        println!("  static    {:>10.2} ms", self.static_ns as f64 / 1e6);
        println!(
            "  adaptive  {:>10.2} ms   ({:.2}x)",
            self.adaptive_ns as f64 / 1e6,
            self.speedup()
        );
    }
    fn json(&self) -> String {
        format!(
            "\"{}\": {{ \"static_ns\": {}, \"adaptive_ns\": {}, \"speedup\": {:.3} }}",
            self.name,
            self.static_ns,
            self.adaptive_ns,
            self.speedup()
        )
    }
}

fn run_pair(
    name: &'static str,
    conf: impl Fn(&mut spark_sql::SqlConf) + Copy,
    query: impl Fn(&SQLContext) -> DataFrame,
) -> Workload {
    let mk = |adaptive: bool| {
        let ctx = SQLContext::new_local(4);
        ctx.set_conf(|c| {
            conf(c);
            c.adaptive_enabled = adaptive;
        });
        ctx
    };
    // One context per mode, dropped before the next mode runs: a live
    // context's shuffle manager retains every iteration's map outputs,
    // and that resident garbage would slow whichever mode runs second.
    let (static_ns, n1) = {
        let ctx = mk(false);
        time_min3(|| query(&ctx).collect().expect("collect").len())
    };
    let (adaptive_ns, n2) = {
        let ctx = mk(true);
        time_min3(|| query(&ctx).collect().expect("collect").len())
    };
    assert_eq!(n1, n2, "{name}: static and adaptive row counts disagree");
    Workload {
        name,
        static_ns,
        adaptive_ns,
        rows_out: n1,
    }
}

fn main() {
    println!("adaptive-execution bench (min of 3, after warmup)\n");

    // -- 1. dynamic broadcast demotion ----------------------------------
    // 600k-row fact, 2k-row dim, both with unknown statistics. Static:
    // shuffle 600k + 2k rows, join in 8 reduce partitions. Adaptive:
    // shuffle 2k rows, measure ~60 KB <= 10 MB threshold, demote — the
    // fact side streams straight into a broadcast probe.
    let fact = fact_rows(600_000, 80, 1_000);
    let dim = dim_rows(2_000);
    let demotion = run_pair(
        "broadcast_demotion",
        |_| {},
        |ctx| join_df(ctx, &fact, &dim),
    );
    {
        let ctx = SQLContext::new_local(4);
        ctx.set_conf(|c| c.adaptive_enabled = true);
        assert_fires(&join_df(&ctx, &fact, &dim), AdaptiveRule::BroadcastDemotion);
    }
    demotion.print();

    // -- 2. skew splitting ----------------------------------------------
    // Threshold 0 pins the join to the shuffled path. 95% of the fact
    // rows carry one key, so one reduce partition holds almost all the
    // work; adaptive splits it into per-map sub-partitions.
    let skew_fact = fact_rows(800_000, 95, 16);
    let skew_dim = dim_rows(16);
    let skew_conf = |c: &mut spark_sql::SqlConf| c.broadcast_threshold = 0;
    let skew = run_pair("skew_split", skew_conf, |ctx| {
        join_df(ctx, &skew_fact, &skew_dim)
    });
    {
        let ctx = SQLContext::new_local(4);
        ctx.set_conf(|c| {
            skew_conf(c);
            c.adaptive_enabled = true;
        });
        assert_fires(
            &join_df(&ctx, &skew_fact, &skew_dim),
            AdaptiveRule::SkewSplit,
        );
    }
    skew.print();

    // -- 3. partition coalescing ----------------------------------------
    // An aggregate planned with 64 reduce partitions whose combined map
    // output measures far under 64 × target: adaptive merges the
    // post-shuffle partitions, cutting 64 tiny tasks down to a few.
    let agg_fact = fact_rows(200_000, 0, 1_000);
    let agg_conf = |c: &mut spark_sql::SqlConf| c.shuffle_partitions = 64;
    let agg_query = |ctx: &SQLContext| {
        let f = ctx.spark_context().parallelize(agg_fact.to_vec(), 4);
        ctx.dataframe_from_rdd("fact", fact_schema(), f)
            .expect("fact")
            .group_by_cols(&["k"])
            .agg(vec![count_star().alias("n"), sum(col("v")).alias("s")])
            .expect("agg")
    };
    let coalesce = run_pair("coalesce_aggregate", agg_conf, agg_query);
    {
        let ctx = SQLContext::new_local(4);
        ctx.set_conf(|c| {
            agg_conf(c);
            c.adaptive_enabled = true;
        });
        assert_fires(&agg_query(&ctx), AdaptiveRule::CoalescePartitions);
    }
    coalesce.print();

    let json = format!(
        "{{\n  {},\n  {},\n  {}\n}}\n",
        demotion.json(),
        skew.json(),
        coalesce.json()
    );
    std::fs::write("BENCH_adaptive.json", &json).expect("write BENCH_adaptive.json");
    println!("\nwrote BENCH_adaptive.json");

    // The headline claim: measured-size demotion must beat the static
    // shuffle-both-sides plan outright.
    assert!(
        demotion.speedup() >= 1.05,
        "broadcast demotion must beat the static plan, got {:.2}x",
        demotion.speedup()
    );
}
