//! Figure 8: "Performance of Shark, Impala and Spark SQL on the big data
//! benchmark queries."
//!
//! Paper setup: 6× EC2 i2.xlarge, 110 GB Parquet; ours: one process over
//! generated data. What must reproduce is the *shape*: Spark SQL
//! substantially faster than Shark on every query (credited to Catalyst
//! code generation, §6.1) and roughly competitive with the compiled
//! native engine.
//!
//! Variants:
//! * `shark`    — Spark SQL with codegen/columnar/pushdown disabled;
//! * `sparksql` — full configuration;
//! * `native`   — hand-written multithreaded Rust per query ("Impala").
//!
//! Run with: `cargo run --release -p bench --bin fig8`

use bench::amplab::{self, native, AmplabScale};
use bench::{median_time, ms};
use spark_sql::SqlConf;

const REPS: usize = 3;
const THREADS: usize = 4;

fn main() {
    let scale = AmplabScale::default();
    println!(
        "Figure 8: AMPLab big data benchmark ({} pages, {} visits, {} docs), \
         median of {REPS} runs, {THREADS} threads\n",
        scale.pages, scale.visits, scale.documents
    );
    let data = amplab::generate(scale);

    let shark = amplab::make_context(&data, SqlConf::shark_like(), THREADS);
    let sparksql = amplab::make_context(&data, SqlConf::default(), THREADS);

    println!(
        "{:<6} {:>12} {:>12} {:>12} {:>14} {:>14}",
        "query", "shark (ms)", "sparksql", "native", "shark/sparksql", "sparksql/native"
    );

    let queries = ["1a", "1b", "1c", "2a", "2b", "2c", "3a", "3b", "3c"];
    for q in queries {
        let text = amplab::query(q);
        let t_shark = median_time(REPS, || shark.sql(&text).unwrap().count().unwrap());
        let t_spark = median_time(REPS, || sparksql.sql(&text).unwrap().count().unwrap());
        let t_native = median_time(REPS, || match q {
            "1a" => native::query1(&data, 9000, THREADS),
            "1b" => native::query1(&data, 1000, THREADS),
            "1c" => native::query1(&data, 100, THREADS),
            "2a" => native::query2(&data, 6, THREADS),
            "2b" => native::query2(&data, 9, THREADS),
            "2c" => native::query2(&data, 12, THREADS),
            "3a" => native::query3(&data, "1980-04-01", THREADS).0.len(),
            "3b" => native::query3(&data, "1983-01-01", THREADS).0.len(),
            _ => native::query3(&data, "2010-01-01", THREADS).0.len(),
        });
        println!(
            "{:<6} {:>12.0} {:>12.0} {:>12.0} {:>13.1}x {:>13.1}x",
            q,
            ms(t_shark),
            ms(t_spark),
            ms(t_native),
            t_shark.as_secs_f64() / t_spark.as_secs_f64(),
            t_spark.as_secs_f64() / t_native.as_secs_f64()
        );
    }

    // Query 4 (UDF-bound): the paper notes it is "largely bound by the CPU
    // cost of the UDF"; Impala did not support it.
    let t_shark4 = median_time(REPS, || amplab::run_query4(&shark));
    let t_spark4 = median_time(REPS, || amplab::run_query4(&sparksql));
    let t_native4 = median_time(REPS, || native::query4(&data, THREADS));
    println!(
        "{:<6} {:>12.0} {:>12.0} {:>12.0} {:>13.1}x {:>13.1}x",
        "4",
        ms(t_shark4),
        ms(t_spark4),
        ms(t_native4),
        t_shark4.as_secs_f64() / t_spark4.as_secs_f64(),
        t_spark4.as_secs_f64() / t_native4.as_secs_f64()
    );
    println!(
        "\npaper shape: Spark SQL faster than Shark everywhere (codegen), \
         competitive with the native engine; largest native gap on 3a."
    );
}
