//! Figure 9: "Performance of an aggregation written using the native
//! Spark Python and Scala APIs versus the DataFrame API."
//!
//! The paper: 1 billion (a, b) pairs with 100k distinct values of a;
//! Python RDD ≈ 12x slower than the DataFrame version, Scala RDD ≈ 2x
//! slower. We run the identical three programs at laptop scale:
//!
//! * "Python" — RDD of dynamically-typed records, map/reduceByKey over
//!   boxed values with dict attribute access (see `bench::dynvalue`);
//! * "Scala" — RDD of typed pairs, map/reduceByKey allocating a
//!   key-value tuple per record;
//! * DataFrame — `df.group_by("a").avg("b")`.
//!
//! Run with: `cargo run --release -p bench --bin fig9`

use bench::dynvalue::DynValue;
use bench::{median_time, ms};
use catalyst::value::Value;
use catalyst::Row;
use catalyst::{DataType, Schema, StructField};
use engine::{PairRdd, RddRef, SparkContext};
use spark_sql::SQLContext;
use std::sync::Arc;

const PAIRS: usize = 4_000_000;
const DISTINCT: i64 = 100_000;
const PARTITIONS: usize = 8;
const REPS: usize = 3;

fn gen_pair(i: usize) -> (i64, f64) {
    // Deterministic splitmix-ish scatter.
    let mut z = (i as u64).wrapping_add(0x9E3779B97F4A7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
    ((z % DISTINCT as u64) as i64, (z >> 16) as f64 / 1e4)
}

fn python_rdd(sc: &SparkContext) -> RddRef<DynValue> {
    let per = PAIRS / PARTITIONS;
    sc.generate(PARTITIONS, move |p| {
        Box::new((p * per..(p + 1) * per).map(|i| {
            let (a, b) = gen_pair(i);
            DynValue::record(vec![("a", DynValue::Int(a)), ("b", DynValue::Float(b))])
        }))
    })
}

fn typed_rdd(sc: &SparkContext) -> RddRef<(i64, f64)> {
    let per = PAIRS / PARTITIONS;
    sc.generate(PARTITIONS, move |p| {
        Box::new((p * per..(p + 1) * per).map(gen_pair))
    })
}

/// The paper's Python program:
/// ```python
/// data.map(lambda x: (x.a, (x.b, 1)))
///     .reduceByKey(lambda x, y: (x[0]+y[0], x[1]+y[1]))
/// ```
fn run_python(sc: &SparkContext) -> usize {
    let data = python_rdd(sc);
    let sum_and_count = data
        .map(|x| {
            let key = x.attr("a");
            let value = DynValue::tuple(vec![x.attr("b"), DynValue::Int(1)]);
            (key, value)
        })
        .reduce_by_key(
            |x, y| DynValue::tuple(vec![x.item(0).add(&y.item(0)), x.item(1).add(&y.item(1))]),
            PARTITIONS,
        )
        .collect();
    // [(x[0], x[1][0] / x[1][1]) for x in sum_and_count]
    sum_and_count
        .into_iter()
        .map(|(k, sc)| (k, sc.item(0).div(&sc.item(1))))
        .collect::<Vec<_>>()
        .len()
}

/// Typed RDD code with JVM-style heap boxing: Spark's Scala reduceByKey
/// keys and values are heap objects, and "the code in the DataFrame
/// version avoids expensive allocation of key-value pairs that occurs in
/// hand-written Scala code" (§6.2) — model that pair allocation with an
/// Arc per record/merge.
fn run_scala_boxed(sc: &SparkContext) -> usize {
    let data = typed_rdd(sc);
    let sum_and_count = data
        .map(|(a, b)| (a, Arc::new((b, 1i64))))
        .reduce_by_key(|x, y| Arc::new((x.0 + y.0, x.1 + y.1)), PARTITIONS)
        .collect();
    sum_and_count
        .into_iter()
        .map(|(k, sc)| (k, sc.0 / sc.1 as f64))
        .collect::<Vec<_>>()
        .len()
}

/// The same program with static unboxed types — what hand-written *Rust*
/// achieves (no JVM equivalent: Rust tuples are allocation-free).
fn run_scala(sc: &SparkContext) -> usize {
    let data = typed_rdd(sc);
    let sum_and_count = data
        .map(|(a, b)| (a, (b, 1i64)))
        .reduce_by_key(|x, y| (x.0 + y.0, x.1 + y.1), PARTITIONS)
        .collect();
    sum_and_count
        .into_iter()
        .map(|(k, (s, c))| (k, s / c as f64))
        .collect::<Vec<_>>()
        .len()
}

/// df.groupBy("a").avg("b")
fn run_dataframe(ctx: &SQLContext) -> usize {
    let sc = ctx.spark_context().clone();
    let schema = Arc::new(Schema::new(vec![
        StructField::new("a", DataType::Long, false),
        StructField::new("b", DataType::Double, false),
    ]));
    let per = PAIRS / PARTITIONS;
    let rdd = sc.generate(PARTITIONS, move |p| {
        Box::new((p * per..(p + 1) * per).map(|i| {
            let (a, b) = gen_pair(i);
            Row::new(vec![Value::Long(a), Value::Double(b)])
        }))
    });
    let df = ctx.dataframe_from_rdd("pairs", schema, rdd).unwrap();
    df.group_by_cols(&["a"]).avg("b").unwrap().count().unwrap() as usize
}

fn main() {
    println!(
        "Figure 9: aggregate {PAIRS} (a,b) pairs, {DISTINCT} distinct keys, \
         median of {REPS} runs\n"
    );
    let groups = DISTINCT.min(PAIRS as i64) as usize;

    let sc = SparkContext::new(4);
    let t_python = median_time(REPS, || assert_eq!(run_python(&sc), groups));
    let t_scala = median_time(REPS, || assert_eq!(run_scala(&sc), groups));
    let t_scala_boxed = median_time(REPS, || assert_eq!(run_scala_boxed(&sc), groups));
    let ctx = SQLContext::new_local(4);
    ctx.set_conf(|c| c.shuffle_partitions = PARTITIONS);
    let t_df = median_time(REPS, || assert_eq!(run_dataframe(&ctx), groups));

    println!(
        "{:<22} {:>12} {:>12}",
        "variant", "time (ms)", "vs DataFrame"
    );
    for (name, t) in [
        ("RDD, dynamic (Python)", t_python),
        ("RDD, boxed (Scala)", t_scala_boxed),
        ("RDD, unboxed (Rust)", t_scala),
        ("DataFrame", t_df),
    ] {
        println!(
            "{:<22} {:>12.0} {:>11.1}x",
            name,
            ms(t),
            t.as_secs_f64() / t_df.as_secs_f64()
        );
    }
    println!("\npaper: Python ≈ 12x DataFrame, Scala ≈ 2x DataFrame");
}
