//! Figure 4: "A comparison of the performance evaluating the expression
//! x+x+x, where x is an integer, 1 billion times."
//!
//! The paper's bars: Intepreted ≈ 40s, Hand-written ≈ 9.36s, Generated ≈
//! 9.52s — i.e. code generation removes nearly all interpretation
//! overhead and lands within a few percent of hand-written code. We
//! evaluate the same expression with the tree-walking interpreter, the
//! compiled ("code-generated") evaluator, and a hand-written loop, and
//! report per-evaluation cost and projected time for 10⁹ evaluations.
//!
//! Run with: `cargo run --release -p bench --bin fig4`

use bench::time;
use catalyst::codegen;
use catalyst::expr::Expr;
use catalyst::interpreter;
use catalyst::row::Row;
use catalyst::types::DataType;
use catalyst::value::Value;

const N: usize = 20_000_000;

fn x() -> Expr {
    Expr::BoundRef {
        index: 0,
        dtype: DataType::Long,
        nullable: false,
        name: "x".into(),
    }
}

fn main() {
    let expr = x().add(x()).add(x());
    let row = Row::new(vec![Value::Long(37)]);
    println!("Figure 4: evaluating x+x+x, {N} times per variant\n");

    // Interpreted: walk the tree per evaluation (branches + dispatch +
    // boxed intermediates).
    let (sum_i, interpreted) = time(|| {
        let mut sum = 0i64;
        for _ in 0..N {
            if let Value::Long(v) = interpreter::eval(&expr, &row).expect("eval") {
                sum = sum.wrapping_add(v);
            }
        }
        sum
    });

    // Compiled ("code generation"): one fused closure, unboxed i64s.
    let compiled = codegen::compile(&expr);
    let catalyst::codegen::Compiled::Long(f) = &compiled else {
        panic!("expected Long-typed compilation");
    };
    let (sum_c, generated) = time(|| {
        let mut sum = 0i64;
        for _ in 0..N {
            sum = sum.wrapping_add(f(&row).unwrap_or(0));
        }
        sum
    });

    // Hand-written: what a programmer would write directly — reading x
    // from the row each evaluation, like both engine variants must.
    let (sum_h, hand) = time(|| {
        let mut sum = 0i64;
        for _ in 0..N {
            let r = std::hint::black_box(&row);
            let x = match std::hint::black_box(r.get(0)) {
                Value::Long(v) => *v,
                _ => 0,
            };
            sum = sum.wrapping_add(x + x + x);
        }
        sum
    });

    assert_eq!(sum_i, sum_c);
    assert_eq!(sum_c, sum_h);

    let per = |d: std::time::Duration| d.as_secs_f64() * 1e9 / N as f64;
    let billion = |d: std::time::Duration| d.as_secs_f64() * (1e9 / N as f64);
    println!(
        "{:<14} {:>12} {:>16} {:>18}",
        "variant", "ns/eval", "total (this N)", "projected 1e9 (s)"
    );
    for (name, d) in [
        ("interpreted", interpreted),
        ("hand-written", hand),
        ("generated", generated),
    ] {
        println!(
            "{:<14} {:>12.2} {:>14.0}ms {:>18.2}",
            name,
            per(d),
            d.as_secs_f64() * 1e3,
            billion(d)
        );
    }
    println!(
        "\ninterpreted / generated = {:.1}x (paper: ~4.2x)",
        interpreted.as_secs_f64() / generated.as_secs_f64()
    );
    println!(
        "generated / hand-written = {:.2}x (paper: ~1.02x)",
        generated.as_secs_f64() / hand.as_secs_f64()
    );
}
