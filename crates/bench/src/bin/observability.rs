//! Observability demo: runs a multi-stage query under instrumentation,
//! prints its `EXPLAIN ANALYZE` tree (actual rows, per-operator times,
//! shuffle volume attributed to the operators that induced each
//! exchange), then dumps the session query log as JSON — the
//! machine-readable record a harness would archive next to Figure 8/9
//! style wall-clock numbers.
//!
//! Run with: `cargo run --release -p bench --bin observability`

use catalyst::value::Value;
use catalyst::Row;
use catalyst::{DataType, Schema, StructField};
use spark_sql::SQLContext;
use std::sync::Arc;

const USERS: usize = 200_000;
const DEPTS: i64 = 64;

fn users(ctx: &SQLContext) -> spark_sql::DataFrame {
    let schema = Arc::new(Schema::new(vec![
        StructField::new("id", DataType::Long, false),
        StructField::new("age", DataType::Int, false),
        StructField::new("dept_id", DataType::Long, false),
    ]));
    let rows: Vec<Row> = (0..USERS)
        .map(|i| {
            let mut z = (i as u64).wrapping_add(0x9E3779B97F4A7C15);
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
            Row::new(vec![
                Value::Long(i as i64),
                Value::Int(18 + (z % 50) as i32),
                Value::Long((z >> 8) as i64 % DEPTS),
            ])
        })
        .collect();
    ctx.create_dataframe(schema, rows).expect("users df")
}

fn depts(ctx: &SQLContext) -> spark_sql::DataFrame {
    let schema = Arc::new(Schema::new(vec![
        StructField::new("d_id", DataType::Long, false),
        StructField::new("dept", DataType::String, false),
    ]));
    let rows: Vec<Row> = (0..DEPTS)
        .map(|d| Row::new(vec![Value::Long(d), Value::str(format!("dept-{d}"))]))
        .collect();
    ctx.create_dataframe(schema, rows).expect("depts df")
}

fn main() {
    use catalyst::expr::builders::{col, lit};

    let ctx = SQLContext::new_local(8);
    let query = users(&ctx)
        .where_(col("age").gt(lit(40)))
        .expect("filter")
        .group_by_cols(&["dept_id"])
        .count()
        .expect("aggregate")
        .join_on(&depts(&ctx), col("dept_id").eq(col("d_id")))
        .expect("join")
        .select(vec![col("dept"), col("count")])
        .expect("project");

    println!("{}", query.explain_analyze().expect("explain analyze"));

    // A second instrumented run through the programmatic handle.
    let qe = query.query_execution().expect("query execution");
    let rows = qe.collect().expect("collect");
    println!(
        "programmatic run: {} rows, root operator saw {}",
        rows.len(),
        qe.metrics().node(0).output_rows()
    );

    println!("\n== Query log (JSON) ==\n{}", ctx.query_log_json());
}
