//! §3.6's claim: "the columnar cache can reduce memory footprint by an
//! order of magnitude" compared with storing rows as (boxed) objects,
//! because it applies dictionary and run-length encoding.
//!
//! Run with: `cargo run --release -p bench --bin mem_footprint`

use catalyst::value::Value;
use catalyst::Row;
use catalyst::{DataType, Schema, StructField};
use columnar::{batch_rows, memory};
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};
use std::sync::Arc;

const ROWS: usize = 1_000_000;

fn main() {
    let mut rng = StdRng::seed_from_u64(0x3B6);
    // A typical analytics table: low-cardinality strings, slowly-changing
    // ints, flags, plus one high-entropy metric column.
    let schema = Arc::new(Schema::new(vec![
        StructField::new("country", DataType::String, false),
        StructField::new("day", DataType::Int, false),
        StructField::new("active", DataType::Boolean, false),
        StructField::new("metric", DataType::Double, false),
    ]));
    let countries = ["US", "DE", "JP", "BR", "IN", "FR", "GB", "CN"];
    let rows: Vec<Row> = (0..ROWS)
        .map(|i| {
            Row::new(vec![
                Value::str(countries[rng.random_range(0..countries.len())]),
                Value::Int((i / 5000) as i32),
                Value::Boolean(rng.random_range(0..10) > 3),
                Value::Double(rng.random_range(0.0..1e6)),
            ])
        })
        .collect();

    let batches = batch_rows(schema, rows.clone(), columnar::DEFAULT_BATCH_SIZE);
    let object_bytes = memory::object_cache_bytes(&rows);
    let columnar_bytes = memory::columnar_cache_bytes(&batches);

    println!("§3.6 cache footprint, {ROWS} rows:\n");
    println!("{:<26} {:>14}", "representation", "bytes");
    println!("{:<26} {:>14}", "row objects (native cache)", object_bytes);
    println!("{:<26} {:>14}", "columnar + compression", columnar_bytes);
    println!(
        "\ncompression ratio: {:.1}x (paper claims ~an order of magnitude)",
        memory::compression_ratio(&rows, &batches)
    );
    println!("\nper-column encodings chosen:");
    for (i, c) in batches[0].columns().iter().enumerate() {
        println!(
            "  {:<10} {:<12} {:>10} bytes/batch",
            batches[0].schema().field(i).name,
            c.encoding_name(),
            c.bytes()
        );
    }
}
