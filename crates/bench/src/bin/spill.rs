//! Memory-governed execution benchmark: the three spilling operators
//! (external sort, grace hash join, spillable aggregation) run against
//! the unbounded in-memory path on inputs roughly 4× the byte budget.
//!
//! Each workload executes twice on fresh contexts — budget 0 (unbounded)
//! and a budget the buffered working set clearly exceeds — with identical
//! row counts asserted, plus the pool invariants: spills actually
//! happened, the peak reservation stayed under the budget, and every
//! spill file was deleted by the end of the run.
//!
//! Writes `BENCH_spill.json` to the working directory.
//!
//! Run with: `cargo run --release -p bench --bin spill`

use spark_sql::prelude::*;
use std::sync::Arc;
use std::time::Instant;

/// Byte budget for the bounded runs; each workload buffers ~4× this.
const BUDGET: u64 = 2 << 20;

fn splitmix(i: u64) -> u64 {
    let mut z = i.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

fn fact_schema() -> SchemaRef {
    Arc::new(Schema::new(vec![
        StructField::new("k", DataType::Long, false),
        StructField::new("v", DataType::Long, false),
        StructField::new("s", DataType::String, false),
    ]))
}

fn dim_schema() -> SchemaRef {
    Arc::new(Schema::new(vec![
        StructField::new("dk", DataType::Long, false),
        StructField::new("w", DataType::String, false),
    ]))
}

/// ~40 B of buffered row (two longs plus a short string payload): 200k
/// rows ≈ 8 MiB resident in a build table or sort buffer, 4× `BUDGET`.
fn fact_rows(n: usize, key_domain: i64) -> Vec<Row> {
    (0..n)
        .map(|i| {
            let z = splitmix(i as u64);
            Row::new(vec![
                Value::Long((z as i64).rem_euclid(key_domain)),
                Value::Long(i as i64),
                Value::str(format!("payload-{:06}", z % 1_000_000)),
            ])
        })
        .collect()
}

struct Workload {
    name: &'static str,
    unbounded_ns: u128,
    spilled_ns: u128,
    rows_out: usize,
    peak: u64,
    spill_count: u64,
    spill_bytes: u64,
}

impl Workload {
    fn slowdown(&self) -> f64 {
        self.spilled_ns as f64 / self.unbounded_ns as f64
    }
    fn print(&self) {
        println!("{:<18} ({} rows out)", self.name, self.rows_out);
        println!("  unbounded {:>10.2} ms", self.unbounded_ns as f64 / 1e6);
        println!(
            "  spilled   {:>10.2} ms   ({:.2}x, peak {} KiB of {} KiB budget, \
             {} spills, {:.1} MiB to disk)",
            self.spilled_ns as f64 / 1e6,
            self.slowdown(),
            self.peak >> 10,
            BUDGET >> 10,
            self.spill_count,
            self.spill_bytes as f64 / (1 << 20) as f64,
        );
    }
    fn json(&self) -> String {
        format!(
            "\"{}\": {{ \"unbounded_ns\": {}, \"spilled_ns\": {}, \"slowdown\": {:.3}, \
             \"budget\": {}, \"peak\": {}, \"spill_count\": {}, \"spill_bytes\": {} }}",
            self.name,
            self.unbounded_ns,
            self.spilled_ns,
            self.slowdown(),
            BUDGET,
            self.peak,
            self.spill_count,
            self.spill_bytes
        )
    }
}

/// Warmup once, then min-of-3 wall clock.
fn time_min3(mut f: impl FnMut() -> usize) -> (u128, usize) {
    let n = f();
    let mut best = u128::MAX;
    for _ in 0..3 {
        let t = Instant::now();
        let got = f();
        assert_eq!(got, n, "non-deterministic result");
        best = best.min(t.elapsed().as_nanos());
    }
    (best, n)
}

fn run_pair(name: &'static str, query: impl Fn(&SQLContext) -> DataFrame) -> Workload {
    let mk = |budget: u64| {
        let ctx = SQLContext::new_local(4);
        ctx.set_conf(|c| {
            c.memory_budget_bytes = budget;
            // Keep joins on the shuffled (governed) path; broadcast
            // builds are bounded by the planner, not the pool.
            c.broadcast_threshold = 0;
        });
        ctx
    };
    // One context per mode (a live context retains every iteration's
    // map outputs, penalizing whichever mode runs second).
    let (unbounded_ns, n1) = {
        let ctx = mk(0);
        time_min3(|| query(&ctx).collect().expect("collect").len())
    };
    let (spilled_ns, n2, stats) = {
        let ctx = mk(BUDGET);
        let (ns, n) = time_min3(|| query(&ctx).collect().expect("collect").len());
        // One instrumented run for the pool counters.
        let qe = query(&ctx).query_execution().expect("query_execution");
        qe.collect().expect("collect");
        (
            ns,
            n,
            qe.memory_stats()
                .expect("bounded run must report pool stats"),
        )
    };
    assert_eq!(n1, n2, "{name}: unbounded and spilled row counts disagree");
    assert!(
        stats.spill_count > 0,
        "{name}: never spilled under a {BUDGET}-byte budget"
    );
    assert!(
        stats.peak <= BUDGET,
        "{name}: peak {} exceeded the {BUDGET}-byte budget",
        stats.peak
    );
    assert_eq!(
        stats.spill_files_created, stats.spill_files_deleted,
        "{name}: leaked spill files"
    );
    Workload {
        name,
        unbounded_ns,
        spilled_ns,
        rows_out: n1,
        peak: stats.peak,
        spill_count: stats.spill_count,
        spill_bytes: stats.spill_bytes,
    }
}

fn main() {
    println!(
        "spill bench: {} KiB budget, working sets ~4x (min of 3, after warmup)\n",
        BUDGET >> 10
    );

    // -- 1. external sort: 200k rows through the run-merge path ---------
    let sort_input = fact_rows(200_000, 4_000);
    let sort = run_pair("external_sort", |ctx| {
        let rdd = ctx.spark_context().parallelize(sort_input.clone(), 4);
        ctx.dataframe_from_rdd("fact", fact_schema(), rdd)
            .expect("fact")
            .order_by(vec![col("s").asc(), col("v").desc()])
            .expect("sort")
    });
    sort.print();

    // -- 2. grace hash join: 200k-row build side, 1k-row probe ----------
    let join_fact = fact_rows(200_000, 1_000);
    let dim: Vec<Row> = (0..1_000)
        .map(|i| Row::new(vec![Value::Long(i), Value::str(format!("d{i}"))]))
        .collect();
    let join = run_pair("grace_hash_join", |ctx| {
        // Dim joins fact: hash joins build the right stream, so the big
        // table is the one under memory pressure.
        let f = ctx.spark_context().parallelize(join_fact.clone(), 4);
        let fact = ctx
            .dataframe_from_rdd("fact", fact_schema(), f)
            .expect("fact");
        let d = ctx.spark_context().parallelize(dim.clone(), 2);
        let dim = ctx.dataframe_from_rdd("dim", dim_schema(), d).expect("dim");
        dim.join(&fact, JoinType::Inner, Some(col("dk").eq(col("k"))))
            .expect("join")
    });
    join.print();

    // -- 3. spillable aggregation: 200k rows into 150k groups -----------
    let agg_input = fact_rows(200_000, 150_000);
    let agg = run_pair("spill_aggregate", |ctx| {
        let rdd = ctx.spark_context().parallelize(agg_input.clone(), 4);
        ctx.dataframe_from_rdd("fact", fact_schema(), rdd)
            .expect("fact")
            .group_by_cols(&["k"])
            .agg(vec![
                count_star().alias("n"),
                sum(col("v")).alias("sv"),
                min(col("s")).alias("ms"),
            ])
            .expect("agg")
    });
    agg.print();

    let json = format!(
        "{{\n  {},\n  {},\n  {}\n}}\n",
        sort.json(),
        join.json(),
        agg.json()
    );
    std::fs::write("BENCH_spill.json", &json).expect("write BENCH_spill.json");
    println!("\nwrote BENCH_spill.json");
}
