//! Vectorized-execution benchmark: the same scan→filter→project (and
//! →aggregate) pipeline over a 1M-row cached table, run through the
//! columnar batch path (`RowBatch` + typed kernels) and the
//! row-at-a-time path, plus the before/after for the
//! `ColumnarBatch::from_rows` fix (old: clone every `Value` through a
//! per-column scratch vector; new: one by-value transpose that *moves*
//! each value into its column).
//!
//! Writes `BENCH_vectorized.json` to the working directory.
//!
//! Run with: `cargo run --release -p bench --bin vectorized`

use catalyst::expr::builders::{col, lit, sum};
use catalyst::value::Value;
use catalyst::Row;
use catalyst::{DataType, Schema, StructField};
use columnar::{ColumnarBatch, EncodedColumn};
use spark_sql::{DataFrame, SQLContext};
use std::sync::Arc;
use std::time::Instant;

const ROWS: usize = 1_000_000;

fn splitmix(i: u64) -> u64 {
    let mut z = i.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

fn schema() -> Arc<Schema> {
    Arc::new(Schema::new(vec![
        StructField::new("id", DataType::Long, false),
        StructField::new("val", DataType::Long, false),
        StructField::new("cat", DataType::String, false),
        StructField::new("metric", DataType::Double, false),
    ]))
}

fn rows() -> Vec<Row> {
    const CATS: &[&str] = &["US", "DE", "JP", "BR", "IN", "FR", "GB", "CN"];
    (0..ROWS)
        .map(|i| {
            let z = splitmix(i as u64);
            Row::new(vec![
                Value::Long(i as i64),
                Value::Long((z % 10_000) as i64),
                Value::str(CATS[(z >> 16) as usize % CATS.len()]),
                Value::Double((z >> 11) as f64 / (1u64 << 53) as f64),
            ])
        })
        .collect()
}

/// Cached 1M-row table in a context with vectorization on or off.
fn cached_table(vectorize: bool) -> (SQLContext, DataFrame) {
    let ctx = SQLContext::new_local(4);
    ctx.set_conf(|c| c.vectorize_enabled = vectorize);
    let df = ctx
        .create_dataframe(schema(), rows())
        .expect("create_dataframe")
        .cache()
        .expect("cache");
    df.count().expect("materialize"); // force materialization outside the timer
    (ctx, df)
}

/// scan → filter → project; ~1% selectivity so the timer measures the
/// columnar work, not materializing output rows (both paths produce the
/// same small `Vec<Row>` at the end).
fn scan_filter_project(df: &DataFrame) -> usize {
    df.where_(col("val").lt(lit(100i64)))
        .expect("filter")
        .select(vec![
            col("id"),
            col("val").add(lit(1i64)).alias("v1"),
            col("metric").mul(lit(2.0f64)).alias("m2"),
        ])
        .expect("project")
        .collect()
        .expect("collect")
        .len()
}

/// scan → filter → project → aggregate (tiny output).
fn scan_filter_project_agg(df: &DataFrame) -> usize {
    df.where_(col("val").gt_eq(lit(5_000i64)))
        .expect("filter")
        .select(vec![col("cat"), col("metric").mul(lit(2.0f64)).alias("m2")])
        .expect("project")
        .group_by_cols(&["cat"])
        .agg(vec![sum(col("m2")).alias("s")])
        .expect("aggregate")
        .collect()
        .expect("collect")
        .len()
}

/// Warmup once, then min-of-3 wall clock.
fn time_min3(mut f: impl FnMut() -> usize) -> (u128, usize) {
    let n = f();
    let mut best = u128::MAX;
    for _ in 0..3 {
        let t = Instant::now();
        let got = f();
        assert_eq!(got, n, "non-deterministic result");
        best = best.min(t.elapsed().as_nanos());
    }
    (best, n)
}

/// The pre-fix `from_rows`: decompose each row into columns by *cloning*
/// every value through per-column scratch vectors (kept here verbatim as
/// the baseline for the before/after).
fn encode_via_clone(schema: Arc<Schema>, rows: &[Row]) -> ColumnarBatch {
    let columns: Vec<EncodedColumn> = schema
        .fields()
        .iter()
        .enumerate()
        .map(|(j, field)| {
            let scratch: Vec<Value> = rows.iter().map(|r| r.get(j).clone()).collect();
            EncodedColumn::encode(&field.dtype, &scratch)
        })
        .collect();
    ColumnarBatch::from_columns(schema, columns, rows.len())
}

fn main() {
    println!("vectorized-execution bench, {ROWS} rows (min of 3, after warmup)\n");

    // -- pipelines: row path vs batch path ------------------------------
    let (_ctx_row, df_row) = cached_table(false);
    let (_ctx_vec, df_vec) = cached_table(true);

    let (sfp_row, n1) = time_min3(|| scan_filter_project(&df_row));
    let (sfp_vec, n2) = time_min3(|| scan_filter_project(&df_vec));
    assert_eq!(n1, n2, "row/batch scan+filter+project disagree");
    let sfp_speedup = sfp_row as f64 / sfp_vec as f64;
    println!("scan+filter+project   ({n1} rows out)");
    println!("  row path   {:>10.2} ms", sfp_row as f64 / 1e6);
    println!(
        "  batch path {:>10.2} ms   ({sfp_speedup:.2}x)",
        sfp_vec as f64 / 1e6
    );

    let (agg_row, m1) = time_min3(|| scan_filter_project_agg(&df_row));
    let (agg_vec, m2) = time_min3(|| scan_filter_project_agg(&df_vec));
    assert_eq!(m1, m2, "row/batch aggregate pipelines disagree");
    let agg_speedup = agg_row as f64 / agg_vec as f64;
    println!("…+aggregate           ({m1} groups)");
    println!("  row path   {:>10.2} ms", agg_row as f64 / 1e6);
    println!(
        "  batch path {:>10.2} ms   ({agg_speedup:.2}x)",
        agg_vec as f64 / 1e6
    );

    // -- from_rows before/after -----------------------------------------
    // Fair end-to-end accounting: the old `&[Row]` API left the caller
    // holding (and eventually freeing) the source rows, so the drop is
    // part of its cost too. Min of 3, fresh rows each round.
    let s = schema();
    let mut clone_ns = u128::MAX;
    let mut move_ns = u128::MAX;
    let mut bytes = (0u64, 0u64);
    for _ in 0..3 {
        let data = rows();
        let t = Instant::now();
        let before = encode_via_clone(s.clone(), &data);
        drop(data);
        clone_ns = clone_ns.min(t.elapsed().as_nanos());
        bytes.0 = before.bytes();

        let data = rows();
        let t = Instant::now();
        let after = ColumnarBatch::from_rows(s.clone(), data);
        move_ns = move_ns.min(t.elapsed().as_nanos());
        bytes.1 = after.bytes();
    }
    assert_eq!(bytes.0, bytes.1, "encodings diverged");
    println!("from_rows encode of {ROWS} rows");
    println!("  scratch-clone (old) {:>8.2} ms", clone_ns as f64 / 1e6);
    println!(
        "  by-value move (new) {:>8.2} ms   ({:.2}x)",
        move_ns as f64 / 1e6,
        clone_ns as f64 / move_ns as f64
    );

    let json = format!(
        "{{\n  \"rows\": {ROWS},\n  \"scan_filter_project\": {{ \"row_ns\": {sfp_row}, \"batch_ns\": {sfp_vec}, \"speedup\": {sfp_speedup:.3} }},\n  \"scan_filter_project_agg\": {{ \"row_ns\": {agg_row}, \"batch_ns\": {agg_vec}, \"speedup\": {agg_speedup:.3} }},\n  \"from_rows_encode\": {{ \"clone_ns\": {clone_ns}, \"move_ns\": {move_ns} }}\n}}\n"
    );
    std::fs::write("BENCH_vectorized.json", &json).expect("write BENCH_vectorized.json");
    println!("\nwrote BENCH_vectorized.json");

    assert!(
        sfp_speedup >= 2.0,
        "batch path must be ≥2x on scan+filter+project, got {sfp_speedup:.2}x"
    );
}
