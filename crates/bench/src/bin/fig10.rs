//! Figure 10: "Performance of a two-stage pipeline written as a separate
//! Spark SQL query and Spark job (above) and an integrated DataFrame job
//! (below)."
//!
//! Stage 1 filters ~90% of a message corpus relationally; stage 2 counts
//! words procedurally. The *separate* variant materializes the SQL
//! result to the (simulated) distributed file system and reads it back,
//! as when distinct relational and procedural engines are chained; the
//! *integrated* variant pipelines the word count map directly behind the
//! relational filter, never materializing the intermediate (§6.3). The
//! paper reports ≈2x for the integrated pipeline (~700s vs ~350s).
//!
//! Run with: `cargo run --release -p bench --bin fig10`

use bench::textgen;
use bench::{ms, time};
use catalyst::value::Value;
use catalyst::Row;
use catalyst::{DataType, Schema, StructField};
use engine::hdfs::FileStore;
use engine::PairRdd;
use spark_sql::prelude::*;
use spark_sql::SQLContext;
use std::sync::Arc;

const MESSAGES: usize = 400_000;
const PARTITIONS: usize = 8;

fn corpus(ctx: &SQLContext) -> DataFrame {
    let msgs = textgen::messages(MESSAGES, 0.9, 0xF16);
    let schema = Arc::new(Schema::new(vec![StructField::new(
        "text",
        DataType::String,
        false,
    )]));
    let sc = ctx.spark_context().clone();
    let msgs = Arc::new(msgs);
    let per = MESSAGES.div_ceil(PARTITIONS);
    let rdd = sc.generate(PARTITIONS, move |p| {
        let msgs = msgs.clone();
        let lo = p * per;
        let hi = ((p + 1) * per).min(msgs.len());
        Box::new((lo..hi).map(move |i| Row::new(vec![Value::str(&msgs[i])])))
    });
    ctx.dataframe_from_rdd("messages", schema, rdd).unwrap()
}

fn word_count(lines: &engine::RddRef<String>) -> usize {
    lines
        .flat_map(|line: String| {
            line.split_whitespace()
                .map(|w| (w.to_string(), 1u64))
                .collect::<Vec<_>>()
        })
        .reduce_by_key(|a, b| a + b, PARTITIONS)
        .count() as usize
}

fn main() {
    println!("Figure 10: filter (keeps ~90%) + word count over {MESSAGES} messages\n");
    let ctx = SQLContext::new_local(4);
    ctx.set_conf(|c| c.shuffle_partitions = PARTITIONS);
    let df = corpus(&ctx);
    df.register_temp_table("messages");

    // --- Variant A: separate SQL job and Spark job with a file handoff.
    let fs = FileStore::temp("fig10").unwrap();
    let sc = ctx.spark_context().clone();
    let (words_a, separate) = time(|| {
        // Job 1: the relational filter, materialized to "HDFS".
        let filtered = ctx
            .sql("SELECT text FROM messages WHERE text LIKE '%data%'")
            .unwrap()
            .to_rdd()
            .unwrap()
            .map(|row: Row| row.get_str(0).to_string());
        fs.save_text(&sc, &filtered, "filtered").unwrap();
        // Job 2: a separate procedural engine reads the file and counts.
        let lines = fs.read_text(&sc, "filtered").unwrap();
        word_count(&lines)
    });

    // --- Variant B: one integrated DataFrame pipeline.
    let (words_b, integrated) = time(|| {
        let filtered = ctx
            .sql("SELECT text FROM messages WHERE text LIKE '%data%'")
            .unwrap()
            .to_rdd()
            .unwrap()
            .map(|row: Row| row.get_str(0).to_string());
        word_count(&filtered)
    });

    assert_eq!(words_a, words_b, "both variants count the same words");
    let m = sc.metrics().snapshot();
    println!("{:<28} {:>12}", "variant", "time (ms)");
    println!("{:<28} {:>12.0}", "separate SQL + Spark jobs", ms(separate));
    println!(
        "{:<28} {:>12.0}",
        "integrated DataFrame job",
        ms(integrated)
    );
    println!(
        "\nspeedup: {:.1}x (paper: ≈2x); distinct words: {words_b}",
        separate.as_secs_f64() / integrated.as_secs_f64()
    );
    println!(
        "intermediate materialization cost: {} bytes written + {} bytes read back",
        m.fs_bytes_written, m.fs_bytes_read
    );
}
