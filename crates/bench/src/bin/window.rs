//! Back-half vectorization benchmark: the aggregation ladder (multi-key
//! GROUP BY with a stack of aggregate calls) through the batch-native
//! hash-aggregation path vs the row-at-a-time path, plus the
//! window-function operator (rank, lag, running sum) over a 1M-row
//! table — all end-to-end through SQL/DataFrame plans.
//!
//! Writes `BENCH_window.json` to the working directory.
//!
//! Run with: `cargo run --release -p bench --bin window`

use catalyst::expr::builders::{avg, col, count_star, max, min, sum};
use catalyst::value::Value;
use catalyst::Row;
use catalyst::{DataType, Schema, StructField};
use spark_sql::{DataFrame, SQLContext};
use std::sync::Arc;
use std::time::Instant;

const ROWS: usize = 1_000_000;

fn splitmix(i: u64) -> u64 {
    let mut z = i.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

fn schema() -> Arc<Schema> {
    Arc::new(Schema::new(vec![
        StructField::new("id", DataType::Long, false),
        StructField::new("cat", DataType::String, false),
        StructField::new("bucket", DataType::Long, false),
        StructField::new("val", DataType::Long, false),
        StructField::new("metric", DataType::Double, false),
    ]))
}

fn rows() -> Vec<Row> {
    const CATS: &[&str] = &["US", "DE", "JP", "BR", "IN", "FR", "GB", "CN"];
    (0..ROWS)
        .map(|i| {
            let z = splitmix(i as u64);
            Row::new(vec![
                Value::Long(i as i64),
                Value::str(CATS[(z >> 16) as usize % CATS.len()]),
                Value::Long((z % 16) as i64),
                Value::Long(((z >> 8) % 10_000) as i64),
                Value::Double((z >> 11) as f64 / (1u64 << 53) as f64),
            ])
        })
        .collect()
}

/// Cached 1M-row table in a context with vectorization on or off.
fn cached_table(vectorize: bool) -> (SQLContext, DataFrame) {
    let ctx = SQLContext::new_local(4);
    ctx.set_conf(|c| c.vectorize_enabled = vectorize);
    let df = ctx
        .create_dataframe(schema(), rows())
        .expect("create_dataframe")
        .cache()
        .expect("cache");
    df.count().expect("materialize"); // force materialization outside the timer
    (ctx, df)
}

/// The aggregation ladder: a multi-column group key (128 groups) under a
/// stack of five aggregate calls. The row path runs this through boxed
/// per-row accumulators; the batch path hashes keys columnar and updates
/// typed accumulator lanes per batch.
fn agg_ladder(df: &DataFrame) -> usize {
    df.group_by_cols(&["cat", "bucket"])
        .agg(vec![
            count_star().alias("n"),
            sum(col("val")).alias("sv"),
            avg(col("metric")).alias("am"),
            min(col("val")).alias("mv"),
            max(col("metric")).alias("xm"),
        ])
        .expect("aggregate")
        .collect()
        .expect("collect")
        .len()
}

/// A window query reduced to one row so the timer measures window
/// evaluation, not materializing 1M output rows. The global SUM over the
/// window column forces every frame to be computed.
fn windowed_sum(ctx: &SQLContext, window_sql: &str, out_col: &str) -> i64 {
    let df = ctx.sql(window_sql).expect("window sql");
    let reduced = df
        .agg(vec![sum(col(out_col)).alias("total")])
        .expect("global sum")
        .collect()
        .expect("collect");
    match reduced[0].get(0) {
        Value::Long(v) => *v,
        Value::Double(v) => *v as i64,
        other => panic!("unexpected total {other:?}"),
    }
}

/// Warmup once, then min-of-3 wall clock.
fn time_min3<T: PartialEq + std::fmt::Debug>(mut f: impl FnMut() -> T) -> (u128, T) {
    let n = f();
    let mut best = u128::MAX;
    for _ in 0..3 {
        let t = Instant::now();
        let got = f();
        assert_eq!(got, n, "non-deterministic result");
        best = best.min(t.elapsed().as_nanos());
    }
    (best, n)
}

fn main() {
    println!("back-half vectorization bench, {ROWS} rows (min of 3, after warmup)\n");

    // -- aggregation ladder: row path vs batch path ---------------------
    let (_ctx_row, df_row) = cached_table(false);
    let (ctx_vec, df_vec) = cached_table(true);

    let (agg_row, g1) = time_min3(|| agg_ladder(&df_row));
    let (agg_vec, g2) = time_min3(|| agg_ladder(&df_vec));
    assert_eq!(g1, g2, "row/batch aggregation ladders disagree");
    let agg_speedup = agg_row as f64 / agg_vec as f64;
    println!("aggregation ladder     ({g1} groups, 5 aggregates)");
    println!("  row path   {:>10.2} ms", agg_row as f64 / 1e6);
    println!(
        "  batch path {:>10.2} ms   ({agg_speedup:.2}x)",
        agg_vec as f64 / 1e6
    );

    // -- window functions over 1M rows ----------------------------------
    df_vec.register_temp_table("t");
    let (rank_ns, rank_total) = time_min3(|| {
        windowed_sum(
            &ctx_vec,
            "SELECT rank() OVER (PARTITION BY cat ORDER BY val) AS r FROM t",
            "r",
        )
    });
    println!("window rank()          (sum {rank_total})");
    println!("  batch path {:>10.2} ms", rank_ns as f64 / 1e6);

    let (lag_ns, lag_total) = time_min3(|| {
        windowed_sum(
            &ctx_vec,
            "SELECT lag(val, 1, 0) OVER (PARTITION BY cat ORDER BY val, id) AS l FROM t",
            "l",
        )
    });
    println!("window lag()           (sum {lag_total})");
    println!("  batch path {:>10.2} ms", lag_ns as f64 / 1e6);

    let (run_ns, run_total) = time_min3(|| {
        windowed_sum(
            &ctx_vec,
            "SELECT sum(val) OVER (PARTITION BY cat ORDER BY val, id) AS s FROM t",
            "s",
        )
    });
    println!("window running sum()   (sum {run_total})");
    println!("  batch path {:>10.2} ms", run_ns as f64 / 1e6);

    let json = format!(
        "{{\n  \"rows\": {ROWS},\n  \"agg_ladder\": {{ \"row_ns\": {agg_row}, \"batch_ns\": {agg_vec}, \"speedup\": {agg_speedup:.3} }},\n  \"window\": {{ \"rank_ns\": {rank_ns}, \"lag_ns\": {lag_ns}, \"running_sum_ns\": {run_ns} }}\n}}\n"
    );
    std::fs::write("BENCH_window.json", &json).expect("write BENCH_window.json");
    println!("\nwrote BENCH_window.json");

    assert!(
        agg_speedup >= 3.5,
        "batch aggregation must be ≥3.5x on the ladder, got {agg_speedup:.2}x"
    );
}
