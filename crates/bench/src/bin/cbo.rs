//! Cost-based-optimizer benchmark: the statistics-driven decisions
//! against the same queries with `spark.sql.cbo.enabled = false`.
//!
//! 1. *Join-chain ordering + build side* — a three-table chain written
//!    dimension-first, so the naive left-deep plan hash-builds the 300k
//!    row fact table and probes it with 200 dimension rows. The CBO run
//!    reorders by estimated cardinality and builds the measured-smaller
//!    side, turning the same shuffle into a 200-entry build probed by
//!    300k rows.
//! 2. *Aggregates answered from statistics* — global COUNT(*)/MIN/MAX
//!    over a colfile-backed table. With cbo the scan disappears from the
//!    plan entirely: the file's `groups_read` counter stays at zero while
//!    the baseline decodes every row group.
//!
//! Writes `BENCH_cbo.json` to the working directory.
//!
//! Run with: `cargo run --release -p bench --bin cbo`

use catalyst::source::MemoryTable;
use datasources::colfile::{write_colfile, ColFileRelation};
use spark_sql::prelude::*;
use std::sync::Arc;
use std::time::Instant;

fn splitmix(i: u64) -> u64 {
    let mut z = i.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

fn fact_schema() -> SchemaRef {
    Arc::new(Schema::new(vec![
        StructField::new("fk1", DataType::Long, false),
        StructField::new("fk2", DataType::Long, false),
        StructField::new("fv", DataType::Long, false),
    ]))
}

fn dim_schema(key: &str, val: &str) -> SchemaRef {
    Arc::new(Schema::new(vec![
        StructField::new(key, DataType::Long, false),
        StructField::new(val, DataType::String, false),
    ]))
}

fn fact_rows(n: usize, d1: i64, d2: i64) -> Vec<Row> {
    (0..n)
        .map(|i| {
            let z = splitmix(i as u64);
            Row::new(vec![
                Value::Long(z as i64 % d1),
                Value::Long((z >> 16) as i64 % d2),
                Value::Long(i as i64),
            ])
        })
        .collect()
}

fn dim_rows(n: i64, per_key: i64, tag: &str) -> Vec<Row> {
    (0..n * per_key)
        .map(|i| Row::new(vec![Value::Long(i % n), Value::str(format!("{tag}{i}"))]))
        .collect()
}

/// Warmup once, then min-of-3 wall clock of `f() -> rows`.
fn time_min3(mut f: impl FnMut() -> usize) -> (u128, usize) {
    let n = f();
    let mut best = u128::MAX;
    for _ in 0..3 {
        let t = Instant::now();
        let got = f();
        assert_eq!(got, n, "non-deterministic result");
        best = best.min(t.elapsed().as_nanos());
    }
    (best, n)
}

struct Workload {
    name: &'static str,
    off_ns: u128,
    on_ns: u128,
    rows_out: usize,
    extra: String,
}

impl Workload {
    fn speedup(&self) -> f64 {
        self.off_ns as f64 / self.on_ns as f64
    }
    fn print(&self) {
        println!("{:<20} ({} rows out)", self.name, self.rows_out);
        println!("  cbo off  {:>10.2} ms", self.off_ns as f64 / 1e6);
        println!(
            "  cbo on   {:>10.2} ms   ({:.2}x){}",
            self.on_ns as f64 / 1e6,
            self.speedup(),
            self.extra.replace(',', "  ").replace('"', ""),
        );
    }
    fn json(&self) -> String {
        format!(
            "\"{}\": {{ \"cbo_off_ns\": {}, \"cbo_on_ns\": {}, \"speedup\": {:.3}{} }}",
            self.name,
            self.off_ns,
            self.on_ns,
            self.speedup(),
            self.extra
        )
    }
}

fn main() {
    println!("cost-based-optimizer bench (min of 3, after warmup)\n");

    // -- 1. join chain: naive order builds the large side ---------------
    // d1 ⋈ fact ⋈ d2, written with the expanding dimension first.
    // Broadcast threshold 0 pins every join to the shuffled path. d1
    // carries 5 rows per key over fk1's full domain, so the naive
    // left-deep plan inflates the 60k-row fact to a 300k-row wide
    // intermediate, hash-builds it, and shuffles it again for d2. The
    // NDV-based reorder sees that fact ⋈ d2 keeps ~1/40 of the rows (50
    // of fk2's 2000 values) and runs it first; the build-side rule then
    // builds the measured-smaller input of each shuffle.
    let fact = fact_rows(60_000, 3_000, 2_000);
    let d1 = dim_rows(3_000, 5, "a");
    let d2 = dim_rows(50, 1, "b");
    let mk = |cbo: bool| {
        let ctx = SQLContext::new_local(4);
        ctx.set_conf(|c| {
            c.cbo_enabled = cbo;
            c.broadcast_threshold = 0;
            c.shuffle_partitions = 4;
        });
        ctx.register_relation(
            "fact",
            Arc::new(MemoryTable::new("fact", fact_schema(), fact.clone(), 4)),
        );
        ctx.register_relation(
            "d1",
            Arc::new(MemoryTable::new(
                "d1",
                dim_schema("d1k", "d1v"),
                d1.clone(),
                2,
            )),
        );
        ctx.register_relation(
            "d2",
            Arc::new(MemoryTable::new(
                "d2",
                dim_schema("d2k", "d2v"),
                d2.clone(),
                2,
            )),
        );
        ctx
    };
    let chain = "SELECT d1.d1v, d2.d2v, fact.fv FROM d1 \
                 JOIN fact ON d1.d1k = fact.fk1 \
                 JOIN d2 ON fact.fk2 = d2.d2k";
    let run_chain = |cbo: bool| {
        // Fresh context per run: a live context's shuffle manager retains
        // map outputs, which would slow whichever mode runs second.
        let ctx = mk(cbo);
        ctx.sql(chain).expect("chain").collect().expect("run").len()
    };
    let (off_ns, n_off) = time_min3(|| run_chain(false));
    let (on_ns, n_on) = time_min3(|| run_chain(true));
    assert_eq!(n_off, n_on, "cbo changed the join-chain result");
    {
        // The baseline really does build the fact side (build=Right with
        // the fact as right input), and the cbo plan really flips it.
        let physical = |cbo: bool| {
            format!(
                "{}",
                mk(cbo)
                    .sql(chain)
                    .expect("chain")
                    .query_execution()
                    .expect("qe")
                    .physical()
            )
        };
        assert!(
            physical(false).contains("build=Right"),
            "baseline should build right"
        );
        assert!(
            physical(true).contains("build=Left"),
            "cbo should flip a build side:\n{}",
            physical(true)
        );
    }
    let chain_wl = Workload {
        name: "join_chain",
        off_ns,
        on_ns,
        rows_out: n_off,
        extra: String::new(),
    };
    chain_wl.print();

    // -- 2. aggregates answered from statistics -------------------------
    // 200k rows in 20 row groups of 10k. The colfile footer carries
    // row/null counts and min/max per group; with cbo the global
    // aggregate is answered from the merged statistics and the scan
    // never decodes a single group.
    let agg_schema: SchemaRef = Arc::new(Schema::new(vec![
        StructField::new("k", DataType::Long, false),
        StructField::new("v", DataType::Long, false),
    ]));
    let agg_rows: Vec<Row> = (0..200_000i64)
        .map(|i| Row::new(vec![Value::Long(splitmix(i as u64) as i64), Value::Long(i)]))
        .collect();
    let colfile = Arc::new(
        ColFileRelation::from_bytes("agg", write_colfile(&agg_schema, &agg_rows, 10_000))
            .expect("colfile"),
    );
    let agg = "SELECT count(*) AS n, min(v) AS lo, max(v) AS hi FROM agg";
    let run_agg = |cbo: bool| {
        let ctx = SQLContext::new_local(4);
        ctx.set_conf(|c| c.cbo_enabled = cbo);
        ctx.register_relation("agg", colfile.clone());
        let rows = ctx.sql(agg).expect("agg").collect().expect("run");
        assert_eq!(
            format!("{:?}", rows[0].values()),
            "[Long(200000), Long(0), Long(199999)]",
            "wrong aggregate answer"
        );
        rows.len()
    };
    let before_off = colfile.groups_read();
    let (agg_off_ns, _) = time_min3(|| run_agg(false));
    let groups_off = colfile.groups_read() - before_off;
    let before_on = colfile.groups_read();
    let (agg_on_ns, _) = time_min3(|| run_agg(true));
    let groups_on = colfile.groups_read() - before_on;
    let agg_wl = Workload {
        name: "stats_answered_agg",
        off_ns: agg_off_ns,
        on_ns: agg_on_ns,
        rows_out: 1,
        extra: format!(", \"groups_read_off\": {groups_off}, \"groups_read_on\": {groups_on}"),
    };
    agg_wl.print();

    let json = format!("{{\n  {},\n  {}\n}}\n", chain_wl.json(), agg_wl.json());
    std::fs::write("BENCH_cbo.json", &json).expect("write BENCH_cbo.json");
    println!("\nwrote BENCH_cbo.json");

    // The headline claims: picking the small build side must pay off
    // outright, and the stats-answered aggregate must read nothing.
    assert!(
        chain_wl.speedup() >= 1.5,
        "cbo must beat the naive join order by 1.5x, got {:.2}x",
        chain_wl.speedup()
    );
    assert!(
        groups_off > 0,
        "baseline aggregate should decode row groups"
    );
    assert_eq!(
        groups_on, 0,
        "stats-answered aggregate must not decode any row group"
    );
}
