//! Multi-tenant SQL service benchmark: wire-protocol clients hammer one
//! shared server with mixed query shapes, at increasing concurrency.
//!
//! For each client count the run reports per-query latency quantiles
//! (p50/p99), throughput, and the service counters that prove the
//! machinery engaged: admission queueing under the shared memory budget
//! and shared-cache evictions under a bounded cache budget.
//!
//! Writes `BENCH_service.json` to the working directory.
//!
//! Run with: `cargo run --release -p bench --bin service`
//! `SERVICE_BENCH_CLIENTS=1,8` overrides the concurrency sweep (CI uses
//! a single reduced tier); `SERVICE_BENCH_QUERIES` the per-client count.

use service::{Client, SqlServer};
use spark_sql::prelude::*;
use std::sync::Arc;
use std::time::Instant;

const FACT_ROWS: i64 = 60_000;

fn splitmix(i: u64) -> u64 {
    let mut z = i.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

fn root_with_tables() -> SQLContext {
    let ctx = SQLContext::new_local(4);
    let fact: Vec<Row> = (0..FACT_ROWS)
        .map(|i| {
            let z = splitmix(i as u64);
            Row::new(vec![
                Value::Long((z as i64).rem_euclid(997)),
                Value::Long(i),
                Value::str(format!("payload-{:05}", z % 10_000)),
            ])
        })
        .collect();
    let fact_schema = Arc::new(Schema::new(vec![
        StructField::new("k", DataType::Long, false),
        StructField::new("v", DataType::Long, false),
        StructField::new("s", DataType::String, false),
    ]));
    ctx.register_rows("fact", fact_schema, fact).unwrap();
    let dim: Vec<Row> = (0..997)
        .map(|i| Row::new(vec![Value::Long(i), Value::str(format!("d{i:03}"))]))
        .collect();
    let dim_schema = Arc::new(Schema::new(vec![
        StructField::new("dk", DataType::Long, false),
        StructField::new("w", DataType::String, false),
    ]));
    ctx.register_rows("dim", dim_schema, dim).unwrap();
    ctx
}

/// The shapes clients cycle through: scan-heavy aggregation, a join, a
/// selective filter, and a cacheable repeated scan.
const SHAPES: &[&str] = &[
    "SELECT k, count(*), sum(v) FROM fact GROUP BY k ORDER BY k",
    "SELECT dim.w, sum(fact.v) FROM fact JOIN dim ON fact.k = dim.dk \
     GROUP BY dim.w ORDER BY dim.w LIMIT 100",
    "SELECT v, s FROM fact WHERE k < 40 ORDER BY v LIMIT 200",
    "SELECT count(DISTINCT k) FROM fact",
];

struct Tier {
    clients: usize,
    queries_per_client: usize,
    p50_ms: f64,
    p99_ms: f64,
    wall_ms: f64,
    queued_by_admission: i64,
    rejected: i64,
    cache_evictions: i64,
}

impl Tier {
    fn print(&self) {
        println!(
            "{:>3} clients: p50 {:>8.2} ms  p99 {:>8.2} ms  \
             ({} queries in {:.0} ms; {} queued, {} rejected, {} evictions)",
            self.clients,
            self.p50_ms,
            self.p99_ms,
            self.clients * self.queries_per_client,
            self.wall_ms,
            self.queued_by_admission,
            self.rejected,
            self.cache_evictions,
        );
    }

    fn json(&self) -> String {
        format!(
            "\"clients_{}\": {{\"clients\": {}, \"queries\": {}, \
             \"p50_ms\": {:.3}, \"p99_ms\": {:.3}, \"wall_ms\": {:.1}, \
             \"queued_by_admission\": {}, \"rejected\": {}, \
             \"cache_evictions\": {}}}",
            self.clients,
            self.clients,
            self.clients * self.queries_per_client,
            self.p50_ms,
            self.p99_ms,
            self.wall_ms,
            self.queued_by_admission,
            self.rejected,
            self.cache_evictions,
        )
    }
}

fn quantile(sorted_ms: &[f64], q: f64) -> f64 {
    let idx = ((sorted_ms.len() - 1) as f64 * q).round() as usize;
    sorted_ms[idx]
}

fn run_tier(clients: usize, queries_per_client: usize) -> Tier {
    let root = root_with_tables();
    root.set_conf(|c| {
        c.service_workers = 4;
        c.service_session_in_flight = 2;
        // A shared admission budget two queries fill: higher tiers must
        // queue behind it.
        c.service_admission_budget = 32 << 20;
        c.service_admission_query_bytes = 16 << 20;
        c.service_max_queued = 4 * clients.max(1);
        // A cache budget far below the cached fact table, so repeated
        // CACHE TABLE scans churn the evicting cache.
        c.cache_budget_bytes = 256 << 10;
        c.cache_eviction_policy = "cost".into();
    });
    let mut server = SqlServer::start(root).unwrap();
    let addr = server.addr();

    let started = Instant::now();
    let handles: Vec<_> = (0..clients)
        .map(|i| {
            std::thread::spawn(move || {
                let mut client = Client::connect(addr).unwrap();
                // CACHE TABLE binds per session: every client routes its
                // fact scans through the shared budgeted block cache,
                // whose churn under the small budget drives evictions.
                client.sql("CACHE TABLE fact").expect("cache fact");
                let mut latencies_ms = Vec::with_capacity(queries_per_client);
                for j in 0..queries_per_client {
                    let sql = SHAPES[(i + j) % SHAPES.len()];
                    let t = Instant::now();
                    let r = client.sql(sql).expect("query over the wire");
                    latencies_ms.push(t.elapsed().as_secs_f64() * 1e3);
                    assert!(!r.columns.is_empty());
                }
                client.close().unwrap();
                latencies_ms
            })
        })
        .collect();
    let mut latencies: Vec<f64> = handles
        .into_iter()
        .flat_map(|h| h.join().unwrap())
        .collect();
    let wall_ms = started.elapsed().as_secs_f64() * 1e3;
    latencies.sort_by(|a, b| a.total_cmp(b));

    let mut probe = Client::connect(addr).unwrap();
    let stats = probe.stats().unwrap();
    let stat = |k: &str| stats.get(k).and_then(service::Json::as_i64).unwrap_or(0);
    let tier = Tier {
        clients,
        queries_per_client,
        p50_ms: quantile(&latencies, 0.50),
        p99_ms: quantile(&latencies, 0.99),
        wall_ms,
        queued_by_admission: stat("queued_by_admission"),
        rejected: stat("rejected"),
        cache_evictions: stat("cache_evictions"),
    };
    probe.close().unwrap();
    server.stop();
    tier
}

fn main() {
    let tiers: Vec<usize> = std::env::var("SERVICE_BENCH_CLIENTS")
        .ok()
        .map(|s| {
            s.split(',')
                .map(|t| t.trim().parse().expect("SERVICE_BENCH_CLIENTS"))
                .collect()
        })
        .unwrap_or_else(|| vec![1, 8, 32]);
    let queries_per_client: usize = std::env::var("SERVICE_BENCH_QUERIES")
        .ok()
        .map(|s| s.parse().expect("SERVICE_BENCH_QUERIES"))
        .unwrap_or(8);

    println!(
        "SQL service: {} shapes, {} fact rows, tiers {:?} × {} queries/client\n",
        SHAPES.len(),
        FACT_ROWS,
        tiers,
        queries_per_client
    );
    let results: Vec<Tier> = tiers
        .iter()
        .map(|&n| {
            let t = run_tier(n, queries_per_client);
            t.print();
            t
        })
        .collect();

    let body: Vec<String> = results.iter().map(Tier::json).collect();
    let json = format!("{{\n  {}\n}}\n", body.join(",\n  "));
    std::fs::write("BENCH_service.json", &json).expect("write BENCH_service.json");
    println!("\nwrote BENCH_service.json");
}
