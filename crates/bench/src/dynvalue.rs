//! A dynamically typed record runtime standing in for CPython in the
//! Figure 9 experiment.
//!
//! The paper's "native Spark Python" baseline is slow because every
//! record is a boxed, dynamically typed object: attribute access is a
//! dict lookup, every arithmetic op type-checks and allocates, and tuples
//! are heap structures. [`DynValue`] models those *semantic* costs
//! honestly — shared boxed payloads, string-keyed attribute lookup,
//! per-operation dispatch and allocation — without any artificial delays.

use std::collections::HashMap;
use std::sync::Arc;

/// A dynamically typed value, as a Python runtime would hold it.
#[derive(Debug, Clone, PartialEq)]
pub enum DynValue {
    /// `None`.
    None,
    /// Python int (unbounded in CPython; i64 here).
    Int(i64),
    /// Python float.
    Float(f64),
    /// Python str.
    Str(Arc<str>),
    /// Python tuple.
    Tuple(Arc<Vec<DynValue>>),
    /// Python object/dict with named attributes.
    Dict(Arc<HashMap<String, DynValue>>),
}

impl DynValue {
    /// Build an "object" with named fields.
    pub fn record(fields: Vec<(&str, DynValue)>) -> DynValue {
        DynValue::Dict(Arc::new(
            fields
                .into_iter()
                .map(|(k, v)| (k.to_string(), v))
                .collect(),
        ))
    }

    /// Attribute access `x.a` — a hash lookup plus a refcount bump,
    /// exactly what the interpreter pays.
    pub fn attr(&self, name: &str) -> DynValue {
        match self {
            DynValue::Dict(m) => m.get(name).cloned().unwrap_or(DynValue::None),
            _ => DynValue::None,
        }
    }

    /// Tuple indexing `x[i]`.
    pub fn item(&self, i: usize) -> DynValue {
        match self {
            DynValue::Tuple(t) => t.get(i).cloned().unwrap_or(DynValue::None),
            _ => DynValue::None,
        }
    }

    /// Build a tuple (heap allocation, like CPython).
    pub fn tuple(items: Vec<DynValue>) -> DynValue {
        DynValue::Tuple(Arc::new(items))
    }

    /// Dynamic `+`: type-check both operands, dispatch, allocate result.
    pub fn add(&self, other: &DynValue) -> DynValue {
        match (self, other) {
            (DynValue::Int(a), DynValue::Int(b)) => DynValue::Int(a + b),
            (DynValue::Float(a), DynValue::Float(b)) => DynValue::Float(a + b),
            (DynValue::Int(a), DynValue::Float(b)) => DynValue::Float(*a as f64 + b),
            (DynValue::Float(a), DynValue::Int(b)) => DynValue::Float(a + *b as f64),
            (DynValue::Str(a), DynValue::Str(b)) => DynValue::Str(Arc::from(format!("{a}{b}"))),
            _ => DynValue::None,
        }
    }

    /// Dynamic `/` (true division).
    pub fn div(&self, other: &DynValue) -> DynValue {
        match (self.as_float(), other.as_float()) {
            (Some(a), Some(b)) if b != 0.0 => DynValue::Float(a / b),
            _ => DynValue::None,
        }
    }

    /// Coerce to float, as `float(x)` would.
    pub fn as_float(&self) -> Option<f64> {
        match self {
            DynValue::Int(v) => Some(*v as f64),
            DynValue::Float(v) => Some(*v),
            _ => None,
        }
    }

    /// Coerce to int.
    pub fn as_int(&self) -> Option<i64> {
        match self {
            DynValue::Int(v) => Some(*v),
            DynValue::Float(v) => Some(*v as i64),
            _ => None,
        }
    }
}

/// Hash on the dynamic value (for reduceByKey keys).
impl std::hash::Hash for DynValue {
    fn hash<H: std::hash::Hasher>(&self, state: &mut H) {
        match self {
            DynValue::None => 0u8.hash(state),
            DynValue::Int(v) => v.hash(state),
            DynValue::Float(v) => v.to_bits().hash(state),
            DynValue::Str(s) => s.hash(state),
            DynValue::Tuple(t) => {
                for v in t.iter() {
                    v.hash(state);
                }
            }
            DynValue::Dict(_) => 1u8.hash(state), // unhashable in Python; don't key on dicts
        }
    }
}

impl Eq for DynValue {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn record_attr_and_tuple_item() {
        let rec = DynValue::record(vec![("a", DynValue::Int(3)), ("b", DynValue::Float(1.5))]);
        assert_eq!(rec.attr("a"), DynValue::Int(3));
        assert_eq!(rec.attr("missing"), DynValue::None);
        let t = DynValue::tuple(vec![DynValue::Int(1), DynValue::Int(2)]);
        assert_eq!(t.item(1), DynValue::Int(2));
        assert_eq!(t.item(9), DynValue::None);
    }

    #[test]
    fn dynamic_arithmetic_dispatches_by_type() {
        assert_eq!(DynValue::Int(2).add(&DynValue::Int(3)), DynValue::Int(5));
        assert_eq!(
            DynValue::Int(2).add(&DynValue::Float(0.5)),
            DynValue::Float(2.5)
        );
        assert_eq!(
            DynValue::Str(Arc::from("a")).add(&DynValue::Str(Arc::from("b"))),
            DynValue::Str(Arc::from("ab"))
        );
        assert_eq!(DynValue::Int(1).add(&DynValue::None), DynValue::None);
        assert_eq!(
            DynValue::Int(7).div(&DynValue::Int(2)),
            DynValue::Float(3.5)
        );
    }
}
