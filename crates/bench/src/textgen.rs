//! Synthetic text corpus for the Figure 10 pipeline experiment: messages
//! of ~10 dictionary words, ~90% of which match the relational filter.

use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};

/// A small English dictionary (enough for realistic word-count keys).
pub const DICTIONARY: &[&str] = &[
    "the", "of", "and", "to", "in", "for", "is", "on", "that", "by", "this", "with", "you", "it",
    "not", "or", "be", "are", "from", "at", "as", "your", "all", "have", "new", "more", "an",
    "was", "we", "will", "can", "about", "data", "query", "engine", "cluster", "node", "shuffle",
    "memory", "columnar", "stream", "batch", "table", "index", "join", "filter",
];

/// Generate `n` messages; a fraction `keep` of them contain the marker
/// word "data" (the filter key used by the experiment).
pub fn messages(n: usize, keep: f64, seed: u64) -> Vec<String> {
    let mut rng = StdRng::seed_from_u64(seed);
    (0..n)
        .map(|_| {
            let mut words: Vec<&str> = (0..10)
                .map(|_| DICTIONARY[rng.random_range(0..DICTIONARY.len())])
                .collect();
            if rng.random_range(0.0..1.0) < keep {
                let pos = rng.random_range(0..words.len());
                words[pos] = "data";
            } else {
                words.retain(|w| *w != "data");
            }
            words.join(" ")
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn keep_fraction_is_respected() {
        let msgs = messages(10_000, 0.9, 7);
        let kept = msgs.iter().filter(|m| m.contains("data")).count();
        let frac = kept as f64 / msgs.len() as f64;
        assert!((0.85..0.95).contains(&frac), "{frac}");
    }

    #[test]
    fn deterministic_by_seed() {
        assert_eq!(messages(100, 0.9, 1), messages(100, 0.9, 1));
        assert_ne!(messages(100, 0.9, 1), messages(100, 0.9, 2));
    }
}
