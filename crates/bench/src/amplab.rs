//! The AMPLab big data benchmark workload (§6.1): Pavlo et al.'s web
//! analytics schema, its data generator, and the three Spark SQL
//! configurations Figure 8 compares (plus the hand-written "Impala-like"
//! native implementations).

use catalyst::value::{parse_date, Value};
use catalyst::Row;
use catalyst::{DataType, Schema, StructField};
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};
use spark_sql::{SQLContext, SqlConf};
use std::collections::HashMap;
use std::sync::Arc;

/// Generated benchmark dataset (typed columns retained so the native
/// baseline can run over raw vectors, like a C++ engine would).
pub struct AmplabData {
    /// rankings: (pageURL, pageRank, avgDuration).
    pub rankings: Vec<(String, i32, i32)>,
    /// uservisits: (sourceIP, destURL, visitDate-days, adRevenue).
    pub uservisits: Vec<(String, String, i32, f64)>,
    /// documents for query 4: free text with embedded URLs.
    pub documents: Vec<String>,
}

/// Scale configuration.
#[derive(Debug, Clone, Copy)]
pub struct AmplabScale {
    /// Number of ranked pages.
    pub pages: usize,
    /// Number of user visits.
    pub visits: usize,
    /// Number of documents (query 4).
    pub documents: usize,
}

impl Default for AmplabScale {
    fn default() -> Self {
        AmplabScale {
            pages: 100_000,
            visits: 300_000,
            documents: 20_000,
        }
    }
}

/// Deterministically generate the dataset.
pub fn generate(scale: AmplabScale) -> AmplabData {
    let mut rng = StdRng::seed_from_u64(0xA3B1);
    let rankings: Vec<(String, i32, i32)> = (0..scale.pages)
        .map(|i| {
            // Zipf-ish ranks: many small, few large.
            let r = rng.random_range(0.0f64..1.0);
            let rank = (10_000.0 * r * r * r) as i32;
            (format!("url{i}"), rank, rng.random_range(1..100))
        })
        .collect();
    let epoch_1980 = parse_date("1980-01-01").unwrap();
    let epoch_2010 = parse_date("2010-01-01").unwrap();
    let uservisits: Vec<(String, String, i32, f64)> = (0..scale.visits)
        .map(|_| {
            (
                format!(
                    "{}.{}.{}.{}",
                    rng.random_range(1..240),
                    rng.random_range(0..256),
                    rng.random_range(0..256),
                    rng.random_range(0..256)
                ),
                format!("url{}", rng.random_range(0..scale.pages)),
                rng.random_range(epoch_1980..epoch_2010),
                rng.random_range(0.0..1000.0),
            )
        })
        .collect();
    let words = [
        "the", "quick", "brown", "fox", "data", "spark", "query", "web",
    ];
    let documents: Vec<String> = (0..scale.documents)
        .map(|i| {
            let mut doc = String::new();
            for _ in 0..rng.random_range(5..20) {
                doc.push_str(words[rng.random_range(0..words.len())]);
                doc.push(' ');
            }
            doc.push_str(&format!("http://site{}.com/page{} ", i % 97, i % 13));
            doc
        })
        .collect();
    AmplabData {
        rankings,
        uservisits,
        documents,
    }
}

/// Register the dataset as tables in a context configured per `conf`.
pub fn make_context(data: &AmplabData, conf: SqlConf, threads: usize) -> SQLContext {
    let ctx = SQLContext::new_local(threads);
    ctx.set_conf(|c| *c = conf);

    let rankings_schema = Arc::new(Schema::new(vec![
        StructField::new("pageURL", DataType::String, false),
        StructField::new("pageRank", DataType::Int, false),
        StructField::new("avgDuration", DataType::Int, false),
    ]));
    let rankings_rows: Vec<Row> = data
        .rankings
        .iter()
        .map(|(u, r, d)| Row::new(vec![Value::str(u), Value::Int(*r), Value::Int(*d)]))
        .collect();
    ctx.register_rows("rankings", rankings_schema, rankings_rows)
        .unwrap();

    let visits_schema = Arc::new(Schema::new(vec![
        StructField::new("sourceIP", DataType::String, false),
        StructField::new("destURL", DataType::String, false),
        StructField::new("visitDate", DataType::Date, false),
        StructField::new("adRevenue", DataType::Double, false),
    ]));
    let visits_rows: Vec<Row> = data
        .uservisits
        .iter()
        .map(|(ip, url, d, rev)| {
            Row::new(vec![
                Value::str(ip),
                Value::str(url),
                Value::Date(*d),
                Value::Double(*rev),
            ])
        })
        .collect();
    ctx.register_rows("uservisits", visits_schema, visits_rows)
        .unwrap();

    let docs_schema = Arc::new(Schema::new(vec![StructField::new(
        "text",
        DataType::String,
        false,
    )]));
    let docs_rows: Vec<Row> = data
        .documents
        .iter()
        .map(|d| Row::new(vec![Value::str(d)]))
        .collect();
    ctx.register_rows("documents", docs_schema, docs_rows)
        .unwrap();
    ctx
}

/// The benchmark queries with their selectivity variants.
pub fn query(name: &str) -> String {
    match name {
        // Query 1: scan + filter, a (most selective) → c (least).
        "1a" => "SELECT pageURL, pageRank FROM rankings WHERE pageRank > 9000".into(),
        "1b" => "SELECT pageURL, pageRank FROM rankings WHERE pageRank > 1000".into(),
        "1c" => "SELECT pageURL, pageRank FROM rankings WHERE pageRank > 100".into(),
        // Query 2: aggregation on a computed key; prefix length varies.
        "2a" | "2b" | "2c" => {
            let x = match name {
                "2a" => 6,
                "2b" => 9,
                _ => 12,
            };
            format!(
                "SELECT substr(sourceIP, 1, {x}) AS prefix, sum(adRevenue) AS rev \
                 FROM uservisits GROUP BY substr(sourceIP, 1, {x})"
            )
        }
        // Query 3: join + aggregation + top-1; date range varies.
        "3a" | "3b" | "3c" => {
            let hi = match name {
                "3a" => "1980-04-01",
                "3b" => "1983-01-01",
                _ => "2010-01-01",
            };
            format!(
                "SELECT sourceIP, totalRevenue, avgPageRank FROM \
                   (SELECT sourceIP, avg(pageRank) AS avgPageRank, \
                           sum(adRevenue) AS totalRevenue \
                    FROM rankings, uservisits \
                    WHERE pageURL = destURL \
                      AND visitDate BETWEEN DATE '1980-01-01' AND DATE '{hi}' \
                    GROUP BY sourceIP) t \
                 ORDER BY totalRevenue DESC LIMIT 1"
            )
        }
        other => panic!("unknown query {other}"),
    }
}

/// Run query 4 (the UDF/MapReduce-style job): extract URLs from documents
/// with a UDF, count occurrences — mixing SQL with a procedural word
/// count, as the original benchmark's external-script query does.
pub fn run_query4(ctx: &SQLContext) -> u64 {
    ctx.register_udf("extract_url", DataType::String, |args| {
        let text = args[0].as_str().unwrap_or("");
        Ok(text
            .split_whitespace()
            .find(|w| w.starts_with("http://"))
            .map(Value::str)
            .unwrap_or(Value::Null))
    });
    let df = ctx
        .sql(
            "SELECT extract_url(text) AS url, count(*) AS cnt FROM documents \
             WHERE extract_url(text) IS NOT NULL GROUP BY extract_url(text)",
        )
        .unwrap();
    df.count().unwrap()
}

/// Hand-written "Impala-like" native implementations over raw typed
/// columns, multithreaded with scoped threads — the compiled-engine
/// ceiling Figure 8 compares against.
pub mod native {
    use super::*;

    fn chunked<T: Sync, R: Send>(
        data: &[T],
        threads: usize,
        f: impl Fn(&[T]) -> R + Sync,
    ) -> Vec<R> {
        let chunk = data.len().div_ceil(threads.max(1));
        std::thread::scope(|s| {
            let handles: Vec<_> = data
                .chunks(chunk.max(1))
                .map(|c| s.spawn(|| f(c)))
                .collect();
            handles.into_iter().map(|h| h.join().unwrap()).collect()
        })
    }

    /// Query 1: count + materialize matching (url, rank) pairs.
    pub fn query1(data: &AmplabData, threshold: i32, threads: usize) -> usize {
        chunked(&data.rankings, threads, |chunk| {
            chunk
                .iter()
                .filter(|(_, rank, _)| *rank > threshold)
                .map(|(url, rank, _)| (url.clone(), *rank))
                .collect::<Vec<_>>()
        })
        .into_iter()
        .map(|v| v.len())
        .sum()
    }

    /// Query 2: revenue by IP prefix.
    pub fn query2(data: &AmplabData, prefix: usize, threads: usize) -> usize {
        let partials = chunked(&data.uservisits, threads, |chunk| {
            let mut m: HashMap<&str, f64> = HashMap::new();
            for (ip, _, _, rev) in chunk {
                let p = &ip[..prefix.min(ip.len())];
                *m.entry(p).or_insert(0.0) += rev;
            }
            m.into_iter()
                .map(|(k, v)| (k.to_string(), v))
                .collect::<Vec<_>>()
        });
        let mut total: HashMap<String, f64> = HashMap::new();
        for p in partials {
            for (k, v) in p {
                *total.entry(k).or_insert(0.0) += v;
            }
        }
        total.len()
    }

    /// Query 3: hash join + aggregate + top-1.
    pub fn query3(data: &AmplabData, hi_date: &str, threads: usize) -> (String, f64) {
        let hi = parse_date(hi_date).unwrap();
        let lo = parse_date("1980-01-01").unwrap();
        // Build phase (like the hash join build side).
        let ranks: HashMap<&str, i32> = data
            .rankings
            .iter()
            .map(|(u, r, _)| (u.as_str(), *r))
            .collect();
        let partials = chunked(&data.uservisits, threads, |chunk| {
            let mut m: HashMap<&str, (f64, i64, i64)> = HashMap::new();
            for (ip, url, date, rev) in chunk {
                if *date < lo || *date > hi {
                    continue;
                }
                if let Some(rank) = ranks.get(url.as_str()) {
                    let e = m.entry(ip.as_str()).or_insert((0.0, 0, 0));
                    e.0 += rev;
                    e.1 += *rank as i64;
                    e.2 += 1;
                }
            }
            m.into_iter()
                .map(|(k, v)| (k.to_string(), v))
                .collect::<Vec<_>>()
        });
        let mut total: HashMap<String, (f64, i64, i64)> = HashMap::new();
        for p in partials {
            for (k, (rev, ranks, n)) in p {
                let e = total.entry(k).or_insert((0.0, 0, 0));
                e.0 += rev;
                e.1 += ranks;
                e.2 += n;
            }
        }
        total
            .into_iter()
            .max_by(|a, b| a.1 .0.total_cmp(&b.1 .0))
            .map(|(ip, (rev, _, _))| (ip, rev))
            .unwrap_or_default()
    }

    /// Query 4: URL extraction + counting.
    pub fn query4(data: &AmplabData, threads: usize) -> usize {
        let partials = chunked(&data.documents, threads, |chunk| {
            let mut m: HashMap<&str, i64> = HashMap::new();
            for doc in chunk {
                if let Some(url) = doc.split_whitespace().find(|w| w.starts_with("http://")) {
                    *m.entry(url).or_insert(0) += 1;
                }
            }
            m.into_iter()
                .map(|(k, v)| (k.to_string(), v))
                .collect::<Vec<_>>()
        });
        let mut total: HashMap<String, i64> = HashMap::new();
        for p in partials {
            for (k, v) in p {
                *total.entry(k).or_insert(0) += v;
            }
        }
        total.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> AmplabData {
        generate(AmplabScale {
            pages: 2000,
            visits: 5000,
            documents: 500,
        })
    }

    #[test]
    fn sql_and_native_agree_on_query1() {
        let data = tiny();
        let ctx = make_context(&data, SqlConf::default(), 2);
        for (q, threshold) in [("1a", 9000), ("1b", 1000), ("1c", 100)] {
            let sql_count = ctx.sql(&query(q)).unwrap().count().unwrap() as usize;
            let native_count = native::query1(&data, threshold, 2);
            assert_eq!(sql_count, native_count, "query {q}");
        }
    }

    #[test]
    fn sql_and_native_agree_on_query2() {
        let data = tiny();
        let ctx = make_context(&data, SqlConf::default(), 2);
        let sql_groups = ctx.sql(&query("2a")).unwrap().count().unwrap() as usize;
        assert_eq!(sql_groups, native::query2(&data, 6, 2));
    }

    #[test]
    fn sql_and_native_agree_on_query3() {
        let data = tiny();
        let ctx = make_context(&data, SqlConf::default(), 2);
        let rows = ctx.sql(&query("3c")).unwrap().collect().unwrap();
        let (ip, rev) = native::query3(&data, "2010-01-01", 2);
        assert_eq!(rows[0].get_str(0), ip);
        assert!((rows[0].get_double(1) - rev).abs() < 1e-6);
    }

    #[test]
    fn sql_and_native_agree_on_query4() {
        let data = tiny();
        let ctx = make_context(&data, SqlConf::default(), 2);
        assert_eq!(run_query4(&ctx) as usize, native::query4(&data, 2));
    }

    #[test]
    fn shark_config_matches_default_results() {
        let data = tiny();
        let fast = make_context(&data, SqlConf::default(), 2);
        let slow = make_context(&data, SqlConf::shark_like(), 2);
        for q in ["1b", "2a", "3c"] {
            let a = fast.sql(&query(q)).unwrap().count().unwrap();
            let b = slow.sql(&query(q)).unwrap().count().unwrap();
            assert_eq!(a, b, "query {q}");
        }
    }
}
