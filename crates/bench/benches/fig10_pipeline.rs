//! Criterion version of Figure 10 (reduced scale): separate jobs with a
//! file handoff vs the integrated DataFrame pipeline.

use bench::textgen;
use catalyst::value::Value;
use catalyst::Row;
use catalyst::{DataType, Schema, StructField};
use criterion::{criterion_group, criterion_main, Criterion};
use engine::hdfs::FileStore;
use engine::PairRdd;
use spark_sql::{DataFrame, SQLContext};
use std::sync::Arc;

const MESSAGES: usize = 100_000;
const PARTITIONS: usize = 8;

fn corpus(ctx: &SQLContext) -> DataFrame {
    let msgs = Arc::new(textgen::messages(MESSAGES, 0.9, 0xF16));
    let schema = Arc::new(Schema::new(vec![StructField::new(
        "text",
        DataType::String,
        false,
    )]));
    let sc = ctx.spark_context().clone();
    let per = MESSAGES.div_ceil(PARTITIONS);
    let rdd = sc.generate(PARTITIONS, move |p| {
        let msgs = msgs.clone();
        let lo = p * per;
        let hi = ((p + 1) * per).min(msgs.len());
        Box::new((lo..hi).map(move |i| Row::new(vec![Value::str(&msgs[i])])))
    });
    ctx.dataframe_from_rdd("messages", schema, rdd).unwrap()
}

fn word_count(lines: &engine::RddRef<String>) -> u64 {
    lines
        .flat_map(|line: String| {
            line.split_whitespace()
                .map(|w| (w.to_string(), 1u64))
                .collect::<Vec<_>>()
        })
        .reduce_by_key(|a, b| a + b, PARTITIONS)
        .count()
}

fn bench(c: &mut Criterion) {
    let ctx = SQLContext::new_local(4);
    ctx.set_conf(|cfg| cfg.shuffle_partitions = PARTITIONS);
    corpus(&ctx).register_temp_table("messages");
    let sc = ctx.spark_context().clone();

    let mut group = c.benchmark_group("fig10_pipeline");
    group.sample_size(10);

    group.bench_function("separate_jobs_with_file_handoff", |b| {
        b.iter(|| {
            let fs = FileStore::temp("fig10bench").unwrap();
            let filtered = ctx
                .sql("SELECT text FROM messages WHERE text LIKE '%data%'")
                .unwrap()
                .to_rdd()
                .unwrap()
                .map(|row: Row| row.get_str(0).to_string());
            fs.save_text(&sc, &filtered, "filtered").unwrap();
            let lines = fs.read_text(&sc, "filtered").unwrap();
            word_count(&lines)
        })
    });

    group.bench_function("integrated_dataframe_pipeline", |b| {
        b.iter(|| {
            let filtered = ctx
                .sql("SELECT text FROM messages WHERE text LIKE '%data%'")
                .unwrap()
                .to_rdd()
                .unwrap()
                .map(|row: Row| row.get_str(0).to_string());
            word_count(&filtered)
        })
    });
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
