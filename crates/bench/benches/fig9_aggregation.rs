//! Criterion version of Figure 9 (reduced scale): dynamic RDD vs typed
//! RDD vs DataFrame aggregation.

use bench::dynvalue::DynValue;
use catalyst::value::Value;
use catalyst::Row;
use catalyst::{DataType, Schema, StructField};
use criterion::{criterion_group, criterion_main, Criterion};
use engine::{PairRdd, SparkContext};
use spark_sql::SQLContext;
use std::sync::Arc;

const PAIRS: usize = 400_000;
const DISTINCT: i64 = 10_000;
const PARTITIONS: usize = 8;

fn gen_pair(i: usize) -> (i64, f64) {
    let mut z = (i as u64).wrapping_add(0x9E3779B97F4A7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
    ((z % DISTINCT as u64) as i64, (z >> 16) as f64 / 1e4)
}

fn bench(c: &mut Criterion) {
    let sc = SparkContext::new(4);
    let ctx = SQLContext::new_local(4);
    ctx.set_conf(|cfg| cfg.shuffle_partitions = PARTITIONS);
    let per = PAIRS / PARTITIONS;

    let mut group = c.benchmark_group("fig9_aggregation");
    group.sample_size(10);

    group.bench_function("rdd_dynamic_python", |b| {
        b.iter(|| {
            let data = sc.generate(PARTITIONS, move |p| {
                Box::new((p * per..(p + 1) * per).map(|i| {
                    let (a, bb) = gen_pair(i);
                    DynValue::record(vec![("a", DynValue::Int(a)), ("b", DynValue::Float(bb))])
                }))
            });
            data.map(|x| {
                (
                    x.attr("a"),
                    DynValue::tuple(vec![x.attr("b"), DynValue::Int(1)]),
                )
            })
            .reduce_by_key(
                |x, y| DynValue::tuple(vec![x.item(0).add(&y.item(0)), x.item(1).add(&y.item(1))]),
                PARTITIONS,
            )
            .count()
        })
    });

    group.bench_function("rdd_typed", |b| {
        b.iter(|| {
            let data = sc.generate(PARTITIONS, move |p| {
                Box::new((p * per..(p + 1) * per).map(gen_pair))
            });
            data.map(|(a, bb)| (a, (bb, 1i64)))
                .reduce_by_key(|x, y| (x.0 + y.0, x.1 + y.1), PARTITIONS)
                .count()
        })
    });

    group.bench_function("dataframe", |b| {
        let schema = Arc::new(Schema::new(vec![
            StructField::new("a", DataType::Long, false),
            StructField::new("b", DataType::Double, false),
        ]));
        b.iter(|| {
            let sc2 = ctx.spark_context().clone();
            let rdd = sc2.generate(PARTITIONS, move |p| {
                Box::new((p * per..(p + 1) * per).map(|i| {
                    let (a, bb) = gen_pair(i);
                    Row::new(vec![Value::Long(a), Value::Double(bb)])
                }))
            });
            let df = ctx
                .dataframe_from_rdd("pairs", schema.clone(), rdd)
                .unwrap();
            df.group_by_cols(&["a"]).avg("b").unwrap().count().unwrap()
        })
    });
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
