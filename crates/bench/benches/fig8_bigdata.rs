//! Criterion version of Figure 8 (reduced scale): the AMPLab queries
//! under the Shark-like and full Spark SQL configurations plus the
//! hand-written native baseline.

use bench::amplab::{self, native, AmplabScale};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

fn bench(c: &mut Criterion) {
    let scale = AmplabScale {
        pages: 20_000,
        visits: 50_000,
        documents: 5_000,
    };
    let data = amplab::generate(scale);
    let shark = amplab::make_context(&data, spark_sql::SqlConf::shark_like(), 4);
    let sparksql = amplab::make_context(&data, spark_sql::SqlConf::default(), 4);

    let mut group = c.benchmark_group("fig8_amplab");
    group.sample_size(10);
    for q in ["1b", "2a", "3c"] {
        let text = amplab::query(q);
        group.bench_with_input(BenchmarkId::new("shark", q), &text, |b, text| {
            b.iter(|| shark.sql(text).unwrap().count().unwrap())
        });
        group.bench_with_input(BenchmarkId::new("sparksql", q), &text, |b, text| {
            b.iter(|| sparksql.sql(text).unwrap().count().unwrap())
        });
        group.bench_with_input(BenchmarkId::new("native", q), &q, |b, q| {
            b.iter(|| match *q {
                "1b" => native::query1(&data, 1000, 4),
                "2a" => native::query2(&data, 6, 4),
                _ => native::query3(&data, "2010-01-01", 4).0.len(),
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
