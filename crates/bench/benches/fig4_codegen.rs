//! Criterion version of Figure 4: per-evaluation cost of x+x+x under the
//! interpreter, the compiled evaluator, and hand-written code.

use catalyst::codegen;
use catalyst::expr::Expr;
use catalyst::interpreter;
use catalyst::row::Row;
use catalyst::types::DataType;
use catalyst::value::Value;
use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

fn x() -> Expr {
    Expr::BoundRef {
        index: 0,
        dtype: DataType::Long,
        nullable: false,
        name: "x".into(),
    }
}

fn bench(c: &mut Criterion) {
    let expr = x().add(x()).add(x());
    let row = Row::new(vec![Value::Long(37)]);
    let mut group = c.benchmark_group("fig4_x_plus_x_plus_x");

    group.bench_function("interpreted", |b| {
        b.iter(|| interpreter::eval(black_box(&expr), black_box(&row)).unwrap())
    });

    let compiled = codegen::compile(&expr);
    let codegen::Compiled::Long(f) = &compiled else {
        panic!()
    };
    group.bench_function("generated", |b| b.iter(|| f(black_box(&row))));

    group.bench_function("hand_written", |b| {
        b.iter(|| {
            let r = black_box(&row);
            let x = match black_box(r.get(0)) {
                Value::Long(v) => *v,
                _ => 0,
            };
            x + x + x
        })
    });
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
