//! Blocking wire-protocol client.
//!
//! One [`Client`] is one session: `connect` performs the hello
//! handshake and the server binds the connection to a fresh session
//! (own temp views and conf overlay over the shared catalog/cache).

use crate::json::Json;
use crate::wire::{read_frame, write_frame};
use std::io;
use std::net::{TcpStream, ToSocketAddrs};

/// A fetched query result plus its execution counters.
#[derive(Debug, Clone)]
pub struct FetchResult {
    /// Output column names.
    pub columns: Vec<String>,
    /// Rows, each value in its wire JSON form.
    pub rows: Vec<Vec<Json>>,
    /// True when admission control queued the query before it started.
    pub queued: bool,
    /// Execution wall time (excludes queueing).
    pub wall_ns: u64,
    /// Spill files the query created / deleted.
    pub spill_files_created: u64,
    pub spill_files_deleted: u64,
    /// Shared-cache evictions the run triggered.
    pub evictions: u64,
}

/// A failed request: either transport trouble or a server-side error
/// message (which, for queries, still carries the counters).
#[derive(Debug)]
pub enum ClientError {
    Io(io::Error),
    /// Server replied `ok:false`; the full reply is kept for counters.
    Server {
        message: String,
        reply: Json,
    },
}

impl std::fmt::Display for ClientError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ClientError::Io(e) => write!(f, "transport error: {e}"),
            ClientError::Server { message, .. } => write!(f, "server error: {message}"),
        }
    }
}

impl From<io::Error> for ClientError {
    fn from(e: io::Error) -> ClientError {
        ClientError::Io(e)
    }
}

impl ClientError {
    /// The raw server reply when this is a server-side error.
    pub fn reply(&self) -> Option<&Json> {
        match self {
            ClientError::Server { reply, .. } => Some(reply),
            ClientError::Io(_) => None,
        }
    }
}

/// One session's connection to the SQL service.
pub struct Client {
    stream: TcpStream,
    session: String,
}

impl Client {
    /// Connect and perform the hello handshake.
    pub fn connect(addr: impl ToSocketAddrs) -> Result<Client, ClientError> {
        let stream = TcpStream::connect(addr)?;
        stream.set_nodelay(true)?;
        let mut client = Client {
            stream,
            session: String::new(),
        };
        let reply = client.call(Json::obj([("op", Json::Str("hello".into()))]))?;
        client.session = reply
            .get("session")
            .and_then(Json::as_str)
            .unwrap_or_default()
            .to_string();
        Ok(client)
    }

    /// The server-assigned session id.
    pub fn session(&self) -> &str {
        &self.session
    }

    fn call(&mut self, req: Json) -> Result<Json, ClientError> {
        write_frame(&mut self.stream, &req)?;
        let reply = read_frame(&mut self.stream)?.ok_or_else(|| {
            ClientError::Io(io::Error::new(
                io::ErrorKind::UnexpectedEof,
                "server closed the connection",
            ))
        })?;
        if reply.get("ok").and_then(Json::as_bool) == Some(true) {
            Ok(reply)
        } else {
            let message = reply
                .get("error")
                .and_then(Json::as_str)
                .unwrap_or("unknown server error")
                .to_string();
            Err(ClientError::Server { message, reply })
        }
    }

    /// `SET key=value` in this session only.
    pub fn set(&mut self, key: &str, value: &str) -> Result<(), ClientError> {
        self.call(Json::obj([
            ("op", Json::Str("set".into())),
            ("key", Json::Str(key.into())),
            ("value", Json::Str(value.into())),
        ]))
        .map(|_| ())
    }

    /// Read one conf key as this session sees it.
    pub fn conf(&mut self, key: &str) -> Result<String, ClientError> {
        let reply = self.call(Json::obj([
            ("op", Json::Str("conf".into())),
            ("key", Json::Str(key.into())),
        ]))?;
        Ok(reply
            .get("value")
            .and_then(Json::as_str)
            .unwrap_or_default()
            .to_string())
    }

    /// Submit a query; returns the query handle for `fetch`/`cancel`.
    pub fn query(&mut self, sql: &str) -> Result<u64, ClientError> {
        self.submit(sql, None)
    }

    /// Submit with an explicit deadline (milliseconds from submission).
    pub fn query_with_timeout(&mut self, sql: &str, timeout_ms: u64) -> Result<u64, ClientError> {
        self.submit(sql, Some(timeout_ms))
    }

    fn submit(&mut self, sql: &str, timeout_ms: Option<u64>) -> Result<u64, ClientError> {
        let mut req = vec![
            ("op", Json::Str("query".into())),
            ("sql", Json::Str(sql.into())),
        ];
        if let Some(t) = timeout_ms {
            req.push(("timeout_ms", Json::Int(t as i64)));
        }
        let reply = self.call(Json::obj(req))?;
        reply
            .get("query")
            .and_then(Json::as_i64)
            .map(|id| id as u64)
            .ok_or_else(|| ClientError::Server {
                message: "query reply missing handle".to_string(),
                reply,
            })
    }

    /// Block until the query finishes and return its result.
    pub fn fetch(&mut self, query: u64) -> Result<FetchResult, ClientError> {
        let reply = self.call(Json::obj([
            ("op", Json::Str("fetch".into())),
            ("query", Json::Int(query as i64)),
        ]))?;
        Ok(decode_fetch(&reply))
    }

    /// Submit and fetch in one call.
    pub fn sql(&mut self, text: &str) -> Result<FetchResult, ClientError> {
        let id = self.query(text)?;
        self.fetch(id)
    }

    /// Fire the query's cancel token. Returns whether the handle was
    /// still live.
    pub fn cancel(&mut self, query: u64) -> Result<bool, ClientError> {
        let reply = self.call(Json::obj([
            ("op", Json::Str("cancel".into())),
            ("query", Json::Int(query as i64)),
        ]))?;
        Ok(reply.get("cancelled").and_then(Json::as_bool) == Some(true))
    }

    /// Service-wide counters (admissions, rejections, evictions, …).
    pub fn stats(&mut self) -> Result<Json, ClientError> {
        self.call(Json::obj([("op", Json::Str("stats".into()))]))
    }

    /// Polite shutdown of this session's connection.
    pub fn close(mut self) -> Result<(), ClientError> {
        self.call(Json::obj([("op", Json::Str("close".into()))]))
            .map(|_| ())
    }
}

/// Pull a [`FetchResult`] out of a fetch reply (also used on `ok:false`
/// replies, where only the counters are populated).
pub fn decode_fetch(reply: &Json) -> FetchResult {
    let int = |k: &str| reply.get(k).and_then(Json::as_i64).unwrap_or(0) as u64;
    FetchResult {
        columns: reply
            .get("columns")
            .and_then(Json::as_arr)
            .map(|a| {
                a.iter()
                    .filter_map(|v| v.as_str().map(str::to_string))
                    .collect()
            })
            .unwrap_or_default(),
        rows: reply
            .get("rows")
            .and_then(Json::as_arr)
            .map(|a| {
                a.iter()
                    .filter_map(|r| r.as_arr().map(<[Json]>::to_vec))
                    .collect()
            })
            .unwrap_or_default(),
        queued: reply.get("queued").and_then(Json::as_bool).unwrap_or(false),
        wall_ns: int("wall_ns"),
        spill_files_created: int("spill_files_created"),
        spill_files_deleted: int("spill_files_deleted"),
        evictions: int("evictions"),
    }
}
