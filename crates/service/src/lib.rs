//! Multi-tenant SQL service over the `spark-sql` engine.
//!
//! The paper (§3.1) frames Spark SQL as a library inside a single
//! application; this crate adds the deployment mode every production
//! SQL engine grows: a long-lived server that many clients share. It
//! provides:
//!
//! - a length-prefixed JSON **wire protocol** ([`wire`], [`json`]) with
//!   ops `hello`, `set`, `conf`, `query`, `fetch`, `cancel`, `stats`,
//!   and `close`;
//! - **per-session isolation** — each connection gets a fresh session
//!   over the shared root context: its own temp views (an overlay
//!   catalog) and its own conf, while `CACHE TABLE` data and permanent
//!   tables stay shared;
//! - **admission control** ([`sched`]) — a query must be granted a
//!   reservation from a bounded memory pool before it starts; denied
//!   queries wait (never start) and overfull queues reject;
//! - **fair scheduling** — round-robin dispatch across sessions' run
//!   queues with per-session in-flight caps over a fixed worker pool;
//! - **cooperative cancellation** — explicit `cancel` or a per-query
//!   deadline fires an `engine::CancelToken` that partition iterators
//!   and the DAG scheduler check, unwinding with memory reservations
//!   and spill files released.
//!
//! Everything is configured through `spark.sql.service.*` confs on the
//! root context passed to [`SqlServer::start`].

pub mod client;
pub mod json;
pub mod sched;
pub mod server;
pub mod wire;

pub use client::{Client, ClientError, FetchResult};
pub use json::Json;
pub use sched::{Outcome, QueryTask, SchedCounters, Scheduler, ServiceConf};
pub use server::SqlServer;
