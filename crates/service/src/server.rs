//! The SQL service: a TCP server multiplexing many client sessions over
//! one shared `SQLContext` (shared catalog, shared columnar cache),
//! with per-session isolation for temp views and conf overrides.
//!
//! Threading model (the build vendors no async runtime, so the server
//! is thread-per-connection over blocking I/O — the protocol itself is
//! runtime-agnostic):
//!
//! - an accept thread hands each connection to its own thread;
//! - connection threads only parse frames, submit queries, and block in
//!   `fetch` — they never execute plans;
//! - a fixed worker pool (`spark.sql.service.workers`) pulls queries
//!   from the [`Scheduler`], so admission and fairness hold regardless
//!   of how many connections exist.

use crate::json::Json;
use crate::sched::{Outcome, QueryTask, Scheduler, ServiceConf};
use crate::wire::{read_frame, write_frame};
use catalyst::value::Value;
use spark_sql::SQLContext;
use std::collections::HashMap;
use std::io;
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// Shared server state: the root context, per-session contexts, and the
/// scheduler.
struct Shared {
    root: SQLContext,
    sched: Scheduler,
    sessions: Mutex<HashMap<String, SQLContext>>,
    next_session: AtomicU64,
    next_query: AtomicU64,
    shutdown: AtomicBool,
    /// Live connection streams, so shutdown can unblock readers.
    conns: Mutex<Vec<TcpStream>>,
}

impl Shared {
    fn session(&self, id: &str) -> Option<SQLContext> {
        self.sessions.lock().unwrap().get(id).cloned()
    }
}

/// A running SQL service. Dropping the handle (or calling
/// [`SqlServer::stop`]) shuts the service down and joins every thread.
pub struct SqlServer {
    shared: Arc<Shared>,
    addr: SocketAddr,
    accept: Option<JoinHandle<()>>,
    workers: Vec<JoinHandle<()>>,
}

impl SqlServer {
    /// Bind to `127.0.0.1:0` (kernel-assigned port) and start serving
    /// `root`'s catalog and cache. Service knobs are snapshotted from
    /// `root`'s `spark.sql.service.*` confs.
    pub fn start(root: SQLContext) -> io::Result<SqlServer> {
        let listener = TcpListener::bind(("127.0.0.1", 0))?;
        let addr = listener.local_addr()?;
        let conf = ServiceConf::from_sql_conf(&root.conf());
        let shared = Arc::new(Shared {
            root,
            sched: Scheduler::new(conf.clone()),
            sessions: Mutex::new(HashMap::new()),
            next_session: AtomicU64::new(1),
            next_query: AtomicU64::new(1),
            shutdown: AtomicBool::new(false),
            conns: Mutex::new(Vec::new()),
        });
        let workers = (0..conf.workers)
            .map(|_| {
                let shared = shared.clone();
                std::thread::spawn(move || worker_loop(&shared))
            })
            .collect();
        let accept_shared = shared.clone();
        let accept = std::thread::spawn(move || accept_loop(listener, &accept_shared));
        Ok(SqlServer {
            shared,
            addr,
            accept: Some(accept),
            workers,
        })
    }

    /// The bound address clients connect to.
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Scheduler counters plus cache stats, as one JSON object (same
    /// shape the `stats` wire op returns).
    pub fn stats(&self) -> Json {
        stats_json(&self.shared)
    }

    /// Shut down: stop admitting, wake workers, unblock every
    /// connection, join all threads. Idempotent.
    pub fn stop(&mut self) {
        if self.shared.shutdown.swap(true, Ordering::SeqCst) {
            return;
        }
        self.shared.sched.shutdown();
        // Unblock the accept loop with a throwaway connection, and
        // connection readers by closing their sockets.
        let _ = TcpStream::connect(self.addr);
        for stream in self.shared.conns.lock().unwrap().iter() {
            let _ = stream.shutdown(std::net::Shutdown::Both);
        }
        if let Some(h) = self.accept.take() {
            let _ = h.join();
        }
        for h in self.workers.drain(..) {
            let _ = h.join();
        }
    }
}

impl Drop for SqlServer {
    fn drop(&mut self) {
        self.stop();
    }
}

fn accept_loop(listener: TcpListener, shared: &Arc<Shared>) {
    for stream in listener.incoming() {
        if shared.shutdown.load(Ordering::SeqCst) {
            return;
        }
        let Ok(stream) = stream else { continue };
        let _ = stream.set_nodelay(true);
        if let Ok(clone) = stream.try_clone() {
            shared.conns.lock().unwrap().push(clone);
        }
        let shared = shared.clone();
        std::thread::spawn(move || {
            let _ = serve_connection(stream, &shared);
        });
    }
}

/// One connection: a hello handshake binds it to a fresh session, then
/// requests are served in order until `close` or EOF.
fn serve_connection(mut stream: TcpStream, shared: &Arc<Shared>) -> io::Result<()> {
    let mut session_id: Option<String> = None;
    while let Some(req) = read_frame(&mut stream)? {
        let op = req.get("op").and_then(Json::as_str).unwrap_or("");
        let reply = match (op, &session_id) {
            ("hello", _) => {
                let id = format!("s{}", shared.next_session.fetch_add(1, Ordering::SeqCst));
                let ctx = shared.root.new_session(&id);
                shared.sessions.lock().unwrap().insert(id.clone(), ctx);
                session_id = Some(id.clone());
                ok([("session", Json::Str(id))])
            }
            (_, None) => err("handshake required: send {\"op\":\"hello\"} first"),
            ("close", Some(_)) => {
                let _ = write_frame(&mut stream, &ok([]));
                return Ok(());
            }
            ("set", Some(sid)) => handle_set(shared, sid, &req),
            ("conf", Some(sid)) => handle_conf(shared, sid, &req),
            ("query", Some(sid)) => handle_query(shared, sid, &req),
            ("fetch", Some(_)) => handle_fetch(shared, &req),
            ("cancel", Some(_)) => handle_cancel(shared, &req),
            ("stats", Some(_)) => stats_json(shared),
            (other, Some(_)) => err(&format!("unknown op {other:?}")),
        };
        write_frame(&mut stream, &reply)?;
    }
    Ok(())
}

fn handle_set(shared: &Shared, sid: &str, req: &Json) -> Json {
    let (Some(key), Some(value)) = (
        req.get("key").and_then(Json::as_str),
        req.get("value").and_then(Json::as_str),
    ) else {
        return err("set needs string fields key and value");
    };
    let Some(ctx) = shared.session(sid) else {
        return err("session is gone");
    };
    match ctx.set(key, value) {
        Ok(()) => ok([]),
        Err(e) => err(&e.to_string()),
    }
}

fn handle_conf(shared: &Shared, sid: &str, req: &Json) -> Json {
    let Some(key) = req.get("key").and_then(Json::as_str) else {
        return err("conf needs a string field key");
    };
    let Some(ctx) = shared.session(sid) else {
        return err("session is gone");
    };
    match ctx.conf().get(key) {
        Ok(v) => ok([("value", Json::Str(v))]),
        Err(e) => err(&e.to_string()),
    }
}

fn handle_query(shared: &Shared, sid: &str, req: &Json) -> Json {
    let Some(sql) = req.get("sql").and_then(Json::as_str) else {
        return err("query needs a string field sql");
    };
    let conf_timeout = shared.sched.conf().query_timeout_ms;
    let timeout_ms = req
        .get("timeout_ms")
        .and_then(Json::as_i64)
        .map(|t| t.max(0) as u64)
        .unwrap_or(conf_timeout);
    let timeout = (timeout_ms > 0).then(|| Duration::from_millis(timeout_ms));
    let id = shared.next_query.fetch_add(1, Ordering::SeqCst);
    let task = QueryTask::new(id, sid.to_string(), sql.to_string(), timeout);
    match shared.sched.submit(task) {
        Ok(()) => ok([("query", Json::Int(id as i64))]),
        Err(e) => err(&e),
    }
}

fn handle_fetch(shared: &Shared, req: &Json) -> Json {
    let Some(id) = req.get("query").and_then(Json::as_i64) else {
        return err("fetch needs an integer field query");
    };
    let Some(task) = shared.sched.task(id as u64) else {
        return err(&format!("unknown query handle {id}"));
    };
    let outcome = task.wait_done();
    shared.sched.forget(id as u64);
    let queued = task.queued_by_admission.load(Ordering::SeqCst);
    let mut fields = vec![
        ("queued", Json::Bool(queued)),
        ("wall_ns", Json::Int(outcome.wall_ns as i64)),
        (
            "spill_files_created",
            Json::Int(outcome.spill_files_created as i64),
        ),
        (
            "spill_files_deleted",
            Json::Int(outcome.spill_files_deleted as i64),
        ),
        ("evictions", Json::Int(outcome.evictions as i64)),
    ];
    match outcome.rows {
        Ok((columns, rows)) => {
            fields.push((
                "columns",
                Json::Arr(columns.into_iter().map(Json::Str).collect()),
            ));
            fields.push(("rows", Json::Arr(rows.iter().map(row_json).collect())));
            ok(fields)
        }
        Err(e) => {
            let mut reply = err(&e);
            if let Json::Obj(map) = &mut reply {
                for (k, v) in fields {
                    map.insert(k.to_string(), v);
                }
            }
            reply
        }
    }
}

fn handle_cancel(shared: &Shared, req: &Json) -> Json {
    let Some(id) = req.get("query").and_then(Json::as_i64) else {
        return err("cancel needs an integer field query");
    };
    match shared.sched.task(id as u64) {
        Some(task) => {
            task.token.cancel();
            ok([("cancelled", Json::Bool(true))])
        }
        None => ok([("cancelled", Json::Bool(false))]),
    }
}

fn stats_json(shared: &Shared) -> Json {
    let c = &shared.sched.counters;
    let cache = shared.root.spark_context().cache_manager().budget_stats();
    ok([
        (
            "admitted",
            Json::Int(c.admitted.load(Ordering::SeqCst) as i64),
        ),
        (
            "queued_by_admission",
            Json::Int(c.queued_by_admission.load(Ordering::SeqCst) as i64),
        ),
        (
            "rejected",
            Json::Int(c.rejected.load(Ordering::SeqCst) as i64),
        ),
        (
            "cancelled",
            Json::Int(c.cancelled.load(Ordering::SeqCst) as i64),
        ),
        ("queued_now", Json::Int(shared.sched.queued_len() as i64)),
        (
            "sessions",
            Json::Int(shared.sessions.lock().unwrap().len() as i64),
        ),
        ("cache_evictions", Json::Int(cache.evictions as i64)),
        ("cache_evicted_bytes", Json::Int(cache.evicted_bytes as i64)),
        ("cache_used_bytes", Json::Int(cache.used_bytes as i64)),
    ])
}

fn worker_loop(shared: &Arc<Shared>) {
    while let Some((task, reservation)) = shared.sched.next() {
        // A panic anywhere in query execution must not kill the worker:
        // the task would never finish and its fetch would hang forever.
        let outcome =
            std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| run_query(shared, &task)))
                .unwrap_or_else(|payload| {
                    let msg = if payload
                        .downcast_ref::<engine::cancel::CancelSignal>()
                        .is_some()
                    {
                        format!("query {}: cancelled", task.id)
                    } else if let Some(s) = payload.downcast_ref::<&str>() {
                        format!("query {} panicked: {s}", task.id)
                    } else if let Some(s) = payload.downcast_ref::<String>() {
                        format!("query {} panicked: {s}", task.id)
                    } else {
                        format!("query {} panicked", task.id)
                    };
                    Outcome {
                        rows: Err(msg),
                        ..Outcome::default()
                    }
                });
        let cancelled =
            matches!(&outcome.rows, Err(e) if e.contains("cancelled") || e.contains("deadline"));
        // Release the admission grant first, then let finish() wake the
        // queue so a denied query's re-check sees the freed budget.
        drop(reservation);
        shared.sched.finish(&task, outcome, cancelled);
    }
}

/// Execute one admitted query on a worker thread.
fn run_query(shared: &Arc<Shared>, task: &QueryTask) -> Outcome {
    let Some(ctx) = shared.session(&task.session) else {
        return Outcome {
            rows: Err(format!("session {} is gone", task.session)),
            ..Outcome::default()
        };
    };
    // A deadline can expire while the query waits in the run queue;
    // don't bother starting it.
    if let Some(reason) = task.token.state() {
        return Outcome {
            rows: Err(format!("query {}: {}", task.id, reason.describe())),
            ..Outcome::default()
        };
    }
    let cache_before = ctx.spark_context().cache_manager().budget_stats();
    let start = Instant::now();
    let result = ctx.sql(&task.sql).and_then(|df| {
        let columns: Vec<String> = df
            .schema()
            .fields()
            .iter()
            .map(|f| f.name.to_string())
            .collect();
        let qe = df.query_execution()?;
        qe.set_cancel(task.token.clone());
        let rows = qe.collect();
        let memory = qe.memory_stats();
        Ok((columns, rows, memory))
    });
    let wall_ns = start.elapsed().as_nanos() as u64;
    let cache_after = ctx.spark_context().cache_manager().budget_stats();
    let evictions = cache_after.evictions.saturating_sub(cache_before.evictions);
    match result {
        Ok((columns, rows, memory)) => {
            let (created, deleted) = memory
                .map(|m| (m.spill_files_created, m.spill_files_deleted))
                .unwrap_or((0, 0));
            Outcome {
                rows: rows.map(|r| (columns, r)).map_err(|e| e.to_string()),
                wall_ns,
                spill_files_created: created,
                spill_files_deleted: deleted,
                evictions,
            }
        }
        Err(e) => Outcome {
            rows: Err(e.to_string()),
            wall_ns,
            spill_files_created: 0,
            spill_files_deleted: 0,
            evictions,
        },
    }
}

/// Encode one result row exactly as `fetch` replies do — exposed so
/// tests can compare wire results byte-for-byte against library runs.
pub fn row_json(row: &catalyst::row::Row) -> Json {
    Json::Arr(row.values().iter().map(value_json).collect())
}

/// Convert one SQL value to its wire representation. Primitives map to
/// native JSON; everything else renders through `Value`'s display form.
fn value_json(v: &Value) -> Json {
    match v {
        Value::Null => Json::Null,
        Value::Boolean(b) => Json::Bool(*b),
        Value::Int(i) => Json::Int(*i as i64),
        Value::Long(l) => Json::Int(*l),
        Value::Float(f) => Json::Num(*f as f64),
        Value::Double(d) => Json::Num(*d),
        Value::Date(d) => Json::Int(*d as i64),
        Value::Timestamp(t) => Json::Int(*t),
        Value::Str(s) => Json::Str(s.to_string()),
        other => Json::Str(format!("{other}")),
    }
}

fn ok(fields: impl IntoIterator<Item = (&'static str, Json)>) -> Json {
    let mut obj = Json::obj(fields);
    if let Json::Obj(map) = &mut obj {
        map.insert("ok".to_string(), Json::Bool(true));
    }
    obj
}

fn err(message: &str) -> Json {
    Json::obj([
        ("ok", Json::Bool(false)),
        ("error", Json::Str(message.to_string())),
    ])
}
