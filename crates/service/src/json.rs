//! Minimal JSON value, parser, and encoder for the wire protocol.
//!
//! The build environment vendors no serde, so the protocol uses this
//! hand-rolled implementation. It supports exactly what the protocol
//! needs: objects, arrays, strings, integers, floats, booleans, null.
//! Integers are kept distinct from floats so row values round-trip
//! exactly over the wire.

use std::collections::BTreeMap;
use std::fmt;

/// A parsed JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    Null,
    Bool(bool),
    /// Whole number in `i64` range (kept exact, not via f64).
    Int(i64),
    Num(f64),
    Str(String),
    Arr(Vec<Json>),
    /// Object with deterministic (sorted) key order on encode.
    Obj(BTreeMap<String, Json>),
}

impl Json {
    /// Build an object from key/value pairs.
    pub fn obj(pairs: impl IntoIterator<Item = (&'static str, Json)>) -> Json {
        Json::Obj(pairs.into_iter().map(|(k, v)| (k.to_string(), v)).collect())
    }

    /// Field lookup on an object, `None` otherwise.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(m) => m.get(key),
            _ => None,
        }
    }

    /// String content if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// Integer content if this is an integer.
    pub fn as_i64(&self) -> Option<i64> {
        match self {
            Json::Int(i) => Some(*i),
            _ => None,
        }
    }

    /// Boolean content if this is a boolean.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Json::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// Array content if this is an array.
    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(a) => Some(a),
            _ => None,
        }
    }

    /// Encode to a JSON string (object keys in sorted order).
    pub fn encode(&self) -> String {
        let mut out = String::new();
        self.write(&mut out);
        out
    }

    fn write(&self, out: &mut String) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Json::Int(i) => out.push_str(&i.to_string()),
            Json::Num(n) => {
                if n.is_finite() {
                    // `{:?}` prints the shortest representation that
                    // round-trips, and always includes a `.` or exponent.
                    out.push_str(&format!("{n:?}"));
                } else {
                    out.push_str("null");
                }
            }
            Json::Str(s) => write_string(s, out),
            Json::Arr(items) => {
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    item.write(out);
                }
                out.push(']');
            }
            Json::Obj(map) => {
                out.push('{');
                for (i, (k, v)) in map.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    write_string(k, out);
                    out.push(':');
                    v.write(out);
                }
                out.push('}');
            }
        }
    }

    /// Parse a JSON document. Errors carry the byte offset.
    pub fn parse(text: &str) -> Result<Json, JsonError> {
        let mut p = Parser {
            bytes: text.as_bytes(),
            pos: 0,
        };
        p.skip_ws();
        let v = p.value()?;
        p.skip_ws();
        if p.pos != p.bytes.len() {
            return Err(p.err("trailing characters"));
        }
        Ok(v)
    }
}

fn write_string(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

/// Parse failure: message plus byte offset in the input.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JsonError {
    pub message: String,
    pub offset: usize,
}

impl fmt::Display for JsonError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "json error at byte {}: {}", self.offset, self.message)
    }
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn err(&self, message: &str) -> JsonError {
        JsonError {
            message: message.to_string(),
            offset: self.pos,
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, b: u8) -> Result<(), JsonError> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(&format!("expected '{}'", b as char)))
        }
    }

    fn value(&mut self) -> Result<Json, JsonError> {
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => Ok(Json::Str(self.string()?)),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'n') => self.literal("null", Json::Null),
            Some(b'-' | b'0'..=b'9') => self.number(),
            _ => Err(self.err("expected a value")),
        }
    }

    fn literal(&mut self, word: &str, value: Json) -> Result<Json, JsonError> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(value)
        } else {
            Err(self.err(&format!("expected '{word}'")))
        }
    }

    fn object(&mut self) -> Result<Json, JsonError> {
        self.expect(b'{')?;
        let mut map = BTreeMap::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(map));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.value()?;
            map.insert(key, value);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(map));
                }
                _ => return Err(self.err("expected ',' or '}'")),
            }
        }
    }

    fn array(&mut self) -> Result<Json, JsonError> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                _ => return Err(self.err("expected ',' or ']'")),
            }
        }
    }

    fn string(&mut self) -> Result<String, JsonError> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'u') => {
                            let hex = self
                                .bytes
                                .get(self.pos + 1..self.pos + 5)
                                .ok_or_else(|| self.err("truncated \\u escape"))?;
                            let hex =
                                std::str::from_utf8(hex).map_err(|_| self.err("bad \\u escape"))?;
                            let code = u32::from_str_radix(hex, 16)
                                .map_err(|_| self.err("bad \\u escape"))?;
                            out.push(
                                char::from_u32(code).ok_or_else(|| self.err("bad codepoint"))?,
                            );
                            self.pos += 4;
                        }
                        _ => return Err(self.err("bad escape")),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Consume one UTF-8 scalar (input is a &str, so the
                    // byte stream is valid UTF-8).
                    let rest = std::str::from_utf8(&self.bytes[self.pos..]).unwrap();
                    let c = rest.chars().next().unwrap();
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn number(&mut self) -> Result<Json, JsonError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(b'0'..=b'9')) {
            self.pos += 1;
        }
        let mut float = false;
        if self.peek() == Some(b'.') {
            float = true;
            self.pos += 1;
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            float = true;
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).unwrap();
        if float {
            text.parse::<f64>()
                .map(Json::Num)
                .map_err(|_| self.err("bad number"))
        } else {
            match text.parse::<i64>() {
                Ok(i) => Ok(Json::Int(i)),
                // Out-of-range integers degrade to f64 like other parsers.
                Err(_) => text
                    .parse::<f64>()
                    .map(Json::Num)
                    .map_err(|_| self.err("bad number")),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trips_nested_documents() {
        let text = r#"{"a":[1,2.5,"x\n",true,null],"b":{"c":-7},"d":""}"#;
        let v = Json::parse(text).unwrap();
        assert_eq!(Json::parse(&v.encode()).unwrap(), v);
        assert_eq!(v.get("b").unwrap().get("c").unwrap().as_i64(), Some(-7));
        assert_eq!(v.get("a").unwrap().as_arr().unwrap().len(), 5);
    }

    #[test]
    fn integers_stay_exact() {
        let v = Json::parse("9007199254740993").unwrap();
        assert_eq!(v, Json::Int(9007199254740993));
        assert_eq!(v.encode(), "9007199254740993");
    }

    #[test]
    fn floats_encode_distinguishably() {
        assert_eq!(Json::Num(2.0).encode(), "2.0");
        assert_eq!(Json::Int(2).encode(), "2");
        assert_eq!(Json::parse("2.0").unwrap(), Json::Num(2.0));
    }

    #[test]
    fn escapes_and_unicode() {
        let v = Json::parse(r#""aé\t\"b""#).unwrap();
        assert_eq!(v, Json::Str("aé\t\"b".into()));
        assert_eq!(Json::parse(&v.encode()).unwrap(), v);
    }

    #[test]
    fn rejects_garbage() {
        assert!(Json::parse("{").is_err());
        assert!(Json::parse("[1,]").is_err());
        assert!(Json::parse("12 34").is_err());
        assert!(Json::parse("\"unterminated").is_err());
    }
}
