//! Admission control and fair cross-session scheduling.
//!
//! The service never lets a query start unless its admission
//! reservation is granted: each query reserves a fixed slice
//! (`spark.sql.service.admission.queryBytes`) from a service-level
//! [`engine::MemoryPool`] sized by
//! `spark.sql.service.admission.budgetBytes`. A query that cannot
//! reserve waits in its session's run queue (never started), and a
//! submission that would exceed `spark.sql.service.maxQueued` is
//! rejected outright.
//!
//! Dispatch is round-robin across sessions' run queues with a
//! per-session in-flight cap (`spark.sql.service.sessionInFlight`) —
//! slot accounting in the style of distributed SQL schedulers: a
//! session with a deep queue cannot starve a light one, because the
//! cursor advances past it after every grant.

use catalyst::row::Row;
use engine::{MemoryPool, MemoryReservation};
use std::collections::{HashMap, VecDeque};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::time::{Duration, Instant};

/// Service configuration, snapshotted from `spark.sql.service.*` confs
/// when the server starts.
#[derive(Debug, Clone)]
pub struct ServiceConf {
    /// Worker threads executing queries (`spark.sql.service.workers`).
    pub workers: usize,
    /// Max queries of one session running at once
    /// (`spark.sql.service.sessionInFlight`).
    pub session_in_flight: usize,
    /// Admission currency budget in bytes; 0 disables admission control
    /// (`spark.sql.service.admission.budgetBytes`).
    pub admission_budget: u64,
    /// Reservation each query must be granted before it starts
    /// (`spark.sql.service.admission.queryBytes`).
    pub admission_query_bytes: u64,
    /// Max queries waiting across all sessions before submissions are
    /// rejected (`spark.sql.service.maxQueued`).
    pub max_queued: usize,
    /// Default per-query deadline in ms; 0 = none
    /// (`spark.sql.service.queryTimeoutMs`).
    pub query_timeout_ms: u64,
}

impl ServiceConf {
    /// Snapshot the service knobs out of a SQL conf.
    pub fn from_sql_conf(conf: &spark_sql::SqlConf) -> ServiceConf {
        ServiceConf {
            workers: conf.service_workers.max(1),
            session_in_flight: conf.service_session_in_flight.max(1),
            admission_budget: conf.service_admission_budget,
            admission_query_bytes: conf.service_admission_query_bytes.max(1),
            max_queued: conf.service_max_queued,
            query_timeout_ms: conf.service_query_timeout_ms as u64,
        }
    }
}

/// Everything known about a finished query, error or not. Counters are
/// populated even when `rows` is an error so a cancelled query can
/// prove its spill files were released.
#[derive(Debug, Clone)]
pub struct Outcome {
    /// Column names and result rows, or the error message.
    pub rows: Result<(Vec<String>, Vec<Row>), String>,
    /// End-to-end execution wall time (excludes queueing).
    pub wall_ns: u64,
    /// Spill files the query's memory pool created / deleted.
    pub spill_files_created: u64,
    pub spill_files_deleted: u64,
    /// Shared-cache evictions the run triggered.
    pub evictions: u64,
}

impl Default for Outcome {
    fn default() -> Outcome {
        Outcome {
            rows: Ok((Vec::new(), Vec::new())),
            wall_ns: 0,
            spill_files_created: 0,
            spill_files_deleted: 0,
            evictions: 0,
        }
    }
}

enum TaskState {
    Waiting,
    Running,
    Done(Outcome),
}

/// One submitted query: the unit the scheduler queues, dispatches, and
/// the wire layer fetches/cancels by id.
pub struct QueryTask {
    /// Service-wide query handle (what `fetch`/`cancel` name).
    pub id: u64,
    /// Owning session.
    pub session: String,
    /// The SQL text to run.
    pub sql: String,
    /// Fires on explicit cancel or deadline expiry.
    pub token: engine::CancelToken,
    /// Set when admission control made this query wait before starting.
    pub queued_by_admission: AtomicBool,
    state: Mutex<TaskState>,
    done: Condvar,
}

impl QueryTask {
    /// Build a task; `timeout` (if any) arms a deadline starting now —
    /// queue time counts against it.
    pub fn new(id: u64, session: String, sql: String, timeout: Option<Duration>) -> Arc<QueryTask> {
        let token = match timeout {
            Some(t) => engine::CancelToken::with_deadline(Instant::now() + t),
            None => engine::CancelToken::new(),
        };
        Arc::new(QueryTask {
            id,
            session,
            sql,
            token,
            queued_by_admission: AtomicBool::new(false),
            state: Mutex::new(TaskState::Waiting),
            done: Condvar::new(),
        })
    }

    /// Block until the query finishes and return its outcome.
    pub fn wait_done(&self) -> Outcome {
        let mut st = self.state.lock().unwrap();
        loop {
            if let TaskState::Done(outcome) = &*st {
                return outcome.clone();
            }
            st = self.done.wait(st).unwrap();
        }
    }

    /// True once the outcome is available.
    pub fn is_done(&self) -> bool {
        matches!(&*self.state.lock().unwrap(), TaskState::Done(_))
    }

    fn finish(&self, outcome: Outcome) {
        *self.state.lock().unwrap() = TaskState::Done(outcome);
        self.done.notify_all();
    }
}

struct SessionQueue {
    name: String,
    queue: VecDeque<Arc<QueryTask>>,
    in_flight: usize,
}

struct SchedState {
    sessions: Vec<SessionQueue>,
    cursor: usize,
    queued: usize,
    shutdown: bool,
}

/// Monotonic service counters, surfaced by the `stats` wire op.
#[derive(Debug, Default)]
pub struct SchedCounters {
    /// Queries that started executing.
    pub admitted: AtomicU64,
    /// Queries that had to wait because admission denied their
    /// reservation at least once.
    pub queued_by_admission: AtomicU64,
    /// Submissions rejected because the wait queue was full.
    pub rejected: AtomicU64,
    /// Queries that finished cancelled (explicit or deadline).
    pub cancelled: AtomicU64,
}

/// The scheduler: run queues, the admission pool, and worker dispatch.
pub struct Scheduler {
    state: Mutex<SchedState>,
    work: Condvar,
    /// Admission currency. `None` when the budget is 0 (admission off).
    pool: Option<Arc<MemoryPool>>,
    conf: ServiceConf,
    /// Tasks by id, for `fetch`/`cancel`. Entries live until the task
    /// finishes *and* has been fetched (or the session closes).
    tasks: Mutex<HashMap<u64, Arc<QueryTask>>>,
    /// Service counters.
    pub counters: SchedCounters,
}

impl Scheduler {
    pub fn new(conf: ServiceConf) -> Scheduler {
        let pool = (conf.admission_budget > 0).then(|| {
            // The admission pool is pure accounting — it never spills, so
            // the spill dir is only a path that is never written.
            MemoryPool::bounded(conf.admission_budget, std::env::temp_dir())
        });
        Scheduler {
            state: Mutex::new(SchedState {
                sessions: Vec::new(),
                cursor: 0,
                queued: 0,
                shutdown: false,
            }),
            work: Condvar::new(),
            pool,
            conf,
            tasks: Mutex::new(HashMap::new()),
            counters: SchedCounters::default(),
        }
    }

    pub fn conf(&self) -> &ServiceConf {
        &self.conf
    }

    /// Enqueue a query. Rejects (never queues) when the global wait
    /// queue is at `maxQueued`.
    pub fn submit(&self, task: Arc<QueryTask>) -> Result<(), String> {
        let mut st = self.state.lock().unwrap();
        if st.shutdown {
            return Err("service is shutting down".to_string());
        }
        if st.queued >= self.conf.max_queued {
            self.counters.rejected.fetch_add(1, Ordering::SeqCst);
            return Err(format!(
                "admission rejected: {} queries already queued (spark.sql.service.maxQueued={})",
                st.queued, self.conf.max_queued
            ));
        }
        let idx = match st.sessions.iter().position(|s| s.name == task.session) {
            Some(i) => i,
            None => {
                st.sessions.push(SessionQueue {
                    name: task.session.clone(),
                    queue: VecDeque::new(),
                    in_flight: 0,
                });
                st.sessions.len() - 1
            }
        };
        self.tasks.lock().unwrap().insert(task.id, task.clone());
        st.sessions[idx].queue.push_back(task);
        st.queued += 1;
        drop(st);
        self.work.notify_one();
        Ok(())
    }

    /// Worker entry: block until a query may start, then return it with
    /// its granted admission reservation. `None` means shutdown.
    ///
    /// Fairness: scan sessions round-robin from the cursor; skip
    /// sessions at their in-flight cap; advance the cursor past each
    /// grant so queue depth does not buy extra turns.
    pub fn next(&self) -> Option<(Arc<QueryTask>, Option<MemoryReservation>)> {
        let mut st = self.state.lock().unwrap();
        loop {
            if st.shutdown {
                return None;
            }
            if let Some(idx) = self.runnable_session(&st) {
                match self.admit() {
                    Admission::Granted(reservation) => {
                        let task = st.sessions[idx].queue.pop_front().expect("non-empty");
                        st.sessions[idx].in_flight += 1;
                        st.cursor = idx + 1;
                        st.queued -= 1;
                        *task.state.lock().unwrap() = TaskState::Running;
                        self.counters.admitted.fetch_add(1, Ordering::SeqCst);
                        return Some((task, reservation));
                    }
                    Admission::Denied => {
                        // The query stays queued, never started. Mark it
                        // (first denial only) and wait for a release.
                        let head = st.sessions[idx].queue.front().expect("non-empty");
                        if !head.queued_by_admission.swap(true, Ordering::SeqCst) {
                            self.counters
                                .queued_by_admission
                                .fetch_add(1, Ordering::SeqCst);
                        }
                    }
                }
            }
            // Nothing runnable (no work, all sessions capped, or
            // admission denied): sleep until a submit or release. The
            // timeout is a liveness bound only.
            let (next, _) = self
                .work
                .wait_timeout(st, Duration::from_millis(50))
                .unwrap();
            st = next;
        }
    }

    fn runnable_session(&self, st: &SchedState) -> Option<usize> {
        let n = st.sessions.len();
        (0..n).map(|i| (st.cursor + i) % n).find(|&idx| {
            let s = &st.sessions[idx];
            !s.queue.is_empty() && s.in_flight < self.conf.session_in_flight
        })
    }

    fn admit(&self) -> Admission {
        match &self.pool {
            None => Admission::Granted(None),
            Some(pool) => {
                let mut r = pool.register();
                if r.try_grow(self.conf.admission_query_bytes) {
                    Admission::Granted(Some(r))
                } else {
                    Admission::Denied
                }
            }
        }
    }

    /// Worker exit for one query: record the outcome, free the session
    /// slot, and (by dropping `reservation` at the caller) release the
    /// admission grant. Wakes every waiter so queued queries re-try
    /// admission.
    pub fn finish(&self, task: &QueryTask, outcome: Outcome, cancelled: bool) {
        if cancelled {
            self.counters.cancelled.fetch_add(1, Ordering::SeqCst);
        }
        task.finish(outcome);
        let mut st = self.state.lock().unwrap();
        if let Some(s) = st.sessions.iter_mut().find(|s| s.name == task.session) {
            s.in_flight = s.in_flight.saturating_sub(1);
        }
        drop(st);
        self.work.notify_all();
    }

    /// Look up a live task by wire handle.
    pub fn task(&self, id: u64) -> Option<Arc<QueryTask>> {
        self.tasks.lock().unwrap().get(&id).cloned()
    }

    /// Drop the task-registry entry once the client has fetched it.
    pub fn forget(&self, id: u64) {
        self.tasks.lock().unwrap().remove(&id);
    }

    /// Queries currently waiting across all sessions.
    pub fn queued_len(&self) -> usize {
        self.state.lock().unwrap().queued
    }

    /// Stop dispatching; wakes all workers so they observe shutdown.
    pub fn shutdown(&self) {
        self.state.lock().unwrap().shutdown = true;
        self.work.notify_all();
    }
}

enum Admission {
    Granted(Option<MemoryReservation>),
    Denied,
}

#[cfg(test)]
mod tests {
    use super::*;

    fn conf(budget: u64, max_queued: usize) -> ServiceConf {
        ServiceConf {
            workers: 2,
            session_in_flight: 1,
            admission_budget: budget,
            admission_query_bytes: 100,
            max_queued,
            query_timeout_ms: 0,
        }
    }

    fn submit(sched: &Scheduler, id: u64, session: &str) -> Arc<QueryTask> {
        let t = QueryTask::new(id, session.to_string(), "SELECT 1".into(), None);
        sched.submit(t.clone()).unwrap();
        t
    }

    #[test]
    fn round_robin_across_sessions_with_in_flight_cap() {
        let sched = Scheduler::new(conf(0, 100));
        // Session a floods 4 queries before b and c submit one each.
        for id in 0..4 {
            submit(&sched, id, "a");
        }
        submit(&sched, 10, "b");
        submit(&sched, 11, "c");
        let mut order = Vec::new();
        for _ in 0..6 {
            let (task, r) = sched.next().unwrap();
            order.push(task.session.clone());
            sched.finish(&task, Outcome::default(), false);
            drop(r);
        }
        // b and c each get a turn before a's backlog drains.
        assert_eq!(order[..3], ["a", "b", "c"]);
        assert_eq!(order[3..], ["a", "a", "a"]);
    }

    #[test]
    fn admission_denial_queues_and_marks_the_task() {
        // Budget fits exactly one 100-byte reservation.
        let sched = Arc::new(Scheduler::new(conf(100, 100)));
        let first = submit(&sched, 1, "a");
        let (t1, r1) = sched.next().unwrap();
        assert_eq!(t1.id, 1);
        assert!(r1.is_some());
        let second = submit(&sched, 2, "b");
        // A second worker cannot start query 2 while the grant is held.
        let sched2 = sched.clone();
        let waiter = std::thread::spawn(move || {
            let (t2, r2) = sched2.next().unwrap();
            assert_eq!(t2.id, 2);
            assert!(r2.is_some());
            sched2.finish(&t2, Outcome::default(), false);
        });
        // Give the waiter time to hit the denial path.
        std::thread::sleep(Duration::from_millis(80));
        assert!(!second.is_done());
        assert!(second.queued_by_admission.load(Ordering::SeqCst));
        assert_eq!(sched.counters.queued_by_admission.load(Ordering::SeqCst), 1);
        // Releasing the first grant admits the queued query.
        sched.finish(&t1, Outcome::default(), false);
        drop(r1);
        waiter.join().unwrap();
        drop(first);
        assert_eq!(sched.counters.admitted.load(Ordering::SeqCst), 2);
    }

    #[test]
    fn full_queue_rejects_submissions() {
        let sched = Scheduler::new(conf(0, 2));
        submit(&sched, 1, "a");
        submit(&sched, 2, "a");
        let t = QueryTask::new(3, "a".into(), "SELECT 1".into(), None);
        let err = sched.submit(t).unwrap_err();
        assert!(err.contains("admission rejected"), "{err}");
        assert_eq!(sched.counters.rejected.load(Ordering::SeqCst), 1);
    }

    #[test]
    fn shutdown_unblocks_workers() {
        let sched = Arc::new(Scheduler::new(conf(0, 10)));
        let s2 = sched.clone();
        let h = std::thread::spawn(move || s2.next().is_none());
        std::thread::sleep(Duration::from_millis(30));
        sched.shutdown();
        assert!(h.join().unwrap());
    }

    #[test]
    fn deadline_task_token_fires() {
        let t = QueryTask::new(
            1,
            "a".into(),
            "SELECT 1".into(),
            Some(Duration::from_millis(5)),
        );
        std::thread::sleep(Duration::from_millis(20));
        assert!(t.token.state().is_some());
    }
}
