//! Wire framing: each message is a 4-byte little-endian length prefix
//! followed by that many bytes of UTF-8 JSON (one object per frame).
//!
//! The frame layer is symmetric — client and server use the same
//! [`read_frame`]/[`write_frame`] pair over any `Read`/`Write` stream.

use crate::json::Json;
use std::io::{self, Read, Write};

/// Upper bound on a single frame; a peer announcing more is corrupt (or
/// hostile) and the connection is dropped rather than the allocation
/// attempted.
pub const MAX_FRAME: u32 = 64 << 20;

/// Write one JSON message as a length-prefixed frame.
pub fn write_frame(w: &mut impl Write, msg: &Json) -> io::Result<()> {
    let body = msg.encode();
    let len = body.len() as u32;
    if len > MAX_FRAME {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            "frame exceeds MAX_FRAME",
        ));
    }
    // One write per frame: a split header/body write pattern interacts
    // with Nagle + delayed ACK and costs ~40ms per round trip.
    let mut frame = Vec::with_capacity(4 + body.len());
    frame.extend_from_slice(&len.to_le_bytes());
    frame.extend_from_slice(body.as_bytes());
    w.write_all(&frame)?;
    w.flush()
}

/// Read one frame. `Ok(None)` means the peer closed the connection
/// cleanly at a frame boundary.
pub fn read_frame(r: &mut impl Read) -> io::Result<Option<Json>> {
    let mut len_buf = [0u8; 4];
    match r.read_exact(&mut len_buf) {
        Ok(()) => {}
        Err(e) if e.kind() == io::ErrorKind::UnexpectedEof => return Ok(None),
        Err(e) => return Err(e),
    }
    let len = u32::from_le_bytes(len_buf);
    if len > MAX_FRAME {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            format!("frame length {len} exceeds limit"),
        ));
    }
    let mut body = vec![0u8; len as usize];
    r.read_exact(&mut body)?;
    let text = String::from_utf8(body)
        .map_err(|_| io::Error::new(io::ErrorKind::InvalidData, "frame is not UTF-8"))?;
    Json::parse(&text)
        .map(Some)
        .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e.to_string()))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn frames_round_trip() {
        let msg = Json::obj([("op", Json::Str("hello".into())), ("n", Json::Int(3))]);
        let mut buf = Vec::new();
        write_frame(&mut buf, &msg).unwrap();
        write_frame(&mut buf, &Json::Null).unwrap();
        let mut r = &buf[..];
        assert_eq!(read_frame(&mut r).unwrap(), Some(msg));
        assert_eq!(read_frame(&mut r).unwrap(), Some(Json::Null));
        assert_eq!(read_frame(&mut r).unwrap(), None);
    }

    #[test]
    fn oversized_frame_rejected() {
        let mut buf = Vec::new();
        buf.extend_from_slice(&(MAX_FRAME + 1).to_le_bytes());
        assert!(read_frame(&mut &buf[..]).is_err());
    }

    #[test]
    fn truncated_frame_is_an_error_not_a_clean_close() {
        let mut buf = Vec::new();
        write_frame(&mut buf, &Json::Int(1)).unwrap();
        buf.truncate(buf.len() - 1);
        assert!(read_frame(&mut &buf[..]).is_err());
    }
}
