//! Concurrent-session stress tests for the SQL service — the PR's
//! acceptance scenarios:
//!
//! (a) results over the wire are byte-identical to single-session
//!     library runs, across N ≥ 16 concurrent clients and mixed query
//!     shapes;
//! (b) under a small admission budget at least one query is admitted
//!     only after queueing, and overfull queues reject;
//! (c) a query is cancelled mid-flight with its memory reservations and
//!     spill files released (files created == files deleted);
//! (d) under a bounded cache budget evictions happen while every query
//!     still completes.

use service::server::row_json;
use service::{Client, Json, SqlServer};
use spark_sql::prelude::*;
use std::sync::Arc;
use std::time::Duration;

const FACT_ROWS: i64 = 30_000;

fn fact_schema() -> SchemaRef {
    Arc::new(Schema::new(vec![
        StructField::new("k", DataType::Long, true),
        StructField::new("v", DataType::Long, false),
        StructField::new("s", DataType::String, false),
    ]))
}

fn dim_schema() -> SchemaRef {
    Arc::new(Schema::new(vec![
        StructField::new("dk", DataType::Long, false),
        StructField::new("w", DataType::String, false),
    ]))
}

/// A root context with the shared tables every session sees.
fn root_with_tables() -> SQLContext {
    let ctx = SQLContext::new_local(4);
    let fact: Vec<Row> = (0..FACT_ROWS)
        .map(|i| {
            Row::new(vec![
                if i % 11 == 0 {
                    Value::Null
                } else {
                    Value::Long(i % 97)
                },
                Value::Long(i),
                Value::str(format!("payload-{:04}", i % 997)),
            ])
        })
        .collect();
    ctx.register_rows("fact", fact_schema(), fact).unwrap();
    let dim: Vec<Row> = (0..97)
        .map(|i| Row::new(vec![Value::Long(i), Value::str(format!("d{i:03}"))]))
        .collect();
    ctx.register_rows("dim", dim_schema(), dim).unwrap();
    ctx
}

/// The mixed query shapes clients issue (all fully deterministic:
/// results are totally ordered).
const SHAPES: &[&str] = &[
    "SELECT k, count(*), sum(v) FROM fact GROUP BY k ORDER BY k",
    "SELECT * FROM dim ORDER BY dk",
    "SELECT dim.w, sum(fact.v) FROM fact JOIN dim ON fact.k = dim.dk GROUP BY dim.w ORDER BY dim.w",
    "SELECT v FROM fact WHERE k = 13 ORDER BY v LIMIT 50",
    "SELECT count(DISTINCT k) FROM fact",
    "SELECT s, min(v), max(v) FROM fact WHERE v > 1000 GROUP BY s ORDER BY s LIMIT 100",
];

/// Wire-shaped encoding of a library run, for byte comparison.
fn library_encoding(ctx: &SQLContext, sql: &str) -> String {
    let rows = ctx.sql(sql).unwrap().collect().unwrap();
    Json::Arr(rows.iter().map(row_json).collect()).encode()
}

/// (a) 16 concurrent wire clients, mixed shapes, byte-identical to the
/// library.
#[test]
fn sixteen_clients_get_library_identical_results() {
    let root = root_with_tables();
    // Single-session library baseline, before the service exists.
    let expected: Vec<String> = SHAPES.iter().map(|q| library_encoding(&root, q)).collect();
    let mut server = SqlServer::start(root).unwrap();
    let addr = server.addr();
    let expected = Arc::new(expected);
    let handles: Vec<_> = (0..16)
        .map(|i| {
            let expected = expected.clone();
            std::thread::spawn(move || {
                let mut client = Client::connect(addr).unwrap();
                // Every client runs three different shapes.
                for j in 0..3 {
                    let shape = (i + j) % SHAPES.len();
                    let result = client.sql(SHAPES[shape]).unwrap();
                    let got =
                        Json::Arr(result.rows.iter().cloned().map(Json::Arr).collect()).encode();
                    assert_eq!(got, expected[shape], "shape {shape} diverged over the wire");
                }
                client.close().unwrap();
            })
        })
        .collect();
    for h in handles {
        h.join().unwrap();
    }
    server.stop();
}

/// (b) A small admission budget forces queueing; a tiny wait queue
/// forces rejections; every admitted query still completes correctly.
#[test]
fn admission_queues_then_rejects_when_full() {
    let root = root_with_tables();
    root.set_conf(|c| {
        c.service_workers = 4;
        c.service_session_in_flight = 2;
        // Exactly one 8 MiB reservation fits: concurrency 1 by admission.
        c.service_admission_budget = 8 << 20;
        c.service_admission_query_bytes = 8 << 20;
        c.service_max_queued = 4;
    });
    let mut server = SqlServer::start(root).unwrap();
    let addr = server.addr();
    let handles: Vec<_> = (0..3)
        .map(|_| {
            std::thread::spawn(move || {
                let mut client = Client::connect(addr).unwrap();
                let mut queued = 0;
                for _ in 0..2 {
                    let r = client.sql(SHAPES[0]).unwrap();
                    assert!(!r.rows.is_empty());
                    queued += r.queued as u32;
                }
                client.close().unwrap();
                queued
            })
        })
        .collect();
    let queued: u32 = handles.into_iter().map(|h| h.join().unwrap()).sum();
    assert!(
        queued >= 1,
        "with admission concurrency 1 and 6 queries, at least one must queue"
    );
    let mut probe = Client::connect(addr).unwrap();
    let stats = probe.stats().unwrap();
    assert!(
        stats
            .get("queued_by_admission")
            .and_then(Json::as_i64)
            .unwrap()
            >= 1
    );

    // Flood without fetching: the 4-slot wait queue must reject.
    let mut rejected = 0;
    let mut pending = Vec::new();
    for _ in 0..12 {
        match probe.query(SHAPES[2]) {
            Ok(id) => pending.push(id),
            Err(e) => {
                let msg = e.to_string();
                assert!(msg.contains("admission rejected"), "{msg}");
                rejected += 1;
            }
        }
    }
    assert!(
        rejected >= 1,
        "12 submissions into a 4-slot queue must reject"
    );
    for id in pending {
        let _ = probe.fetch(id);
    }
    let stats = probe.stats().unwrap();
    assert!(stats.get("rejected").and_then(Json::as_i64).unwrap() >= 1);
    probe.close().unwrap();
    server.stop();
}

/// (c) Cancel a spilling query mid-flight: the error reply carries the
/// spill counters, and created == deleted proves the files were
/// released by the unwind.
#[test]
fn cancel_mid_flight_releases_spill_files() {
    let root = root_with_tables();
    root.set_conf(|c| {
        c.service_workers = 2;
        // Pin the shuffled-join path so the join/agg run under the
        // (tiny) per-query memory budget and spill.
        c.broadcast_threshold = 0;
        c.shuffle_partitions = 4;
    });
    let mut server = SqlServer::start(root).unwrap();
    let addr = server.addr();
    let mut client = Client::connect(addr).unwrap();
    client.set("spark.sql.memory.budgetBytes", "48k").unwrap();
    // A full-table sort: 30k wide rows through the external sort under a
    // 48k budget spills guaranteed (the agg/join shapes keep only ~97
    // groups resident and never would).
    let heavy = "SELECT s, v, k FROM fact ORDER BY s DESC, v";
    // Calibration run: measures the uncancelled wall time and proves the
    // completed query also balances its spill ledger.
    let warm = client.sql(heavy).unwrap();
    assert!(warm.spill_files_created > 0, "heavy query must spill");
    assert_eq!(warm.spill_files_created, warm.spill_files_deleted);
    let warm_ms = (warm.wall_ns / 1_000_000).max(50);
    let mut proved = false;
    for attempt in 0..30u64 {
        let id = client.query(heavy).unwrap();
        // Sweep the cancel point across the measured run: spilling only
        // starts on the reduce side of the sort, so early fractions land
        // before any spill and late ones after completion.
        let frac_pct = 10 + 3 * attempt;
        std::thread::sleep(Duration::from_millis(warm_ms * frac_pct / 100));
        client.cancel(id).unwrap();
        match client.fetch(id) {
            Ok(_) => continue, // finished before the cancel landed
            Err(e) => {
                let msg = e.to_string();
                assert!(
                    msg.contains("cancelled"),
                    "cancelled query must report cancellation, got: {msg}"
                );
                let reply = e.reply().expect("server-side error carries counters");
                let fetched = service::client::decode_fetch(reply);
                if fetched.spill_files_created > 0 {
                    assert_eq!(
                        fetched.spill_files_created, fetched.spill_files_deleted,
                        "cancelled query leaked spill files"
                    );
                    proved = true;
                    break;
                }
            }
        }
    }
    assert!(
        proved,
        "no attempt observed a mid-flight cancel with spill files created"
    );
    let stats = client.stats().unwrap();
    assert!(stats.get("cancelled").and_then(Json::as_i64).unwrap() >= 1);
    client.close().unwrap();
    server.stop();
}

/// A query deadline fires the same cancellation path.
#[test]
fn deadline_cancels_like_an_explicit_cancel() {
    let root = root_with_tables();
    let mut server = SqlServer::start(root).unwrap();
    let mut client = Client::connect(server.addr()).unwrap();
    let heavy =
        "SELECT dim.w, sum(fact.v) FROM fact JOIN dim ON fact.k = dim.dk GROUP BY dim.w ORDER BY dim.w";
    let mut fired = false;
    for _ in 0..10 {
        let id = client.query_with_timeout(heavy, 1).unwrap();
        match client.fetch(id) {
            Ok(_) => continue, // ran inside 1ms — unlikely; retry
            Err(e) => {
                let msg = e.to_string();
                assert!(msg.contains("deadline"), "{msg}");
                fired = true;
                break;
            }
        }
    }
    assert!(fired, "a 1ms deadline never fired across 10 heavy queries");
    client.close().unwrap();
    server.stop();
}

/// (d) A bounded cache budget evicts under multi-session CACHE TABLE
/// pressure while every query still completes.
#[test]
fn bounded_cache_evicts_and_queries_still_complete() {
    let root = root_with_tables();
    root.set_conf(|c| {
        c.service_workers = 4;
        // Far below one cached copy of `fact`: filling it must evict.
        c.cache_budget_bytes = 128 << 10;
        c.cache_eviction_policy = "cost".into();
    });
    let expected_count = format!("{FACT_ROWS}");
    let mut server = SqlServer::start(root).unwrap();
    let addr = server.addr();
    let handles: Vec<_> = (0..4)
        .map(|_| {
            let expected = expected_count.clone();
            std::thread::spawn(move || {
                let mut client = Client::connect(addr).unwrap();
                client.sql("CACHE TABLE fact").unwrap();
                for _ in 0..2 {
                    let r = client.sql("SELECT count(*) FROM fact").unwrap();
                    assert_eq!(r.rows[0][0].encode(), expected);
                }
                client.close().unwrap();
            })
        })
        .collect();
    for h in handles {
        h.join().unwrap();
    }
    let stats = server.stats();
    assert!(
        stats.get("cache_evictions").and_then(Json::as_i64).unwrap() > 0,
        "a 128 KiB budget under four cached copies of fact must evict: {}",
        stats.encode()
    );
    server.stop();
}

/// S3 (wire level): `SET` in one session is invisible to every other
/// session, under concurrency.
#[test]
fn concurrent_sessions_do_not_observe_each_others_set() {
    let root = root_with_tables();
    let mut server = SqlServer::start(root).unwrap();
    let addr = server.addr();
    let key = "spark.sql.shuffle.partitions";
    let handles: Vec<_> = (0..8)
        .map(|i| {
            std::thread::spawn(move || {
                let mut client = Client::connect(addr).unwrap();
                let mine = format!("{}", 10 + i);
                client.set(key, &mine).unwrap();
                for _ in 0..20 {
                    assert_eq!(
                        client.conf(key).unwrap(),
                        mine,
                        "session observed another session's SET"
                    );
                    std::thread::yield_now();
                }
                client.close().unwrap();
            })
        })
        .collect();
    for h in handles {
        h.join().unwrap();
    }
    // A fresh session still sees the root default, not anyone's override.
    let mut fresh = Client::connect(addr).unwrap();
    let default = fresh.conf(key).unwrap();
    assert!(!(10..18).map(|v| v.to_string()).any(|v| v == default));
    fresh.close().unwrap();
    server.stop();
}

/// Temp views registered in one session are invisible to others, while
/// shared tables stay visible to everyone.
#[test]
fn temp_views_are_session_scoped() {
    let root = root_with_tables();
    let mut server = SqlServer::start(root).unwrap();
    let addr = server.addr();
    let mut a = Client::connect(addr).unwrap();
    let mut b = Client::connect(addr).unwrap();
    // CACHE TABLE binds the cached relation in the session overlay.
    a.sql("CACHE TABLE dim").unwrap();
    // Both still read the shared table by name.
    assert_eq!(
        a.sql("SELECT count(*) FROM dim").unwrap().rows[0][0],
        Json::Int(97)
    );
    assert_eq!(
        b.sql("SELECT count(*) FROM dim").unwrap().rows[0][0],
        Json::Int(97)
    );
    a.close().unwrap();
    b.close().unwrap();
    server.stop();
}
