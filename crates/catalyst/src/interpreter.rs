//! Tree-walking expression interpreter.
//!
//! Evaluates a bound expression against a row by recursively matching on
//! node types — exactly the "large amounts of branches and virtual
//! function calls" evaluation mode that §4.3.4 of the paper contrasts
//! with code generation. The compiled evaluator in [`crate::codegen`]
//! removes that overhead; Figure 4 measures the difference.

use crate::error::{CatalystError, Result};
use crate::expr::{BinaryOperator, ColumnRef, Expr, ScalarFunc};
use crate::row::Row;
use crate::tree::{Transformed, TreeNode};
use crate::types::DataType;
use crate::value::Value;
use std::cmp::Ordering;
use std::sync::Arc;

/// Replace resolved [`Expr::Column`] references with positional
/// [`Expr::BoundRef`]s against `input` (the child operator's output
/// attributes). Run once per operator before execution.
pub fn bind_references(expr: Expr, input: &[ColumnRef]) -> Result<Expr> {
    let mut err = None;
    let out = expr.transform_up(&mut |e| match e {
        Expr::Column(c) => match input.iter().position(|a| a.id == c.id) {
            Some(index) => Transformed::yes(Expr::BoundRef {
                index,
                dtype: c.dtype.clone(),
                nullable: c.nullable,
                name: c.name.clone(),
            }),
            None => {
                err = Some(CatalystError::Internal(format!(
                    "column {}#{} not found in input attributes",
                    c.name, c.id
                )));
                Transformed::no(Expr::Column(c))
            }
        },
        other => Transformed::no(other),
    });
    match err {
        Some(e) => Err(e),
        None => Ok(out.data),
    }
}

/// Evaluate a bound expression against one row.
pub fn eval(expr: &Expr, row: &Row) -> Result<Value> {
    match expr {
        Expr::Literal(v) => Ok(v.clone()),
        Expr::BoundRef { index, .. } => row.values().get(*index).cloned().ok_or_else(|| {
            CatalystError::eval(format!("row too short for bound reference {index}"))
        }),
        Expr::Column(c) => Err(CatalystError::Internal(format!(
            "unbound column {}#{} at evaluation time",
            c.name, c.id
        ))),
        Expr::Alias { child, .. } => eval(child, row),
        Expr::BinaryOp { left, op, right } => eval_binary(left, *op, right, row),
        Expr::Not(e) => match eval(e, row)? {
            Value::Null => Ok(Value::Null),
            Value::Boolean(b) => Ok(Value::Boolean(!b)),
            v => Err(CatalystError::eval(format!("NOT applied to {}", v.dtype()))),
        },
        Expr::Negate(e) => eval(e, row)?.neg(),
        Expr::IsNull(e) => Ok(Value::Boolean(eval(e, row)?.is_null())),
        Expr::IsNotNull(e) => Ok(Value::Boolean(!eval(e, row)?.is_null())),
        Expr::Like {
            expr,
            pattern,
            negated,
        } => {
            let v = eval(expr, row)?;
            let p = eval(pattern, row)?;
            if v.is_null() || p.is_null() {
                return Ok(Value::Null);
            }
            match (v.as_str(), p.as_str()) {
                (Some(s), Some(pat)) => {
                    let m = like_match(s, pat);
                    Ok(Value::Boolean(if *negated { !m } else { m }))
                }
                _ => Err(CatalystError::eval("LIKE requires string operands")),
            }
        }
        Expr::InList {
            expr,
            list,
            negated,
        } => {
            let v = eval(expr, row)?;
            if v.is_null() {
                return Ok(Value::Null);
            }
            let mut saw_null = false;
            for item in list {
                let w = eval(item, row)?;
                if w.is_null() {
                    saw_null = true;
                } else if v.sql_cmp(&w) == Some(Ordering::Equal) {
                    return Ok(Value::Boolean(!negated));
                }
            }
            if saw_null {
                Ok(Value::Null) // SQL three-valued IN
            } else {
                Ok(Value::Boolean(*negated))
            }
        }
        Expr::Case {
            operand,
            branches,
            else_expr,
        } => {
            let op_val = operand.as_ref().map(|o| eval(o, row)).transpose()?;
            for (cond, result) in branches {
                let fire = match &op_val {
                    Some(v) => {
                        let c = eval(cond, row)?;
                        !v.is_null() && v.sql_cmp(&c) == Some(Ordering::Equal)
                    }
                    None => matches!(eval(cond, row)?, Value::Boolean(true)),
                };
                if fire {
                    return eval(result, row);
                }
            }
            match else_expr {
                Some(e) => eval(e, row),
                None => Ok(Value::Null),
            }
        }
        Expr::Cast { expr, dtype } => eval(expr, row)?.cast_to(dtype),
        Expr::ScalarFn { func, args } => {
            let mut vals = Vec::with_capacity(args.len());
            for a in args {
                vals.push(eval(a, row)?);
            }
            apply_scalar_fn(*func, &vals)
        }
        Expr::Udf { udf, args } => {
            let mut vals = Vec::with_capacity(args.len());
            for a in args {
                vals.push(eval(a, row)?);
            }
            (udf.func)(&vals)
        }
        Expr::Agg { func, .. } => Err(CatalystError::Internal(format!(
            "aggregate {} evaluated outside an Aggregate operator",
            func.name()
        ))),
        Expr::WindowFunction { func, .. } => Err(CatalystError::Internal(format!(
            "window function {} evaluated outside a Window operator",
            func.name()
        ))),
        Expr::GetField { expr, name } => {
            let dtype = expr.data_type()?;
            let v = eval(expr, row)?;
            match (v, dtype) {
                (Value::Null, _) => Ok(Value::Null),
                (Value::Struct(vals), DataType::Struct(fields)) => {
                    match fields
                        .iter()
                        .position(|f| f.name.eq_ignore_ascii_case(name))
                    {
                        Some(i) => Ok(vals.get(i).cloned().unwrap_or(Value::Null)),
                        None => Err(CatalystError::eval(format!("no struct field '{name}'"))),
                    }
                }
                (v, _) => Err(CatalystError::eval(format!(
                    "field access on non-struct {}",
                    v.dtype()
                ))),
            }
        }
        Expr::GetItem { expr, index } => {
            let v = eval(expr, row)?;
            let i = eval(index, row)?;
            match (v, i.as_i64()) {
                (Value::Null, _) => Ok(Value::Null),
                (Value::Array(items), Some(i)) => {
                    if i < 0 || i as usize >= items.len() {
                        Ok(Value::Null)
                    } else {
                        Ok(items[i as usize].clone())
                    }
                }
                _ => Err(CatalystError::eval("array index on non-array")),
            }
        }
        Expr::UnscaledValue(e) => match eval(e, row)? {
            Value::Null => Ok(Value::Null),
            Value::Decimal(u, _, _) => Ok(Value::Long(u as i64)),
            v => Err(CatalystError::eval(format!(
                "unscaled of non-decimal {}",
                v.dtype()
            ))),
        },
        Expr::MakeDecimal {
            expr,
            precision,
            scale,
        } => match eval(expr, row)? {
            Value::Null => Ok(Value::Null),
            v => match v.as_i64() {
                Some(u) => Ok(Value::Decimal(u as i128, *precision, *scale)),
                None => Err(CatalystError::eval("make_decimal of non-integral")),
            },
        },
        Expr::UnresolvedAttribute { name, .. } => Err(CatalystError::Internal(format!(
            "unresolved attribute '{name}' at evaluation time"
        ))),
        Expr::UnresolvedFunction { name, .. } => Err(CatalystError::Internal(format!(
            "unresolved function '{name}' at evaluation time"
        ))),
        Expr::Wildcard { .. } => Err(CatalystError::Internal(
            "wildcard at evaluation time".into(),
        )),
    }
}

fn eval_binary(left: &Expr, op: BinaryOperator, right: &Expr, row: &Row) -> Result<Value> {
    use BinaryOperator::*;
    // AND/OR use SQL three-valued logic with short-circuiting.
    if op == And || op == Or {
        let l = eval(left, row)?;
        let lb = l.as_bool();
        match (op, lb) {
            (And, Some(false)) => return Ok(Value::Boolean(false)),
            (Or, Some(true)) => return Ok(Value::Boolean(true)),
            _ => {}
        }
        let r = eval(right, row)?;
        let rb = r.as_bool();
        return Ok(match op {
            And => match (lb, rb) {
                (Some(false), _) | (_, Some(false)) => Value::Boolean(false),
                (Some(true), Some(true)) => Value::Boolean(true),
                _ => Value::Null,
            },
            Or => match (lb, rb) {
                (Some(true), _) | (_, Some(true)) => Value::Boolean(true),
                (Some(false), Some(false)) => Value::Boolean(false),
                _ => Value::Null,
            },
            _ => unreachable!(),
        });
    }

    let l = eval(left, row)?;
    let r = eval(right, row)?;
    match op {
        Add => l.add(&r),
        Sub => l.sub(&r),
        Mul => l.mul(&r),
        Div => l.div(&r),
        Mod => l.rem(&r),
        Eq | NotEq | Lt | LtEq | Gt | GtEq => {
            let cmp = l.sql_cmp(&r);
            Ok(match cmp {
                None => Value::Null,
                Some(ord) => Value::Boolean(match op {
                    Eq => ord == Ordering::Equal,
                    NotEq => ord != Ordering::Equal,
                    Lt => ord == Ordering::Less,
                    LtEq => ord != Ordering::Greater,
                    Gt => ord == Ordering::Greater,
                    GtEq => ord != Ordering::Less,
                    _ => unreachable!(),
                }),
            })
        }
        And | Or => unreachable!(),
    }
}

/// Apply a built-in scalar function to already-evaluated arguments (shared
/// with the compiled evaluator's fallback path).
pub fn apply_scalar_fn(func: ScalarFunc, vals: &[Value]) -> Result<Value> {
    use ScalarFunc::*;
    match func {
        Coalesce => {
            for v in vals {
                if !v.is_null() {
                    return Ok(v.clone());
                }
            }
            return Ok(Value::Null);
        }
        Concat => {
            if vals.iter().any(Value::is_null) {
                return Ok(Value::Null);
            }
            let mut out = String::new();
            for v in vals {
                out.push_str(&v.to_string());
            }
            return Ok(Value::str(out));
        }
        _ => {}
    }
    if vals.iter().any(Value::is_null) {
        return Ok(Value::Null);
    }
    match func {
        Substr => {
            let s = req_str(&vals[0])?;
            let pos = req_i64(&vals[1])?;
            let len = vals.get(2).map(req_i64).transpose()?.unwrap_or(i64::MAX);
            // SQL SUBSTR: 1-based; pos 0 behaves like 1.
            let start = (pos.max(1) - 1) as usize;
            let out: String = s.chars().skip(start).take(len.max(0) as usize).collect();
            Ok(Value::str(out))
        }
        Length => Ok(Value::Int(req_str(&vals[0])?.chars().count() as i32)),
        Upper => Ok(Value::str(req_str(&vals[0])?.to_uppercase())),
        Lower => Ok(Value::str(req_str(&vals[0])?.to_lowercase())),
        Trim => Ok(Value::str(req_str(&vals[0])?.trim())),
        StartsWith => Ok(Value::Boolean(
            req_str(&vals[0])?.starts_with(req_str(&vals[1])?),
        )),
        EndsWith => Ok(Value::Boolean(
            req_str(&vals[0])?.ends_with(req_str(&vals[1])?),
        )),
        Contains => Ok(Value::Boolean(
            req_str(&vals[0])?.contains(req_str(&vals[1])?),
        )),
        Abs => match &vals[0] {
            Value::Int(v) => Ok(Value::Int(v.abs())),
            Value::Long(v) => Ok(Value::Long(v.abs())),
            Value::Float(v) => Ok(Value::Float(v.abs())),
            Value::Double(v) => Ok(Value::Double(v.abs())),
            Value::Decimal(u, p, s) => Ok(Value::Decimal(u.abs(), *p, *s)),
            v => Err(CatalystError::eval(format!("abs of {}", v.dtype()))),
        },
        Sqrt => Ok(Value::Double(req_f64(&vals[0])?.sqrt())),
        Pow => Ok(Value::Double(req_f64(&vals[0])?.powf(req_f64(&vals[1])?))),
        Round => match &vals[0] {
            v @ (Value::Int(_) | Value::Long(_)) => Ok(v.clone()),
            v => {
                let digits = vals.get(1).map(req_i64).transpose()?.unwrap_or(0);
                let m = 10f64.powi(digits as i32);
                Ok(Value::Double((req_f64(v)? * m).round() / m))
            }
        },
        Floor => Ok(Value::Long(req_f64(&vals[0])?.floor() as i64)),
        Ceil => Ok(Value::Long(req_f64(&vals[0])?.ceil() as i64)),
        Year => match &vals[0] {
            Value::Date(d) => {
                let formatted = crate::value::format_date(*d);
                let year: i32 = formatted
                    .split('-')
                    .next()
                    .and_then(|y| y.parse().ok())
                    .unwrap_or(0);
                Ok(Value::Int(year))
            }
            v => Err(CatalystError::eval(format!("year of {}", v.dtype()))),
        },
        SplitWords => {
            let s = req_str(&vals[0])?;
            let words: Vec<Value> = s.split_whitespace().map(Value::str).collect();
            Ok(Value::Array(Arc::new(words)))
        }
        Coalesce | Concat => unreachable!("handled above"),
    }
}

fn req_str(v: &Value) -> Result<&str> {
    v.as_str()
        .ok_or_else(|| CatalystError::eval(format!("expected string, got {}", v.dtype())))
}

fn req_i64(v: &Value) -> Result<i64> {
    v.as_i64()
        .ok_or_else(|| CatalystError::eval(format!("expected integer, got {}", v.dtype())))
}

fn req_f64(v: &Value) -> Result<f64> {
    v.as_f64()
        .ok_or_else(|| CatalystError::eval(format!("expected number, got {}", v.dtype())))
}

/// SQL LIKE matcher: `%` matches any run, `_` matches one character.
pub fn like_match(s: &str, pattern: &str) -> bool {
    fn rec(s: &[char], p: &[char]) -> bool {
        match p.first() {
            None => s.is_empty(),
            Some('%') => (0..=s.len()).any(|i| rec(&s[i..], &p[1..])),
            Some('_') => !s.is_empty() && rec(&s[1..], &p[1..]),
            Some(c) => s.first() == Some(c) && rec(&s[1..], &p[1..]),
        }
    }
    let s: Vec<char> = s.chars().collect();
    let p: Vec<char> = pattern.chars().collect();
    rec(&s, &p)
}

/// Evaluate a bound boolean predicate, treating NULL as false (filter
/// semantics).
pub fn eval_predicate(expr: &Expr, row: &Row) -> Result<bool> {
    Ok(matches!(eval(expr, row)?, Value::Boolean(true)))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::expr::builders::{col, lit, when};
    use crate::expr::ColumnRef;

    // Minimal resolution for tests: match unresolved names to the inputs,
    // then bind to positions.
    fn bound(input: &[ColumnRef], e: Expr) -> Expr {
        let resolved = e
            .transform_up(&mut |e| match e {
                Expr::UnresolvedAttribute { name, .. } => {
                    let c = input
                        .iter()
                        .find(|c| c.name.eq_ignore_ascii_case(&name))
                        .expect("test column");
                    Transformed::yes(Expr::Column(c.clone()))
                }
                other => Transformed::no(other),
            })
            .data;
        bind_references(resolved, input).unwrap()
    }

    fn test_input() -> Vec<ColumnRef> {
        vec![
            ColumnRef::new("x", DataType::Long, false),
            ColumnRef::new("s", DataType::String, true),
        ]
    }

    fn test_row() -> Row {
        Row::new(vec![Value::Long(10), Value::str("hello")])
    }

    #[test]
    fn arithmetic_and_comparison() {
        let input = test_input();
        let e = bound(&input, col("x").add(lit(5i64)).mul(lit(2i64)));
        assert_eq!(eval(&e, &test_row()).unwrap(), Value::Long(30));
        let p = bound(&input, col("x").lt(lit(11i64)));
        assert_eq!(eval(&p, &test_row()).unwrap(), Value::Boolean(true));
    }

    #[test]
    fn three_valued_logic() {
        let input = test_input();
        let null_row = Row::new(vec![Value::Null, Value::Null]);
        // NULL AND false = false; NULL OR false = NULL.
        let e = bound(&input, col("x").gt(lit(1i64)).and(lit(false)));
        assert_eq!(eval(&e, &null_row).unwrap(), Value::Boolean(false));
        let e = bound(&input, col("x").gt(lit(1i64)).or(lit(false)));
        assert_eq!(eval(&e, &null_row).unwrap(), Value::Null);
        // NULL comparison yields NULL -> predicate false.
        let p = bound(&input, col("x").eq(lit(10i64)));
        assert!(!eval_predicate(&p, &null_row).unwrap());
    }

    #[test]
    fn like_semantics() {
        assert!(like_match("hello", "he%"));
        assert!(like_match("hello", "%llo"));
        assert!(like_match("hello", "%ell%"));
        assert!(like_match("hello", "h_llo"));
        assert!(!like_match("hello", "h_"));
        assert!(like_match("", "%"));
        assert!(!like_match("abc", "abd"));
    }

    #[test]
    fn in_list_three_valued() {
        let input = test_input();
        let e = bound(&input, col("x").in_list(vec![lit(1i64), lit(10i64)]));
        assert_eq!(eval(&e, &test_row()).unwrap(), Value::Boolean(true));
        // x IN (1, NULL) where x=10 → NULL (unknown).
        let e = bound(
            &input,
            col("x").in_list(vec![lit(1i64), Expr::Literal(Value::Null)]),
        );
        assert_eq!(eval(&e, &test_row()).unwrap(), Value::Null);
    }

    #[test]
    fn case_expression() {
        let input = test_input();
        let e = bound(
            &input,
            when(col("x").gt(lit(5i64)), lit("big")).otherwise(lit("small")),
        );
        assert_eq!(eval(&e, &test_row()).unwrap(), Value::str("big"));
    }

    #[test]
    fn string_functions() {
        let input = test_input();
        let e = bound(
            &input,
            crate::expr::builders::substr(col("s"), lit(1), lit(4)),
        );
        assert_eq!(eval(&e, &test_row()).unwrap(), Value::str("hell"));
        let e = bound(&input, crate::expr::builders::length(col("s")));
        assert_eq!(eval(&e, &test_row()).unwrap(), Value::Int(5));
    }

    #[test]
    fn udf_evaluation() {
        use crate::expr::UdfImpl;
        let udf = Arc::new(UdfImpl {
            name: "double_it".into(),
            return_type: DataType::Long,
            func: Box::new(|args| Ok(Value::Long(args[0].as_i64().unwrap_or(0) * 2))),
        });
        let input = test_input();
        let arg = bound(&input, col("x"));
        let e = Expr::Udf {
            udf,
            args: vec![arg],
        };
        assert_eq!(eval(&e, &test_row()).unwrap(), Value::Long(20));
    }

    #[test]
    fn decimal_helpers_roundtrip() {
        let d = Expr::Literal(Value::Decimal(12345, 10, 2));
        let unscaled = Expr::UnscaledValue(Box::new(d));
        assert_eq!(eval(&unscaled, &Row::empty()).unwrap(), Value::Long(12345));
        let back = Expr::MakeDecimal {
            expr: Box::new(unscaled),
            precision: 12,
            scale: 2,
        };
        assert_eq!(
            eval(&back, &Row::empty()).unwrap(),
            Value::Decimal(12345, 12, 2)
        );
    }

    #[test]
    fn cast_evaluation() {
        let e = Expr::Cast {
            expr: Box::new(lit("42")),
            dtype: DataType::Long,
        };
        assert_eq!(eval(&e, &Row::empty()).unwrap(), Value::Long(42));
    }

    #[test]
    fn get_field_on_struct() {
        let input = vec![ColumnRef::new(
            "loc",
            DataType::struct_type(vec![
                crate::types::StructField::new("lat", DataType::Double, false),
                crate::types::StructField::new("long", DataType::Double, false),
            ]),
            true,
        )];
        let e = bound(&input, col("loc").get_field("lat"));
        let row = Row::new(vec![Value::Struct(Arc::new(vec![
            Value::Double(45.1),
            Value::Double(90.0),
        ]))]);
        assert_eq!(eval(&e, &row).unwrap(), Value::Double(45.1));
    }
}
