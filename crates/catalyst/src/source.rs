//! The data source API (§4.4.1): Catalyst's first public extension point.
//!
//! A source implements [`BaseRelation`] and declares, via
//! [`ScanCapability`], how much of the query it can absorb:
//!
//! * `TableScan` — returns all rows of the table;
//! * `PrunedScan` — takes the column indices to read;
//! * `PrunedFilteredScan` — additionally takes an array of advisory
//!   [`Filter`]s (a deliberately small subset of expression syntax:
//!   comparisons against constants and IN, each on one attribute);
//! * `CatalystScan` — receives complete Catalyst expression trees.
//!
//! Filters are *advisory*: a source may return false positives for
//! filters it cannot evaluate; the engine re-applies the predicate above
//! the scan unless the source reports the filter as exactly handled.

use crate::error::Result;
use crate::expr::Expr;
use crate::row::Row;
use crate::schema::SchemaRef;
use crate::value::Value;
use std::any::Any;
use std::sync::Arc;

/// Boxed row iterator produced by one scan partition.
pub type RowIter = Box<dyn Iterator<Item = Row> + Send>;

/// Boxed batch iterator produced by one vectorized scan partition.
pub type BatchIter = Box<dyn Iterator<Item = crate::vectorized::RowBatch> + Send>;

/// How sophisticated a relation's scan interface is.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ScanCapability {
    /// Full scans only.
    TableScan,
    /// Column pruning.
    PrunedScan,
    /// Column pruning + advisory filter pushdown.
    PrunedFilteredScan,
    /// Receives raw Catalyst predicate expressions.
    CatalystScan,
}

/// The advisory filter language pushed into sources (§4.4.1 footnote 7:
/// "equality, comparisons against a constant, and IN clauses, each on one
/// attribute").
#[derive(Debug, Clone, PartialEq)]
pub enum Filter {
    /// `column = value`.
    Eq(String, Value),
    /// `column > value`.
    Gt(String, Value),
    /// `column >= value`.
    GtEq(String, Value),
    /// `column < value`.
    Lt(String, Value),
    /// `column <= value`.
    LtEq(String, Value),
    /// `column IN (values…)`.
    In(String, Vec<Value>),
    /// `column IS NOT NULL`.
    IsNotNull(String),
    /// `column IS NULL`.
    IsNull(String),
    /// `column LIKE 'prefix%'` → prefix match.
    StringStartsWith(String, String),
    /// `column LIKE '%infix%'` → containment.
    StringContains(String, String),
}

impl Filter {
    /// The single attribute this filter constrains.
    pub fn column(&self) -> &str {
        match self {
            Filter::Eq(c, _)
            | Filter::Gt(c, _)
            | Filter::GtEq(c, _)
            | Filter::Lt(c, _)
            | Filter::LtEq(c, _)
            | Filter::In(c, _)
            | Filter::IsNotNull(c)
            | Filter::IsNull(c)
            | Filter::StringStartsWith(c, _)
            | Filter::StringContains(c, _) => c,
        }
    }

    /// Evaluate against a value of the filtered column.
    pub fn matches(&self, v: &Value) -> bool {
        use std::cmp::Ordering::*;
        match self {
            Filter::Eq(_, w) => v.sql_cmp(w) == Some(Equal),
            Filter::Gt(_, w) => v.sql_cmp(w) == Some(Greater),
            Filter::GtEq(_, w) => matches!(v.sql_cmp(w), Some(Greater | Equal)),
            Filter::Lt(_, w) => v.sql_cmp(w) == Some(Less),
            Filter::LtEq(_, w) => matches!(v.sql_cmp(w), Some(Less | Equal)),
            Filter::In(_, list) => list.iter().any(|w| v.sql_cmp(w) == Some(Equal)),
            Filter::IsNotNull(_) => !v.is_null(),
            Filter::IsNull(_) => v.is_null(),
            Filter::StringStartsWith(_, p) => v.as_str().is_some_and(|s| s.starts_with(p)),
            Filter::StringContains(_, p) => v.as_str().is_some_and(|s| s.contains(p)),
        }
    }
}

/// Relation-level statistics for one column, aggregated over every
/// partition/row group of a source. Feeds the constraint analysis
/// ([`crate::analysis::constraints`]): a zero null count proves
/// non-nullability, min/max bound the column's domain.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct ColumnStatistics {
    /// Minimum non-null value across the relation, if known.
    pub min: Option<Value>,
    /// Maximum non-null value across the relation, if known.
    pub max: Option<Value>,
    /// Exact number of NULLs across the relation, if known.
    pub null_count: Option<u64>,
    /// Exact number of rows across the relation, if known.
    pub row_count: Option<u64>,
    /// Estimated number of distinct non-null values (NDV), if known —
    /// from a [`crate::ndv::NdvSketch`] merged across row groups /
    /// cache partitions, or an exact count for small in-memory tables.
    pub ndv: Option<u64>,
    /// True when these statistics cover only *part* of the relation
    /// (e.g. the resident partitions of a partially evicted cache).
    /// Partial stats are lower bounds: `row_count`, `null_count`, and
    /// `ndv` undercount, and min/max do not bound unseen rows — so they
    /// must never be used as relation-wide proofs (constraint domains,
    /// stats-answered aggregates), only as cost-estimation floors.
    pub partial: bool,
}

/// A table exposed to the optimizer by a data source.
pub trait BaseRelation: Send + Sync {
    /// Human-readable name (file path, table name…).
    fn name(&self) -> String;

    /// The relation's schema.
    fn schema(&self) -> SchemaRef;

    /// Estimated size in bytes, if known — feeds the cost-based join
    /// selection (§4.3.3 footnote 5).
    fn size_in_bytes(&self) -> Option<u64> {
        None
    }

    /// Estimated row count, if known.
    fn row_count(&self) -> Option<u64> {
        None
    }

    /// Scan interface tier.
    fn capability(&self) -> ScanCapability {
        ScanCapability::TableScan
    }

    /// Number of scan partitions this relation naturally splits into.
    fn num_partitions(&self) -> usize {
        1
    }

    /// Scan one partition.
    ///
    /// `projection` (indices into [`BaseRelation::schema`]) is honored by
    /// `PrunedScan`+ sources; `filters` by `PrunedFilteredScan`+ sources,
    /// advisorily. Lower-tier sources may ignore both — the execution
    /// layer compensates.
    fn scan_partition(
        &self,
        partition: usize,
        projection: Option<&[usize]>,
        filters: &[Filter],
    ) -> Result<RowIter>;

    /// `CatalystScan` tier: scan with full predicate expressions. Default
    /// delegates to [`BaseRelation::scan_partition`] without filters.
    fn catalyst_scan_partition(
        &self,
        partition: usize,
        projection: Option<&[usize]>,
        _predicates: &[Expr],
    ) -> Result<RowIter> {
        self.scan_partition(partition, projection, &[])
    }

    /// Vectorized scan: yield [`crate::vectorized::RowBatch`]es directly
    /// (columns restricted to `projection`, advisory `filters` applied as
    /// a selection vector), skipping the row materialization round-trip.
    ///
    /// `Ok(None)` — the default — means the source has no native batch
    /// path; the executor then chunks [`BaseRelation::scan_partition`]
    /// rows into batches itself. Sources that return `Some` must apply
    /// `projection` and `filters` with the same semantics as their row
    /// scan.
    fn scan_partition_vectors(
        &self,
        _partition: usize,
        _projection: Option<&[usize]>,
        _filters: &[Filter],
    ) -> Result<Option<BatchIter>> {
        Ok(None)
    }

    /// Which of `filters` this source evaluates *exactly* (no false
    /// positives), so the engine can skip re-evaluation. Default: none —
    /// filters are advisory.
    fn handled_filters(&self, filters: &[Filter]) -> Vec<bool> {
        vec![false; filters.len()]
    }

    /// Write support: append rows. Default: unsupported.
    fn insert(&self, _rows: Vec<Row>) -> Result<()> {
        Err(crate::error::CatalystError::DataSource(format!(
            "relation '{}' is read-only",
            self.name()
        )))
    }

    /// Per-column statistics in [`BaseRelation::schema`] field order, if
    /// the source tracks them (colfile row-group stats, columnar-cache
    /// batch stats). `None` — the default — means unknown; consumers must
    /// fall back to declared nullability and unbounded domains.
    fn column_statistics(&self) -> Option<Vec<ColumnStatistics>> {
        None
    }

    /// Downcasting hook for engine-specific integrations.
    fn as_any(&self) -> &dyn Any;
}

/// A relation backed by host-program data the optimizer can't interpret
/// (e.g. an RDD of rows created from native objects, §3.5). The execution
/// layer downcasts `as_any` to recover its handle.
pub trait ExternalData: Send + Sync {
    /// Display name.
    fn name(&self) -> String;
    /// The schema inferred for the native objects.
    fn schema(&self) -> SchemaRef;
    /// Estimated size in bytes, if known.
    fn size_in_bytes(&self) -> Option<u64> {
        None
    }
    /// Downcasting hook.
    fn as_any(&self) -> &dyn Any;
}

/// An in-memory relation materialized from literal rows.
pub struct MemoryTable {
    name: String,
    schema: SchemaRef,
    partitions: Vec<Arc<Vec<Row>>>,
}

impl MemoryTable {
    /// Build from rows, split into `num_partitions` chunks.
    pub fn new(
        name: impl Into<String>,
        schema: SchemaRef,
        rows: Vec<Row>,
        num_partitions: usize,
    ) -> Self {
        let num_partitions = num_partitions.max(1);
        let total = rows.len();
        let base = total / num_partitions;
        let extra = total % num_partitions;
        let mut it = rows.into_iter();
        let mut partitions = Vec::with_capacity(num_partitions);
        for i in 0..num_partitions {
            let len = base + usize::from(i < extra);
            partitions.push(Arc::new(it.by_ref().take(len).collect::<Vec<Row>>()));
        }
        MemoryTable {
            name: name.into(),
            schema,
            partitions,
        }
    }

    /// Total row count.
    pub fn len(&self) -> usize {
        self.partitions.iter().map(|p| p.len()).sum()
    }

    /// True when the table holds no rows.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

impl BaseRelation for MemoryTable {
    fn name(&self) -> String {
        self.name.clone()
    }

    fn schema(&self) -> SchemaRef {
        self.schema.clone()
    }

    fn size_in_bytes(&self) -> Option<u64> {
        Some(self.len() as u64 * self.schema.approx_row_bytes())
    }

    fn row_count(&self) -> Option<u64> {
        Some(self.len() as u64)
    }

    fn capability(&self) -> ScanCapability {
        ScanCapability::TableScan
    }

    fn num_partitions(&self) -> usize {
        self.partitions.len()
    }

    fn scan_partition(
        &self,
        partition: usize,
        _projection: Option<&[usize]>,
        _filters: &[Filter],
    ) -> Result<RowIter> {
        let rows = self.partitions[partition].clone();
        Ok(Box::new((0..rows.len()).map(move |i| rows[i].clone())))
    }

    fn column_statistics(&self) -> Option<Vec<ColumnStatistics>> {
        // Exact single-pass stats; skipped for very large tables to keep
        // planning cheap.
        const STATS_CAP: usize = 65_536;
        let total = self.len() as u64;
        if total as usize > STATS_CAP {
            return None;
        }
        let mut out: Vec<ColumnStatistics> = (0..self.schema.len())
            .map(|_| ColumnStatistics {
                null_count: Some(0),
                row_count: Some(total),
                ..Default::default()
            })
            .collect();
        let mut sketches: Vec<crate::ndv::NdvSketch> =
            vec![crate::ndv::NdvSketch::default(); self.schema.len()];
        for part in &self.partitions {
            for row in part.iter() {
                for (i, s) in out.iter_mut().enumerate() {
                    let v = row.get(i);
                    if v.is_null() {
                        s.null_count = s.null_count.map(|n| n + 1);
                        continue;
                    }
                    sketches[i].insert(v);
                    use std::cmp::Ordering;
                    match &s.min {
                        Some(m) if v.sql_cmp(m) != Some(Ordering::Less) => {}
                        _ => s.min = Some(v.clone()),
                    }
                    match &s.max {
                        Some(m) if v.sql_cmp(m) != Some(Ordering::Greater) => {}
                        _ => s.max = Some(v.clone()),
                    }
                }
            }
        }
        for (s, sk) in out.iter_mut().zip(&sketches) {
            s.ndv = Some(sk.estimate());
        }
        Some(out)
    }

    fn as_any(&self) -> &dyn Any {
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::Schema;
    use crate::types::{DataType, StructField};

    #[test]
    fn filter_matching() {
        assert!(Filter::Eq("x".into(), Value::Int(5)).matches(&Value::Int(5)));
        assert!(Filter::Gt("x".into(), Value::Int(5)).matches(&Value::Int(6)));
        assert!(!Filter::Gt("x".into(), Value::Int(5)).matches(&Value::Null));
        assert!(Filter::In("x".into(), vec![Value::Int(1), Value::Int(2)]).matches(&Value::Int(2)));
        assert!(Filter::StringStartsWith("s".into(), "he".into()).matches(&Value::str("hello")));
        assert!(Filter::IsNull("s".into()).matches(&Value::Null));
    }

    #[test]
    fn memory_table_partitions_and_scans() {
        let schema = Arc::new(Schema::new(vec![StructField::new(
            "x",
            DataType::Int,
            false,
        )]));
        let rows: Vec<Row> = (0..10).map(|i| Row::new(vec![Value::Int(i)])).collect();
        let t = MemoryTable::new("t", schema, rows, 3);
        assert_eq!(t.num_partitions(), 3);
        let mut all = Vec::new();
        for p in 0..3 {
            all.extend(t.scan_partition(p, None, &[]).unwrap());
        }
        assert_eq!(all.len(), 10);
        assert_eq!(t.row_count(), Some(10));
        assert!(t.size_in_bytes().unwrap() > 0);
    }
}
