//! User-defined types (§4.4.2): Catalyst's second public extension point.
//!
//! A UDT maps a host-language type to a structure of built-in Catalyst
//! types by providing `serialize`/`deserialize`. Registered types then
//! flow through every part of the engine — columnar caching, data
//! sources, UDFs — as plain structs of built-in values.

use crate::error::{CatalystError, Result};
use crate::row::Row;
use crate::types::DataType;
use parking_lot::RwLock;
use std::collections::HashMap;
use std::sync::Arc;

/// Mapping between a user type `T` and rows of built-in values.
pub trait UserDefinedType<T>: Send + Sync {
    /// The built-in structure backing the type (usually a struct type).
    fn data_type(&self) -> DataType;
    /// Convert a `T` into its built-in representation.
    fn serialize(&self, value: &T) -> Row;
    /// Reconstruct a `T` from its built-in representation.
    fn deserialize(&self, row: &Row) -> Result<T>;
    /// Registered name.
    fn name(&self) -> &str;
}

/// Type-erased UDT registration info kept by the registry.
#[derive(Clone)]
pub struct UdtInfo {
    /// Registered name.
    pub name: Arc<str>,
    /// Backing built-in type.
    pub sql_type: DataType,
}

/// Registry of user-defined types known to a session.
#[derive(Default)]
pub struct UdtRegistry {
    types: RwLock<HashMap<String, UdtInfo>>,
}

impl UdtRegistry {
    /// Register a UDT by name.
    pub fn register(&self, name: impl Into<String>, sql_type: DataType) {
        let name = name.into();
        let info = UdtInfo {
            name: Arc::from(name.as_str()),
            sql_type,
        };
        self.types.write().insert(name.to_ascii_lowercase(), info);
    }

    /// Look up a UDT.
    pub fn get(&self, name: &str) -> Result<UdtInfo> {
        self.types
            .read()
            .get(&name.to_ascii_lowercase())
            .cloned()
            .ok_or_else(|| CatalystError::analysis(format!("unknown user-defined type '{name}'")))
    }

    /// Names of all registered UDTs.
    pub fn names(&self) -> Vec<String> {
        let mut names: Vec<String> = self
            .types
            .read()
            .values()
            .map(|i| i.name.to_string())
            .collect();
        names.sort();
        names
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::types::StructField;
    use crate::value::Value;

    /// The paper's §4.4.2 example: two-dimensional points as two DOUBLEs.
    #[derive(Debug, Clone, PartialEq)]
    struct Point {
        x: f64,
        y: f64,
    }

    struct PointUdt;

    impl UserDefinedType<Point> for PointUdt {
        fn data_type(&self) -> DataType {
            DataType::struct_type(vec![
                StructField::new("x", DataType::Double, false),
                StructField::new("y", DataType::Double, false),
            ])
        }

        fn serialize(&self, p: &Point) -> Row {
            Row::new(vec![Value::Double(p.x), Value::Double(p.y)])
        }

        fn deserialize(&self, row: &Row) -> Result<Point> {
            Ok(Point {
                x: row.get_double(0),
                y: row.get_double(1),
            })
        }

        fn name(&self) -> &str {
            "point"
        }
    }

    #[test]
    fn point_udt_roundtrips() {
        let udt = PointUdt;
        let p = Point { x: 1.5, y: -2.0 };
        let row = udt.serialize(&p);
        assert_eq!(row.len(), 2);
        assert_eq!(udt.deserialize(&row).unwrap(), p);
    }

    #[test]
    fn registry_lookup_is_case_insensitive() {
        let reg = UdtRegistry::default();
        reg.register("Point", PointUdt.data_type());
        let info = reg.get("POINT").unwrap();
        assert_eq!(info.sql_type, PointUdt.data_type());
        assert!(reg.get("vector").is_err());
        assert_eq!(reg.names(), vec!["Point".to_string()]);
    }
}
