//! EXPLAIN-style pretty printing for logical plans.

use super::logical::LogicalPlan;
use std::fmt;

impl LogicalPlan {
    /// One-line description of this node (no children).
    pub fn node_description(&self) -> String {
        match self {
            LogicalPlan::UnresolvedRelation { name } => format!("UnresolvedRelation [{name}]"),
            LogicalPlan::Scan {
                relation, filters, ..
            } => {
                if filters.is_empty() {
                    format!("Scan {}", relation.name())
                } else {
                    let fs: Vec<String> = filters.iter().map(|f| f.to_string()).collect();
                    format!("Scan {} [pushed: {}]", relation.name(), fs.join(", "))
                }
            }
            LogicalPlan::External { data, .. } => format!("ExternalScan {}", data.name()),
            LogicalPlan::LocalRelation { rows, output } => {
                let cols: Vec<&str> = output.iter().map(|c| c.name.as_ref()).collect();
                format!("LocalRelation [{}] ({} rows)", cols.join(", "), rows.len())
            }
            LogicalPlan::Project { exprs, .. } => {
                let es: Vec<String> = exprs.iter().map(|e| e.to_string()).collect();
                format!("Project [{}]", es.join(", "))
            }
            LogicalPlan::Filter { predicate, .. } => format!("Filter {predicate}"),
            LogicalPlan::Join {
                join_type,
                condition,
                ..
            } => match condition {
                Some(c) => format!("Join {} ON {c}", join_type.keyword()),
                None => format!("Join {}", join_type.keyword()),
            },
            LogicalPlan::Aggregate {
                groupings,
                aggregates,
                ..
            } => {
                let gs: Vec<String> = groupings.iter().map(|e| e.to_string()).collect();
                let as_: Vec<String> = aggregates.iter().map(|e| e.to_string()).collect();
                format!("Aggregate [{}] [{}]", gs.join(", "), as_.join(", "))
            }
            LogicalPlan::Window {
                window_exprs,
                partition_by,
                order_by,
                ..
            } => {
                let ws: Vec<String> = window_exprs.iter().map(|e| e.to_string()).collect();
                let ps: Vec<String> = partition_by.iter().map(|e| e.to_string()).collect();
                let os: Vec<String> = order_by
                    .iter()
                    .map(|o| format!("{} {}", o.expr, if o.ascending { "ASC" } else { "DESC" }))
                    .collect();
                format!(
                    "Window [{}] partition=[{}] order=[{}]",
                    ws.join(", "),
                    ps.join(", "),
                    os.join(", ")
                )
            }
            LogicalPlan::Sort { orders, .. } => {
                let os: Vec<String> = orders
                    .iter()
                    .map(|o| format!("{} {}", o.expr, if o.ascending { "ASC" } else { "DESC" }))
                    .collect();
                format!("Sort [{}]", os.join(", "))
            }
            LogicalPlan::Limit { n, .. } => format!("Limit {n}"),
            LogicalPlan::Union { inputs } => format!("Union ({} inputs)", inputs.len()),
            LogicalPlan::Distinct { .. } => "Distinct".to_string(),
            LogicalPlan::SubqueryAlias { alias, .. } => format!("SubqueryAlias {alias}"),
            LogicalPlan::Sample { fraction, .. } => format!("Sample {fraction}"),
        }
    }

    fn fmt_indent(&self, f: &mut fmt::Formatter<'_>, indent: usize) -> fmt::Result {
        for _ in 0..indent {
            write!(f, "  ")?;
        }
        writeln!(f, "{}", self.node_description())?;
        for c in self.children() {
            c.fmt_indent(f, indent + 1)?;
        }
        Ok(())
    }
}

impl fmt::Display for LogicalPlan {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        self.fmt_indent(f, 0)
    }
}

impl fmt::Debug for LogicalPlan {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{self}")
    }
}

#[cfg(test)]
mod tests {
    use crate::expr::builders::{col, lit};
    use crate::expr::ColumnRef;
    use crate::plan::LogicalPlan;
    use crate::types::DataType;
    use std::sync::Arc;

    #[test]
    fn renders_tree_with_indentation() {
        let plan = LogicalPlan::LocalRelation {
            output: vec![ColumnRef::new("a", DataType::Long, false)],
            rows: Arc::new(vec![]),
        }
        .filter(col("a").gt(lit(1i64)))
        .project(vec![col("a")])
        .limit(5);
        let text = plan.to_string();
        assert!(text.starts_with("Limit 5"));
        assert!(text.contains("\n  Project"));
        assert!(text.contains("\n    Filter"));
        assert!(text.contains("\n      LocalRelation"));
    }
}
