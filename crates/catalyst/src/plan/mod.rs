//! Logical query plans.

pub mod display;
pub mod logical;

pub use logical::{JoinType, LogicalPlan};
