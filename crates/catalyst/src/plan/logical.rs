//! The logical plan tree: what DataFrames and SQL queries build, what the
//! analyzer resolves, and what the optimizer rewrites.

use crate::expr::{ColumnRef, Expr, SortOrder};
use crate::row::Row;
use crate::schema::{Schema, SchemaRef};
use crate::source::{BaseRelation, ExternalData};
use crate::tree::{Transformed, TreeNode};
use std::sync::Arc;

/// Join flavors.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum JoinType {
    /// Only matching pairs.
    Inner,
    /// All left rows, nulls for unmatched right.
    Left,
    /// All right rows, nulls for unmatched left.
    Right,
    /// All rows from both sides.
    Full,
    /// Cartesian product (no condition).
    Cross,
}

impl JoinType {
    /// SQL keyword for display.
    pub fn keyword(self) -> &'static str {
        match self {
            JoinType::Inner => "INNER",
            JoinType::Left => "LEFT OUTER",
            JoinType::Right => "RIGHT OUTER",
            JoinType::Full => "FULL OUTER",
            JoinType::Cross => "CROSS",
        }
    }
}

/// A node in the logical plan tree.
#[derive(Clone)]
pub enum LogicalPlan {
    /// A table name not yet looked up in the catalog.
    UnresolvedRelation {
        /// Table name.
        name: String,
    },
    /// A scan over a data source relation.
    Scan {
        /// The source relation.
        relation: Arc<dyn BaseRelation>,
        /// Output attributes (created once, ids stable).
        output: Vec<ColumnRef>,
        /// Predicates logically pushed into the scan (converted to source
        /// [`crate::source::Filter`]s at physical planning).
        filters: Vec<Expr>,
    },
    /// A scan over host-program data (an RDD of native objects, §3.5).
    External {
        /// Opaque handle the execution layer downcasts.
        data: Arc<dyn ExternalData>,
        /// Output attributes.
        output: Vec<ColumnRef>,
    },
    /// Literal rows known at plan time.
    LocalRelation {
        /// Output attributes.
        output: Vec<ColumnRef>,
        /// The rows.
        rows: Arc<Vec<Row>>,
    },
    /// Column-level transformation (SELECT list).
    Project {
        /// Input plan.
        input: Arc<LogicalPlan>,
        /// Projection expressions.
        exprs: Vec<Expr>,
    },
    /// Row filter (WHERE).
    Filter {
        /// Input plan.
        input: Arc<LogicalPlan>,
        /// Boolean predicate.
        predicate: Expr,
    },
    /// Binary join.
    Join {
        /// Left input.
        left: Arc<LogicalPlan>,
        /// Right input.
        right: Arc<LogicalPlan>,
        /// Flavor.
        join_type: JoinType,
        /// ON condition (None for cross joins).
        condition: Option<Expr>,
    },
    /// Grouped aggregation; `aggregates` is the full output list (grouping
    /// expressions and/or aggregate functions), as in Spark.
    Aggregate {
        /// Input plan.
        input: Arc<LogicalPlan>,
        /// GROUP BY expressions.
        groupings: Vec<Expr>,
        /// Output expressions.
        aggregates: Vec<Expr>,
    },
    /// Total-order sort.
    Sort {
        /// Input plan.
        input: Arc<LogicalPlan>,
        /// Sort keys.
        orders: Vec<SortOrder>,
    },
    /// Row-count limit.
    Limit {
        /// Input plan.
        input: Arc<LogicalPlan>,
        /// Max rows.
        n: usize,
    },
    /// Bag union of same-schema inputs.
    Union {
        /// Inputs.
        inputs: Vec<Arc<LogicalPlan>>,
    },
    /// Duplicate elimination.
    Distinct {
        /// Input plan.
        input: Arc<LogicalPlan>,
    },
    /// Renames the relation (FROM alias / registered temp view) — output
    /// ids are preserved, only the qualifier changes.
    SubqueryAlias {
        /// Input plan.
        input: Arc<LogicalPlan>,
        /// New qualifier.
        alias: Arc<str>,
    },
    /// Window-function evaluation over sorted partitions. The output is
    /// the input columns followed by one column per window expression;
    /// all expressions in one node share the same PARTITION BY / ORDER
    /// BY (the SQL planner stacks nodes for distinct window specs).
    Window {
        /// Input plan.
        input: Arc<LogicalPlan>,
        /// Aliased [`Expr::WindowFunction`] expressions, one appended
        /// output column each.
        window_exprs: Vec<Expr>,
        /// Shared PARTITION BY expressions.
        partition_by: Vec<Expr>,
        /// Shared within-partition ORDER BY keys.
        order_by: Vec<SortOrder>,
    },
    /// Bernoulli sample (used by the §7.1 online-aggregation extension).
    Sample {
        /// Input plan.
        input: Arc<LogicalPlan>,
        /// Sampling fraction in [0, 1].
        fraction: f64,
        /// Deterministic seed.
        seed: u64,
    },
}

impl LogicalPlan {
    /// Output attributes of this node.
    pub fn output(&self) -> Vec<ColumnRef> {
        match self {
            LogicalPlan::UnresolvedRelation { .. } => vec![],
            LogicalPlan::Scan { output, .. }
            | LogicalPlan::External { output, .. }
            | LogicalPlan::LocalRelation { output, .. } => output.clone(),
            LogicalPlan::Project { exprs, .. } => {
                exprs.iter().filter_map(|e| e.to_attribute().ok()).collect()
            }
            LogicalPlan::Filter { input, .. }
            | LogicalPlan::Sort { input, .. }
            | LogicalPlan::Limit { input, .. }
            | LogicalPlan::Distinct { input }
            | LogicalPlan::Sample { input, .. } => input.output(),
            LogicalPlan::Join {
                left,
                right,
                join_type,
                ..
            } => {
                let mut out = left.output();
                let mut r = right.output();
                // Outer sides become nullable.
                match join_type {
                    JoinType::Left => r.iter_mut().for_each(|c| c.nullable = true),
                    JoinType::Right => out.iter_mut().for_each(|c| c.nullable = true),
                    JoinType::Full => {
                        out.iter_mut().for_each(|c| c.nullable = true);
                        r.iter_mut().for_each(|c| c.nullable = true);
                    }
                    _ => {}
                }
                out.extend(r);
                out
            }
            LogicalPlan::Aggregate { aggregates, .. } => aggregates
                .iter()
                .filter_map(|e| e.to_attribute().ok())
                .collect(),
            LogicalPlan::Window {
                input,
                window_exprs,
                ..
            } => {
                let mut out = input.output();
                out.extend(window_exprs.iter().filter_map(|e| e.to_attribute().ok()));
                out
            }
            LogicalPlan::Union { inputs } => inputs.first().map(|i| i.output()).unwrap_or_default(),
            LogicalPlan::SubqueryAlias { input, alias } => input
                .output()
                .into_iter()
                .map(|mut c| {
                    c.qualifier = Some(alias.clone());
                    c
                })
                .collect(),
        }
    }

    /// Schema derived from [`LogicalPlan::output`].
    pub fn schema(&self) -> SchemaRef {
        Arc::new(
            self.output()
                .into_iter()
                .map(|c| crate::types::StructField::new(c.name, c.dtype, c.nullable))
                .collect::<Schema>(),
        )
    }

    /// Direct children.
    pub fn children(&self) -> Vec<Arc<LogicalPlan>> {
        match self {
            LogicalPlan::UnresolvedRelation { .. }
            | LogicalPlan::Scan { .. }
            | LogicalPlan::External { .. }
            | LogicalPlan::LocalRelation { .. } => vec![],
            LogicalPlan::Project { input, .. }
            | LogicalPlan::Filter { input, .. }
            | LogicalPlan::Aggregate { input, .. }
            | LogicalPlan::Sort { input, .. }
            | LogicalPlan::Limit { input, .. }
            | LogicalPlan::Distinct { input }
            | LogicalPlan::SubqueryAlias { input, .. }
            | LogicalPlan::Window { input, .. }
            | LogicalPlan::Sample { input, .. } => vec![input.clone()],
            LogicalPlan::Join { left, right, .. } => vec![left.clone(), right.clone()],
            LogicalPlan::Union { inputs } => inputs.clone(),
        }
    }

    /// Expressions held directly by this node (not descendants').
    pub fn expressions(&self) -> Vec<Expr> {
        match self {
            LogicalPlan::Project { exprs, .. } => exprs.clone(),
            LogicalPlan::Filter { predicate, .. } => vec![predicate.clone()],
            LogicalPlan::Scan { filters, .. } => filters.clone(),
            LogicalPlan::Join { condition, .. } => condition.iter().cloned().collect(),
            LogicalPlan::Aggregate {
                groupings,
                aggregates,
                ..
            } => groupings.iter().chain(aggregates.iter()).cloned().collect(),
            LogicalPlan::Sort { orders, .. } => orders.iter().map(|o| o.expr.clone()).collect(),
            LogicalPlan::Window {
                window_exprs,
                partition_by,
                order_by,
                ..
            } => window_exprs
                .iter()
                .chain(partition_by.iter())
                .cloned()
                .chain(order_by.iter().map(|o| o.expr.clone()))
                .collect(),
            _ => vec![],
        }
    }

    /// Rebuild this node with its expressions rewritten by `f`.
    pub fn map_expressions(
        self,
        f: &mut dyn FnMut(Expr) -> Transformed<Expr>,
    ) -> Transformed<LogicalPlan> {
        let mut ch = false;
        let mut apply = |e: Expr| {
            let t = f(e);
            ch |= t.changed;
            t.data
        };
        let out = match self {
            LogicalPlan::Project { input, exprs } => LogicalPlan::Project {
                input,
                exprs: exprs.into_iter().map(&mut apply).collect(),
            },
            LogicalPlan::Filter { input, predicate } => LogicalPlan::Filter {
                input,
                predicate: apply(predicate),
            },
            LogicalPlan::Scan {
                relation,
                output,
                filters,
            } => LogicalPlan::Scan {
                relation,
                output,
                filters: filters.into_iter().map(&mut apply).collect(),
            },
            LogicalPlan::Join {
                left,
                right,
                join_type,
                condition,
            } => LogicalPlan::Join {
                left,
                right,
                join_type,
                condition: condition.map(&mut apply),
            },
            LogicalPlan::Aggregate {
                input,
                groupings,
                aggregates,
            } => LogicalPlan::Aggregate {
                input,
                groupings: groupings.into_iter().map(&mut apply).collect(),
                aggregates: aggregates.into_iter().map(&mut apply).collect(),
            },
            LogicalPlan::Sort { input, orders } => LogicalPlan::Sort {
                input,
                orders: orders
                    .into_iter()
                    .map(|o| SortOrder {
                        expr: apply(o.expr),
                        ascending: o.ascending,
                    })
                    .collect(),
            },
            LogicalPlan::Window {
                input,
                window_exprs,
                partition_by,
                order_by,
            } => LogicalPlan::Window {
                input,
                window_exprs: window_exprs.into_iter().map(&mut apply).collect(),
                partition_by: partition_by.into_iter().map(&mut apply).collect(),
                order_by: order_by
                    .into_iter()
                    .map(|o| SortOrder {
                        expr: apply(o.expr),
                        ascending: o.ascending,
                    })
                    .collect(),
            },
            other => other,
        };
        Transformed {
            data: out,
            changed: ch,
        }
    }

    /// The paper's `transformAllExpressions`: rewrite every expression in
    /// every node of the plan, bottom-up on both trees.
    pub fn transform_all_expressions(
        self,
        f: &mut dyn FnMut(Expr) -> Transformed<Expr>,
    ) -> Transformed<LogicalPlan> {
        self.transform_up(&mut |plan| plan.map_expressions(&mut |e| e.transform_up(f)))
    }

    /// True once analysis has resolved every name in the subtree.
    pub fn is_resolved(&self) -> bool {
        let mut ok = true;
        self.for_each(&mut |p| {
            if matches!(p, LogicalPlan::UnresolvedRelation { .. }) {
                ok = false;
            }
            for e in p.expressions() {
                if !e.is_resolved() {
                    ok = false;
                }
            }
        });
        ok
    }

    // ---- construction helpers (used by the DataFrame API and the SQL
    // planner; plans built this way are unanalyzed) ----

    /// Wrap in a projection.
    pub fn project(self, exprs: Vec<Expr>) -> LogicalPlan {
        LogicalPlan::Project {
            input: Arc::new(self),
            exprs,
        }
    }

    /// Wrap in a filter.
    pub fn filter(self, predicate: Expr) -> LogicalPlan {
        LogicalPlan::Filter {
            input: Arc::new(self),
            predicate,
        }
    }

    /// Join with another plan.
    pub fn join(
        self,
        right: LogicalPlan,
        join_type: JoinType,
        condition: Option<Expr>,
    ) -> LogicalPlan {
        LogicalPlan::Join {
            left: Arc::new(self),
            right: Arc::new(right),
            join_type,
            condition,
        }
    }

    /// Group and aggregate.
    pub fn aggregate(self, groupings: Vec<Expr>, aggregates: Vec<Expr>) -> LogicalPlan {
        LogicalPlan::Aggregate {
            input: Arc::new(self),
            groupings,
            aggregates,
        }
    }

    /// Sort.
    pub fn sort(self, orders: Vec<SortOrder>) -> LogicalPlan {
        LogicalPlan::Sort {
            input: Arc::new(self),
            orders,
        }
    }

    /// Limit.
    pub fn limit(self, n: usize) -> LogicalPlan {
        LogicalPlan::Limit {
            input: Arc::new(self),
            n,
        }
    }

    /// Distinct.
    pub fn distinct(self) -> LogicalPlan {
        LogicalPlan::Distinct {
            input: Arc::new(self),
        }
    }

    /// Alias the relation.
    pub fn subquery_alias(self, alias: impl Into<Arc<str>>) -> LogicalPlan {
        LogicalPlan::SubqueryAlias {
            input: Arc::new(self),
            alias: alias.into(),
        }
    }

    /// Append window-function columns.
    pub fn window(
        self,
        window_exprs: Vec<Expr>,
        partition_by: Vec<Expr>,
        order_by: Vec<SortOrder>,
    ) -> LogicalPlan {
        LogicalPlan::Window {
            input: Arc::new(self),
            window_exprs,
            partition_by,
            order_by,
        }
    }

    /// Bernoulli sample.
    pub fn sample(self, fraction: f64, seed: u64) -> LogicalPlan {
        LogicalPlan::Sample {
            input: Arc::new(self),
            fraction,
            seed,
        }
    }

    /// Union with other plans.
    pub fn union(self, others: Vec<LogicalPlan>) -> LogicalPlan {
        let mut inputs = vec![Arc::new(self)];
        inputs.extend(others.into_iter().map(Arc::new));
        LogicalPlan::Union { inputs }
    }

    /// An empty relation with the given output attributes (what
    /// `Filter(false)` simplifies to).
    pub fn empty(output: Vec<ColumnRef>) -> LogicalPlan {
        LogicalPlan::LocalRelation {
            output,
            rows: Arc::new(vec![]),
        }
    }
}

impl TreeNode for LogicalPlan {
    fn map_children(
        self,
        f: &mut dyn FnMut(LogicalPlan) -> Transformed<LogicalPlan>,
    ) -> Transformed<LogicalPlan> {
        let mut ch = false;
        let mut apply = |p: Arc<LogicalPlan>| {
            let t = f((*p).clone());
            ch |= t.changed;
            Arc::new(t.data)
        };
        let out = match self {
            leaf @ (LogicalPlan::UnresolvedRelation { .. }
            | LogicalPlan::Scan { .. }
            | LogicalPlan::External { .. }
            | LogicalPlan::LocalRelation { .. }) => leaf,
            LogicalPlan::Project { input, exprs } => LogicalPlan::Project {
                input: apply(input),
                exprs,
            },
            LogicalPlan::Filter { input, predicate } => LogicalPlan::Filter {
                input: apply(input),
                predicate,
            },
            LogicalPlan::Join {
                left,
                right,
                join_type,
                condition,
            } => LogicalPlan::Join {
                left: apply(left),
                right: apply(right),
                join_type,
                condition,
            },
            LogicalPlan::Aggregate {
                input,
                groupings,
                aggregates,
            } => LogicalPlan::Aggregate {
                input: apply(input),
                groupings,
                aggregates,
            },
            LogicalPlan::Sort { input, orders } => LogicalPlan::Sort {
                input: apply(input),
                orders,
            },
            LogicalPlan::Limit { input, n } => LogicalPlan::Limit {
                input: apply(input),
                n,
            },
            LogicalPlan::Union { inputs } => LogicalPlan::Union {
                inputs: inputs.into_iter().map(&mut apply).collect(),
            },
            LogicalPlan::Distinct { input } => LogicalPlan::Distinct {
                input: apply(input),
            },
            LogicalPlan::SubqueryAlias { input, alias } => LogicalPlan::SubqueryAlias {
                input: apply(input),
                alias,
            },
            LogicalPlan::Window {
                input,
                window_exprs,
                partition_by,
                order_by,
            } => LogicalPlan::Window {
                input: apply(input),
                window_exprs,
                partition_by,
                order_by,
            },
            LogicalPlan::Sample {
                input,
                fraction,
                seed,
            } => LogicalPlan::Sample {
                input: apply(input),
                fraction,
                seed,
            },
        };
        Transformed {
            data: out,
            changed: ch,
        }
    }

    fn for_each(&self, f: &mut dyn FnMut(&LogicalPlan)) {
        f(self);
        for c in self.children() {
            c.for_each(f);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::expr::builders::{col, count, lit};
    use crate::expr::ColumnRef;
    use crate::types::DataType;

    fn leaf() -> LogicalPlan {
        LogicalPlan::LocalRelation {
            output: vec![
                ColumnRef::new("a", DataType::Long, false),
                ColumnRef::new("b", DataType::String, true),
            ],
            rows: Arc::new(vec![]),
        }
    }

    #[test]
    fn output_flows_through_unary_nodes() {
        let p = leaf().filter(col("a").gt(lit(1i64))).limit(10);
        assert_eq!(p.output().len(), 2);
        assert_eq!(p.schema().field(0).name.as_ref(), "a");
    }

    #[test]
    fn join_output_concatenates_and_nullifies() {
        let l = leaf();
        let r = leaf();
        let j = l.join(r, JoinType::Left, None);
        let out = j.output();
        assert_eq!(out.len(), 4);
        assert!(!out[0].nullable);
        assert!(
            out[2].nullable,
            "right side of a left join becomes nullable"
        );
    }

    #[test]
    fn subquery_alias_requalifies_but_keeps_ids() {
        let base = leaf();
        let id_before = base.output()[0].id;
        let aliased = base.subquery_alias("t");
        let out = aliased.output();
        assert_eq!(out[0].qualifier.as_deref(), Some("t"));
        assert_eq!(out[0].id, id_before);
    }

    #[test]
    fn is_resolved_detects_unresolved_names() {
        let p = leaf().filter(col("missing").gt(lit(1)));
        assert!(!p.is_resolved()); // col("missing") is an UnresolvedAttribute
        let resolved_leaf = leaf();
        let a = resolved_leaf.output()[0].clone();
        let p = resolved_leaf.filter(Expr::Column(a).gt(lit(1i64)));
        assert!(p.is_resolved());
        let u = LogicalPlan::UnresolvedRelation { name: "t".into() };
        assert!(!u.is_resolved());
    }

    #[test]
    fn transform_all_expressions_reaches_nested_nodes() {
        let p = leaf()
            .filter(col("a").gt(lit(1i64)))
            .aggregate(vec![col("b")], vec![count(col("a")).alias("n")]);
        let out = p.transform_all_expressions(&mut |e| match e {
            Expr::Literal(_) => Transformed::yes(Expr::Literal(crate::value::Value::Long(99))),
            other => Transformed::no(other),
        });
        assert!(out.changed);
        let mut found = false;
        out.data.for_each(&mut |n| {
            for e in n.expressions() {
                e.for_each_node(&mut |e| {
                    if matches!(e, Expr::Literal(crate::value::Value::Long(99))) {
                        found = true;
                    }
                });
            }
        });
        assert!(found);
    }
}
