//! The Spark SQL data model (§3.2): all major SQL data types plus
//! first-class complex types (structs, arrays, maps) that can nest, and
//! user-defined types that map onto built-in structures (§4.4.2).

use std::fmt;
use std::sync::Arc;

/// A field of a struct type or a table schema.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct StructField {
    /// Field name.
    pub name: Arc<str>,
    /// Field type.
    pub dtype: DataType,
    /// Whether nulls may appear.
    pub nullable: bool,
}

impl StructField {
    /// Create a field.
    pub fn new(name: impl Into<Arc<str>>, dtype: DataType, nullable: bool) -> Self {
        StructField {
            name: name.into(),
            dtype,
            nullable,
        }
    }
}

/// Data types supported by the engine.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum DataType {
    /// The type of `NULL` literals before coercion.
    Null,
    /// Booleans.
    Boolean,
    /// 32-bit signed integers.
    Int,
    /// 64-bit signed integers.
    Long,
    /// 32-bit IEEE floats.
    Float,
    /// 64-bit IEEE floats.
    Double,
    /// Fixed-precision decimal: (precision, scale), stored unscaled in an
    /// `i128`.
    Decimal(u8, u8),
    /// UTF-8 strings.
    String,
    /// Days since the Unix epoch.
    Date,
    /// Microseconds since the Unix epoch.
    Timestamp,
    /// Raw bytes.
    Binary,
    /// Variable-length array of one element type.
    Array(Box<DataType>),
    /// Nested record.
    Struct(Arc<Vec<StructField>>),
    /// Key/value map (represented as sorted pairs).
    Map(Box<DataType>, Box<DataType>),
}

impl DataType {
    /// Struct type helper.
    pub fn struct_type(fields: Vec<StructField>) -> DataType {
        DataType::Struct(Arc::new(fields))
    }

    /// True for Int/Long/Float/Double/Decimal.
    pub fn is_numeric(&self) -> bool {
        matches!(
            self,
            DataType::Int
                | DataType::Long
                | DataType::Float
                | DataType::Double
                | DataType::Decimal(_, _)
        )
    }

    /// True for Int/Long.
    pub fn is_integral(&self) -> bool {
        matches!(self, DataType::Int | DataType::Long)
    }

    /// True for Float/Double.
    pub fn is_floating(&self) -> bool {
        matches!(self, DataType::Float | DataType::Double)
    }

    /// True if values of this type have a total order usable in ORDER BY
    /// and range partitioning.
    pub fn is_orderable(&self) -> bool {
        !matches!(self, DataType::Map(_, _))
    }

    /// The most specific common supertype of two types, if any — the
    /// lattice used by both type coercion (§4.3.1) and JSON schema
    /// inference (§5.1, "most specific supertype" merge).
    pub fn tightest_common_type(a: &DataType, b: &DataType) -> Option<DataType> {
        use DataType::*;
        if a == b {
            return Some(a.clone());
        }
        match (a, b) {
            (Null, t) | (t, Null) => Some(t.clone()),
            // Numeric precedence lattice (as in Spark SQL):
            // Int < Long < Float < Double.
            (Int, Long) | (Long, Int) => Some(Long),
            (Float, Double) | (Double, Float) => Some(Double),
            (i, Float) | (Float, i) if i.is_integral() => Some(Float),
            (i, Double) | (Double, i) if i.is_integral() => Some(Double),
            // Decimal unifies with any numeric by widening.
            (Decimal(p1, s1), Decimal(p2, s2)) => {
                let scale = (*s1).max(*s2);
                let whole = (p1 - s1).max(p2 - s2);
                Some(Decimal((whole + scale).min(38), scale))
            }
            (Decimal(_, s), t) | (t, Decimal(_, s)) if t.is_integral() => {
                Some(Decimal(38.min(20 + s), *s))
            }
            (Decimal(_, _), t) | (t, Decimal(_, _)) if t.is_floating() => Some(Double),
            // Arrays merge element-wise.
            (Array(x), Array(y)) => {
                DataType::tightest_common_type(x, y).map(|e| Array(Box::new(e)))
            }
            // Structs merge field-wise by name (union of fields; a field
            // missing on one side becomes nullable).
            (Struct(fa), Struct(fb)) => {
                let mut fields: Vec<StructField> = Vec::new();
                for f in fa.iter() {
                    match fb.iter().find(|g| g.name == f.name) {
                        Some(g) => {
                            let merged = DataType::tightest_common_type(&f.dtype, &g.dtype)?;
                            fields.push(StructField::new(
                                f.name.clone(),
                                merged,
                                f.nullable || g.nullable,
                            ));
                        }
                        None => {
                            fields.push(StructField::new(f.name.clone(), f.dtype.clone(), true))
                        }
                    }
                }
                for g in fb.iter() {
                    if !fa.iter().any(|f| f.name == g.name) {
                        fields.push(StructField::new(g.name.clone(), g.dtype.clone(), true));
                    }
                }
                Some(DataType::struct_type(fields))
            }
            // Anything else generalizes to String, preserving the original
            // representation (§5.1: "for fields that display multiple
            // types, Spark SQL uses STRING as the most generic type").
            _ => Some(String),
        }
    }

    /// Rough per-value size in bytes, used by the cost model.
    pub fn approx_value_bytes(&self) -> u64 {
        match self {
            DataType::Null => 1,
            DataType::Boolean => 1,
            DataType::Int | DataType::Float | DataType::Date => 4,
            DataType::Long | DataType::Double | DataType::Timestamp => 8,
            DataType::Decimal(_, _) => 16,
            DataType::String | DataType::Binary => 24,
            DataType::Array(e) => 8 + 4 * e.approx_value_bytes(),
            DataType::Struct(fs) => fs.iter().map(|f| f.dtype.approx_value_bytes()).sum(),
            DataType::Map(k, v) => 8 + 4 * (k.approx_value_bytes() + v.approx_value_bytes()),
        }
    }
}

impl fmt::Display for DataType {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DataType::Null => write!(f, "NULL"),
            DataType::Boolean => write!(f, "BOOLEAN"),
            DataType::Int => write!(f, "INT"),
            DataType::Long => write!(f, "LONG"),
            DataType::Float => write!(f, "FLOAT"),
            DataType::Double => write!(f, "DOUBLE"),
            DataType::Decimal(p, s) => write!(f, "DECIMAL({p},{s})"),
            DataType::String => write!(f, "STRING"),
            DataType::Date => write!(f, "DATE"),
            DataType::Timestamp => write!(f, "TIMESTAMP"),
            DataType::Binary => write!(f, "BINARY"),
            DataType::Array(e) => write!(f, "ARRAY<{e}>"),
            DataType::Struct(fields) => {
                write!(f, "STRUCT<")?;
                for (i, field) in fields.iter().enumerate() {
                    if i > 0 {
                        write!(f, ", ")?;
                    }
                    write!(f, "{} {}", field.name, field.dtype)?;
                    if !field.nullable {
                        write!(f, " NOT NULL")?;
                    }
                }
                write!(f, ">")
            }
            DataType::Map(k, v) => write!(f, "MAP<{k}, {v}>"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn numeric_widening_lattice() {
        use DataType::*;
        assert_eq!(DataType::tightest_common_type(&Int, &Long), Some(Long));
        assert_eq!(DataType::tightest_common_type(&Int, &Double), Some(Double));
        assert_eq!(
            DataType::tightest_common_type(&Float, &Double),
            Some(Double)
        );
        assert_eq!(DataType::tightest_common_type(&Long, &Float), Some(Float));
        assert_eq!(DataType::tightest_common_type(&Null, &Int), Some(Int));
    }

    #[test]
    fn incompatible_types_generalize_to_string() {
        // The paper's §5.1 rule: mixed-type JSON fields become STRING.
        assert_eq!(
            DataType::tightest_common_type(&DataType::Boolean, &DataType::Int),
            Some(DataType::String)
        );
    }

    #[test]
    fn struct_merge_unions_fields_and_relaxes_nullability() {
        let a = DataType::struct_type(vec![
            StructField::new("lat", DataType::Int, false),
            StructField::new("only_a", DataType::String, false),
        ]);
        let b = DataType::struct_type(vec![StructField::new("lat", DataType::Double, false)]);
        let merged = DataType::tightest_common_type(&a, &b).unwrap();
        if let DataType::Struct(fields) = merged {
            assert_eq!(fields.len(), 2);
            assert_eq!(fields[0].dtype, DataType::Double);
            assert!(!fields[0].nullable);
            assert!(
                fields[1].nullable,
                "field missing on one side becomes nullable"
            );
        } else {
            panic!("expected struct");
        }
    }

    #[test]
    fn array_merge_is_elementwise() {
        let a = DataType::Array(Box::new(DataType::Int));
        let b = DataType::Array(Box::new(DataType::Double));
        assert_eq!(
            DataType::tightest_common_type(&a, &b),
            Some(DataType::Array(Box::new(DataType::Double)))
        );
    }

    #[test]
    fn display_matches_paper_figure6_style() {
        let t = DataType::struct_type(vec![
            StructField::new("lat", DataType::Float, false),
            StructField::new("long", DataType::Float, false),
        ]);
        assert_eq!(
            t.to_string(),
            "STRUCT<lat FLOAT NOT NULL, long FLOAT NOT NULL>"
        );
    }

    #[test]
    fn decimal_merge_widens_precision() {
        let a = DataType::Decimal(10, 2);
        let b = DataType::Decimal(8, 4);
        assert_eq!(
            DataType::tightest_common_type(&a, &b),
            Some(DataType::Decimal(12, 4))
        );
    }
}
