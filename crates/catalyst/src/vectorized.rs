//! Vectorized (batch-at-a-time) expression evaluation.
//!
//! The row-at-a-time Volcano iterator pays a virtual call and a boxed
//! [`Value`] per column per row. This module amortizes that overhead over
//! whole batches: a [`RowBatch`] carries typed column vectors
//! ([`ColumnVector`]) plus an optional *selection vector*, and
//! [`eval_batch`] evaluates an expression tree one **column** at a time
//! with tight loops over primitive lanes — the Shark/Flare-style answer
//! to interpretation overhead that §3.4/§4.3.4 of the paper motivate.
//!
//! Design rules (documented in DESIGN.md):
//!
//! * **Kernels mirror `codegen.rs`.** A kernel exists exactly where the
//!   row-path code generator compiles a closure (Long/Double arithmetic
//!   with Hive division semantics, three-valued AND/OR, string
//!   comparison/concat, numeric casts, null tests). Division or modulo by
//!   zero yields NULL in both paths.
//! * **Anything else falls back per row.** Unsupported nodes (CASE, LIKE,
//!   UDFs, decimals, dates, …) are evaluated with the tree-walking
//!   [`interpreter`] on the *selected* rows only, producing a boxed
//!   [`VectorData::Values`] column. Unselected lanes are never evaluated,
//!   matching the row path where filtered-out rows never reach the
//!   expression.
//! * **Filters select, they don't copy.** A predicate refines the
//!   selection vector; rows are compacted only at the batch→row adapter
//!   boundary ([`RowBatch::into_selected_rows`]).

use crate::error::Result;
use crate::expr::{BinaryOperator, Expr};
use crate::interpreter;
use crate::row::Row;
use crate::types::DataType;
use crate::value::Value;
use std::sync::Arc;

/// Physical lane storage of one [`ColumnVector`].
///
/// `Long` lanes back Int/Long/Date/Timestamp columns and `Double` lanes
/// back Float/Double columns; the vector's declared [`DataType`] decides
/// how lanes are re-tagged into [`Value`]s (and which kernels may touch
/// them — Date/Timestamp lanes are deliberately *not* exposed to numeric
/// kernels, mirroring what the row-path code generator refuses to
/// compile).
#[derive(Debug, Clone)]
pub enum VectorData {
    /// 64-bit integer lanes (Int/Long/Date/Timestamp storage).
    Long(Vec<i64>),
    /// 64-bit float lanes (Float/Double storage).
    Double(Vec<f64>),
    /// Boolean lanes.
    Bool(Vec<bool>),
    /// String lanes (shared, clones are cheap).
    Str(Vec<Arc<str>>),
    /// Boxed values — the universal fallback representation.
    Values(Vec<Value>),
}

impl VectorData {
    fn len(&self) -> usize {
        match self {
            VectorData::Long(v) => v.len(),
            VectorData::Double(v) => v.len(),
            VectorData::Bool(v) => v.len(),
            VectorData::Str(v) => v.len(),
            VectorData::Values(v) => v.len(),
        }
    }
}

/// A typed column of lanes plus an optional null mask.
///
/// `nulls[i] == true` means lane `i` is NULL; the corresponding data lane
/// holds an arbitrary filler and must not be interpreted. A missing mask
/// means no lane is NULL (for typed data) — boxed [`VectorData::Values`]
/// lanes may additionally contain explicit [`Value::Null`]s.
#[derive(Debug, Clone)]
pub struct ColumnVector {
    dtype: DataType,
    data: VectorData,
    nulls: Option<Vec<bool>>,
}

/// A typed view over the numeric lanes of a vector, for kernels.
enum NumLanes<'a> {
    I(&'a [i64]),
    F(&'a [f64]),
}

impl NumLanes<'_> {
    #[inline]
    fn f64_at(&self, i: usize) -> f64 {
        match self {
            NumLanes::I(v) => v[i] as f64,
            NumLanes::F(v) => v[i],
        }
    }
}

impl ColumnVector {
    /// Build a vector from raw parts. `nulls`, when present, must be as
    /// long as `data`.
    pub fn new(dtype: DataType, data: VectorData, nulls: Option<Vec<bool>>) -> ColumnVector {
        debug_assert!(nulls.as_ref().is_none_or(|n| n.len() == data.len()));
        ColumnVector { dtype, data, nulls }
    }

    /// Build a boxed-values vector (the fallback representation).
    pub fn from_boxed(dtype: DataType, values: Vec<Value>) -> ColumnVector {
        ColumnVector {
            dtype,
            data: VectorData::Values(values),
            nulls: None,
        }
    }

    /// Build a typed vector from boxed values, falling back to boxed
    /// storage when a non-null value does not match `dtype`.
    pub fn from_values(dtype: &DataType, values: Vec<Value>) -> ColumnVector {
        let conforms = values.iter().all(|v| match dtype {
            DataType::Int => matches!(v, Value::Int(_) | Value::Null),
            DataType::Long => matches!(v, Value::Long(_) | Value::Null),
            DataType::Date => matches!(v, Value::Date(_) | Value::Null),
            DataType::Timestamp => matches!(v, Value::Timestamp(_) | Value::Null),
            DataType::Float => matches!(v, Value::Float(_) | Value::Null),
            DataType::Double => matches!(v, Value::Double(_) | Value::Null),
            DataType::Boolean => matches!(v, Value::Boolean(_) | Value::Null),
            DataType::String => matches!(v, Value::Str(_) | Value::Null),
            _ => false,
        });
        if !conforms {
            return ColumnVector::from_boxed(dtype.clone(), values);
        }
        let n = values.len();
        let mut nulls = vec![false; n];
        let mut any_null = false;
        let data = match dtype {
            DataType::Int | DataType::Long | DataType::Date | DataType::Timestamp => {
                let mut lanes = vec![0i64; n];
                for (i, v) in values.into_iter().enumerate() {
                    match v {
                        Value::Int(x) => lanes[i] = x as i64,
                        Value::Long(x) | Value::Timestamp(x) => lanes[i] = x,
                        Value::Date(x) => lanes[i] = x as i64,
                        _ => {
                            nulls[i] = true;
                            any_null = true;
                        }
                    }
                }
                VectorData::Long(lanes)
            }
            DataType::Float | DataType::Double => {
                let mut lanes = vec![0f64; n];
                for (i, v) in values.into_iter().enumerate() {
                    match v {
                        Value::Float(x) => lanes[i] = x as f64,
                        Value::Double(x) => lanes[i] = x,
                        _ => {
                            nulls[i] = true;
                            any_null = true;
                        }
                    }
                }
                VectorData::Double(lanes)
            }
            DataType::Boolean => {
                let mut lanes = vec![false; n];
                for (i, v) in values.into_iter().enumerate() {
                    match v {
                        Value::Boolean(x) => lanes[i] = x,
                        _ => {
                            nulls[i] = true;
                            any_null = true;
                        }
                    }
                }
                VectorData::Bool(lanes)
            }
            DataType::String => {
                let empty: Arc<str> = Arc::from("");
                let mut lanes = vec![empty; n];
                for (i, v) in values.into_iter().enumerate() {
                    match v {
                        Value::Str(s) => lanes[i] = s,
                        _ => {
                            nulls[i] = true;
                            any_null = true;
                        }
                    }
                }
                VectorData::Str(lanes)
            }
            _ => unreachable!("conformance check covers only typed dtypes"),
        };
        ColumnVector::new(dtype.clone(), data, any_null.then_some(nulls))
    }

    /// Number of lanes.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// True when the vector has no lanes.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Declared column type (decides lane re-tagging).
    pub fn dtype(&self) -> &DataType {
        &self.dtype
    }

    /// Raw lane storage.
    pub fn data(&self) -> &VectorData {
        &self.data
    }

    /// Null mask, if any lane is NULL (typed storage only).
    pub fn nulls(&self) -> Option<&[bool]> {
        self.nulls.as_deref()
    }

    /// Is lane `i` NULL?
    #[inline]
    pub fn is_null(&self, i: usize) -> bool {
        if self.nulls.as_ref().is_some_and(|n| n[i]) {
            return true;
        }
        matches!(&self.data, VectorData::Values(v) if v[i].is_null())
    }

    /// Lane `i` re-tagged as a [`Value`] according to the declared dtype.
    pub fn get(&self, i: usize) -> Value {
        if self.nulls.as_ref().is_some_and(|n| n[i]) {
            return Value::Null;
        }
        match &self.data {
            VectorData::Long(v) => match self.dtype {
                DataType::Int => Value::Int(v[i] as i32),
                DataType::Date => Value::Date(v[i] as i32),
                DataType::Timestamp => Value::Timestamp(v[i]),
                _ => Value::Long(v[i]),
            },
            VectorData::Double(v) => match self.dtype {
                DataType::Float => Value::Float(v[i] as f32),
                _ => Value::Double(v[i]),
            },
            VectorData::Bool(v) => Value::Boolean(v[i]),
            VectorData::Str(v) => Value::Str(v[i].clone()),
            VectorData::Values(v) => v[i].clone(),
        }
    }

    /// Predicate view of lane `i`: true iff the lane is a non-NULL SQL
    /// `TRUE` (NULL ⇒ false, mirroring `compile_predicate`).
    #[inline]
    pub fn is_true(&self, i: usize) -> bool {
        if self.nulls.as_ref().is_some_and(|n| n[i]) {
            return false;
        }
        match &self.data {
            VectorData::Bool(v) => v[i],
            VectorData::Values(v) => matches!(v[i], Value::Boolean(true)),
            _ => false,
        }
    }

    /// Integer lanes, only for Int/Long columns (Date/Timestamp lanes are
    /// hidden from numeric kernels, like in the code generator).
    fn long_lanes(&self) -> Option<&[i64]> {
        match (&self.dtype, &self.data) {
            (DataType::Int | DataType::Long, VectorData::Long(v)) => Some(v),
            _ => None,
        }
    }

    fn num_lanes(&self) -> Option<NumLanes<'_>> {
        match (&self.dtype, &self.data) {
            (DataType::Int | DataType::Long, VectorData::Long(v)) => Some(NumLanes::I(v)),
            (DataType::Float | DataType::Double, VectorData::Double(v)) => Some(NumLanes::F(v)),
            _ => None,
        }
    }

    fn bool_lanes(&self) -> Option<&[bool]> {
        match (&self.dtype, &self.data) {
            (DataType::Boolean, VectorData::Bool(v)) => Some(v),
            _ => None,
        }
    }

    fn str_lanes(&self) -> Option<&[Arc<str>]> {
        match (&self.dtype, &self.data) {
            (DataType::String, VectorData::Str(v)) => Some(v),
            _ => None,
        }
    }

    /// Re-tag a vector to the dtype an expression declares (e.g. Long
    /// lanes produced by integer arithmetic re-tagged as Int), mirroring
    /// `Compiled::eval_value`. Incompatible combinations are returned
    /// unchanged.
    fn retagged(self: Arc<Self>, declared: &DataType) -> Arc<ColumnVector> {
        if &self.dtype == declared {
            return self;
        }
        let compatible = matches!(
            (&self.data, declared),
            (VectorData::Long(_), DataType::Int | DataType::Long)
                | (VectorData::Double(_), DataType::Float | DataType::Double)
                | (VectorData::Bool(_), DataType::Boolean)
                | (VectorData::Str(_), DataType::String)
        );
        if !compatible {
            return self;
        }
        Arc::new(ColumnVector::new(
            declared.clone(),
            self.data.clone(),
            self.nulls.clone(),
        ))
    }
}

/// A batch of rows in columnar form: column vectors sharing one lane
/// count, plus an optional selection vector of live lane indices.
///
/// Cloning is cheap (columns and selection are shared), so a `RowBatch`
/// flows through the engine's RDDs as an ordinary element.
#[derive(Debug, Clone)]
pub struct RowBatch {
    columns: Vec<Arc<ColumnVector>>,
    num_rows: usize,
    selection: Option<Arc<Vec<u32>>>,
}

impl RowBatch {
    /// Build a batch from column vectors (each `num_rows` lanes long).
    pub fn new(columns: Vec<Arc<ColumnVector>>, num_rows: usize) -> RowBatch {
        debug_assert!(columns.iter().all(|c| c.len() == num_rows));
        RowBatch {
            columns,
            num_rows,
            selection: None,
        }
    }

    /// Transpose rows into a typed batch (the generic row→batch adapter
    /// for sources without a native vector scan).
    pub fn from_rows(dtypes: &[DataType], rows: &[Row]) -> RowBatch {
        let columns = dtypes
            .iter()
            .enumerate()
            .map(|(j, dt)| {
                let vals: Vec<Value> = rows
                    .iter()
                    .map(|r| r.values().get(j).cloned().unwrap_or(Value::Null))
                    .collect();
                Arc::new(ColumnVector::from_values(dt, vals))
            })
            .collect();
        RowBatch {
            columns,
            num_rows: rows.len(),
            selection: None,
        }
    }

    /// Physical lane count (selected or not).
    pub fn num_rows(&self) -> usize {
        self.num_rows
    }

    /// Live rows: selection length if present, else all lanes.
    pub fn selected_count(&self) -> usize {
        self.selection.as_ref().map_or(self.num_rows, |s| s.len())
    }

    /// Number of columns.
    pub fn num_columns(&self) -> usize {
        self.columns.len()
    }

    /// Column `i`.
    pub fn column(&self, i: usize) -> &Arc<ColumnVector> {
        &self.columns[i]
    }

    /// All columns.
    pub fn columns(&self) -> &[Arc<ColumnVector>] {
        &self.columns
    }

    /// The selection vector, if the batch has been filtered.
    pub fn selection(&self) -> Option<&[u32]> {
        self.selection.as_ref().map(|s| s.as_slice())
    }

    /// Replace the selection vector (callers pass indices already
    /// restricted to the previous selection).
    pub fn with_selection(mut self, selection: Vec<u32>) -> RowBatch {
        self.selection = Some(Arc::new(selection));
        self
    }

    /// Visit every selected lane index in order.
    #[inline]
    pub fn for_each_selected(&self, mut f: impl FnMut(usize)) {
        match &self.selection {
            Some(sel) => sel.iter().for_each(|&i| f(i as usize)),
            None => (0..self.num_rows).for_each(&mut f),
        }
    }

    /// Keep only the named columns (cheap: shares vectors). The selection
    /// vector is preserved.
    pub fn project(&self, indices: &[usize]) -> RowBatch {
        RowBatch {
            columns: indices.iter().map(|&i| self.columns[i].clone()).collect(),
            num_rows: self.num_rows,
            selection: self.selection.clone(),
        }
    }

    /// Gather lane `i` across all columns into a [`Row`] (fallback path).
    pub fn row(&self, i: usize) -> Row {
        Row::new(self.columns.iter().map(|c| c.get(i)).collect())
    }

    /// Compact the batch into materialized rows — the batch→row adapter.
    /// This is the only place selected lanes are copied out.
    pub fn into_selected_rows(self) -> Vec<Row> {
        let mut out = Vec::with_capacity(self.selected_count());
        self.for_each_selected(|i| out.push(self.row(i)));
        out
    }
}

/// Evaluate `expr` over a batch, returning one output lane per physical
/// row (unselected lanes hold unspecified filler). With `kernels` set,
/// supported subtrees run as columnar kernels; otherwise (and for
/// unsupported subtrees) the interpreter evaluates selected rows one at a
/// time, exactly like the row path with codegen disabled.
pub fn eval_batch(expr: &Expr, batch: &RowBatch, kernels: bool) -> Result<Arc<ColumnVector>> {
    if kernels {
        if let Some(v) = eval_kernel(expr, batch)? {
            return Ok(v);
        }
    }
    fallback_eval(expr, batch)
}

/// Evaluate a projection column-at-a-time. Output columns are re-tagged
/// to each expression's declared type; the input selection carries over.
pub fn eval_projection_batch(exprs: &[Expr], batch: &RowBatch, kernels: bool) -> Result<RowBatch> {
    let columns = exprs
        .iter()
        .map(|e| {
            let v = eval_batch(e, batch, kernels)?;
            Ok(match e.data_type() {
                Ok(declared) => v.retagged(&declared),
                Err(_) => v,
            })
        })
        .collect::<Result<Vec<_>>>()?;
    Ok(RowBatch {
        columns,
        num_rows: batch.num_rows,
        selection: batch.selection.clone(),
    })
}

/// Evaluate a predicate and refine the batch's selection vector to the
/// lanes where it is non-NULL `TRUE`. No rows are copied.
pub fn filter_batch(pred: &Expr, batch: &RowBatch, kernels: bool) -> Result<RowBatch> {
    let v = eval_batch(pred, batch, kernels)?;
    let mut sel = Vec::with_capacity(batch.selected_count());
    batch.for_each_selected(|i| {
        if v.is_true(i) {
            sel.push(i as u32);
        }
    });
    Ok(batch.clone().with_selection(sel))
}

/// Interpreter fallback: evaluate selected rows only; unselected lanes
/// stay NULL filler. Errors propagate exactly as in the row path.
fn fallback_eval(expr: &Expr, batch: &RowBatch) -> Result<Arc<ColumnVector>> {
    let mut out = vec![Value::Null; batch.num_rows];
    let mut err = None;
    batch.for_each_selected(|i| {
        if err.is_some() {
            return;
        }
        match interpreter::eval(expr, &batch.row(i)) {
            Ok(v) => out[i] = v,
            Err(e) => err = Some(e),
        }
    });
    if let Some(e) = err {
        return Err(e);
    }
    let dtype = expr.data_type().unwrap_or(DataType::Null);
    Ok(Arc::new(ColumnVector::from_boxed(dtype, out)))
}

/// Try to evaluate `expr` with columnar kernels; `Ok(None)` means some
/// node in the subtree has no kernel and the caller must fall back (the
/// same whole-subtree fallback rule `codegen::try_compile` uses).
fn eval_kernel(expr: &Expr, batch: &RowBatch) -> Result<Option<Arc<ColumnVector>>> {
    match expr {
        Expr::Literal(v) => Ok(broadcast(v, batch.num_rows)),
        Expr::BoundRef { index, .. } => Ok(batch.columns.get(*index).cloned()),
        Expr::Alias { child, .. } => eval_kernel(child, batch),
        Expr::Cast { expr, dtype } => {
            let Some(c) = eval_kernel(expr, batch)? else {
                return Ok(None);
            };
            Ok(cast_kernel(&c, dtype))
        }
        Expr::Negate(e) => {
            let Some(c) = eval_kernel(e, batch)? else {
                return Ok(None);
            };
            Ok(match c.num_lanes() {
                Some(NumLanes::I(v)) => Some(Arc::new(ColumnVector::new(
                    DataType::Long,
                    VectorData::Long(v.iter().map(|x| x.wrapping_neg()).collect()),
                    c.nulls.clone(),
                ))),
                Some(NumLanes::F(v)) => Some(Arc::new(ColumnVector::new(
                    DataType::Double,
                    VectorData::Double(v.iter().map(|x| -x).collect()),
                    c.nulls.clone(),
                ))),
                None => None,
            })
        }
        Expr::Not(e) => {
            let Some(c) = eval_kernel(e, batch)? else {
                return Ok(None);
            };
            Ok(c.bool_lanes().map(|v| {
                Arc::new(ColumnVector::new(
                    DataType::Boolean,
                    VectorData::Bool(v.iter().map(|b| !b).collect()),
                    c.nulls.clone(),
                ))
            }))
        }
        Expr::IsNull(e) => {
            let Some(c) = eval_kernel(e, batch)? else {
                return Ok(None);
            };
            Ok(Some(null_test(&c, batch.num_rows, true)))
        }
        Expr::IsNotNull(e) => {
            let Some(c) = eval_kernel(e, batch)? else {
                return Ok(None);
            };
            Ok(Some(null_test(&c, batch.num_rows, false)))
        }
        Expr::BinaryOp { left, op, right } => {
            let Some(l) = eval_kernel(left, batch)? else {
                return Ok(None);
            };
            let Some(r) = eval_kernel(right, batch)? else {
                return Ok(None);
            };
            Ok(binary_kernel(&l, *op, &r))
        }
        _ => Ok(None),
    }
}

/// Broadcast a literal into a full vector; non-primitive literals have no
/// kernel (the code generator refuses them too).
fn broadcast(v: &Value, n: usize) -> Option<Arc<ColumnVector>> {
    let (dtype, data) = match v {
        Value::Int(x) => (DataType::Int, VectorData::Long(vec![*x as i64; n])),
        Value::Long(x) => (DataType::Long, VectorData::Long(vec![*x; n])),
        Value::Float(x) => (DataType::Float, VectorData::Double(vec![*x as f64; n])),
        Value::Double(x) => (DataType::Double, VectorData::Double(vec![*x; n])),
        Value::Boolean(x) => (DataType::Boolean, VectorData::Bool(vec![*x; n])),
        Value::Str(s) => (DataType::String, VectorData::Str(vec![s.clone(); n])),
        _ => return None,
    };
    Some(Arc::new(ColumnVector::new(dtype, data, None)))
}

/// Numeric casts, mirroring the codegen `Cast` cases; everything else
/// falls back.
fn cast_kernel(c: &Arc<ColumnVector>, target: &DataType) -> Option<Arc<ColumnVector>> {
    match target {
        DataType::Int | DataType::Long => match c.num_lanes()? {
            NumLanes::I(_) => Some(c.clone().retagged(target)),
            NumLanes::F(v) => Some(Arc::new(ColumnVector::new(
                target.clone(),
                VectorData::Long(v.iter().map(|x| *x as i64).collect()),
                c.nulls.clone(),
            ))),
        },
        DataType::Float | DataType::Double => match c.num_lanes()? {
            NumLanes::I(v) => Some(Arc::new(ColumnVector::new(
                target.clone(),
                VectorData::Double(v.iter().map(|x| *x as f64).collect()),
                c.nulls.clone(),
            ))),
            NumLanes::F(_) => Some(c.clone().retagged(target)),
        },
        _ => None,
    }
}

/// `IS [NOT] NULL` as a lane test (never NULL itself).
fn null_test(c: &ColumnVector, n: usize, want_null: bool) -> Arc<ColumnVector> {
    let lanes = (0..n).map(|i| c.is_null(i) == want_null).collect();
    Arc::new(ColumnVector::new(
        DataType::Boolean,
        VectorData::Bool(lanes),
        None,
    ))
}

fn union_nulls(a: Option<&[bool]>, b: Option<&[bool]>, n: usize) -> Option<Vec<bool>> {
    match (a, b) {
        (None, None) => None,
        (Some(x), None) | (None, Some(x)) => Some(x.to_vec()),
        (Some(x), Some(y)) => Some((0..n).map(|i| x[i] || y[i]).collect()),
    }
}

/// Binary kernels with the exact semantics of `codegen::compile_binary`:
/// three-valued AND/OR, an exact integer fast path (Hive `/` always
/// fractional, `%`/`/` by zero ⇒ NULL), a widening float path, and string
/// comparison/concatenation. Type combinations the code generator would
/// not compile return `None`.
fn binary_kernel(
    l: &Arc<ColumnVector>,
    op: BinaryOperator,
    r: &Arc<ColumnVector>,
) -> Option<Arc<ColumnVector>> {
    use BinaryOperator::*;
    let n = l.len();

    if op == And || op == Or {
        let (lv, rv) = (l.bool_lanes()?, r.bool_lanes()?);
        let mut lanes = vec![false; n];
        let mut nulls = vec![false; n];
        let mut any_null = false;
        for i in 0..n {
            let a = (!l.nulls.as_ref().is_some_and(|m| m[i])).then(|| lv[i]);
            let b = (!r.nulls.as_ref().is_some_and(|m| m[i])).then(|| rv[i]);
            let out = match op {
                And => match (a, b) {
                    (Some(false), _) | (_, Some(false)) => Some(false),
                    (Some(true), Some(true)) => Some(true),
                    _ => None,
                },
                _ => match (a, b) {
                    (Some(true), _) | (_, Some(true)) => Some(true),
                    (Some(false), Some(false)) => Some(false),
                    _ => None,
                },
            };
            match out {
                Some(v) => lanes[i] = v,
                None => {
                    nulls[i] = true;
                    any_null = true;
                }
            }
        }
        return Some(Arc::new(ColumnVector::new(
            DataType::Boolean,
            VectorData::Bool(lanes),
            any_null.then_some(nulls),
        )));
    }

    // Integer fast path: exact 64-bit arithmetic and comparisons.
    if let (Some(lv), Some(rv)) = (l.long_lanes(), r.long_lanes()) {
        let nulls = union_nulls(l.nulls(), r.nulls(), n);
        return Some(match op {
            Add => long_arith(lv, rv, nulls, |a, b| a.wrapping_add(b)),
            Sub => long_arith(lv, rv, nulls, |a, b| a.wrapping_sub(b)),
            Mul => long_arith(lv, rv, nulls, |a, b| a.wrapping_mul(b)),
            Mod => {
                let mut nulls = nulls.unwrap_or_else(|| vec![false; n]);
                let mut lanes = vec![0i64; n];
                for i in 0..n {
                    if rv[i] == 0 {
                        nulls[i] = true;
                    } else if !nulls[i] {
                        lanes[i] = lv[i].wrapping_rem(rv[i]);
                    }
                }
                Arc::new(ColumnVector::new(
                    DataType::Long,
                    VectorData::Long(lanes),
                    Some(nulls),
                ))
            }
            Div => {
                let mut nulls = nulls.unwrap_or_else(|| vec![false; n]);
                let mut lanes = vec![0f64; n];
                for i in 0..n {
                    if rv[i] == 0 {
                        nulls[i] = true;
                    } else if !nulls[i] {
                        lanes[i] = lv[i] as f64 / rv[i] as f64;
                    }
                }
                Arc::new(ColumnVector::new(
                    DataType::Double,
                    VectorData::Double(lanes),
                    Some(nulls),
                ))
            }
            Eq => long_cmp(lv, rv, nulls, |o| o == std::cmp::Ordering::Equal),
            NotEq => long_cmp(lv, rv, nulls, |o| o != std::cmp::Ordering::Equal),
            Lt => long_cmp(lv, rv, nulls, |o| o == std::cmp::Ordering::Less),
            LtEq => long_cmp(lv, rv, nulls, |o| o != std::cmp::Ordering::Greater),
            Gt => long_cmp(lv, rv, nulls, |o| o == std::cmp::Ordering::Greater),
            GtEq => long_cmp(lv, rv, nulls, |o| o != std::cmp::Ordering::Less),
            And | Or => unreachable!(),
        });
    }

    // Float path: both sides numeric, at least one fractional.
    if let (Some(lv), Some(rv)) = (l.num_lanes(), r.num_lanes()) {
        let nulls = union_nulls(l.nulls(), r.nulls(), n);
        let arith = |f: fn(f64, f64) -> f64, zero_is_null: bool| {
            let mut nulls = nulls.clone().unwrap_or_else(|| vec![false; n]);
            let mut lanes = vec![0f64; n];
            for i in 0..n {
                let b = rv.f64_at(i);
                if zero_is_null && b == 0.0 {
                    nulls[i] = true;
                } else if !nulls[i] {
                    lanes[i] = f(lv.f64_at(i), b);
                }
            }
            Arc::new(ColumnVector::new(
                DataType::Double,
                VectorData::Double(lanes),
                Some(nulls),
            ))
        };
        let cmp = |f: fn(f64, f64) -> bool| {
            let lanes = (0..n).map(|i| f(lv.f64_at(i), rv.f64_at(i))).collect();
            Arc::new(ColumnVector::new(
                DataType::Boolean,
                VectorData::Bool(lanes),
                nulls.clone(),
            ))
        };
        return Some(match op {
            Add => arith(|a, b| a + b, false),
            Sub => arith(|a, b| a - b, false),
            Mul => arith(|a, b| a * b, false),
            Div => arith(|a, b| a / b, true),
            Mod => arith(|a, b| a % b, true),
            Eq => cmp(|a, b| a == b),
            NotEq => cmp(|a, b| a != b),
            Lt => cmp(|a, b| a < b),
            LtEq => cmp(|a, b| a <= b),
            Gt => cmp(|a, b| a > b),
            GtEq => cmp(|a, b| a >= b),
            And | Or => unreachable!(),
        });
    }

    // String comparisons and concatenation.
    if let (Some(lv), Some(rv)) = (l.str_lanes(), r.str_lanes()) {
        let nulls = union_nulls(l.nulls(), r.nulls(), n);
        if op == Add {
            let lanes = (0..n)
                .map(|i| Arc::from(format!("{}{}", lv[i], rv[i])))
                .collect();
            return Some(Arc::new(ColumnVector::new(
                DataType::String,
                VectorData::Str(lanes),
                nulls,
            )));
        }
        let cmp = |f: fn(std::cmp::Ordering) -> bool| {
            let lanes = (0..n)
                .map(|i| f(lv[i].as_ref().cmp(rv[i].as_ref())))
                .collect();
            Arc::new(ColumnVector::new(
                DataType::Boolean,
                VectorData::Bool(lanes),
                nulls.clone(),
            ))
        };
        return match op {
            Eq => Some(cmp(|o| o == std::cmp::Ordering::Equal)),
            NotEq => Some(cmp(|o| o != std::cmp::Ordering::Equal)),
            Lt => Some(cmp(|o| o == std::cmp::Ordering::Less)),
            LtEq => Some(cmp(|o| o != std::cmp::Ordering::Greater)),
            Gt => Some(cmp(|o| o == std::cmp::Ordering::Greater)),
            GtEq => Some(cmp(|o| o != std::cmp::Ordering::Less)),
            _ => None,
        };
    }

    None
}

fn long_arith(
    lv: &[i64],
    rv: &[i64],
    nulls: Option<Vec<bool>>,
    f: impl Fn(i64, i64) -> i64,
) -> Arc<ColumnVector> {
    let lanes = lv.iter().zip(rv).map(|(a, b)| f(*a, *b)).collect();
    Arc::new(ColumnVector::new(
        DataType::Long,
        VectorData::Long(lanes),
        nulls,
    ))
}

fn long_cmp(
    lv: &[i64],
    rv: &[i64],
    nulls: Option<Vec<bool>>,
    f: impl Fn(std::cmp::Ordering) -> bool,
) -> Arc<ColumnVector> {
    let lanes = lv.iter().zip(rv).map(|(a, b)| f(a.cmp(b))).collect();
    Arc::new(ColumnVector::new(
        DataType::Boolean,
        VectorData::Bool(lanes),
        nulls,
    ))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn bound(index: usize, dtype: DataType) -> Expr {
        Expr::BoundRef {
            index,
            dtype,
            nullable: true,
            name: Arc::from(format!("c{index}")),
        }
    }

    fn long_batch(vals: &[Option<i64>]) -> RowBatch {
        let values: Vec<Value> = vals
            .iter()
            .map(|v| v.map_or(Value::Null, Value::Long))
            .collect();
        RowBatch::new(
            vec![Arc::new(ColumnVector::from_values(&DataType::Long, values))],
            vals.len(),
        )
    }

    #[test]
    fn typed_build_and_get_round_trip() {
        let vals = vec![Value::Int(1), Value::Null, Value::Int(-3)];
        let v = ColumnVector::from_values(&DataType::Int, vals.clone());
        assert!(matches!(v.data(), VectorData::Long(_)));
        for (i, expect) in vals.iter().enumerate() {
            assert_eq!(&v.get(i), expect);
        }
    }

    #[test]
    fn mixed_values_fall_back_to_boxed() {
        let vals = vec![Value::Int(1), Value::str("x")];
        let v = ColumnVector::from_values(&DataType::Int, vals.clone());
        assert!(matches!(v.data(), VectorData::Values(_)));
        assert_eq!(v.get(1), Value::str("x"));
    }

    #[test]
    fn filter_refines_selection_without_copying() {
        let batch = long_batch(&[Some(1), Some(5), None, Some(9)]);
        let pred = Expr::BinaryOp {
            left: Box::new(bound(0, DataType::Long)),
            op: BinaryOperator::Gt,
            right: Box::new(Expr::Literal(Value::Long(4))),
        };
        for kernels in [true, false] {
            let out = filter_batch(&pred, &batch, kernels).unwrap();
            assert_eq!(out.num_rows(), 4, "lanes stay physical");
            assert_eq!(out.selection(), Some(&[1u32, 3][..]));
            let rows = out.into_selected_rows();
            assert_eq!(rows.len(), 2);
            assert_eq!(rows[0].get(0), &Value::Long(5));
        }
    }

    #[test]
    fn division_by_zero_is_null_in_both_paths() {
        let batch = long_batch(&[Some(10), Some(7)]);
        let div = Expr::BinaryOp {
            left: Box::new(bound(0, DataType::Long)),
            op: BinaryOperator::Div,
            right: Box::new(Expr::Literal(Value::Long(0))),
        };
        for kernels in [true, false] {
            let v = eval_batch(&div, &batch, kernels).unwrap();
            assert_eq!(v.get(0), Value::Null, "kernels={kernels}");
        }
        let modz = Expr::BinaryOp {
            left: Box::new(bound(0, DataType::Long)),
            op: BinaryOperator::Mod,
            right: Box::new(Expr::Literal(Value::Long(0))),
        };
        for kernels in [true, false] {
            let v = eval_batch(&modz, &batch, kernels).unwrap();
            assert_eq!(v.get(1), Value::Null, "kernels={kernels}");
        }
    }

    #[test]
    fn three_valued_and_or_match_interpreter() {
        let b = |v: Option<bool>| v.map_or(Value::Null, Value::Boolean);
        let cases = [
            (Some(true), None),
            (Some(false), None),
            (None, None),
            (Some(true), Some(false)),
        ];
        let values: Vec<Value> = cases.iter().map(|(a, _)| b(*a)).collect();
        let rvals: Vec<Value> = cases.iter().map(|(_, x)| b(*x)).collect();
        let batch = RowBatch::new(
            vec![
                Arc::new(ColumnVector::from_values(&DataType::Boolean, values)),
                Arc::new(ColumnVector::from_values(&DataType::Boolean, rvals)),
            ],
            cases.len(),
        );
        for op in [BinaryOperator::And, BinaryOperator::Or] {
            let e = Expr::BinaryOp {
                left: Box::new(bound(0, DataType::Boolean)),
                op,
                right: Box::new(bound(1, DataType::Boolean)),
            };
            let fast = eval_batch(&e, &batch, true).unwrap();
            let slow = eval_batch(&e, &batch, false).unwrap();
            for i in 0..cases.len() {
                assert_eq!(fast.get(i), slow.get(i), "{op:?} lane {i}");
            }
        }
    }

    #[test]
    fn fallback_only_touches_selected_lanes() {
        // CASE has no kernel; the unselected lane would divide by zero if
        // evaluated eagerly — selection must protect it like the row path.
        let batch = long_batch(&[Some(0), Some(2)]).with_selection(vec![1]);
        let case = Expr::Case {
            operand: None,
            branches: vec![(
                Expr::BinaryOp {
                    left: Box::new(bound(0, DataType::Long)),
                    op: BinaryOperator::Gt,
                    right: Box::new(Expr::Literal(Value::Long(1))),
                },
                Expr::Literal(Value::str("big")),
            )],
            else_expr: Some(Box::new(Expr::Literal(Value::str("small")))),
        };
        let v = eval_batch(&case, &batch, true).unwrap();
        assert_eq!(v.get(1), Value::str("big"));
        assert_eq!(v.get(0), Value::Null, "unselected lane untouched");
    }

    #[test]
    fn projection_retags_to_declared_type() {
        let vals = vec![Value::Int(3), Value::Int(4)];
        let batch = RowBatch::new(
            vec![Arc::new(ColumnVector::from_values(&DataType::Int, vals))],
            2,
        );
        // Int + Int declares Int via tightest_common_type.
        let e = Expr::BinaryOp {
            left: Box::new(bound(0, DataType::Int)),
            op: BinaryOperator::Add,
            right: Box::new(bound(0, DataType::Int)),
        };
        let out = eval_projection_batch(std::slice::from_ref(&e), &batch, true).unwrap();
        assert_eq!(out.column(0).get(0), Value::Int(6));
    }
}
