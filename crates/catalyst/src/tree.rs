//! The core tree-transformation protocol (§4.1–4.2 of the paper).
//!
//! Catalyst manipulates immutable trees with *rules*: functions from a
//! tree to another tree. In Scala, rules are partial functions applied by
//! a generic `transform` method; the Rust analogue is a closure from node
//! to [`Transformed`] node, where the `changed` flag plays the role of
//! "the pattern matched" — it is what lets rule batches detect a fixed
//! point (§4.2: "executes each batch until it reaches a fixed point").

/// A possibly-rewritten tree plus a flag recording whether any rewrite
/// happened.
#[derive(Debug, Clone, PartialEq)]
pub struct Transformed<T> {
    /// The (possibly new) tree.
    pub data: T,
    /// True if this node or any descendant was rewritten.
    pub changed: bool,
}

impl<T> Transformed<T> {
    /// A rewritten node.
    pub fn yes(data: T) -> Self {
        Transformed {
            data,
            changed: true,
        }
    }

    /// An unchanged node.
    pub fn no(data: T) -> Self {
        Transformed {
            data,
            changed: false,
        }
    }

    /// Map the payload, preserving the flag.
    pub fn map<U>(self, f: impl FnOnce(T) -> U) -> Transformed<U> {
        Transformed {
            data: f(self.data),
            changed: self.changed,
        }
    }

    /// Combine with another flag.
    pub fn or_changed(mut self, changed: bool) -> Self {
        self.changed |= changed;
        self
    }
}

/// Nodes that expose their children for generic traversal.
///
/// `transform_up` applies a rewrite bottom-up (children first), matching
/// the semantics of Catalyst's `transform`; `transform_down` applies it
/// top-down (`transformDown`). Both skip nothing: like the paper's partial
/// functions, a rewrite that doesn't apply simply returns the node
/// unchanged with `changed = false`.
pub trait TreeNode: Sized {
    /// Rebuild this node with each child replaced by `f(child)`,
    /// reporting whether anything changed.
    fn map_children(self, f: &mut dyn FnMut(Self) -> Transformed<Self>) -> Transformed<Self>;

    /// Bottom-up rewrite.
    fn transform_up(self, f: &mut dyn FnMut(Self) -> Transformed<Self>) -> Transformed<Self> {
        let after_children = self.map_children(&mut |c| c.transform_up(f));
        let changed = after_children.changed;
        f(after_children.data).or_changed(changed)
    }

    /// Top-down rewrite.
    fn transform_down(self, f: &mut dyn FnMut(Self) -> Transformed<Self>) -> Transformed<Self> {
        let here = f(self);
        let changed = here.changed;
        here.data
            .map_children(&mut |c| c.transform_down(f))
            .or_changed(changed)
    }

    /// Visit every node top-down without rewriting.
    fn for_each(&self, f: &mut dyn FnMut(&Self));
}

#[cfg(test)]
mod tests {
    use super::*;

    // The paper's §4.1 toy expression language: Literal / Attribute / Add.
    #[derive(Debug, Clone, PartialEq)]
    enum Toy {
        Literal(i64),
        Attribute(&'static str),
        Add(Box<Toy>, Box<Toy>),
    }

    impl TreeNode for Toy {
        fn map_children(self, f: &mut dyn FnMut(Self) -> Transformed<Self>) -> Transformed<Self> {
            match self {
                Toy::Add(l, r) => {
                    let l = f(*l);
                    let r = f(*r);
                    let changed = l.changed || r.changed;
                    Transformed {
                        data: Toy::Add(Box::new(l.data), Box::new(r.data)),
                        changed,
                    }
                }
                leaf => Transformed::no(leaf),
            }
        }

        fn for_each(&self, f: &mut dyn FnMut(&Self)) {
            f(self);
            if let Toy::Add(l, r) = self {
                l.for_each(f);
                r.for_each(f);
            }
        }
    }

    fn fold_constants(t: Toy) -> Transformed<Toy> {
        // The paper's example rule:
        //   case Add(Literal(c1), Literal(c2)) => Literal(c1+c2)
        //   case Add(left, Literal(0)) => left
        //   case Add(Literal(0), right) => right
        match t {
            Toy::Add(l, r) => match (*l, *r) {
                (Toy::Literal(c1), Toy::Literal(c2)) => Transformed::yes(Toy::Literal(c1 + c2)),
                (left, Toy::Literal(0)) => Transformed::yes(left),
                (Toy::Literal(0), right) => Transformed::yes(right),
                (l, r) => Transformed::no(Toy::Add(Box::new(l), Box::new(r))),
            },
            other => Transformed::no(other),
        }
    }

    #[test]
    fn folds_x_plus_1_plus_2() {
        // Add(Attribute(x), Add(Literal(1), Literal(2))) => Add(x, 3)
        let tree = Toy::Add(
            Box::new(Toy::Attribute("x")),
            Box::new(Toy::Add(
                Box::new(Toy::Literal(1)),
                Box::new(Toy::Literal(2)),
            )),
        );
        let out = tree.transform_up(&mut fold_constants);
        assert!(out.changed);
        assert_eq!(
            out.data,
            Toy::Add(Box::new(Toy::Attribute("x")), Box::new(Toy::Literal(3)))
        );
    }

    #[test]
    fn repeated_application_reaches_fixed_point() {
        // (x+0)+(3+3): one bottom-up pass folds both sub-adds; a second
        // pass confirms no further change (fixed point).
        let tree = Toy::Add(
            Box::new(Toy::Add(
                Box::new(Toy::Attribute("x")),
                Box::new(Toy::Literal(0)),
            )),
            Box::new(Toy::Add(
                Box::new(Toy::Literal(3)),
                Box::new(Toy::Literal(3)),
            )),
        );
        let pass1 = tree.transform_up(&mut fold_constants);
        assert!(pass1.changed);
        assert_eq!(
            pass1.data,
            Toy::Add(Box::new(Toy::Attribute("x")), Box::new(Toy::Literal(6)))
        );
        // Second pass: nothing left to fold — the fixed point.
        let pass2 = pass1.data.clone().transform_up(&mut fold_constants);
        assert!(!pass2.changed);
        assert_eq!(pass2.data, pass1.data);
    }

    #[test]
    fn unchanged_tree_reports_no_change() {
        let tree = Toy::Add(Box::new(Toy::Attribute("x")), Box::new(Toy::Attribute("y")));
        let out = tree.clone().transform_up(&mut fold_constants);
        assert!(!out.changed);
        assert_eq!(out.data, tree);
    }

    #[test]
    fn for_each_visits_all_nodes() {
        let tree = Toy::Add(Box::new(Toy::Literal(1)), Box::new(Toy::Literal(2)));
        let mut count = 0;
        tree.for_each(&mut |_| count += 1);
        assert_eq!(count, 3);
    }
}
