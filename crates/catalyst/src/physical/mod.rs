//! Physical planning: operators, statistics, and the strategy-driven
//! planner (§4.3.3).

pub mod metrics;
pub mod plan;
pub mod planner;
pub mod stats;

pub use metrics::{OperatorMetrics, PlanMetrics};
pub use plan::{BuildSide, ExtensionExec, PhysicalPlan};
pub use planner::{expr_to_filter, extract_equi_keys, Planner, PlannerConfig, Strategy};
pub use stats::{annotate_row_estimates, estimate, estimate_physical_rows, Statistics};
