//! Per-operator execution metrics ("SQL metrics").
//!
//! A [`PlanMetrics`] registry is created from a physical plan before
//! execution: one [`OperatorMetrics`] slot per node, addressed by the
//! node's *pre-order index* in the plan tree (root = 0, then each child
//! subtree in order). Executors bump the hot counters — output rows and
//! elapsed nanoseconds — through relaxed atomics, so instrumentation adds
//! no locking to row processing; colder facts (broadcast build sizes,
//! shuffle attribution) go through a small mutex-guarded side table.
//!
//! The registry is plan-shaped data only; nothing here executes. The
//! `spark-sql` crate threads a registry through lowering, and
//! `EXPLAIN ANALYZE` renders the tree back with actuals attached.

use crate::physical::PhysicalPlan;
use std::collections::{BTreeMap, HashSet};
use std::fmt::Write as _;
use std::ops::Range;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

/// Metrics for one physical operator.
///
/// `output_rows` and `elapsed_ns` are cumulative across partitions and
/// across re-executions of the same plan. `elapsed_ns` measures the time
/// spent producing this operator's output rows; because operators in one
/// stage are pipelined, it *includes* time spent in upstream operators of
/// the same stage pulling input (like Spark's per-operator timing).
#[derive(Debug, Default)]
pub struct OperatorMetrics {
    output_rows: AtomicU64,
    elapsed_ns: AtomicU64,
    /// Named side metrics (build sizes, shuffle volume, …).
    extras: Mutex<BTreeMap<String, u64>>,
    /// Engine shuffle ids allocated while lowering this operator — the
    /// shuffles ("exchanges") this operator induced.
    shuffle_ids: Mutex<Vec<usize>>,
}

impl OperatorMetrics {
    /// Add produced rows.
    #[inline]
    pub fn add_rows(&self, n: u64) {
        self.output_rows.fetch_add(n, Ordering::Relaxed);
    }

    /// Add elapsed wall time in nanoseconds.
    #[inline]
    pub fn add_elapsed_ns(&self, ns: u64) {
        self.elapsed_ns.fetch_add(ns, Ordering::Relaxed);
    }

    /// Total rows this operator produced.
    pub fn output_rows(&self) -> u64 {
        self.output_rows.load(Ordering::Relaxed)
    }

    /// Total time spent producing output, summed over partitions.
    pub fn elapsed_ns(&self) -> u64 {
        self.elapsed_ns.load(Ordering::Relaxed)
    }

    /// Add `n` to a named side metric (created at 0 if absent).
    pub fn add_extra(&self, name: &str, n: u64) {
        *self
            .extras
            .lock()
            .unwrap()
            .entry(name.to_string())
            .or_insert(0) += n;
    }

    /// Overwrite a named side metric.
    pub fn set_extra(&self, name: &str, value: u64) {
        self.extras.lock().unwrap().insert(name.to_string(), value);
    }

    /// Snapshot of the named side metrics.
    pub fn extras(&self) -> BTreeMap<String, u64> {
        self.extras.lock().unwrap().clone()
    }

    /// Record that this operator induced engine shuffle `id`.
    pub fn add_shuffle_id(&self, id: usize) {
        self.shuffle_ids.lock().unwrap().push(id);
    }

    /// Shuffle ids this operator induced.
    pub fn shuffle_ids(&self) -> Vec<usize> {
        self.shuffle_ids.lock().unwrap().clone()
    }
}

/// Registry of [`OperatorMetrics`], one per physical plan node, indexed
/// by pre-order position.
#[derive(Debug)]
pub struct PlanMetrics {
    nodes: Vec<Arc<OperatorMetrics>>,
    /// Shuffle ids already attributed to some operator (children claim
    /// theirs before their parent inspects its allocation window).
    claimed_shuffles: Mutex<HashSet<usize>>,
}

impl PlanMetrics {
    /// Allocate one metrics slot per node of `plan`.
    pub fn for_plan(plan: &PhysicalPlan) -> Arc<PlanMetrics> {
        let n = subtree_size(plan);
        Arc::new(PlanMetrics {
            nodes: (0..n)
                .map(|_| Arc::new(OperatorMetrics::default()))
                .collect(),
            claimed_shuffles: Mutex::new(HashSet::new()),
        })
    }

    /// Number of operators covered.
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// True when the plan had no nodes (never happens for valid plans).
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    /// The metrics slot for pre-order node `id`.
    ///
    /// # Panics
    /// If `id` is out of range for the plan this registry was built from.
    pub fn node(&self, id: usize) -> Arc<OperatorMetrics> {
        self.nodes[id].clone()
    }

    /// Claim the not-yet-claimed shuffle ids in `range`, returning them.
    ///
    /// Lowering calls this bottom-up: a child claims the shuffles it
    /// allocated before its parent looks at the enclosing window, so the
    /// parent receives only the shuffles it induced itself.
    pub fn claim_shuffles(&self, range: Range<usize>) -> Vec<usize> {
        let mut claimed = self.claimed_shuffles.lock().unwrap();
        range.filter(|id| claimed.insert(*id)).collect()
    }
}

/// Number of nodes in the plan tree (the node itself plus descendants).
pub fn subtree_size(plan: &PhysicalPlan) -> usize {
    1 + plan
        .children()
        .iter()
        .map(|c| subtree_size(c))
        .sum::<usize>()
}

/// Pre-order ids of `plan`'s direct children, given the plan's own id.
pub fn child_ids(plan: &PhysicalPlan, id: usize) -> Vec<usize> {
    let mut next = id + 1;
    plan.children()
        .iter()
        .map(|c| {
            let this = next;
            next += subtree_size(c);
            this
        })
        .collect()
}

/// Render `plan` with actual row counts, times, and side metrics from
/// `metrics` attached to every node — the body of `EXPLAIN ANALYZE`.
pub fn render_annotated(plan: &PhysicalPlan, metrics: &PlanMetrics) -> String {
    let mut out = String::new();
    render_node(plan, 0, 0, metrics, &mut out);
    out
}

fn render_node(
    plan: &PhysicalPlan,
    id: usize,
    indent: usize,
    metrics: &PlanMetrics,
    out: &mut String,
) {
    for _ in 0..indent {
        out.push_str("  ");
    }
    let m = metrics.node(id);
    let _ = write!(
        out,
        "{} (rows={}, time={})",
        plan.node_description(),
        m.output_rows(),
        format_ns(m.elapsed_ns()),
    );
    for (k, v) in m.extras() {
        let _ = write!(out, " [{k}={v}]");
    }
    out.push('\n');
    for (child, cid) in plan.children().iter().zip(child_ids(plan, id)) {
        render_node(child, cid, indent + 1, metrics, out);
    }
}

/// Human-readable duration: nanoseconds up to seconds.
pub fn format_ns(ns: u64) -> String {
    if ns >= 1_000_000_000 {
        format!("{:.3}s", ns as f64 / 1e9)
    } else if ns >= 1_000_000 {
        format!("{:.3}ms", ns as f64 / 1e6)
    } else if ns >= 1_000 {
        format!("{:.1}us", ns as f64 / 1e3)
    } else {
        format!("{ns}ns")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::expr::ColumnRef;
    use crate::row::Row;
    use crate::types::DataType;
    use crate::value::Value;

    fn leaf(name: &str) -> Arc<PhysicalPlan> {
        Arc::new(PhysicalPlan::LocalData {
            rows: Arc::new(vec![Row::new(vec![Value::Long(1)])]),
            output: vec![ColumnRef::new(name, DataType::Long, false)],
        })
    }

    fn limit(input: Arc<PhysicalPlan>, n: usize) -> Arc<PhysicalPlan> {
        Arc::new(PhysicalPlan::Limit { input, n })
    }

    #[test]
    fn preorder_ids_cover_tree() {
        // Union(Limit(leaf), leaf): ids 0=union 1=limit 2=leaf 3=leaf.
        let plan = PhysicalPlan::Union {
            inputs: vec![limit(leaf("a"), 1), leaf("b")],
        };
        assert_eq!(subtree_size(&plan), 4);
        assert_eq!(child_ids(&plan, 0), vec![1, 3]);
        let limit_node = &plan.children()[0];
        assert_eq!(child_ids(limit_node, 1), vec![2]);
    }

    #[test]
    fn counters_accumulate() {
        let m = OperatorMetrics::default();
        m.add_rows(10);
        m.add_rows(5);
        m.add_elapsed_ns(1_500);
        assert_eq!(m.output_rows(), 15);
        assert_eq!(m.elapsed_ns(), 1_500);
        m.add_extra("build_rows", 3);
        m.add_extra("build_rows", 4);
        assert_eq!(m.extras().get("build_rows"), Some(&7));
    }

    #[test]
    fn claim_shuffles_is_exclusive() {
        let plan = PhysicalPlan::Union {
            inputs: vec![leaf("a")],
        };
        let pm = PlanMetrics::for_plan(&plan);
        assert_eq!(pm.claim_shuffles(0..3), vec![0, 1, 2]);
        // Overlapping window only yields the fresh ids.
        assert_eq!(pm.claim_shuffles(2..5), vec![3, 4]);
    }

    #[test]
    fn annotated_render_includes_actuals() {
        let plan = PhysicalPlan::Limit {
            input: leaf("a"),
            n: 7,
        };
        let pm = PlanMetrics::for_plan(&plan);
        pm.node(0).add_rows(7);
        pm.node(1).add_rows(100);
        pm.node(1).add_elapsed_ns(2_000_000);
        pm.node(1).add_extra("shuffle_bytes_written", 64);
        let text = render_annotated(&plan, &pm);
        assert!(text.contains("Limit 7 (rows=7"), "{text}");
        assert!(text.contains("rows=100"), "{text}");
        assert!(text.contains("time=2.000ms"), "{text}");
        assert!(text.contains("[shuffle_bytes_written=64]"), "{text}");
    }

    #[test]
    fn format_ns_units() {
        assert_eq!(format_ns(950), "950ns");
        assert_eq!(format_ns(2_500), "2.5us");
        assert_eq!(format_ns(2_500_000), "2.500ms");
        assert_eq!(format_ns(2_500_000_000), "2.500s");
    }
}
