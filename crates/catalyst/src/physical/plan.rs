//! Physical operators: the plan shape handed to the execution backend.
//!
//! Physical plans are *data* — execution lives in the `spark-sql` crate,
//! which lowers each node onto engine RDD transformations. Keeping them
//! here lets planning strategies (including user extensions like the §7.2
//! interval join) be defined purely against Catalyst.

use crate::error::Result;
use crate::expr::{ColumnRef, Expr, SortOrder};
use crate::plan::JoinType;
use crate::row::Row;
use crate::schema::{Schema, SchemaRef};
use crate::source::{BaseRelation, ExternalData, Filter};
use std::fmt;
use std::sync::Arc;

/// Which side a hash join builds its table from.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BuildSide {
    /// Build from the left child, stream the right.
    Left,
    /// Build from the right child, stream the left.
    Right,
}

/// A user-defined physical operator (extension point; used by the
/// genomics interval join of §7.2).
pub trait ExtensionExec: Send + Sync {
    /// Operator name for EXPLAIN.
    fn name(&self) -> String;
    /// Output attributes.
    fn output(&self) -> Vec<ColumnRef>;
    /// Execute over fully materialized child partitions, producing output
    /// partitions.
    fn execute(&self, children: Vec<Vec<Vec<Row>>>) -> Result<Vec<Vec<Row>>>;
}

/// A physical plan node.
#[derive(Clone)]
pub enum PhysicalPlan {
    /// Data source scan with pushed-down projection and filters.
    Scan {
        /// The relation.
        relation: Arc<dyn BaseRelation>,
        /// Column indices to read (into the relation's schema), if pruned.
        projection: Option<Vec<usize>>,
        /// Advisory filters pushed to the source.
        pushed_filters: Vec<Filter>,
        /// Predicate re-applied above the scan (filters the source may
        /// not fully evaluate). `None` when everything pushed is exact.
        residual: Option<Expr>,
        /// Output attributes (post-projection).
        output: Vec<ColumnRef>,
    },
    /// Scan of host-program data (RDD-backed DataFrames, §3.5).
    ExternalScan {
        /// Opaque data handle.
        data: Arc<dyn ExternalData>,
        /// Output attributes.
        output: Vec<ColumnRef>,
    },
    /// Literal rows.
    LocalData {
        /// The rows.
        rows: Arc<Vec<Row>>,
        /// Output attributes.
        output: Vec<ColumnRef>,
    },
    /// Compiled per-row projection.
    Project {
        /// Child.
        input: Arc<PhysicalPlan>,
        /// Projection expressions (resolved; bound at execution).
        exprs: Vec<Expr>,
    },
    /// Compiled per-row filter.
    Filter {
        /// Child.
        input: Arc<PhysicalPlan>,
        /// Predicate.
        predicate: Expr,
    },
    /// Hash aggregation (the backend performs map-side partial
    /// aggregation followed by a shuffle and final merge).
    HashAggregate {
        /// Child.
        input: Arc<PhysicalPlan>,
        /// Grouping expressions.
        groupings: Vec<Expr>,
        /// Output expressions (may nest aggregate calls, e.g. the
        /// `MakeDecimal(Sum(…))` produced by `DecimalAggregates`).
        output_exprs: Vec<Expr>,
    },
    /// Global sort via range-partitioned shuffle.
    Sort {
        /// Child.
        input: Arc<PhysicalPlan>,
        /// Sort keys.
        orders: Vec<SortOrder>,
    },
    /// Window-function evaluation over hash-partitioned, sorted
    /// partitions (the backend shuffles on the partition keys, sorts each
    /// partition by partition + order keys, then walks frames).
    Window {
        /// Child.
        input: Arc<PhysicalPlan>,
        /// Aliased window-function expressions; each appends one output
        /// column after the input columns.
        window_exprs: Vec<Expr>,
        /// Partitioning keys (empty = one global partition).
        partition_by: Vec<Expr>,
        /// Intra-partition ordering.
        order_by: Vec<SortOrder>,
    },
    /// Sort + Limit fused into a top-k selection (avoids a global sort).
    TakeOrdered {
        /// Child.
        input: Arc<PhysicalPlan>,
        /// Sort keys.
        orders: Vec<SortOrder>,
        /// How many rows to keep.
        n: usize,
    },
    /// Row-count limit.
    Limit {
        /// Child.
        input: Arc<PhysicalPlan>,
        /// Max rows.
        n: usize,
    },
    /// Hash join where the build side is broadcast to every partition of
    /// the stream side (chosen by the cost model for small tables).
    BroadcastHashJoin {
        /// Left child.
        left: Arc<PhysicalPlan>,
        /// Right child.
        right: Arc<PhysicalPlan>,
        /// Equi-join keys from the left side.
        left_keys: Vec<Expr>,
        /// Equi-join keys from the right side.
        right_keys: Vec<Expr>,
        /// Join flavor.
        join_type: JoinType,
        /// Which side is built/broadcast.
        build_side: BuildSide,
        /// Non-equi residual condition applied to joined rows.
        residual: Option<Expr>,
    },
    /// Hash join with both sides shuffled on the join keys.
    ShuffledHashJoin {
        /// Left child.
        left: Arc<PhysicalPlan>,
        /// Right child.
        right: Arc<PhysicalPlan>,
        /// Equi-join keys from the left side.
        left_keys: Vec<Expr>,
        /// Equi-join keys from the right side.
        right_keys: Vec<Expr>,
        /// Join flavor.
        join_type: JoinType,
        /// Which side the hash table is built from. Both sides are
        /// co-partitioned, so either side is legal for any join type;
        /// the cost model picks the smaller estimated side.
        build_side: BuildSide,
        /// Non-equi residual condition.
        residual: Option<Expr>,
    },
    /// Fallback join for non-equi conditions.
    NestedLoopJoin {
        /// Left child.
        left: Arc<PhysicalPlan>,
        /// Right child.
        right: Arc<PhysicalPlan>,
        /// Join condition (None = cross join).
        condition: Option<Expr>,
        /// Join flavor.
        join_type: JoinType,
    },
    /// Concatenation.
    Union {
        /// Children.
        inputs: Vec<Arc<PhysicalPlan>>,
    },
    /// Bernoulli sample.
    Sample {
        /// Child.
        input: Arc<PhysicalPlan>,
        /// Fraction kept.
        fraction: f64,
        /// Seed.
        seed: u64,
    },
    /// User-defined operator.
    Extension {
        /// The implementation.
        exec: Arc<dyn ExtensionExec>,
        /// Children.
        children: Vec<Arc<PhysicalPlan>>,
    },
}

impl PhysicalPlan {
    /// Output attributes.
    pub fn output(&self) -> Vec<ColumnRef> {
        match self {
            PhysicalPlan::Scan { output, .. }
            | PhysicalPlan::ExternalScan { output, .. }
            | PhysicalPlan::LocalData { output, .. } => output.clone(),
            PhysicalPlan::Project { exprs, .. } => {
                exprs.iter().filter_map(|e| e.to_attribute().ok()).collect()
            }
            PhysicalPlan::Filter { input, .. }
            | PhysicalPlan::Sort { input, .. }
            | PhysicalPlan::TakeOrdered { input, .. }
            | PhysicalPlan::Limit { input, .. }
            | PhysicalPlan::Sample { input, .. } => input.output(),
            PhysicalPlan::HashAggregate { output_exprs, .. } => output_exprs
                .iter()
                .filter_map(|e| e.to_attribute().ok())
                .collect(),
            PhysicalPlan::Window {
                input,
                window_exprs,
                ..
            } => {
                let mut out = input.output();
                out.extend(window_exprs.iter().filter_map(|e| e.to_attribute().ok()));
                out
            }
            PhysicalPlan::BroadcastHashJoin {
                left,
                right,
                join_type,
                ..
            }
            | PhysicalPlan::ShuffledHashJoin {
                left,
                right,
                join_type,
                ..
            } => join_output(left, right, *join_type),
            PhysicalPlan::NestedLoopJoin {
                left,
                right,
                join_type,
                ..
            } => join_output(left, right, *join_type),
            PhysicalPlan::Union { inputs } => {
                inputs.first().map(|i| i.output()).unwrap_or_default()
            }
            PhysicalPlan::Extension { exec, .. } => exec.output(),
        }
    }

    /// Schema of the output.
    pub fn schema(&self) -> SchemaRef {
        Arc::new(
            self.output()
                .into_iter()
                .map(|c| crate::types::StructField::new(c.name, c.dtype, c.nullable))
                .collect::<Schema>(),
        )
    }

    /// Direct children.
    pub fn children(&self) -> Vec<Arc<PhysicalPlan>> {
        match self {
            PhysicalPlan::Scan { .. }
            | PhysicalPlan::ExternalScan { .. }
            | PhysicalPlan::LocalData { .. } => vec![],
            PhysicalPlan::Project { input, .. }
            | PhysicalPlan::Filter { input, .. }
            | PhysicalPlan::HashAggregate { input, .. }
            | PhysicalPlan::Window { input, .. }
            | PhysicalPlan::Sort { input, .. }
            | PhysicalPlan::TakeOrdered { input, .. }
            | PhysicalPlan::Limit { input, .. }
            | PhysicalPlan::Sample { input, .. } => vec![input.clone()],
            PhysicalPlan::BroadcastHashJoin { left, right, .. }
            | PhysicalPlan::ShuffledHashJoin { left, right, .. }
            | PhysicalPlan::NestedLoopJoin { left, right, .. } => {
                vec![left.clone(), right.clone()]
            }
            PhysicalPlan::Union { inputs } => inputs.clone(),
            PhysicalPlan::Extension { children, .. } => children.clone(),
        }
    }

    /// One-line description for EXPLAIN.
    pub fn node_description(&self) -> String {
        match self {
            PhysicalPlan::Scan {
                relation,
                projection,
                pushed_filters,
                residual,
                ..
            } => {
                let mut s = format!("Scan {}", relation.name());
                if let Some(p) = projection {
                    let schema = relation.schema();
                    let cols: Vec<&str> =
                        p.iter().map(|&i| schema.field(i).name.as_ref()).collect();
                    s.push_str(&format!(" [columns: {}]", cols.join(", ")));
                }
                if !pushed_filters.is_empty() {
                    s.push_str(&format!(" [pushed: {pushed_filters:?}]"));
                }
                if let Some(r) = residual {
                    s.push_str(&format!(" [residual: {r}]"));
                }
                s
            }
            PhysicalPlan::ExternalScan { data, .. } => format!("ExternalScan {}", data.name()),
            PhysicalPlan::LocalData { rows, .. } => format!("LocalData ({} rows)", rows.len()),
            PhysicalPlan::Project { exprs, .. } => {
                let es: Vec<String> = exprs.iter().map(|e| e.to_string()).collect();
                format!("Project [{}]", es.join(", "))
            }
            PhysicalPlan::Filter { predicate, .. } => format!("Filter {predicate}"),
            PhysicalPlan::HashAggregate {
                groupings,
                output_exprs,
                ..
            } => {
                let gs: Vec<String> = groupings.iter().map(|e| e.to_string()).collect();
                let os: Vec<String> = output_exprs.iter().map(|e| e.to_string()).collect();
                format!("HashAggregate [{}] [{}]", gs.join(", "), os.join(", "))
            }
            PhysicalPlan::Sort { orders, .. } => format!("Sort [{}]", fmt_orders(orders)),
            PhysicalPlan::Window {
                window_exprs,
                partition_by,
                order_by,
                ..
            } => {
                format!(
                    "Window [{}] partition=[{}] order=[{}]",
                    fmt_exprs(window_exprs),
                    fmt_exprs(partition_by),
                    fmt_orders(order_by)
                )
            }
            PhysicalPlan::TakeOrdered { orders, n, .. } => {
                format!("TakeOrdered {n} [{}]", fmt_orders(orders))
            }
            PhysicalPlan::Limit { n, .. } => format!("Limit {n}"),
            PhysicalPlan::BroadcastHashJoin {
                join_type,
                build_side,
                left_keys,
                right_keys,
                ..
            } => {
                format!(
                    "BroadcastHashJoin {} build={build_side:?} keys=({} = {})",
                    join_type.keyword(),
                    fmt_exprs(left_keys),
                    fmt_exprs(right_keys)
                )
            }
            PhysicalPlan::ShuffledHashJoin {
                join_type,
                build_side,
                left_keys,
                right_keys,
                ..
            } => {
                format!(
                    "ShuffledHashJoin {} build={build_side:?} keys=({} = {})",
                    join_type.keyword(),
                    fmt_exprs(left_keys),
                    fmt_exprs(right_keys)
                )
            }
            PhysicalPlan::NestedLoopJoin {
                join_type,
                condition,
                ..
            } => match condition {
                Some(c) => format!("NestedLoopJoin {} ON {c}", join_type.keyword()),
                None => format!("CartesianProduct {}", join_type.keyword()),
            },
            PhysicalPlan::Union { inputs } => format!("Union ({} inputs)", inputs.len()),
            PhysicalPlan::Sample { fraction, .. } => format!("Sample {fraction}"),
            PhysicalPlan::Extension { exec, .. } => exec.name(),
        }
    }

    fn fmt_indent(&self, f: &mut fmt::Formatter<'_>, indent: usize) -> fmt::Result {
        for _ in 0..indent {
            write!(f, "  ")?;
        }
        writeln!(f, "{}", self.node_description())?;
        for c in self.children() {
            c.fmt_indent(f, indent + 1)?;
        }
        Ok(())
    }
}

fn join_output(left: &PhysicalPlan, right: &PhysicalPlan, join_type: JoinType) -> Vec<ColumnRef> {
    let mut out = left.output();
    let mut r = right.output();
    match join_type {
        JoinType::Left => r.iter_mut().for_each(|c| c.nullable = true),
        JoinType::Right => out.iter_mut().for_each(|c| c.nullable = true),
        JoinType::Full => {
            out.iter_mut().for_each(|c| c.nullable = true);
            r.iter_mut().for_each(|c| c.nullable = true);
        }
        _ => {}
    }
    out.extend(r);
    out
}

fn fmt_orders(orders: &[SortOrder]) -> String {
    orders
        .iter()
        .map(|o| format!("{} {}", o.expr, if o.ascending { "ASC" } else { "DESC" }))
        .collect::<Vec<_>>()
        .join(", ")
}

fn fmt_exprs(exprs: &[Expr]) -> String {
    exprs
        .iter()
        .map(|e| e.to_string())
        .collect::<Vec<_>>()
        .join(", ")
}

impl fmt::Display for PhysicalPlan {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        self.fmt_indent(f, 0)
    }
}

impl fmt::Debug for PhysicalPlan {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{self}")
    }
}
