//! Physical planning (§4.3.3): strategies turn the optimized logical plan
//! into physical operators, using the cost model to select join
//! algorithms and pushing projections/filters into data sources.

use super::plan::{BuildSide, PhysicalPlan};
use super::stats;
use crate::error::{CatalystError, Result};
use crate::expr::{BinaryOperator, ColumnRef, Expr, ScalarFunc};
use crate::optimizer::{conjunction, split_conjuncts};
use crate::plan::{JoinType, LogicalPlan};
use crate::source::{BaseRelation, Filter, ScanCapability};
use crate::value::Value;
use std::sync::Arc;

/// Planner configuration (the ablation switches live here).
#[derive(Debug, Clone)]
pub struct PlannerConfig {
    /// Push filters into capable sources?
    pub pushdown_enabled: bool,
    /// Prune columns at the source?
    pub column_pruning_enabled: bool,
    /// Broadcast-join threshold in estimated bytes.
    pub broadcast_threshold: u64,
    /// Cost-based build-side selection for shuffled hash joins
    /// (`spark.sql.cbo.enabled`): build the smaller estimated side.
    /// When off, shuffled joins always build the right side.
    pub cbo_enabled: bool,
}

impl Default for PlannerConfig {
    fn default() -> Self {
        PlannerConfig {
            pushdown_enabled: true,
            column_pruning_enabled: true,
            broadcast_threshold: 10 * 1024 * 1024,
            cbo_enabled: true,
        }
    }
}

/// A planning strategy: maps a logical node it recognizes to a physical
/// plan (recursively planning children through the planner), or passes.
///
/// This is the extension point the §7.2 genomics range join uses: a user
/// strategy registered ahead of the defaults can claim `Join` nodes whose
/// shape it recognizes and emit a custom [`super::plan::ExtensionExec`].
pub trait Strategy: Send + Sync {
    /// Strategy name.
    fn name(&self) -> &str;
    /// Try to plan this node.
    fn apply(&self, plan: &LogicalPlan, planner: &Planner) -> Result<Option<PhysicalPlan>>;
}

/// The physical planner.
pub struct Planner {
    strategies: Vec<Arc<dyn Strategy>>,
    /// Configuration.
    pub config: PlannerConfig,
}

impl Planner {
    /// Planner with the default strategies.
    pub fn new(config: PlannerConfig) -> Self {
        Planner {
            strategies: vec![
                Arc::new(SpecialLimits),
                Arc::new(Aggregation),
                Arc::new(JoinSelection),
                Arc::new(BasicOperators),
            ],
            config,
        }
    }

    /// Register a user strategy ahead of the defaults.
    pub fn add_strategy(&mut self, strategy: Arc<dyn Strategy>) {
        self.strategies.insert(0, strategy);
    }

    /// Plan a logical subtree.
    pub fn plan(&self, logical: &LogicalPlan) -> Result<PhysicalPlan> {
        for s in &self.strategies {
            if let Some(p) = s.apply(logical, self)? {
                return Ok(p);
            }
        }
        Err(CatalystError::Plan(format!(
            "no strategy could plan node: {}",
            logical.node_description()
        )))
    }
}

impl Default for Planner {
    fn default() -> Self {
        Planner::new(PlannerConfig::default())
    }
}

/// `Limit(Sort(x))` → `TakeOrdered` (top-k without a global sort); also
/// looks through an intervening `Project`.
struct SpecialLimits;

impl Strategy for SpecialLimits {
    fn name(&self) -> &str {
        "SpecialLimits"
    }

    fn apply(&self, plan: &LogicalPlan, planner: &Planner) -> Result<Option<PhysicalPlan>> {
        let LogicalPlan::Limit { input, n } = plan else {
            return Ok(None);
        };
        match &**input {
            LogicalPlan::Sort {
                input: sorted,
                orders,
            } => Ok(Some(PhysicalPlan::TakeOrdered {
                input: Arc::new(planner.plan(sorted)?),
                orders: orders.clone(),
                n: *n,
            })),
            LogicalPlan::Project {
                input: proj_in,
                exprs,
            } => match &**proj_in {
                LogicalPlan::Sort {
                    input: sorted,
                    orders,
                } => Ok(Some(PhysicalPlan::Project {
                    input: Arc::new(PhysicalPlan::TakeOrdered {
                        input: Arc::new(planner.plan(sorted)?),
                        orders: orders.clone(),
                        n: *n,
                    }),
                    exprs: exprs.clone(),
                })),
                _ => Ok(None),
            },
            _ => Ok(None),
        }
    }
}

/// Aggregates become hash aggregation (the backend runs partial
/// aggregation before the shuffle, final after).
struct Aggregation;

impl Strategy for Aggregation {
    fn name(&self) -> &str {
        "Aggregation"
    }

    fn apply(&self, plan: &LogicalPlan, planner: &Planner) -> Result<Option<PhysicalPlan>> {
        match plan {
            LogicalPlan::Aggregate {
                input,
                groupings,
                aggregates,
            } => Ok(Some(PhysicalPlan::HashAggregate {
                input: Arc::new(planner.plan(input)?),
                groupings: groupings.clone(),
                output_exprs: aggregates.clone(),
            })),
            LogicalPlan::Distinct { input } => {
                let cols: Vec<Expr> = input.output().into_iter().map(Expr::Column).collect();
                Ok(Some(PhysicalPlan::HashAggregate {
                    input: Arc::new(planner.plan(input)?),
                    groupings: cols.clone(),
                    output_exprs: cols,
                }))
            }
            _ => Ok(None),
        }
    }
}

/// Cost-based join selection: broadcast hash join when one side's
/// estimated size is under the threshold, otherwise shuffled hash join;
/// nested-loop for non-equi conditions (§4.3.3).
struct JoinSelection;

/// Split a join condition into equi-key pairs and a residual.
pub fn extract_equi_keys(
    condition: &Expr,
    left_out: &[ColumnRef],
    right_out: &[ColumnRef],
) -> (Vec<(Expr, Expr)>, Vec<Expr>) {
    let mut keys = Vec::new();
    let mut residual = Vec::new();
    let side_of = |e: &Expr| -> Option<BuildSide> {
        let refs = e.references();
        if refs.is_empty() {
            return None;
        }
        if refs.iter().all(|r| left_out.iter().any(|a| a.id == r.id)) {
            Some(BuildSide::Left)
        } else if refs.iter().all(|r| right_out.iter().any(|a| a.id == r.id)) {
            Some(BuildSide::Right)
        } else {
            None
        }
    };
    for c in split_conjuncts(condition) {
        if let Expr::BinaryOp {
            left,
            op: BinaryOperator::Eq,
            right,
        } = &c
        {
            match (side_of(left), side_of(right)) {
                (Some(BuildSide::Left), Some(BuildSide::Right)) => {
                    keys.push(((**left).clone(), (**right).clone()));
                    continue;
                }
                (Some(BuildSide::Right), Some(BuildSide::Left)) => {
                    keys.push(((**right).clone(), (**left).clone()));
                    continue;
                }
                _ => {}
            }
        }
        residual.push(c);
    }
    (keys, residual)
}

impl Strategy for JoinSelection {
    fn name(&self) -> &str {
        "JoinSelection"
    }

    fn apply(&self, plan: &LogicalPlan, planner: &Planner) -> Result<Option<PhysicalPlan>> {
        let LogicalPlan::Join {
            left,
            right,
            join_type,
            condition,
        } = plan
        else {
            return Ok(None);
        };
        let left_phys = Arc::new(planner.plan(left)?);
        let right_phys = Arc::new(planner.plan(right)?);

        let (keys, residual) = match condition {
            Some(c) => extract_equi_keys(c, &left.output(), &right.output()),
            None => (vec![], vec![]),
        };

        if keys.is_empty() {
            return Ok(Some(PhysicalPlan::NestedLoopJoin {
                left: left_phys,
                right: right_phys,
                condition: condition.clone(),
                join_type: *join_type,
            }));
        }

        let (left_keys, right_keys): (Vec<Expr>, Vec<Expr>) = keys.into_iter().unzip();
        let residual = conjunction(residual);

        // Cost-based choice (the only cost-based step; all else is
        // rule-based, per §4.3.3). A side with unknown statistics must be
        // treated as arbitrarily large: it never qualifies for broadcast
        // here, no matter what scaling the operators above it applied —
        // adaptive execution may still demote the join later, from
        // *measured* sizes.
        let left_stats = stats::estimate(left);
        let right_stats = stats::estimate(right);
        let (left_size, right_size) = (left_stats.size_in_bytes, right_stats.size_in_bytes);
        let threshold = planner.config.broadcast_threshold;
        let left_fits = !left_stats.is_unknown() && left_size <= threshold;
        let right_fits = !right_stats.is_unknown() && right_size <= threshold;
        // A broadcast join must not need to emit unmatched *build* rows:
        // the build table is replicated per stream partition, so those
        // rows would duplicate.
        let can_build_right = matches!(join_type, JoinType::Inner | JoinType::Left);
        let can_build_left = matches!(join_type, JoinType::Inner | JoinType::Right);

        // Prefer building the smaller side when both qualify.
        let prefer_left =
            can_build_left && left_fits && (left_size < right_size || !can_build_right);
        let plan = if prefer_left {
            PhysicalPlan::BroadcastHashJoin {
                left: left_phys,
                right: right_phys,
                left_keys,
                right_keys,
                join_type: *join_type,
                build_side: BuildSide::Left,
                residual,
            }
        } else if right_fits && can_build_right {
            PhysicalPlan::BroadcastHashJoin {
                left: left_phys,
                right: right_phys,
                left_keys,
                right_keys,
                join_type: *join_type,
                build_side: BuildSide::Right,
                residual,
            }
        } else if left_fits && can_build_left {
            PhysicalPlan::BroadcastHashJoin {
                left: left_phys,
                right: right_phys,
                left_keys,
                right_keys,
                join_type: *join_type,
                build_side: BuildSide::Left,
                residual,
            }
        } else {
            // Build-probe ordering (DataFusion's hash-build-probe-order
            // rule): both sides of a shuffled join are co-partitioned, so
            // either side may be built for any join type — build the
            // smaller estimated side. A side with unknown statistics is
            // arbitrarily large and never preferred.
            let build_side = if planner.config.cbo_enabled
                && !left_stats.is_unknown()
                && (right_stats.is_unknown() || left_size < right_size)
            {
                BuildSide::Left
            } else {
                BuildSide::Right
            };
            PhysicalPlan::ShuffledHashJoin {
                left: left_phys,
                right: right_phys,
                left_keys,
                right_keys,
                join_type: *join_type,
                build_side,
                residual,
            }
        };
        Ok(Some(plan))
    }
}

/// Everything else, including the scan pipeline that pushes projections
/// and filters into data sources (§4.4.1).
struct BasicOperators;

impl Strategy for BasicOperators {
    fn name(&self) -> &str {
        "BasicOperators"
    }

    fn apply(&self, plan: &LogicalPlan, planner: &Planner) -> Result<Option<PhysicalPlan>> {
        let out = match plan {
            // Scan pipelines: recognize Project/Filter directly over a
            // Scan so pruning and pushdown reach the source.
            LogicalPlan::Scan {
                relation, output, ..
            } => plan_scan(planner, relation, output, None, None)?,
            LogicalPlan::Filter { input, predicate } => match &**input {
                LogicalPlan::Scan {
                    relation, output, ..
                } => plan_scan(planner, relation, output, None, Some(predicate))?,
                _ => PhysicalPlan::Filter {
                    input: Arc::new(planner.plan(input)?),
                    predicate: predicate.clone(),
                },
            },
            LogicalPlan::Project { input, exprs } => match &**input {
                LogicalPlan::Scan {
                    relation, output, ..
                } => plan_scan(planner, relation, output, Some(exprs), None)?,
                LogicalPlan::Filter {
                    input: finput,
                    predicate,
                } => match &**finput {
                    LogicalPlan::Scan {
                        relation, output, ..
                    } => plan_scan(planner, relation, output, Some(exprs), Some(predicate))?,
                    _ => PhysicalPlan::Project {
                        input: Arc::new(planner.plan(input)?),
                        exprs: exprs.clone(),
                    },
                },
                _ => PhysicalPlan::Project {
                    input: Arc::new(planner.plan(input)?),
                    exprs: exprs.clone(),
                },
            },
            LogicalPlan::External { data, output } => PhysicalPlan::ExternalScan {
                data: data.clone(),
                output: output.clone(),
            },
            LogicalPlan::LocalRelation { output, rows } => PhysicalPlan::LocalData {
                rows: rows.clone(),
                output: output.clone(),
            },
            LogicalPlan::Sort { input, orders } => PhysicalPlan::Sort {
                input: Arc::new(planner.plan(input)?),
                orders: orders.clone(),
            },
            LogicalPlan::Window {
                input,
                window_exprs,
                partition_by,
                order_by,
            } => PhysicalPlan::Window {
                input: Arc::new(planner.plan(input)?),
                window_exprs: window_exprs.clone(),
                partition_by: partition_by.clone(),
                order_by: order_by.clone(),
            },
            LogicalPlan::Limit { input, n } => PhysicalPlan::Limit {
                input: Arc::new(planner.plan(input)?),
                n: *n,
            },
            LogicalPlan::Union { inputs } => {
                let mut phys = Vec::with_capacity(inputs.len());
                for i in inputs {
                    phys.push(Arc::new(planner.plan(i)?));
                }
                PhysicalPlan::Union { inputs: phys }
            }
            LogicalPlan::SubqueryAlias { input, .. } => planner.plan(input)?,
            LogicalPlan::Sample {
                input,
                fraction,
                seed,
            } => PhysicalPlan::Sample {
                input: Arc::new(planner.plan(input)?),
                fraction: *fraction,
                seed: *seed,
            },
            LogicalPlan::UnresolvedRelation { name } => {
                return Err(CatalystError::Plan(format!(
                    "cannot plan unresolved relation '{name}' — run analysis first"
                )))
            }
            _ => return Ok(None),
        };
        Ok(Some(out))
    }
}

/// Plan a scan pipeline: prune columns and push filters per the source's
/// capability tier, keeping a residual filter when pushdown is advisory.
fn plan_scan(
    planner: &Planner,
    relation: &Arc<dyn BaseRelation>,
    scan_output: &[ColumnRef],
    project: Option<&Vec<Expr>>,
    predicate: Option<&Expr>,
) -> Result<PhysicalPlan> {
    let capability = relation.capability();

    // Required columns: referenced by projection and predicate, or all.
    let required: Vec<ColumnRef> = match project {
        Some(exprs) => {
            let mut req: Vec<ColumnRef> = Vec::new();
            for e in exprs.iter().chain(predicate) {
                for r in e.references() {
                    if !req.iter().any(|c: &ColumnRef| c.id == r.id) {
                        req.push(r);
                    }
                }
            }
            // Preserve relation column order.
            scan_output
                .iter()
                .filter(|c| req.iter().any(|r| r.id == c.id))
                .cloned()
                .collect()
        }
        None => scan_output.to_vec(),
    };

    let prune = planner.config.column_pruning_enabled
        && capability != ScanCapability::TableScan
        && required.len() < scan_output.len()
        && !required.is_empty();
    let (projection, output) = if prune {
        let indices: Vec<usize> = required
            .iter()
            .map(|c| scan_output.iter().position(|s| s.id == c.id).expect("col"))
            .collect();
        (Some(indices), required)
    } else {
        (None, scan_output.to_vec())
    };

    // Filter pushdown.
    let mut pushed: Vec<Filter> = Vec::new();
    let mut residual_conjuncts: Vec<Expr> = Vec::new();
    if let Some(pred) = predicate {
        let can_push = planner.config.pushdown_enabled
            && matches!(
                capability,
                ScanCapability::PrunedFilteredScan | ScanCapability::CatalystScan
            );
        let conjuncts = split_conjuncts(pred);
        if can_push {
            let mut convertible: Vec<(Filter, Expr)> = Vec::new();
            for c in &conjuncts {
                match expr_to_filter(c) {
                    Some(f) => convertible.push((f, c.clone())),
                    None => residual_conjuncts.push(c.clone()),
                }
            }
            let filters: Vec<Filter> = convertible.iter().map(|(f, _)| f.clone()).collect();
            let handled = relation.handled_filters(&filters);
            for (i, (f, e)) in convertible.into_iter().enumerate() {
                pushed.push(f);
                // Advisory filters are re-checked above the scan.
                if !handled.get(i).copied().unwrap_or(false) {
                    residual_conjuncts.push(e);
                }
            }
        } else {
            residual_conjuncts = conjuncts;
        }
    }

    let scan = PhysicalPlan::Scan {
        relation: relation.clone(),
        projection,
        pushed_filters: pushed,
        residual: conjunction(residual_conjuncts),
        output: output.clone(),
    };

    // Wrap the projection expressions unless they are exactly the pruned
    // output columns in order.
    match project {
        Some(exprs) => {
            let identity = exprs.len() == output.len()
                && exprs.iter().zip(output.iter()).all(|(e, c)| match e {
                    Expr::Column(ec) => ec.id == c.id,
                    _ => false,
                });
            if identity {
                Ok(scan)
            } else {
                Ok(PhysicalPlan::Project {
                    input: Arc::new(scan),
                    exprs: exprs.clone(),
                })
            }
        }
        None => Ok(scan),
    }
}

/// Convert a conjunct to the sources' advisory [`Filter`] language, if it
/// fits (§4.4.1 footnote 7).
pub fn expr_to_filter(e: &Expr) -> Option<Filter> {
    fn column_name(e: &Expr) -> Option<String> {
        match e {
            Expr::Column(c) => Some(c.name.to_string()),
            // Numeric casts inserted by coercion don't change comparison
            // semantics for source-side filtering (values compare
            // cross-type).
            Expr::Cast { expr, dtype } if dtype.is_numeric() => match &**expr {
                Expr::Column(c) if c.dtype.is_numeric() => Some(c.name.to_string()),
                _ => None,
            },
            _ => None,
        }
    }
    fn literal(e: &Expr) -> Option<Value> {
        match e {
            Expr::Literal(v) if !v.is_null() => Some(v.clone()),
            _ => None,
        }
    }
    match e {
        Expr::BinaryOp { left, op, right } if op.is_comparison() => {
            let (name, value, op) = match (column_name(left), literal(right)) {
                (Some(n), Some(v)) => (n, v, *op),
                _ => match (column_name(right), literal(left)) {
                    // Flip: 5 < col ⇔ col > 5.
                    (Some(n), Some(v)) => {
                        let flipped = match op {
                            BinaryOperator::Lt => BinaryOperator::Gt,
                            BinaryOperator::LtEq => BinaryOperator::GtEq,
                            BinaryOperator::Gt => BinaryOperator::Lt,
                            BinaryOperator::GtEq => BinaryOperator::LtEq,
                            other => *other,
                        };
                        (n, v, flipped)
                    }
                    _ => return None,
                },
            };
            Some(match op {
                BinaryOperator::Eq => Filter::Eq(name, value),
                BinaryOperator::Gt => Filter::Gt(name, value),
                BinaryOperator::GtEq => Filter::GtEq(name, value),
                BinaryOperator::Lt => Filter::Lt(name, value),
                BinaryOperator::LtEq => Filter::LtEq(name, value),
                _ => return None, // NotEq is not in the advisory language
            })
        }
        Expr::InList {
            expr,
            list,
            negated: false,
        } => {
            let name = column_name(expr)?;
            let values: Option<Vec<Value>> = list.iter().map(literal).collect();
            Some(Filter::In(name, values?))
        }
        Expr::IsNotNull(inner) => Some(Filter::IsNotNull(column_name(inner)?)),
        Expr::IsNull(inner) => Some(Filter::IsNull(column_name(inner)?)),
        Expr::ScalarFn {
            func: ScalarFunc::StartsWith,
            args,
        } if args.len() == 2 => {
            let name = column_name(&args[0])?;
            match literal(&args[1])? {
                Value::Str(s) => Some(Filter::StringStartsWith(name, s.to_string())),
                _ => None,
            }
        }
        Expr::ScalarFn {
            func: ScalarFunc::Contains,
            args,
        } if args.len() == 2 => {
            let name = column_name(&args[0])?;
            match literal(&args[1])? {
                Value::Str(s) => Some(Filter::StringContains(name, s.to_string())),
                _ => None,
            }
        }
        _ => None,
    }
}
