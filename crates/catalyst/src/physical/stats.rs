//! The cost model (§4.3.3): sizes estimated recursively for a whole tree.
//!
//! Footnote 5 of the paper: "table sizes are estimated if the table is
//! cached in memory or comes from an external file, or if it is the
//! result of a subquery with a LIMIT". Those are exactly the cases with
//! tight estimates here; everything else degrades gracefully with
//! heuristic selectivities.

use crate::plan::LogicalPlan;

/// Estimated properties of a (sub)plan.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Statistics {
    /// Estimated output size in bytes.
    pub size_in_bytes: u64,
    /// Estimated row count, when derivable.
    pub row_count: Option<u64>,
}

impl Statistics {
    /// A completely unknown relation: assume huge so we never broadcast
    /// something unbounded.
    pub fn unknown() -> Self {
        Statistics { size_in_bytes: u64::MAX / 4, row_count: None }
    }
}

/// Default selectivity assumed for a filter.
pub const FILTER_SELECTIVITY: f64 = 0.5;

/// Default group-count ratio assumed for an aggregate.
pub const AGGREGATE_RATIO: f64 = 0.2;

/// Estimate statistics bottom-up.
pub fn estimate(plan: &LogicalPlan) -> Statistics {
    match plan {
        LogicalPlan::UnresolvedRelation { .. } => Statistics::unknown(),
        LogicalPlan::Scan { relation, .. } => match relation.size_in_bytes() {
            Some(b) => Statistics { size_in_bytes: b, row_count: relation.row_count() },
            None => Statistics::unknown(),
        },
        LogicalPlan::External { data, .. } => match data.size_in_bytes() {
            Some(b) => Statistics { size_in_bytes: b, row_count: None },
            None => Statistics::unknown(),
        },
        LogicalPlan::LocalRelation { rows, .. } => {
            let bytes = plan.schema().approx_row_bytes() * rows.len() as u64;
            Statistics { size_in_bytes: bytes.max(1), row_count: Some(rows.len() as u64) }
        }
        LogicalPlan::Filter { input, .. } => {
            let s = estimate(input);
            Statistics {
                size_in_bytes: scale(s.size_in_bytes, FILTER_SELECTIVITY),
                row_count: s.row_count.map(|r| scale(r, FILTER_SELECTIVITY)),
            }
        }
        LogicalPlan::Project { input, .. } => {
            let s = estimate(input);
            let in_width = input.schema().approx_row_bytes();
            let out_width = plan.schema().approx_row_bytes();
            let ratio = (out_width as f64 / in_width.max(1) as f64).min(1.0);
            Statistics { size_in_bytes: scale(s.size_in_bytes, ratio), row_count: s.row_count }
        }
        LogicalPlan::Join { left, right, .. } => {
            let l = estimate(left);
            let r = estimate(right);
            // Assume FK-style join: output about the size of the bigger
            // input (bounded to avoid overflow on unknowns).
            Statistics {
                size_in_bytes: l.size_in_bytes.max(r.size_in_bytes),
                row_count: match (l.row_count, r.row_count) {
                    (Some(a), Some(b)) => Some(a.max(b)),
                    _ => None,
                },
            }
        }
        LogicalPlan::Aggregate { input, groupings, .. } => {
            let s = estimate(input);
            if groupings.is_empty() {
                Statistics {
                    size_in_bytes: plan.schema().approx_row_bytes(),
                    row_count: Some(1),
                }
            } else {
                Statistics {
                    size_in_bytes: scale(s.size_in_bytes, AGGREGATE_RATIO),
                    row_count: s.row_count.map(|r| scale(r, AGGREGATE_RATIO)),
                }
            }
        }
        LogicalPlan::Sort { input, .. } | LogicalPlan::SubqueryAlias { input, .. } => {
            estimate(input)
        }
        LogicalPlan::Distinct { input } => {
            let s = estimate(input);
            Statistics {
                size_in_bytes: scale(s.size_in_bytes, 0.5),
                row_count: s.row_count.map(|r| scale(r, 0.5)),
            }
        }
        LogicalPlan::Limit { input, n } => {
            // Footnote 5: LIMIT makes the size known.
            let s = estimate(input);
            let width = plan.schema().approx_row_bytes();
            let capped_rows = match s.row_count {
                Some(r) => r.min(*n as u64),
                None => *n as u64,
            };
            Statistics {
                size_in_bytes: (capped_rows * width).min(s.size_in_bytes).max(1),
                row_count: Some(capped_rows),
            }
        }
        LogicalPlan::Union { inputs } => {
            let mut size = 0u64;
            let mut rows = Some(0u64);
            for i in inputs {
                let s = estimate(i);
                size = size.saturating_add(s.size_in_bytes);
                rows = match (rows, s.row_count) {
                    (Some(a), Some(b)) => Some(a + b),
                    _ => None,
                };
            }
            Statistics { size_in_bytes: size, row_count: rows }
        }
        LogicalPlan::Sample { input, fraction, .. } => {
            let s = estimate(input);
            Statistics {
                size_in_bytes: scale(s.size_in_bytes, *fraction),
                row_count: s.row_count.map(|r| scale(r, *fraction)),
            }
        }
    }
}

fn scale(v: u64, f: f64) -> u64 {
    if v >= u64::MAX / 8 {
        return v; // keep "unknown" huge
    }
    ((v as f64 * f) as u64).max(1)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::expr::builders::{col, lit};
    use crate::expr::ColumnRef;
    use crate::row::Row;
    use crate::types::DataType;
    use crate::value::Value;
    use std::sync::Arc;

    fn local(n: usize) -> LogicalPlan {
        LogicalPlan::LocalRelation {
            output: vec![ColumnRef::new("x", DataType::Long, false)],
            rows: Arc::new((0..n).map(|i| Row::new(vec![Value::Long(i as i64)])).collect()),
        }
    }

    #[test]
    fn local_relation_size_is_exact() {
        let s = estimate(&local(100));
        assert_eq!(s.row_count, Some(100));
        assert_eq!(s.size_in_bytes, 800);
    }

    #[test]
    fn limit_bounds_the_estimate() {
        let plan = local(1_000_000).limit(10);
        let s = estimate(&plan);
        assert_eq!(s.row_count, Some(10));
        assert!(s.size_in_bytes <= 100);
    }

    #[test]
    fn filter_halves_the_estimate() {
        let base = estimate(&local(100)).size_in_bytes;
        let filtered = estimate(&local(100).filter(col("x").gt(lit(0i64))));
        assert_eq!(filtered.size_in_bytes, base / 2);
    }

    #[test]
    fn unknown_stays_huge() {
        let s = estimate(&LogicalPlan::UnresolvedRelation { name: "t".into() });
        assert!(s.size_in_bytes > u64::MAX / 8);
        let filtered = estimate(
            &LogicalPlan::UnresolvedRelation { name: "t".into() }.filter(lit(true)),
        );
        assert!(filtered.size_in_bytes > u64::MAX / 8, "filters must not shrink unknowns");
    }

    #[test]
    fn global_aggregate_is_one_row() {
        let plan = local(1000).aggregate(vec![], vec![]);
        assert_eq!(estimate(&plan).row_count, Some(1));
    }
}
