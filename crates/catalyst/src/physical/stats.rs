//! The cost model (§4.3.3): sizes estimated recursively for a whole tree.
//!
//! Footnote 5 of the paper: "table sizes are estimated if the table is
//! cached in memory or comes from an external file, or if it is the
//! result of a subquery with a LIMIT". Those are exactly the cases with
//! tight estimates here; everything else degrades gracefully with
//! heuristic selectivities.
//!
//! Unknown-ness is tracked explicitly: an operator over an unknown-stats
//! child stays unknown instead of scaling a sentinel toward zero, so the
//! planner can never talk itself into broadcasting an arbitrarily large
//! unknown-size relation. The only deliberate "unknown killers" are the
//! footnote-5 cases — LIMIT bounds the size regardless of the input, and
//! a global (no-groupings) aggregate produces exactly one row.

use crate::physical::metrics::PlanMetrics;
use crate::physical::PhysicalPlan;
use crate::plan::LogicalPlan;

/// Estimated properties of a (sub)plan.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Statistics {
    /// Estimated output size in bytes.
    pub size_in_bytes: u64,
    /// Estimated row count, when derivable.
    pub row_count: Option<u64>,
}

/// Sentinel size for relations with no estimate. Anything at or above
/// [`UNKNOWN_FLOOR`] is treated as unknown; the gap keeps older callers
/// doing arithmetic near the sentinel on the safe side.
const UNKNOWN_SIZE: u64 = u64::MAX / 4;

/// Threshold above which a size is considered unknown.
const UNKNOWN_FLOOR: u64 = u64::MAX / 8;

impl Statistics {
    /// A completely unknown relation: assume huge so we never broadcast
    /// something unbounded.
    pub fn unknown() -> Self {
        Statistics {
            size_in_bytes: UNKNOWN_SIZE,
            row_count: None,
        }
    }

    /// True when this estimate carries no real size information. The
    /// planner must treat such relations as arbitrarily large — never
    /// broadcast them, never prefer them as a build side.
    pub fn is_unknown(&self) -> bool {
        self.size_in_bytes >= UNKNOWN_FLOOR
    }

    /// Scale size and rows by a selectivity, preserving unknown-ness.
    fn scaled(&self, f: f64) -> Statistics {
        if self.is_unknown() {
            return Statistics::unknown();
        }
        Statistics {
            size_in_bytes: ((self.size_in_bytes as f64 * f) as u64).max(1),
            row_count: self.row_count.map(|r| ((r as f64 * f) as u64).max(1)),
        }
    }
}

/// Default selectivity assumed for a filter.
pub const FILTER_SELECTIVITY: f64 = 0.5;

/// Default group-count ratio assumed for an aggregate.
pub const AGGREGATE_RATIO: f64 = 0.2;

/// Estimate statistics bottom-up.
pub fn estimate(plan: &LogicalPlan) -> Statistics {
    match plan {
        LogicalPlan::UnresolvedRelation { .. } => Statistics::unknown(),
        LogicalPlan::Scan { relation, .. } => match relation.size_in_bytes() {
            Some(b) => Statistics {
                size_in_bytes: b,
                row_count: relation.row_count(),
            },
            None => Statistics::unknown(),
        },
        LogicalPlan::External { data, .. } => match data.size_in_bytes() {
            Some(b) => Statistics {
                size_in_bytes: b,
                row_count: None,
            },
            None => Statistics::unknown(),
        },
        LogicalPlan::LocalRelation { rows, .. } => {
            let bytes = plan.schema().approx_row_bytes() * rows.len() as u64;
            Statistics {
                size_in_bytes: bytes.max(1),
                row_count: Some(rows.len() as u64),
            }
        }
        LogicalPlan::Filter { input, .. } => estimate(input).scaled(FILTER_SELECTIVITY),
        LogicalPlan::Project { input, .. } => {
            let s = estimate(input);
            let in_width = input.schema().approx_row_bytes();
            let out_width = plan.schema().approx_row_bytes();
            let ratio = (out_width as f64 / in_width.max(1) as f64).min(1.0);
            let scaled = s.scaled(ratio);
            // Projection never changes the row count.
            Statistics {
                size_in_bytes: scaled.size_in_bytes,
                row_count: s.row_count,
            }
        }
        LogicalPlan::Join { left, right, .. } => {
            let l = estimate(left);
            let r = estimate(right);
            if l.is_unknown() || r.is_unknown() {
                // FK-style output tracks the bigger input, and an unknown
                // input means an unknown (arbitrarily large) output.
                return Statistics::unknown();
            }
            // Assume FK-style join: output about the size of the bigger
            // input.
            Statistics {
                size_in_bytes: l.size_in_bytes.max(r.size_in_bytes),
                row_count: match (l.row_count, r.row_count) {
                    (Some(a), Some(b)) => Some(a.max(b)),
                    _ => None,
                },
            }
        }
        LogicalPlan::Aggregate {
            input, groupings, ..
        } => {
            if groupings.is_empty() {
                // Footnote-5-style unknown killer: a global aggregate is
                // one row no matter how large (or unknown) the input.
                Statistics {
                    size_in_bytes: plan.schema().approx_row_bytes(),
                    row_count: Some(1),
                }
            } else {
                estimate(input).scaled(AGGREGATE_RATIO)
            }
        }
        LogicalPlan::Sort { input, .. } | LogicalPlan::SubqueryAlias { input, .. } => {
            estimate(input)
        }
        LogicalPlan::Window { input, .. } => {
            // Row count is preserved; the appended window columns widen
            // each row.
            let s = estimate(input);
            if s.is_unknown() {
                return Statistics::unknown();
            }
            let in_width = input.schema().approx_row_bytes();
            let out_width = plan.schema().approx_row_bytes();
            let ratio = (out_width as f64 / in_width.max(1) as f64).max(1.0);
            Statistics {
                size_in_bytes: ((s.size_in_bytes as f64 * ratio) as u64).max(1),
                row_count: s.row_count,
            }
        }
        LogicalPlan::Distinct { input } => estimate(input).scaled(0.5),
        LogicalPlan::Limit { input, n } => {
            // Footnote 5: LIMIT makes the size known.
            let s = estimate(input);
            let width = plan.schema().approx_row_bytes();
            let capped_rows = match s.row_count {
                Some(r) => r.min(*n as u64),
                None => *n as u64,
            };
            Statistics {
                size_in_bytes: (capped_rows * width).min(s.size_in_bytes).max(1),
                row_count: Some(capped_rows),
            }
        }
        LogicalPlan::Union { inputs } => {
            let mut size = 0u64;
            let mut rows = Some(0u64);
            let mut any_unknown = false;
            for i in inputs {
                let s = estimate(i);
                any_unknown |= s.is_unknown();
                size = size.saturating_add(s.size_in_bytes);
                rows = match (rows, s.row_count) {
                    (Some(a), Some(b)) => Some(a + b),
                    _ => None,
                };
            }
            if any_unknown {
                return Statistics::unknown();
            }
            Statistics {
                size_in_bytes: size,
                row_count: rows,
            }
        }
        LogicalPlan::Sample {
            input, fraction, ..
        } => estimate(input).scaled(*fraction),
    }
}

/// Estimated output rows of one physical operator, bottom-up. `None`
/// where no estimate is derivable (external data, extension operators,
/// sources without statistics) — unknown-ness propagates upward except
/// through the footnote-5 killers (LIMIT, global aggregates).
pub fn estimate_physical_rows(plan: &PhysicalPlan) -> Option<u64> {
    let scaled = |rows: Option<u64>, f: f64| rows.map(|r| ((r as f64 * f) as u64).max(1));
    match plan {
        PhysicalPlan::Scan {
            relation,
            pushed_filters,
            residual,
            ..
        } => {
            let filters = pushed_filters.len() + usize::from(residual.is_some());
            scaled(
                relation.row_count(),
                FILTER_SELECTIVITY.powi(filters as i32),
            )
        }
        PhysicalPlan::ExternalScan { .. } | PhysicalPlan::Extension { .. } => None,
        PhysicalPlan::LocalData { rows, .. } => Some(rows.len() as u64),
        PhysicalPlan::Filter { input, .. } => {
            scaled(estimate_physical_rows(input), FILTER_SELECTIVITY)
        }
        PhysicalPlan::Project { input, .. } | PhysicalPlan::Sort { input, .. } => {
            estimate_physical_rows(input)
        }
        PhysicalPlan::Window { input, .. } => estimate_physical_rows(input),
        PhysicalPlan::HashAggregate {
            input, groupings, ..
        } => {
            if groupings.is_empty() {
                Some(1)
            } else {
                scaled(estimate_physical_rows(input), AGGREGATE_RATIO)
            }
        }
        PhysicalPlan::TakeOrdered { input, n, .. } | PhysicalPlan::Limit { input, n } => {
            Some(match estimate_physical_rows(input) {
                Some(r) => r.min(*n as u64),
                None => *n as u64,
            })
        }
        PhysicalPlan::BroadcastHashJoin { left, right, .. }
        | PhysicalPlan::ShuffledHashJoin { left, right, .. } => {
            // FK-style: output tracks the bigger input.
            Some(estimate_physical_rows(left)?.max(estimate_physical_rows(right)?))
        }
        PhysicalPlan::NestedLoopJoin {
            left,
            right,
            condition,
            ..
        } => {
            let product =
                estimate_physical_rows(left)?.saturating_mul(estimate_physical_rows(right)?);
            match condition {
                Some(_) => scaled(Some(product), FILTER_SELECTIVITY),
                None => Some(product),
            }
        }
        PhysicalPlan::Union { inputs } => inputs
            .iter()
            .map(|i| estimate_physical_rows(i))
            .try_fold(0u64, |acc, r| r.map(|r| acc.saturating_add(r))),
        PhysicalPlan::Sample {
            input, fraction, ..
        } => scaled(estimate_physical_rows(input), *fraction),
    }
}

/// Stamp every operator's estimated output rows into its metrics slot as
/// an `est_rows` extra, so `EXPLAIN ANALYZE` renders estimated next to
/// actual rows per operator. Nodes with no derivable estimate are left
/// unstamped.
pub fn annotate_row_estimates(plan: &PhysicalPlan, metrics: &PlanMetrics) {
    fn walk(plan: &PhysicalPlan, id: usize, metrics: &PlanMetrics) -> usize {
        if let Some(rows) = estimate_physical_rows(plan) {
            metrics.node(id).set_extra("est_rows", rows);
        }
        let mut next = id + 1;
        for child in plan.children() {
            next = walk(&child, next, metrics);
        }
        next
    }
    walk(plan, 0, metrics);
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::expr::builders::{col, lit};
    use crate::expr::ColumnRef;
    use crate::plan::JoinType;
    use crate::row::Row;
    use crate::types::DataType;
    use crate::value::Value;
    use std::sync::Arc;

    fn local(n: usize) -> LogicalPlan {
        LogicalPlan::LocalRelation {
            output: vec![ColumnRef::new("x", DataType::Long, false)],
            rows: Arc::new(
                (0..n)
                    .map(|i| Row::new(vec![Value::Long(i as i64)]))
                    .collect(),
            ),
        }
    }

    fn unknown_rel() -> LogicalPlan {
        LogicalPlan::UnresolvedRelation { name: "t".into() }
    }

    #[test]
    fn local_relation_size_is_exact() {
        let s = estimate(&local(100));
        assert_eq!(s.row_count, Some(100));
        assert_eq!(s.size_in_bytes, 800);
        assert!(!s.is_unknown());
    }

    #[test]
    fn limit_bounds_the_estimate() {
        let plan = local(1_000_000).limit(10);
        let s = estimate(&plan);
        assert_eq!(s.row_count, Some(10));
        assert!(s.size_in_bytes <= 100);
    }

    #[test]
    fn filter_halves_the_estimate() {
        let base = estimate(&local(100)).size_in_bytes;
        let filtered = estimate(&local(100).filter(col("x").gt(lit(0i64))));
        assert_eq!(filtered.size_in_bytes, base / 2);
    }

    #[test]
    fn unknown_stays_huge() {
        let s = estimate(&unknown_rel());
        assert!(s.is_unknown());
        let filtered = estimate(&unknown_rel().filter(lit(true)));
        assert!(filtered.is_unknown(), "filters must not shrink unknowns");
    }

    #[test]
    fn unknown_survives_deep_operator_stacks() {
        // Filter over Distinct over Sample over grouped Aggregate over an
        // unknown relation: every scaling step must preserve unknown-ness
        // (a chain of x0.5 steps on a sentinel would otherwise "shrink"
        // the relation under any broadcast threshold).
        let plan = unknown_rel()
            .aggregate(vec![col("x")], vec![col("x")])
            .distinct()
            .sample(0.01, 42)
            .filter(lit(true));
        assert!(estimate(&plan).is_unknown());
    }

    #[test]
    fn join_with_unknown_side_is_unknown() {
        let plan = LogicalPlan::Join {
            left: Arc::new(local(10)),
            right: Arc::new(unknown_rel()),
            join_type: JoinType::Inner,
            condition: None,
        };
        assert!(estimate(&plan).is_unknown());
    }

    #[test]
    fn union_with_unknown_input_is_unknown() {
        let plan = LogicalPlan::Union {
            inputs: vec![Arc::new(local(10)), Arc::new(unknown_rel())],
        };
        assert!(estimate(&plan).is_unknown());
    }

    #[test]
    fn footnote5_unknown_killers_still_apply() {
        // LIMIT over unknown: size becomes known and bounded.
        let limited = estimate(&unknown_rel().limit(10));
        assert!(!limited.is_unknown());
        assert_eq!(limited.row_count, Some(10));
        // Global aggregate over unknown: exactly one row.
        let global = estimate(&unknown_rel().aggregate(vec![], vec![]));
        assert!(!global.is_unknown());
        assert_eq!(global.row_count, Some(1));
    }

    #[test]
    fn global_aggregate_is_one_row() {
        let plan = local(1000).aggregate(vec![], vec![]);
        assert_eq!(estimate(&plan).row_count, Some(1));
    }
}
