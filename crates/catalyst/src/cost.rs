//! Statistics-driven cardinality estimation — the cost model behind the
//! CBO phase (`spark.sql.cbo.enabled`).
//!
//! [`physical::stats::estimate`](crate::physical::stats) answers "how
//! many bytes" for the broadcast decision; this module answers "how many
//! rows" with per-column statistics: NDV sketches give equi-join
//! selectivity (`|L|·|R| / max(ndv_l, ndv_r)`), min/max bound range
//! predicates, and null counts price `IS [NOT] NULL`. Estimates flow
//! bottom-up through an attribute-id index built from the plan's leaves,
//! so a column keeps its statistics across projections, aliases, and
//! join reorderings.
//!
//! Partial statistics (a partially evicted cache) are *lower bounds*:
//! row counts and NDVs still feed estimation (undercounting both mostly
//! cancels in selectivity ratios), but min/max and null fractions are
//! not used — they describe only the resident subset.

use crate::expr::{BinaryOperator, ColumnRef, Expr, ExprId};
use crate::plan::{JoinType, LogicalPlan};
use crate::source::ColumnStatistics;
use crate::tree::TreeNode;
use crate::value::Value;
use std::collections::HashMap;

/// Default selectivity for predicates the model cannot price.
pub const DEFAULT_SELECTIVITY: f64 = 0.5;

/// Per-attribute statistics index for one plan, keyed by attribute id.
#[derive(Debug, Default, Clone)]
pub struct StatsIndex {
    cols: HashMap<ExprId, ColumnStatistics>,
}

impl StatsIndex {
    /// Gather column statistics from every leaf of `plan`. Attributes
    /// produced by intermediate operators (aggregates, window columns,
    /// projected expressions) simply have no entry and fall back to
    /// heuristics.
    pub fn build(plan: &LogicalPlan) -> StatsIndex {
        let mut idx = StatsIndex::default();
        plan.for_each(&mut |node| match node {
            LogicalPlan::Scan {
                relation, output, ..
            } => {
                if let Some(stats) = relation.column_statistics() {
                    let schema = relation.schema();
                    for c in output {
                        if let Ok(i) = schema.index_of(&c.name) {
                            if let Some(s) = stats.get(i) {
                                idx.cols.insert(c.id, s.clone());
                            }
                        }
                    }
                }
            }
            LogicalPlan::LocalRelation { output, rows } if rows.len() <= 65_536 => {
                for (i, c) in output.iter().enumerate() {
                    let mut sketch = crate::ndv::NdvSketch::default();
                    let mut nulls = 0u64;
                    let mut min: Option<Value> = None;
                    let mut max: Option<Value> = None;
                    for r in rows.iter() {
                        let v = r.get(i);
                        if v.is_null() {
                            nulls += 1;
                            continue;
                        }
                        sketch.insert(v);
                        use std::cmp::Ordering::*;
                        match &min {
                            Some(m) if v.total_cmp(m) != Less => {}
                            _ => min = Some(v.clone()),
                        }
                        match &max {
                            Some(m) if v.total_cmp(m) != Greater => {}
                            _ => max = Some(v.clone()),
                        }
                    }
                    idx.cols.insert(
                        c.id,
                        ColumnStatistics {
                            min,
                            max,
                            null_count: Some(nulls),
                            row_count: Some(rows.len() as u64),
                            ndv: Some(sketch.estimate()),
                            partial: false,
                        },
                    );
                }
            }
            _ => {}
        });
        idx
    }

    /// Statistics for attribute `id`, if any leaf supplied them.
    pub fn get(&self, id: ExprId) -> Option<&ColumnStatistics> {
        self.cols.get(&id)
    }

    /// NDV for an attribute, clamped to at least 1.
    fn ndv(&self, id: ExprId) -> Option<f64> {
        self.get(id)
            .and_then(|s| s.ndv)
            .map(|n| (n as f64).max(1.0))
    }
}

/// Estimated output rows of `plan`, or `None` when no leaf statistics
/// reach it. Estimates are heuristic — good enough to *order* joins,
/// never trusted for correctness decisions.
pub fn estimate_rows(plan: &LogicalPlan, idx: &StatsIndex) -> Option<f64> {
    match plan {
        LogicalPlan::UnresolvedRelation { .. } | LogicalPlan::External { .. } => None,
        LogicalPlan::Scan {
            relation, filters, ..
        } => {
            let base = relation.row_count().map(|r| r as f64).or_else(|| {
                relation
                    .column_statistics()?
                    .first()
                    .and_then(|s| s.row_count)
                    .map(|r| r as f64)
            })?;
            let mut sel = 1.0;
            for f in filters {
                sel *= selectivity(f, idx);
            }
            Some(base * sel)
        }
        LogicalPlan::LocalRelation { rows, .. } => Some(rows.len() as f64),
        LogicalPlan::Filter { input, predicate } => {
            Some(estimate_rows(input, idx)? * selectivity(predicate, idx))
        }
        LogicalPlan::Project { input, .. }
        | LogicalPlan::Sort { input, .. }
        | LogicalPlan::SubqueryAlias { input, .. }
        | LogicalPlan::Window { input, .. } => estimate_rows(input, idx),
        LogicalPlan::Join {
            left,
            right,
            join_type,
            condition,
        } => {
            let l = estimate_rows(left, idx)?;
            let r = estimate_rows(right, idx)?;
            Some(join_cardinality(l, r, *join_type, condition.as_ref(), idx))
        }
        LogicalPlan::Aggregate {
            input, groupings, ..
        } => {
            let inp = estimate_rows(input, idx)?;
            if groupings.is_empty() {
                return Some(1.0);
            }
            Some(group_count(groupings, inp, idx))
        }
        LogicalPlan::Distinct { input } => {
            let inp = estimate_rows(input, idx)?;
            let groupings: Vec<Expr> = input.output().into_iter().map(Expr::Column).collect();
            Some(group_count(&groupings, inp, idx))
        }
        LogicalPlan::Limit { input, n } => {
            Some(estimate_rows(input, idx).map_or(*n as f64, |r| r.min(*n as f64)))
        }
        LogicalPlan::Union { inputs } => {
            let mut total = 0.0;
            for i in inputs {
                total += estimate_rows(i, idx)?;
            }
            Some(total)
        }
        LogicalPlan::Sample {
            input, fraction, ..
        } => Some(estimate_rows(input, idx)? * fraction),
    }
}

/// Estimated distinct combinations of `groupings` among `input_rows`.
fn group_count(groupings: &[Expr], input_rows: f64, idx: &StatsIndex) -> f64 {
    let mut combos = 1.0f64;
    let mut any = false;
    for g in groupings {
        if let Expr::Column(c) = g {
            if let Some(n) = idx.ndv(c.id) {
                combos *= n;
                any = true;
                continue;
            }
        }
        // Unknown grouping key: assume it multiplies groups modestly.
        combos *= 8.0;
    }
    if !any {
        return (input_rows * crate::physical::stats::AGGREGATE_RATIO).max(1.0);
    }
    combos.min(input_rows).max(1.0)
}

/// Estimated output rows of a join given its input estimates.
pub fn join_cardinality(
    left_rows: f64,
    right_rows: f64,
    join_type: JoinType,
    condition: Option<&Expr>,
    idx: &StatsIndex,
) -> f64 {
    let cross = left_rows * right_rows;
    let inner = match condition {
        None => cross,
        Some(cond) => {
            let mut card = cross;
            let mut priced_any = false;
            for (l, r) in equi_pairs(cond) {
                match (idx.ndv(l.id), idx.ndv(r.id)) {
                    (Some(nl), Some(nr)) => {
                        card /= nl.max(nr);
                        priced_any = true;
                    }
                    _ => {
                        // Unpriceable key: assume FK-style (output no
                        // larger than the bigger input).
                        card = card.min(left_rows.max(right_rows));
                    }
                }
            }
            if !priced_any && equi_pairs(cond).is_empty() {
                // Pure theta join: default selectivity.
                card *= DEFAULT_SELECTIVITY;
            }
            card
        }
    };
    match join_type {
        JoinType::Inner => inner.max(0.0),
        // Outer joins emit at least the preserved side(s).
        JoinType::Left => inner.max(left_rows),
        JoinType::Right => inner.max(right_rows),
        JoinType::Full => inner.max(left_rows + right_rows),
        JoinType::Cross => cross,
    }
}

/// The `left_col = right_col` conjuncts of a join condition, as column
/// pairs with the left plan's attribute first *as written* (callers
/// resolve sides themselves).
pub fn equi_pairs(cond: &Expr) -> Vec<(&ColumnRef, &ColumnRef)> {
    let mut out = Vec::new();
    collect_equi_pairs(cond, &mut out);
    out
}

fn collect_equi_pairs<'a>(e: &'a Expr, out: &mut Vec<(&'a ColumnRef, &'a ColumnRef)>) {
    match e {
        Expr::BinaryOp {
            left,
            op: BinaryOperator::And,
            right,
        } => {
            collect_equi_pairs(left, out);
            collect_equi_pairs(right, out);
        }
        Expr::BinaryOp {
            left,
            op: BinaryOperator::Eq,
            right,
        } => {
            if let (Expr::Column(a), Expr::Column(b)) = (left.as_ref(), right.as_ref()) {
                out.push((a, b));
            }
        }
        _ => {}
    }
}

/// Fraction of rows a predicate keeps, in `[0, 1]`.
pub fn selectivity(pred: &Expr, idx: &StatsIndex) -> f64 {
    match pred {
        Expr::Literal(Value::Boolean(true)) => 1.0,
        Expr::Literal(Value::Boolean(false)) | Expr::Literal(Value::Null) => 0.0,
        Expr::BinaryOp { left, op, right } => match op {
            BinaryOperator::And => selectivity(left, idx) * selectivity(right, idx),
            BinaryOperator::Or => {
                let a = selectivity(left, idx);
                let b = selectivity(right, idx);
                (a + b - a * b).clamp(0.0, 1.0)
            }
            BinaryOperator::Eq => column_literal(left, right)
                .and_then(|(c, _)| {
                    // Exact-ish NDV ⇒ uniform-frequency assumption.
                    idx.ndv(c.id).map(|n| 1.0 / n)
                })
                .unwrap_or(0.1),
            BinaryOperator::NotEq => 1.0 - selectivity(&eq_of(left, right), idx),
            BinaryOperator::Lt | BinaryOperator::LtEq => range_fraction(left, right, idx, true),
            BinaryOperator::Gt | BinaryOperator::GtEq => range_fraction(left, right, idx, false),
            _ => DEFAULT_SELECTIVITY,
        },
        Expr::Not(inner) => (1.0 - selectivity(inner, idx)).clamp(0.0, 1.0),
        Expr::IsNull(inner) => null_fraction(inner, idx).unwrap_or(0.1),
        Expr::IsNotNull(inner) => 1.0 - null_fraction(inner, idx).unwrap_or(0.1),
        Expr::InList {
            expr,
            list,
            negated,
        } => {
            let one = column_literal_expr(expr)
                .and_then(|c| idx.ndv(c.id).map(|n| 1.0 / n))
                .unwrap_or(0.1);
            let s = (one * list.len() as f64).clamp(0.0, 1.0);
            if *negated {
                1.0 - s
            } else {
                s
            }
        }
        _ => DEFAULT_SELECTIVITY,
    }
}

fn eq_of(l: &Expr, r: &Expr) -> Expr {
    Expr::BinaryOp {
        left: Box::new(l.clone()),
        op: BinaryOperator::Eq,
        right: Box::new(r.clone()),
    }
}

/// `(column, literal)` when the comparison is column-vs-literal either
/// way around.
fn column_literal<'a>(l: &'a Expr, r: &'a Expr) -> Option<(&'a ColumnRef, &'a Value)> {
    match (l, r) {
        (Expr::Column(c), Expr::Literal(v)) | (Expr::Literal(v), Expr::Column(c)) => Some((c, v)),
        _ => None,
    }
}

fn column_literal_expr(e: &Expr) -> Option<&ColumnRef> {
    match e {
        Expr::Column(c) => Some(c),
        _ => None,
    }
}

/// Fraction of a column's [min, max] interval below (`below=true`) or
/// above the literal, for numeric columns with exact statistics.
fn range_fraction(l: &Expr, r: &Expr, idx: &StatsIndex, below: bool) -> f64 {
    let Some((c, v)) = column_literal(l, r) else {
        return DEFAULT_SELECTIVITY;
    };
    // `lit < col` flips the direction.
    let below = if matches!(l, Expr::Literal(_)) {
        !below
    } else {
        below
    };
    let Some(s) = idx.get(c.id).filter(|s| !s.partial) else {
        return DEFAULT_SELECTIVITY;
    };
    let (Some(min), Some(max), Some(x)) = (
        s.min.as_ref().and_then(numeric),
        s.max.as_ref().and_then(numeric),
        numeric(v),
    ) else {
        return DEFAULT_SELECTIVITY;
    };
    if max <= min {
        return DEFAULT_SELECTIVITY;
    }
    let f = ((x - min) / (max - min)).clamp(0.0, 1.0);
    if below {
        f
    } else {
        1.0 - f
    }
}

/// Null fraction of a column, for exact statistics only.
fn null_fraction(e: &Expr, idx: &StatsIndex) -> Option<f64> {
    let c = column_literal_expr(e)?;
    let s = idx.get(c.id).filter(|s| !s.partial)?;
    let (nulls, rows) = (s.null_count? as f64, s.row_count? as f64);
    if rows == 0.0 {
        return Some(0.0);
    }
    Some((nulls / rows).clamp(0.0, 1.0))
}

fn numeric(v: &Value) -> Option<f64> {
    match v {
        Value::Int(x) => Some(*x as f64),
        Value::Long(x) => Some(*x as f64),
        Value::Float(x) => Some(*x as f64),
        Value::Double(x) => Some(*x),
        _ => None,
    }
}
