//! The expression DSL (§3.3): builders that construct ASTs rather than
//! opaque host-language closures, so Catalyst can see and optimize them.
//!
//! ```
//! use catalyst::expr::{col, lit};
//!
//! // users("age") < 21 from the paper becomes:
//! let pred = col("age").lt(lit(21));
//! ```

use super::{AggFunc, BinaryOperator, Expr, ScalarFunc};
use crate::expr::attribute::new_expr_id;
use crate::types::DataType;
use crate::value::Value;
use std::sync::Arc;

/// Reference a column by name (resolved later by the analyzer).
pub fn col(name: impl Into<String>) -> Expr {
    let name = name.into();
    match name.split_once('.') {
        Some((q, n)) if !q.is_empty() && !n.is_empty() && !n.contains('.') => {
            Expr::UnresolvedAttribute {
                qualifier: Some(q.to_string()),
                name: n.to_string(),
            }
        }
        _ => Expr::UnresolvedAttribute {
            qualifier: None,
            name,
        },
    }
}

/// Reference a column with an explicit relation qualifier.
pub fn qualified_col(qualifier: impl Into<String>, name: impl Into<String>) -> Expr {
    Expr::UnresolvedAttribute {
        qualifier: Some(qualifier.into()),
        name: name.into(),
    }
}

/// Literal value.
pub fn lit(v: impl Into<Value>) -> Expr {
    Expr::Literal(v.into())
}

/// Start a searched CASE expression: `when(cond, value).otherwise(dflt)`.
pub fn when(condition: Expr, value: Expr) -> Expr {
    Expr::Case {
        operand: None,
        branches: vec![(condition, value)],
        else_expr: None,
    }
}

impl From<i32> for Value {
    fn from(v: i32) -> Self {
        Value::Int(v)
    }
}
impl From<i64> for Value {
    fn from(v: i64) -> Self {
        Value::Long(v)
    }
}
impl From<f32> for Value {
    fn from(v: f32) -> Self {
        Value::Float(v)
    }
}
impl From<f64> for Value {
    fn from(v: f64) -> Self {
        Value::Double(v)
    }
}
impl From<bool> for Value {
    fn from(v: bool) -> Self {
        Value::Boolean(v)
    }
}
impl From<&str> for Value {
    fn from(v: &str) -> Self {
        Value::str(v)
    }
}
impl From<String> for Value {
    fn from(v: String) -> Self {
        Value::str(v)
    }
}

fn bin(left: Expr, op: BinaryOperator, right: Expr) -> Expr {
    Expr::BinaryOp {
        left: Box::new(left),
        op,
        right: Box::new(right),
    }
}

#[allow(clippy::should_implement_trait)] // deliberate DSL names (§3.3)
impl Expr {
    /// `self + other`.
    pub fn add(self, other: Expr) -> Expr {
        bin(self, BinaryOperator::Add, other)
    }
    /// `self - other`.
    pub fn sub(self, other: Expr) -> Expr {
        bin(self, BinaryOperator::Sub, other)
    }
    /// `self * other`.
    pub fn mul(self, other: Expr) -> Expr {
        bin(self, BinaryOperator::Mul, other)
    }
    /// `self / other`.
    pub fn div(self, other: Expr) -> Expr {
        bin(self, BinaryOperator::Div, other)
    }
    /// `self % other`.
    pub fn rem(self, other: Expr) -> Expr {
        bin(self, BinaryOperator::Mod, other)
    }
    /// `self = other` (the DSL's `===`).
    pub fn eq(self, other: Expr) -> Expr {
        bin(self, BinaryOperator::Eq, other)
    }
    /// `self <> other`.
    pub fn not_eq(self, other: Expr) -> Expr {
        bin(self, BinaryOperator::NotEq, other)
    }
    /// `self < other`.
    pub fn lt(self, other: Expr) -> Expr {
        bin(self, BinaryOperator::Lt, other)
    }
    /// `self <= other`.
    pub fn lt_eq(self, other: Expr) -> Expr {
        bin(self, BinaryOperator::LtEq, other)
    }
    /// `self > other`.
    pub fn gt(self, other: Expr) -> Expr {
        bin(self, BinaryOperator::Gt, other)
    }
    /// `self >= other`.
    pub fn gt_eq(self, other: Expr) -> Expr {
        bin(self, BinaryOperator::GtEq, other)
    }
    /// `self AND other`.
    pub fn and(self, other: Expr) -> Expr {
        bin(self, BinaryOperator::And, other)
    }
    /// `self OR other`.
    pub fn or(self, other: Expr) -> Expr {
        bin(self, BinaryOperator::Or, other)
    }
    /// `NOT self`.
    pub fn not(self) -> Expr {
        Expr::Not(Box::new(self))
    }
    /// `-self`.
    pub fn neg(self) -> Expr {
        Expr::Negate(Box::new(self))
    }
    /// `self IS NULL`.
    pub fn is_null(self) -> Expr {
        Expr::IsNull(Box::new(self))
    }
    /// `self IS NOT NULL`.
    pub fn is_not_null(self) -> Expr {
        Expr::IsNotNull(Box::new(self))
    }
    /// `self LIKE pattern`.
    pub fn like(self, pattern: Expr) -> Expr {
        Expr::Like {
            expr: Box::new(self),
            pattern: Box::new(pattern),
            negated: false,
        }
    }
    /// `self IN (list…)`.
    pub fn in_list(self, list: Vec<Expr>) -> Expr {
        Expr::InList {
            expr: Box::new(self),
            list,
            negated: false,
        }
    }
    /// `self BETWEEN low AND high` (sugar for two comparisons).
    pub fn between(self, low: Expr, high: Expr) -> Expr {
        self.clone().gt_eq(low).and(self.lt_eq(high))
    }
    /// `CAST(self AS dtype)`.
    pub fn cast(self, dtype: DataType) -> Expr {
        Expr::Cast {
            expr: Box::new(self),
            dtype,
        }
    }
    /// `self AS name`.
    pub fn alias(self, name: impl Into<Arc<str>>) -> Expr {
        Expr::Alias {
            child: Box::new(self),
            name: name.into(),
            id: new_expr_id(),
        }
    }
    /// Struct field access.
    pub fn get_field(self, name: impl Into<Arc<str>>) -> Expr {
        Expr::GetField {
            expr: Box::new(self),
            name: name.into(),
        }
    }
    /// Array element access.
    pub fn get_item(self, index: Expr) -> Expr {
        Expr::GetItem {
            expr: Box::new(self),
            index: Box::new(index),
        }
    }
    /// Ascending sort key.
    pub fn asc(self) -> super::SortOrder {
        super::SortOrder {
            expr: self,
            ascending: true,
        }
    }
    /// Descending sort key.
    pub fn desc(self) -> super::SortOrder {
        super::SortOrder {
            expr: self,
            ascending: false,
        }
    }
    /// Add a WHEN branch to a CASE expression.
    pub fn when(self, condition: Expr, value: Expr) -> Expr {
        match self {
            Expr::Case {
                operand,
                mut branches,
                else_expr,
            } => {
                branches.push((condition, value));
                Expr::Case {
                    operand,
                    branches,
                    else_expr,
                }
            }
            other => Expr::Case {
                operand: Some(Box::new(other)),
                branches: vec![(condition, value)],
                else_expr: None,
            },
        }
    }
    /// Set the ELSE branch of a CASE expression.
    pub fn otherwise(self, value: Expr) -> Expr {
        match self {
            Expr::Case {
                operand, branches, ..
            } => Expr::Case {
                operand,
                branches,
                else_expr: Some(Box::new(value)),
            },
            other => other,
        }
    }
}

// ---- aggregate builders ----

/// `COUNT(expr)` or `COUNT(*)` via [`count_star`].
pub fn count(e: Expr) -> Expr {
    Expr::Agg {
        func: AggFunc::Count,
        arg: Some(Box::new(e)),
        distinct: false,
    }
}

/// `COUNT(*)`.
pub fn count_star() -> Expr {
    Expr::Agg {
        func: AggFunc::Count,
        arg: None,
        distinct: false,
    }
}

/// `COUNT(DISTINCT expr)`.
pub fn count_distinct(e: Expr) -> Expr {
    Expr::Agg {
        func: AggFunc::Count,
        arg: Some(Box::new(e)),
        distinct: true,
    }
}

/// `SUM(expr)`.
pub fn sum(e: Expr) -> Expr {
    Expr::Agg {
        func: AggFunc::Sum,
        arg: Some(Box::new(e)),
        distinct: false,
    }
}

/// `AVG(expr)`.
pub fn avg(e: Expr) -> Expr {
    Expr::Agg {
        func: AggFunc::Avg,
        arg: Some(Box::new(e)),
        distinct: false,
    }
}

/// `MIN(expr)`.
pub fn min(e: Expr) -> Expr {
    Expr::Agg {
        func: AggFunc::Min,
        arg: Some(Box::new(e)),
        distinct: false,
    }
}

/// `MAX(expr)`.
pub fn max(e: Expr) -> Expr {
    Expr::Agg {
        func: AggFunc::Max,
        arg: Some(Box::new(e)),
        distinct: false,
    }
}

// ---- scalar function builders ----

/// `SUBSTR(s, pos, len)` — 1-based position, like SQL.
pub fn substr(s: Expr, pos: Expr, len: Expr) -> Expr {
    Expr::ScalarFn {
        func: ScalarFunc::Substr,
        args: vec![s, pos, len],
    }
}

/// `CONCAT(args…)`.
pub fn concat(args: Vec<Expr>) -> Expr {
    Expr::ScalarFn {
        func: ScalarFunc::Concat,
        args,
    }
}

/// `LENGTH(s)`.
pub fn length(s: Expr) -> Expr {
    Expr::ScalarFn {
        func: ScalarFunc::Length,
        args: vec![s],
    }
}

/// `COALESCE(args…)`.
pub fn coalesce(args: Vec<Expr>) -> Expr {
    Expr::ScalarFn {
        func: ScalarFunc::Coalesce,
        args,
    }
}

/// `YEAR(date)`.
pub fn year(d: Expr) -> Expr {
    Expr::ScalarFn {
        func: ScalarFunc::Year,
        args: vec![d],
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn col_splits_qualifier() {
        assert_eq!(
            col("users.age"),
            Expr::UnresolvedAttribute {
                qualifier: Some("users".into()),
                name: "age".into()
            }
        );
        assert_eq!(
            col("age"),
            Expr::UnresolvedAttribute {
                qualifier: None,
                name: "age".into()
            }
        );
    }

    #[test]
    fn dsl_builds_the_paper_example() {
        // employees("deptId") === dept("id")
        let e = qualified_col("employees", "deptId").eq(qualified_col("dept", "id"));
        match e {
            Expr::BinaryOp {
                op: BinaryOperator::Eq,
                ..
            } => {}
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn between_desugars_to_range() {
        let e = col("x").between(lit(1), lit(10));
        assert!(matches!(
            e,
            Expr::BinaryOp {
                op: BinaryOperator::And,
                ..
            }
        ));
    }

    #[test]
    fn case_builder_accumulates_branches() {
        let e = when(col("x").gt(lit(0)), lit("pos"))
            .when(col("x").lt(lit(0)), lit("neg"))
            .otherwise(lit("zero"));
        if let Expr::Case {
            branches,
            else_expr,
            ..
        } = e
        {
            assert_eq!(branches.len(), 2);
            assert!(else_expr.is_some());
        } else {
            panic!("expected CASE");
        }
    }
}
