//! Pretty-printing for expressions (EXPLAIN output, error messages,
//! auto-generated column names).

use super::Expr;
use std::fmt;

impl fmt::Display for Expr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Expr::Literal(v) => match v {
                crate::value::Value::Str(s) => write!(f, "'{s}'"),
                other => write!(f, "{other}"),
            },
            Expr::UnresolvedAttribute {
                qualifier: Some(q),
                name,
            } => write!(f, "{q}.{name}"),
            Expr::UnresolvedAttribute {
                qualifier: None,
                name,
            } => write!(f, "{name}"),
            Expr::UnresolvedFunction {
                name,
                args,
                distinct,
            } => {
                write!(f, "{name}(")?;
                if *distinct {
                    write!(f, "DISTINCT ")?;
                }
                fmt_args(f, args)?;
                write!(f, ")")
            }
            Expr::Wildcard { qualifier: Some(q) } => write!(f, "{q}.*"),
            Expr::Wildcard { qualifier: None } => write!(f, "*"),
            Expr::Column(c) => match &c.qualifier {
                Some(q) => write!(f, "{q}.{}#{}", c.name, c.id),
                None => write!(f, "{}#{}", c.name, c.id),
            },
            Expr::BoundRef { index, name, .. } => write!(f, "{name}@{index}"),
            Expr::Alias { child, name, .. } => write!(f, "{child} AS {name}"),
            Expr::BinaryOp { left, op, right } => {
                write!(f, "({left} {} {right})", op.symbol())
            }
            Expr::Not(e) => write!(f, "(NOT {e})"),
            Expr::Negate(e) => write!(f, "(- {e})"),
            Expr::IsNull(e) => write!(f, "({e} IS NULL)"),
            Expr::IsNotNull(e) => write!(f, "({e} IS NOT NULL)"),
            Expr::Like {
                expr,
                pattern,
                negated,
            } => {
                write!(
                    f,
                    "({expr} {}LIKE {pattern})",
                    if *negated { "NOT " } else { "" }
                )
            }
            Expr::InList {
                expr,
                list,
                negated,
            } => {
                write!(f, "({expr} {}IN (", if *negated { "NOT " } else { "" })?;
                fmt_args(f, list)?;
                write!(f, "))")
            }
            Expr::Case {
                operand,
                branches,
                else_expr,
            } => {
                write!(f, "CASE")?;
                if let Some(o) = operand {
                    write!(f, " {o}")?;
                }
                for (c, r) in branches {
                    write!(f, " WHEN {c} THEN {r}")?;
                }
                if let Some(e) = else_expr {
                    write!(f, " ELSE {e}")?;
                }
                write!(f, " END")
            }
            Expr::Cast { expr, dtype } => write!(f, "CAST({expr} AS {dtype})"),
            Expr::ScalarFn { func, args } => {
                write!(f, "{}(", func.name())?;
                fmt_args(f, args)?;
                write!(f, ")")
            }
            Expr::Udf { udf, args } => {
                write!(f, "{}(", udf.name)?;
                fmt_args(f, args)?;
                write!(f, ")")
            }
            Expr::Agg {
                func,
                arg,
                distinct,
            } => {
                write!(f, "{}(", func.name())?;
                if *distinct {
                    write!(f, "DISTINCT ")?;
                }
                match arg {
                    Some(a) => write!(f, "{a}")?,
                    None => write!(f, "*")?,
                }
                write!(f, ")")
            }
            Expr::WindowFunction {
                func,
                args,
                partition_by,
                order_by,
                frame,
            } => {
                write!(f, "{}(", func.name())?;
                fmt_args(f, args)?;
                write!(f, ") OVER (")?;
                let mut sep = "";
                if !partition_by.is_empty() {
                    write!(f, "PARTITION BY ")?;
                    fmt_args(f, partition_by)?;
                    sep = " ";
                }
                if !order_by.is_empty() {
                    write!(f, "{sep}ORDER BY ")?;
                    for (i, o) in order_by.iter().enumerate() {
                        if i > 0 {
                            write!(f, ", ")?;
                        }
                        write!(f, "{}{}", o.expr, if o.ascending { "" } else { " DESC" })?;
                    }
                    sep = " ";
                }
                let units = match frame.units {
                    super::FrameUnits::Rows => "ROWS",
                    super::FrameUnits::Range => "RANGE",
                };
                write!(
                    f,
                    "{sep}{units} BETWEEN {} AND {})",
                    fmt_bound(frame.start),
                    fmt_bound(frame.end)
                )
            }
            Expr::GetField { expr, name } => write!(f, "{expr}.{name}"),
            Expr::GetItem { expr, index } => write!(f, "{expr}[{index}]"),
            Expr::UnscaledValue(e) => write!(f, "unscaled({e})"),
            Expr::MakeDecimal {
                expr,
                precision,
                scale,
            } => {
                write!(f, "make_decimal({expr}, {precision}, {scale})")
            }
        }
    }
}

fn fmt_bound(b: super::FrameBound) -> String {
    match b {
        super::FrameBound::UnboundedPreceding => "UNBOUNDED PRECEDING".to_string(),
        super::FrameBound::Preceding(n) => format!("{n} PRECEDING"),
        super::FrameBound::CurrentRow => "CURRENT ROW".to_string(),
        super::FrameBound::Following(n) => format!("{n} FOLLOWING"),
        super::FrameBound::UnboundedFollowing => "UNBOUNDED FOLLOWING".to_string(),
    }
}

fn fmt_args(f: &mut fmt::Formatter<'_>, args: &[Expr]) -> fmt::Result {
    for (i, a) in args.iter().enumerate() {
        if i > 0 {
            write!(f, ", ")?;
        }
        write!(f, "{a}")?;
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use crate::expr::builders::{col, count, lit};

    #[test]
    fn renders_sql_like_text() {
        let e = col("age").lt(lit(21)).and(col("name").like(lit("A%")));
        assert_eq!(e.to_string(), "((age < 21) AND (name LIKE 'A%'))");
        assert_eq!(count(col("name")).to_string(), "count(name)");
    }
}
