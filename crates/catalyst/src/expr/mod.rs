//! Expression trees: the ASTs captured by the DataFrame DSL and the SQL
//! parser, optimized by Catalyst rules, and evaluated by the interpreter
//! or the compiled ("code-generated") evaluator.

pub mod attribute;
pub mod builders;
pub mod display;
pub mod transform;

pub use attribute::{new_expr_id, ColumnRef, ExprId};
pub use builders::{col, lit, qualified_col, when};

use crate::error::{CatalystError, Result};
use crate::types::DataType;
use crate::value::Value;
use std::sync::Arc;

/// Binary operators (arithmetic, comparison, boolean).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum BinaryOperator {
    /// `+` (also string concatenation after coercion).
    Add,
    /// `-`.
    Sub,
    /// `*`.
    Mul,
    /// `/` — always fractional (Hive semantics).
    Div,
    /// `%`.
    Mod,
    /// `=`.
    Eq,
    /// `<>` / `!=`.
    NotEq,
    /// `<`.
    Lt,
    /// `<=`.
    LtEq,
    /// `>`.
    Gt,
    /// `>=`.
    GtEq,
    /// `AND`.
    And,
    /// `OR`.
    Or,
}

impl BinaryOperator {
    /// Arithmetic (+ - * / %)?
    pub fn is_arithmetic(self) -> bool {
        matches!(
            self,
            BinaryOperator::Add
                | BinaryOperator::Sub
                | BinaryOperator::Mul
                | BinaryOperator::Div
                | BinaryOperator::Mod
        )
    }

    /// Comparison (= <> < <= > >=)?
    pub fn is_comparison(self) -> bool {
        matches!(
            self,
            BinaryOperator::Eq
                | BinaryOperator::NotEq
                | BinaryOperator::Lt
                | BinaryOperator::LtEq
                | BinaryOperator::Gt
                | BinaryOperator::GtEq
        )
    }

    /// Boolean connective (AND / OR)?
    pub fn is_boolean(self) -> bool {
        matches!(self, BinaryOperator::And | BinaryOperator::Or)
    }

    /// SQL token for display.
    pub fn symbol(self) -> &'static str {
        match self {
            BinaryOperator::Add => "+",
            BinaryOperator::Sub => "-",
            BinaryOperator::Mul => "*",
            BinaryOperator::Div => "/",
            BinaryOperator::Mod => "%",
            BinaryOperator::Eq => "=",
            BinaryOperator::NotEq => "<>",
            BinaryOperator::Lt => "<",
            BinaryOperator::LtEq => "<=",
            BinaryOperator::Gt => ">",
            BinaryOperator::GtEq => ">=",
            BinaryOperator::And => "AND",
            BinaryOperator::Or => "OR",
        }
    }
}

/// Built-in scalar functions.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[allow(missing_docs)]
pub enum ScalarFunc {
    Substr,
    Length,
    Upper,
    Lower,
    Trim,
    Concat,
    StartsWith,
    EndsWith,
    Contains,
    Abs,
    Sqrt,
    Pow,
    Round,
    Floor,
    Ceil,
    Coalesce,
    Year,
    SplitWords,
}

impl ScalarFunc {
    /// Resolve a function name (case-insensitive).
    pub fn from_name(name: &str) -> Option<ScalarFunc> {
        Some(match name.to_ascii_lowercase().as_str() {
            "substr" | "substring" => ScalarFunc::Substr,
            "length" | "len" => ScalarFunc::Length,
            "upper" => ScalarFunc::Upper,
            "lower" => ScalarFunc::Lower,
            "trim" => ScalarFunc::Trim,
            "concat" => ScalarFunc::Concat,
            "starts_with" | "startswith" => ScalarFunc::StartsWith,
            "ends_with" | "endswith" => ScalarFunc::EndsWith,
            "contains" => ScalarFunc::Contains,
            "abs" => ScalarFunc::Abs,
            "sqrt" => ScalarFunc::Sqrt,
            "pow" | "power" => ScalarFunc::Pow,
            "round" => ScalarFunc::Round,
            "floor" => ScalarFunc::Floor,
            "ceil" | "ceiling" => ScalarFunc::Ceil,
            "coalesce" => ScalarFunc::Coalesce,
            "year" => ScalarFunc::Year,
            "split_words" => ScalarFunc::SplitWords,
            _ => return None,
        })
    }

    /// SQL name for display.
    pub fn name(self) -> &'static str {
        match self {
            ScalarFunc::Substr => "substr",
            ScalarFunc::Length => "length",
            ScalarFunc::Upper => "upper",
            ScalarFunc::Lower => "lower",
            ScalarFunc::Trim => "trim",
            ScalarFunc::Concat => "concat",
            ScalarFunc::StartsWith => "starts_with",
            ScalarFunc::EndsWith => "ends_with",
            ScalarFunc::Contains => "contains",
            ScalarFunc::Abs => "abs",
            ScalarFunc::Sqrt => "sqrt",
            ScalarFunc::Pow => "pow",
            ScalarFunc::Round => "round",
            ScalarFunc::Floor => "floor",
            ScalarFunc::Ceil => "ceil",
            ScalarFunc::Coalesce => "coalesce",
            ScalarFunc::Year => "year",
            ScalarFunc::SplitWords => "split_words",
        }
    }
}

/// Aggregate functions.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[allow(missing_docs)]
pub enum AggFunc {
    Count,
    Sum,
    Avg,
    Min,
    Max,
}

impl AggFunc {
    /// Resolve an aggregate name.
    pub fn from_name(name: &str) -> Option<AggFunc> {
        Some(match name.to_ascii_lowercase().as_str() {
            "count" => AggFunc::Count,
            "sum" => AggFunc::Sum,
            "avg" | "mean" => AggFunc::Avg,
            "min" => AggFunc::Min,
            "max" => AggFunc::Max,
            _ => return None,
        })
    }

    /// SQL name for display.
    pub fn name(self) -> &'static str {
        match self {
            AggFunc::Count => "count",
            AggFunc::Sum => "sum",
            AggFunc::Avg => "avg",
            AggFunc::Min => "min",
            AggFunc::Max => "max",
        }
    }
}

/// Window functions (ranking, offset, and framed aggregates).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum WindowFunc {
    /// `row_number()` — 1-based position within the partition.
    RowNumber,
    /// `rank()` — 1-based rank with gaps after peer groups.
    Rank,
    /// `dense_rank()` — 1-based rank without gaps.
    DenseRank,
    /// `lag(expr[, offset[, default]])` — value `offset` rows back.
    Lag,
    /// `lead(expr[, offset[, default]])` — value `offset` rows ahead.
    Lead,
    /// An aggregate evaluated over the window frame.
    Agg(AggFunc),
}

impl WindowFunc {
    /// Resolve a window function name (case-insensitive). Plain
    /// aggregate names resolve to framed aggregates.
    pub fn from_name(name: &str) -> Option<WindowFunc> {
        Some(match name.to_ascii_lowercase().as_str() {
            "row_number" => WindowFunc::RowNumber,
            "rank" => WindowFunc::Rank,
            "dense_rank" => WindowFunc::DenseRank,
            "lag" => WindowFunc::Lag,
            "lead" => WindowFunc::Lead,
            other => WindowFunc::Agg(AggFunc::from_name(other)?),
        })
    }

    /// SQL name for display.
    pub fn name(self) -> &'static str {
        match self {
            WindowFunc::RowNumber => "row_number",
            WindowFunc::Rank => "rank",
            WindowFunc::DenseRank => "dense_rank",
            WindowFunc::Lag => "lag",
            WindowFunc::Lead => "lead",
            WindowFunc::Agg(f) => f.name(),
        }
    }

    /// Ranking and offset functions ignore their frame entirely; only
    /// framed aggregates read it.
    pub fn frame_sensitive(self) -> bool {
        matches!(self, WindowFunc::Agg(_))
    }
}

/// `ROWS` vs `RANGE` frame semantics.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum FrameUnits {
    /// Physical row offsets.
    Rows,
    /// Logical peer groups: the frame extends over all ORDER BY peers.
    Range,
}

/// One end of a window frame.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum FrameBound {
    /// `UNBOUNDED PRECEDING`.
    UnboundedPreceding,
    /// `<n> PRECEDING` (ROWS only in this engine).
    Preceding(u64),
    /// `CURRENT ROW`.
    CurrentRow,
    /// `<n> FOLLOWING` (ROWS only in this engine).
    Following(u64),
    /// `UNBOUNDED FOLLOWING`.
    UnboundedFollowing,
}

/// A window frame: units plus start/end bounds.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct WindowFrame {
    /// ROWS or RANGE.
    pub units: FrameUnits,
    /// Frame start (inclusive).
    pub start: FrameBound,
    /// Frame end (inclusive).
    pub end: FrameBound,
}

impl WindowFrame {
    /// The SQL-standard default frame: `RANGE UNBOUNDED PRECEDING`
    /// through `CURRENT ROW` when the window has an ORDER BY, the whole
    /// partition otherwise.
    pub fn default_for(has_order_by: bool) -> WindowFrame {
        if has_order_by {
            WindowFrame {
                units: FrameUnits::Range,
                start: FrameBound::UnboundedPreceding,
                end: FrameBound::CurrentRow,
            }
        } else {
            WindowFrame::whole_partition()
        }
    }

    /// `ROWS BETWEEN UNBOUNDED PRECEDING AND UNBOUNDED FOLLOWING`.
    pub fn whole_partition() -> WindowFrame {
        WindowFrame {
            units: FrameUnits::Rows,
            start: FrameBound::UnboundedPreceding,
            end: FrameBound::UnboundedFollowing,
        }
    }

    /// Does the frame cover the entire partition regardless of units?
    pub fn is_whole_partition(&self) -> bool {
        self.start == FrameBound::UnboundedPreceding && self.end == FrameBound::UnboundedFollowing
    }
}

/// A user-defined scalar function registered inline (§3.7).
pub struct UdfImpl {
    /// Registered name.
    pub name: Arc<str>,
    /// Declared return type.
    pub return_type: DataType,
    /// The implementation — an arbitrary host-language closure.
    pub func: Box<dyn Fn(&[Value]) -> Result<Value> + Send + Sync>,
}

impl std::fmt::Debug for UdfImpl {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "Udf({})", self.name)
    }
}

impl PartialEq for UdfImpl {
    fn eq(&self, other: &Self) -> bool {
        // UDFs are identified by registered name (closures can't compare).
        self.name == other.name && self.return_type == other.return_type
    }
}

/// Sort direction + null ordering for ORDER BY.
#[derive(Debug, Clone, PartialEq)]
pub struct SortOrder {
    /// Sort key expression.
    pub expr: Expr,
    /// Ascending?
    pub ascending: bool,
}

/// An expression tree node.
///
/// Expressions start *unresolved* (names only), are resolved to
/// [`ColumnRef`]s by the analyzer, and are *bound* to physical column
/// indices ([`Expr::BoundRef`]) just before execution.
#[derive(Debug, Clone, PartialEq)]
pub enum Expr {
    /// Constant value.
    Literal(Value),
    /// A name not yet matched to an input column.
    UnresolvedAttribute {
        /// Optional relation qualifier (`users.age`).
        qualifier: Option<String>,
        /// Column name.
        name: String,
    },
    /// A function call not yet resolved to a builtin/UDF/aggregate.
    UnresolvedFunction {
        /// Function name as written.
        name: String,
        /// Arguments.
        args: Vec<Expr>,
        /// DISTINCT flag (aggregates).
        distinct: bool,
    },
    /// `*` or `t.*` in a select list.
    Wildcard {
        /// Optional qualifier.
        qualifier: Option<String>,
    },
    /// Resolved attribute.
    Column(ColumnRef),
    /// Attribute bound to a physical input position.
    BoundRef {
        /// Index into the input row.
        index: usize,
        /// Type at that position.
        dtype: DataType,
        /// Nullability at that position.
        nullable: bool,
        /// Original name (for display).
        name: Arc<str>,
    },
    /// Named expression.
    Alias {
        /// Wrapped expression.
        child: Box<Expr>,
        /// Output name.
        name: Arc<str>,
        /// Stable output attribute id.
        id: ExprId,
    },
    /// Binary operation.
    BinaryOp {
        /// Left operand.
        left: Box<Expr>,
        /// Operator.
        op: BinaryOperator,
        /// Right operand.
        right: Box<Expr>,
    },
    /// Boolean NOT.
    Not(Box<Expr>),
    /// Arithmetic negation.
    Negate(Box<Expr>),
    /// `IS NULL`.
    IsNull(Box<Expr>),
    /// `IS NOT NULL`.
    IsNotNull(Box<Expr>),
    /// SQL LIKE with `%` and `_` wildcards.
    Like {
        /// Value tested.
        expr: Box<Expr>,
        /// Pattern (usually a literal).
        pattern: Box<Expr>,
        /// NOT LIKE?
        negated: bool,
    },
    /// `IN (v1, v2, …)`.
    InList {
        /// Value tested.
        expr: Box<Expr>,
        /// Candidate values.
        list: Vec<Expr>,
        /// NOT IN?
        negated: bool,
    },
    /// CASE \[operand\] WHEN … THEN … ELSE … END.
    Case {
        /// Simple-case operand, if any.
        operand: Option<Box<Expr>>,
        /// (condition/match, result) pairs.
        branches: Vec<(Expr, Expr)>,
        /// ELSE result.
        else_expr: Option<Box<Expr>>,
    },
    /// Explicit or coercion-inserted cast.
    Cast {
        /// Input expression.
        expr: Box<Expr>,
        /// Target type.
        dtype: DataType,
    },
    /// Built-in scalar function call.
    ScalarFn {
        /// Which function.
        func: ScalarFunc,
        /// Arguments.
        args: Vec<Expr>,
    },
    /// User-defined function call.
    Udf {
        /// Shared implementation.
        udf: Arc<UdfImpl>,
        /// Arguments.
        args: Vec<Expr>,
    },
    /// Aggregate function call (only valid under `Aggregate` plans).
    Agg {
        /// Which aggregate.
        func: AggFunc,
        /// Argument (`None` = `COUNT(*)`).
        arg: Option<Box<Expr>>,
        /// DISTINCT?
        distinct: bool,
    },
    /// Window function call with its OVER clause (only valid under
    /// `Window` plans after analysis).
    WindowFunction {
        /// Which window function.
        func: WindowFunc,
        /// Arguments (empty for ranking functions; `None` argument
        /// aggregates like `COUNT(*)` use an empty list too).
        args: Vec<Expr>,
        /// `PARTITION BY` expressions.
        partition_by: Vec<Expr>,
        /// `ORDER BY` keys within each partition.
        order_by: Vec<SortOrder>,
        /// The evaluation frame.
        frame: WindowFrame,
    },
    /// Struct field access (`loc.lat` once `loc` resolves to a struct).
    GetField {
        /// Struct-typed input.
        expr: Box<Expr>,
        /// Field name.
        name: Arc<str>,
    },
    /// Array element access.
    GetItem {
        /// Array-typed input.
        expr: Box<Expr>,
        /// Zero-based index expression.
        index: Box<Expr>,
    },
    /// Decimal → unscaled Long (used by the `DecimalAggregates` rule,
    /// reproduced from §4.3.2 of the paper).
    UnscaledValue(Box<Expr>),
    /// Unscaled Long → Decimal (the rule's inverse).
    MakeDecimal {
        /// Long-typed input.
        expr: Box<Expr>,
        /// Result precision.
        precision: u8,
        /// Result scale.
        scale: u8,
    },
}

impl Expr {
    /// Resolved output type. Errors on unresolved expressions.
    pub fn data_type(&self) -> Result<DataType> {
        match self {
            Expr::Literal(v) => Ok(v.dtype()),
            Expr::Column(c) => Ok(c.dtype.clone()),
            Expr::BoundRef { dtype, .. } => Ok(dtype.clone()),
            Expr::Alias { child, .. } => child.data_type(),
            Expr::BinaryOp { left, op, right } => {
                if op.is_comparison() || op.is_boolean() {
                    return Ok(DataType::Boolean);
                }
                let lt = left.data_type()?;
                let rt = right.data_type()?;
                match op {
                    BinaryOperator::Div => Ok(DataType::Double),
                    BinaryOperator::Mod => Ok(if lt.is_integral() && rt.is_integral() {
                        DataType::Long
                    } else {
                        DataType::Double
                    }),
                    _ => DataType::tightest_common_type(&lt, &rt).ok_or_else(|| {
                        CatalystError::analysis(format!("incompatible operand types {lt} and {rt}"))
                    }),
                }
            }
            Expr::Not(_)
            | Expr::IsNull(_)
            | Expr::IsNotNull(_)
            | Expr::Like { .. }
            | Expr::InList { .. } => Ok(DataType::Boolean),
            Expr::Negate(e) => e.data_type(),
            Expr::Case {
                branches,
                else_expr,
                ..
            } => {
                let mut t = DataType::Null;
                for (_, r) in branches {
                    t = DataType::tightest_common_type(&t, &r.data_type()?)
                        .unwrap_or(DataType::String);
                }
                if let Some(e) = else_expr {
                    t = DataType::tightest_common_type(&t, &e.data_type()?)
                        .unwrap_or(DataType::String);
                }
                Ok(t)
            }
            Expr::Cast { dtype, .. } => Ok(dtype.clone()),
            Expr::ScalarFn { func, args } => scalar_fn_type(*func, args),
            Expr::Udf { udf, .. } => Ok(udf.return_type.clone()),
            Expr::Agg { func, arg, .. } => match func {
                AggFunc::Count => Ok(DataType::Long),
                AggFunc::Avg => Ok(DataType::Double),
                AggFunc::Sum => {
                    let t = arg
                        .as_ref()
                        .ok_or_else(|| CatalystError::analysis("SUM requires an argument"))?
                        .data_type()?;
                    Ok(match t {
                        DataType::Int | DataType::Long => DataType::Long,
                        DataType::Float | DataType::Double => DataType::Double,
                        // Paper §4.3.2: SUM over DECIMAL(p, s) yields
                        // DECIMAL(p + 10, s).
                        DataType::Decimal(p, s) => DataType::Decimal((p + 10).min(38), s),
                        other => other,
                    })
                }
                AggFunc::Min | AggFunc::Max => arg
                    .as_ref()
                    .ok_or_else(|| CatalystError::analysis("MIN/MAX require an argument"))?
                    .data_type(),
            },
            Expr::WindowFunction { func, args, .. } => match func {
                WindowFunc::RowNumber | WindowFunc::Rank | WindowFunc::DenseRank => {
                    Ok(DataType::Long)
                }
                WindowFunc::Lag | WindowFunc::Lead => args
                    .first()
                    .ok_or_else(|| CatalystError::analysis("LAG/LEAD require an argument"))?
                    .data_type(),
                WindowFunc::Agg(f) => match f {
                    AggFunc::Count => Ok(DataType::Long),
                    AggFunc::Avg => Ok(DataType::Double),
                    AggFunc::Sum => {
                        let t = args
                            .first()
                            .ok_or_else(|| CatalystError::analysis("SUM requires an argument"))?
                            .data_type()?;
                        Ok(match t {
                            DataType::Int | DataType::Long => DataType::Long,
                            DataType::Float | DataType::Double => DataType::Double,
                            DataType::Decimal(p, s) => DataType::Decimal((p + 10).min(38), s),
                            other => other,
                        })
                    }
                    AggFunc::Min | AggFunc::Max => args
                        .first()
                        .ok_or_else(|| CatalystError::analysis("MIN/MAX require an argument"))?
                        .data_type(),
                },
            },
            Expr::GetField { expr, name } => match expr.data_type()? {
                DataType::Struct(fields) => fields
                    .iter()
                    .find(|f| f.name.eq_ignore_ascii_case(name))
                    .map(|f| f.dtype.clone())
                    .ok_or_else(|| CatalystError::analysis(format!("no field '{name}' in struct"))),
                other => Err(CatalystError::analysis(format!(
                    "cannot access field '{name}' of non-struct type {other}"
                ))),
            },
            Expr::GetItem { expr, .. } => match expr.data_type()? {
                DataType::Array(e) => Ok(*e),
                other => Err(CatalystError::analysis(format!(
                    "cannot index non-array type {other}"
                ))),
            },
            Expr::UnscaledValue(_) => Ok(DataType::Long),
            Expr::MakeDecimal {
                precision, scale, ..
            } => Ok(DataType::Decimal(*precision, *scale)),
            Expr::UnresolvedAttribute { name, .. } => Err(CatalystError::analysis(format!(
                "unresolved attribute '{name}'"
            ))),
            Expr::UnresolvedFunction { name, .. } => Err(CatalystError::analysis(format!(
                "unresolved function '{name}'"
            ))),
            Expr::Wildcard { .. } => Err(CatalystError::analysis("unexpanded wildcard")),
        }
    }

    /// Conservative nullability.
    pub fn nullable(&self) -> bool {
        match self {
            Expr::Literal(v) => v.is_null(),
            Expr::Column(c) => c.nullable,
            Expr::BoundRef { nullable, .. } => *nullable,
            Expr::Alias { child, .. } => child.nullable(),
            Expr::IsNull(_) | Expr::IsNotNull(_) => false,
            Expr::Agg {
                func: AggFunc::Count,
                ..
            } => false,
            Expr::WindowFunction { func, .. } => !matches!(
                func,
                WindowFunc::RowNumber
                    | WindowFunc::Rank
                    | WindowFunc::DenseRank
                    | WindowFunc::Agg(AggFunc::Count)
            ),
            _ => true,
        }
    }

    /// True when this expression contains no attribute references, UDFs
    /// or aggregates — i.e. it can be evaluated at plan time (constant
    /// folding).
    pub fn foldable(&self) -> bool {
        let mut foldable = true;
        self.for_each_node(&mut |e| match e {
            Expr::Column(_)
            | Expr::BoundRef { .. }
            | Expr::UnresolvedAttribute { .. }
            | Expr::UnresolvedFunction { .. }
            | Expr::Wildcard { .. }
            | Expr::Udf { .. }
            | Expr::Agg { .. }
            | Expr::WindowFunction { .. } => foldable = false,
            _ => {}
        });
        foldable
    }

    /// True when any node is a window function call.
    pub fn contains_window(&self) -> bool {
        let mut found = false;
        self.for_each_node(&mut |e| {
            if matches!(e, Expr::WindowFunction { .. }) {
                found = true;
            }
        });
        found
    }

    /// True when any node is an aggregate function.
    pub fn contains_aggregate(&self) -> bool {
        let mut found = false;
        self.for_each_node(&mut |e| {
            if matches!(e, Expr::Agg { .. }) {
                found = true;
            }
        });
        found
    }

    /// True when the tree still contains unresolved names.
    pub fn is_resolved(&self) -> bool {
        let mut resolved = true;
        self.for_each_node(&mut |e| {
            if matches!(
                e,
                Expr::UnresolvedAttribute { .. }
                    | Expr::UnresolvedFunction { .. }
                    | Expr::Wildcard { .. }
            ) {
                resolved = false;
            }
        });
        resolved
    }

    /// Collect every resolved column referenced in this tree.
    pub fn references(&self) -> Vec<ColumnRef> {
        let mut out = Vec::new();
        self.for_each_node(&mut |e| {
            if let Expr::Column(c) = e {
                if !out.iter().any(|o: &ColumnRef| o.id == c.id) {
                    out.push(c.clone());
                }
            }
        });
        out
    }

    /// The output attribute this expression produces in a projection.
    ///
    /// `Alias` and `Column` have stable identities; anything else errors
    /// (the analyzer wraps unnamed projection items in aliases first).
    pub fn to_attribute(&self) -> Result<ColumnRef> {
        match self {
            Expr::Column(c) => Ok(c.clone()),
            Expr::Alias { child, name, id } => Ok(ColumnRef {
                id: *id,
                name: name.clone(),
                dtype: child.data_type()?,
                nullable: child.nullable(),
                qualifier: None,
            }),
            other => Err(CatalystError::analysis(format!(
                "expression '{other}' has no name; alias it"
            ))),
        }
    }

    /// A deterministic display-based name for auto-aliasing.
    pub fn auto_name(&self) -> String {
        match self {
            Expr::Column(c) => c.name.to_string(),
            Expr::UnresolvedAttribute { name, .. } => name.clone(),
            Expr::Alias { name, .. } => name.to_string(),
            Expr::GetField { name, .. } => name.to_string(),
            other => other.to_string(),
        }
    }
}

fn scalar_fn_type(func: ScalarFunc, args: &[Expr]) -> Result<DataType> {
    Ok(match func {
        ScalarFunc::Substr
        | ScalarFunc::Upper
        | ScalarFunc::Lower
        | ScalarFunc::Trim
        | ScalarFunc::Concat => DataType::String,
        ScalarFunc::Length | ScalarFunc::Year => DataType::Int,
        ScalarFunc::StartsWith | ScalarFunc::EndsWith | ScalarFunc::Contains => DataType::Boolean,
        ScalarFunc::Abs | ScalarFunc::Floor | ScalarFunc::Ceil | ScalarFunc::Round => args
            .first()
            .map(|a| a.data_type())
            .transpose()?
            .unwrap_or(DataType::Double),
        ScalarFunc::Sqrt | ScalarFunc::Pow => DataType::Double,
        ScalarFunc::Coalesce => {
            let mut t = DataType::Null;
            for a in args {
                t = DataType::tightest_common_type(&t, &a.data_type()?).unwrap_or(DataType::String);
            }
            t
        }
        ScalarFunc::SplitWords => DataType::Array(Box::new(DataType::String)),
    })
}
