//! `TreeNode` implementation for expressions: generic child mapping and
//! traversal, the machinery rules are written against.

use super::Expr;
use crate::tree::{Transformed, TreeNode};

#[allow(clippy::boxed_local)] // children are Box-typed in the Expr enum; unboxing here just moves the re-allocation to every caller
fn map_box(
    b: Box<Expr>,
    f: &mut dyn FnMut(Expr) -> Transformed<Expr>,
    changed: &mut bool,
) -> Box<Expr> {
    let t = f(*b);
    *changed |= t.changed;
    Box::new(t.data)
}

fn map_vec(
    v: Vec<Expr>,
    f: &mut dyn FnMut(Expr) -> Transformed<Expr>,
    changed: &mut bool,
) -> Vec<Expr> {
    v.into_iter()
        .map(|e| {
            let t = f(e);
            *changed |= t.changed;
            t.data
        })
        .collect()
}

impl TreeNode for Expr {
    fn map_children(self, f: &mut dyn FnMut(Expr) -> Transformed<Expr>) -> Transformed<Expr> {
        let mut ch = false;
        let out = match self {
            // Leaves.
            e @ (Expr::Literal(_)
            | Expr::UnresolvedAttribute { .. }
            | Expr::Wildcard { .. }
            | Expr::Column(_)
            | Expr::BoundRef { .. }) => e,
            Expr::UnresolvedFunction {
                name,
                args,
                distinct,
            } => Expr::UnresolvedFunction {
                name,
                args: map_vec(args, f, &mut ch),
                distinct,
            },
            Expr::Alias { child, name, id } => Expr::Alias {
                child: map_box(child, f, &mut ch),
                name,
                id,
            },
            Expr::BinaryOp { left, op, right } => Expr::BinaryOp {
                left: map_box(left, f, &mut ch),
                op,
                right: map_box(right, f, &mut ch),
            },
            Expr::Not(e) => Expr::Not(map_box(e, f, &mut ch)),
            Expr::Negate(e) => Expr::Negate(map_box(e, f, &mut ch)),
            Expr::IsNull(e) => Expr::IsNull(map_box(e, f, &mut ch)),
            Expr::IsNotNull(e) => Expr::IsNotNull(map_box(e, f, &mut ch)),
            Expr::Like {
                expr,
                pattern,
                negated,
            } => Expr::Like {
                expr: map_box(expr, f, &mut ch),
                pattern: map_box(pattern, f, &mut ch),
                negated,
            },
            Expr::InList {
                expr,
                list,
                negated,
            } => Expr::InList {
                expr: map_box(expr, f, &mut ch),
                list: map_vec(list, f, &mut ch),
                negated,
            },
            Expr::Case {
                operand,
                branches,
                else_expr,
            } => Expr::Case {
                operand: operand.map(|o| map_box(o, f, &mut ch)),
                branches: branches
                    .into_iter()
                    .map(|(c, r)| {
                        let c = f(c);
                        let r = f(r);
                        ch |= c.changed || r.changed;
                        (c.data, r.data)
                    })
                    .collect(),
                else_expr: else_expr.map(|e| map_box(e, f, &mut ch)),
            },
            Expr::Cast { expr, dtype } => Expr::Cast {
                expr: map_box(expr, f, &mut ch),
                dtype,
            },
            Expr::ScalarFn { func, args } => Expr::ScalarFn {
                func,
                args: map_vec(args, f, &mut ch),
            },
            Expr::Udf { udf, args } => Expr::Udf {
                udf,
                args: map_vec(args, f, &mut ch),
            },
            Expr::Agg {
                func,
                arg,
                distinct,
            } => Expr::Agg {
                func,
                arg: arg.map(|a| map_box(a, f, &mut ch)),
                distinct,
            },
            Expr::WindowFunction {
                func,
                args,
                partition_by,
                order_by,
                frame,
            } => Expr::WindowFunction {
                func,
                args: map_vec(args, f, &mut ch),
                partition_by: map_vec(partition_by, f, &mut ch),
                order_by: order_by
                    .into_iter()
                    .map(|o| {
                        let t = f(o.expr);
                        ch |= t.changed;
                        super::SortOrder {
                            expr: t.data,
                            ascending: o.ascending,
                        }
                    })
                    .collect(),
                frame,
            },
            Expr::GetField { expr, name } => Expr::GetField {
                expr: map_box(expr, f, &mut ch),
                name,
            },
            Expr::GetItem { expr, index } => Expr::GetItem {
                expr: map_box(expr, f, &mut ch),
                index: map_box(index, f, &mut ch),
            },
            Expr::UnscaledValue(e) => Expr::UnscaledValue(map_box(e, f, &mut ch)),
            Expr::MakeDecimal {
                expr,
                precision,
                scale,
            } => Expr::MakeDecimal {
                expr: map_box(expr, f, &mut ch),
                precision,
                scale,
            },
        };
        Transformed {
            data: out,
            changed: ch,
        }
    }

    fn for_each(&self, f: &mut dyn FnMut(&Expr)) {
        f(self);
        match self {
            Expr::Literal(_)
            | Expr::UnresolvedAttribute { .. }
            | Expr::Wildcard { .. }
            | Expr::Column(_)
            | Expr::BoundRef { .. } => {}
            Expr::UnresolvedFunction { args, .. }
            | Expr::ScalarFn { args, .. }
            | Expr::Udf { args, .. } => {
                for a in args {
                    a.for_each(f);
                }
            }
            Expr::Alias { child, .. } => child.for_each(f),
            Expr::BinaryOp { left, right, .. } => {
                left.for_each(f);
                right.for_each(f);
            }
            Expr::Not(e)
            | Expr::Negate(e)
            | Expr::IsNull(e)
            | Expr::IsNotNull(e)
            | Expr::UnscaledValue(e) => e.for_each(f),
            Expr::Like { expr, pattern, .. } => {
                expr.for_each(f);
                pattern.for_each(f);
            }
            Expr::InList { expr, list, .. } => {
                expr.for_each(f);
                for e in list {
                    e.for_each(f);
                }
            }
            Expr::Case {
                operand,
                branches,
                else_expr,
            } => {
                if let Some(o) = operand {
                    o.for_each(f);
                }
                for (c, r) in branches {
                    c.for_each(f);
                    r.for_each(f);
                }
                if let Some(e) = else_expr {
                    e.for_each(f);
                }
            }
            Expr::Cast { expr, .. }
            | Expr::GetField { expr, .. }
            | Expr::MakeDecimal { expr, .. } => expr.for_each(f),
            Expr::GetItem { expr, index } => {
                expr.for_each(f);
                index.for_each(f);
            }
            Expr::Agg { arg, .. } => {
                if let Some(a) = arg {
                    a.for_each(f);
                }
            }
            Expr::WindowFunction {
                args,
                partition_by,
                order_by,
                ..
            } => {
                for a in args.iter().chain(partition_by) {
                    a.for_each(f);
                }
                for o in order_by {
                    o.expr.for_each(f);
                }
            }
        }
    }
}

impl Expr {
    /// Visit every node (inherent alias of [`TreeNode::for_each`] so call
    /// sites don't need the trait in scope).
    pub fn for_each_node(&self, f: &mut dyn FnMut(&Expr)) {
        self.for_each(f);
    }

    /// Bottom-up rewrite (inherent alias of [`TreeNode::transform_up`]).
    pub fn rewrite_up(self, f: &mut dyn FnMut(Expr) -> Transformed<Expr>) -> Transformed<Expr> {
        self.transform_up(f)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::expr::builders::{col, lit};
    use crate::value::Value;

    #[test]
    fn transform_up_rewrites_nested_nodes() {
        // (x + 1) + 2: replace every literal with 0.
        let e = col("x").add(lit(1i64)).add(lit(2i64));
        let out = e.transform_up(&mut |e| match e {
            Expr::Literal(_) => Transformed::yes(Expr::Literal(Value::Long(0))),
            other => Transformed::no(other),
        });
        assert!(out.changed);
        let mut literals = 0;
        out.data.for_each_node(&mut |e| {
            if let Expr::Literal(v) = e {
                assert_eq!(v, &Value::Long(0));
                literals += 1;
            }
        });
        assert_eq!(literals, 2);
    }

    #[test]
    fn untouched_tree_is_unchanged() {
        let e = col("x").add(col("y"));
        let out = e.clone().transform_up(&mut Transformed::no);
        assert!(!out.changed);
        assert_eq!(out.data, e);
    }
}
