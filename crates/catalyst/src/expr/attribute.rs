//! Resolved attribute references.
//!
//! During analysis every attribute gets a globally unique [`ExprId`]
//! (§4.3.1: "determining which attributes refer to the same value to give
//! them a unique ID"). Ids survive aliasing and projection, which is what
//! makes column pruning and `col = col` style optimizations sound.

use crate::types::DataType;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// Globally unique expression/attribute identifier.
pub type ExprId = u64;

static NEXT_EXPR_ID: AtomicU64 = AtomicU64::new(1);

/// Allocate a fresh [`ExprId`].
pub fn new_expr_id() -> ExprId {
    NEXT_EXPR_ID.fetch_add(1, Ordering::Relaxed)
}

/// A fully resolved column: name, type, nullability, optional relation
/// qualifier, and the unique id that ties together every reference to the
/// same value across the plan.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct ColumnRef {
    /// Unique id.
    pub id: ExprId,
    /// Column name as written / inferred.
    pub name: Arc<str>,
    /// Resolved type.
    pub dtype: DataType,
    /// Whether NULLs can appear.
    pub nullable: bool,
    /// Table alias / relation name the column came from, if any.
    pub qualifier: Option<Arc<str>>,
}

impl ColumnRef {
    /// New column with a fresh id.
    pub fn new(name: impl Into<Arc<str>>, dtype: DataType, nullable: bool) -> Self {
        ColumnRef {
            id: new_expr_id(),
            name: name.into(),
            dtype,
            nullable,
            qualifier: None,
        }
    }

    /// Attach a qualifier (used by `SubqueryAlias` / FROM aliases).
    pub fn with_qualifier(mut self, qualifier: impl Into<Arc<str>>) -> Self {
        self.qualifier = Some(qualifier.into());
        self
    }

    /// Does this column answer to `name` (and `qualifier`, if given)?
    pub fn matches(&self, qualifier: Option<&str>, name: &str) -> bool {
        if let Some(q) = qualifier {
            if !self
                .qualifier
                .as_deref()
                .is_some_and(|mine| mine.eq_ignore_ascii_case(q))
            {
                return false;
            }
        }
        self.name.eq_ignore_ascii_case(name)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn expr_ids_are_unique() {
        let a = ColumnRef::new("x", DataType::Int, false);
        let b = ColumnRef::new("x", DataType::Int, false);
        assert_ne!(a.id, b.id);
    }

    #[test]
    fn matching_respects_qualifier_and_case() {
        let c = ColumnRef::new("Age", DataType::Int, false).with_qualifier("users");
        assert!(c.matches(None, "age"));
        assert!(c.matches(Some("USERS"), "AGE"));
        assert!(!c.matches(Some("dept"), "age"));
        assert!(!c.matches(None, "name"));
    }
}
