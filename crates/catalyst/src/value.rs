//! Runtime values.
//!
//! `Value` is the boxed, dynamically typed representation used by the
//! interpreted expression evaluator and by rows flowing between physical
//! operators. Compiled ("code-generated") evaluation deliberately avoids
//! this type on hot paths — that difference is what Figure 4 of the paper
//! measures.
//!
//! Values implement a *total* order and hash (NaN and -0.0 are
//! canonicalized) so they can serve directly as grouping and sort keys.

use crate::error::{CatalystError, Result};
use crate::types::DataType;
use std::cmp::Ordering;
use std::fmt;
use std::hash::{Hash, Hasher};
use std::sync::Arc;

/// A single dynamically typed value.
#[derive(Debug, Clone)]
pub enum Value {
    /// SQL NULL.
    Null,
    /// Boolean.
    Boolean(bool),
    /// 32-bit integer.
    Int(i32),
    /// 64-bit integer.
    Long(i64),
    /// 32-bit float.
    Float(f32),
    /// 64-bit float.
    Double(f64),
    /// Fixed-precision decimal: unscaled value, precision, scale.
    Decimal(i128, u8, u8),
    /// UTF-8 string (shared so clones across shuffles are cheap).
    Str(Arc<str>),
    /// Days since the epoch.
    Date(i32),
    /// Microseconds since the epoch.
    Timestamp(i64),
    /// Raw bytes.
    Binary(Arc<[u8]>),
    /// Array of values.
    Array(Arc<Vec<Value>>),
    /// Struct of values (field order given by the type).
    Struct(Arc<Vec<Value>>),
}

impl Value {
    /// String helper.
    pub fn str(s: impl AsRef<str>) -> Value {
        Value::Str(Arc::from(s.as_ref()))
    }

    /// True for `Value::Null`.
    #[inline]
    pub fn is_null(&self) -> bool {
        matches!(self, Value::Null)
    }

    /// Runtime type of this value (`Null` has type `DataType::Null`).
    pub fn dtype(&self) -> DataType {
        match self {
            Value::Null => DataType::Null,
            Value::Boolean(_) => DataType::Boolean,
            Value::Int(_) => DataType::Int,
            Value::Long(_) => DataType::Long,
            Value::Float(_) => DataType::Float,
            Value::Double(_) => DataType::Double,
            Value::Decimal(_, p, s) => DataType::Decimal(*p, *s),
            Value::Str(_) => DataType::String,
            Value::Date(_) => DataType::Date,
            Value::Timestamp(_) => DataType::Timestamp,
            Value::Binary(_) => DataType::Binary,
            Value::Array(items) => {
                let elem = items
                    .iter()
                    .map(Value::dtype)
                    .reduce(|a, b| {
                        DataType::tightest_common_type(&a, &b).unwrap_or(DataType::String)
                    })
                    .unwrap_or(DataType::Null);
                DataType::Array(Box::new(elem))
            }
            Value::Struct(_) => DataType::struct_type(vec![]),
        }
    }

    /// Widen any integral value to i64.
    #[inline]
    pub fn as_i64(&self) -> Option<i64> {
        match self {
            Value::Int(v) => Some(*v as i64),
            Value::Long(v) => Some(*v),
            _ => None,
        }
    }

    /// Widen any numeric value to f64.
    #[inline]
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Int(v) => Some(*v as f64),
            Value::Long(v) => Some(*v as f64),
            Value::Float(v) => Some(*v as f64),
            Value::Double(v) => Some(*v),
            Value::Decimal(u, _, s) => Some(*u as f64 / 10f64.powi(*s as i32)),
            _ => None,
        }
    }

    /// Borrow the string payload.
    #[inline]
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// Borrow the boolean payload.
    #[inline]
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Boolean(b) => Some(*b),
            _ => None,
        }
    }

    /// Approximate heap + inline size in bytes (memory accounting for the
    /// §3.6 columnar-vs-object cache comparison).
    pub fn approx_bytes(&self) -> u64 {
        match self {
            Value::Null => 8,
            Value::Boolean(_) => 8,
            Value::Int(_) | Value::Float(_) | Value::Date(_) => 8,
            Value::Long(_) | Value::Double(_) | Value::Timestamp(_) => 8,
            Value::Decimal(_, _, _) => 24,
            // Arc<str>: pointer + refcounts + payload.
            Value::Str(s) => 16 + s.len() as u64 + 16,
            Value::Binary(b) => 16 + b.len() as u64 + 16,
            Value::Array(items) => 24 + items.iter().map(Value::approx_bytes).sum::<u64>(),
            Value::Struct(items) => 24 + items.iter().map(Value::approx_bytes).sum::<u64>(),
        }
    }

    // ---- arithmetic (assumes type coercion already unified operand
    // types; falls back to f64 when mixed) ----

    fn decimal_align(a: (i128, u8), b: (i128, u8)) -> (i128, i128, u8) {
        let (ua, sa) = a;
        let (ub, sb) = b;
        let s = sa.max(sb);
        let ua = ua * 10i128.pow((s - sa) as u32);
        let ub = ub * 10i128.pow((s - sb) as u32);
        (ua, ub, s)
    }

    /// Add two values with SQL null propagation.
    pub fn add(&self, other: &Value) -> Result<Value> {
        binary_numeric(self, other, "+", |a, b| a.checked_add(b), |a, b| a + b)
    }

    /// Subtract.
    pub fn sub(&self, other: &Value) -> Result<Value> {
        binary_numeric(self, other, "-", |a, b| a.checked_sub(b), |a, b| a - b)
    }

    /// Multiply.
    pub fn mul(&self, other: &Value) -> Result<Value> {
        binary_numeric(self, other, "*", |a, b| a.checked_mul(b), |a, b| a * b)
    }

    /// Divide; integral division by zero yields NULL (Hive semantics),
    /// float division follows IEEE.
    pub fn div(&self, other: &Value) -> Result<Value> {
        if self.is_null() || other.is_null() {
            return Ok(Value::Null);
        }
        match (self.as_f64(), other.as_f64()) {
            (Some(a), Some(b)) => Ok(if b == 0.0 {
                Value::Null
            } else {
                Value::Double(a / b)
            }),
            _ => Err(type_err("/", self, other)),
        }
    }

    /// Modulo; by-zero yields NULL.
    pub fn rem(&self, other: &Value) -> Result<Value> {
        if self.is_null() || other.is_null() {
            return Ok(Value::Null);
        }
        match (self, other) {
            (a, b) if a.as_i64().is_some() && b.as_i64().is_some() => {
                let (a, b) = (a.as_i64().unwrap(), b.as_i64().unwrap());
                if b == 0 {
                    Ok(Value::Null)
                } else {
                    Ok(Value::Long(a % b))
                }
            }
            (a, b) => match (a.as_f64(), b.as_f64()) {
                (Some(a), Some(b)) if b != 0.0 => Ok(Value::Double(a % b)),
                (Some(_), Some(_)) => Ok(Value::Null),
                _ => Err(type_err("%", a, b)),
            },
        }
    }

    /// Arithmetic negation.
    pub fn neg(&self) -> Result<Value> {
        match self {
            Value::Null => Ok(Value::Null),
            Value::Int(v) => Ok(Value::Int(-v)),
            Value::Long(v) => Ok(Value::Long(-v)),
            Value::Float(v) => Ok(Value::Float(-v)),
            Value::Double(v) => Ok(Value::Double(-v)),
            Value::Decimal(u, p, s) => Ok(Value::Decimal(-u, *p, *s)),
            v => Err(CatalystError::eval(format!("cannot negate {v}"))),
        }
    }

    /// SQL comparison: returns `None` when either side is NULL.
    pub fn sql_cmp(&self, other: &Value) -> Option<Ordering> {
        if self.is_null() || other.is_null() {
            return None;
        }
        Some(self.total_cmp(other))
    }

    /// Total order used for sorting and grouping; NULL sorts first,
    /// values of different type families order by type tag.
    pub fn total_cmp(&self, other: &Value) -> Ordering {
        use Value::*;
        match (self, other) {
            (Null, Null) => Ordering::Equal,
            (Null, _) => Ordering::Less,
            (_, Null) => Ordering::Greater,
            (Boolean(a), Boolean(b)) => a.cmp(b),
            (Str(a), Str(b)) => a.as_ref().cmp(b.as_ref()),
            (Binary(a), Binary(b)) => a.as_ref().cmp(b.as_ref()),
            (Date(a), Date(b)) => a.cmp(b),
            (Timestamp(a), Timestamp(b)) => a.cmp(b),
            (Array(a), Array(b)) | (Struct(a), Struct(b)) => {
                for (x, y) in a.iter().zip(b.iter()) {
                    let o = x.total_cmp(y);
                    if o != Ordering::Equal {
                        return o;
                    }
                }
                a.len().cmp(&b.len())
            }
            // Numerics compare cross-type via exact integer compare when
            // possible, else f64.
            (a, b) => match (a.as_i64(), b.as_i64()) {
                (Some(x), Some(y)) => x.cmp(&y),
                _ => match (a.as_f64(), b.as_f64()) {
                    (Some(x), Some(y)) => x.total_cmp(&y),
                    _ => type_rank(a).cmp(&type_rank(b)),
                },
            },
        }
    }

    /// Cast to another type, returning NULL on lossy string parses that
    /// fail (SQL semantics) and errors on unsupported casts.
    pub fn cast_to(&self, target: &DataType) -> Result<Value> {
        use DataType as T;
        if self.is_null() {
            return Ok(Value::Null);
        }
        if &self.dtype() == target {
            return Ok(self.clone());
        }
        let out = match target {
            T::Boolean => match self {
                Value::Int(v) => Value::Boolean(*v != 0),
                Value::Long(v) => Value::Boolean(*v != 0),
                Value::Str(s) => match s.trim().to_ascii_lowercase().as_str() {
                    "true" | "t" | "1" => Value::Boolean(true),
                    "false" | "f" | "0" => Value::Boolean(false),
                    _ => Value::Null,
                },
                _ => return Err(cast_err(self, target)),
            },
            T::Int => match self {
                Value::Long(v) => Value::Int(*v as i32),
                Value::Float(v) => Value::Int(*v as i32),
                Value::Double(v) => Value::Int(*v as i32),
                Value::Boolean(b) => Value::Int(i32::from(*b)),
                Value::Decimal(u, _, s) => Value::Int((u / 10i128.pow(*s as u32)) as i32),
                Value::Str(s) => s
                    .trim()
                    .parse::<i32>()
                    .map(Value::Int)
                    .unwrap_or(Value::Null),
                Value::Date(d) => Value::Int(*d),
                _ => return Err(cast_err(self, target)),
            },
            T::Long => match self {
                Value::Int(v) => Value::Long(*v as i64),
                Value::Float(v) => Value::Long(*v as i64),
                Value::Double(v) => Value::Long(*v as i64),
                Value::Boolean(b) => Value::Long(i64::from(*b)),
                Value::Decimal(u, _, s) => Value::Long((u / 10i128.pow(*s as u32)) as i64),
                Value::Str(s) => s
                    .trim()
                    .parse::<i64>()
                    .map(Value::Long)
                    .unwrap_or(Value::Null),
                Value::Timestamp(t) => Value::Long(*t),
                Value::Date(d) => Value::Long(*d as i64),
                _ => return Err(cast_err(self, target)),
            },
            T::Float => match self.as_f64() {
                Some(v) => Value::Float(v as f32),
                None => match self {
                    Value::Str(s) => s
                        .trim()
                        .parse::<f32>()
                        .map(Value::Float)
                        .unwrap_or(Value::Null),
                    _ => return Err(cast_err(self, target)),
                },
            },
            T::Double => match self.as_f64() {
                Some(v) => Value::Double(v),
                None => match self {
                    Value::Str(s) => s
                        .trim()
                        .parse::<f64>()
                        .map(Value::Double)
                        .unwrap_or(Value::Null),
                    _ => return Err(cast_err(self, target)),
                },
            },
            T::Decimal(p, s) => match self {
                Value::Int(v) => Value::Decimal(*v as i128 * 10i128.pow(*s as u32), *p, *s),
                Value::Long(v) => Value::Decimal(*v as i128 * 10i128.pow(*s as u32), *p, *s),
                Value::Decimal(u, _, old_s) => {
                    let u = if s >= old_s {
                        u * 10i128.pow((s - old_s) as u32)
                    } else {
                        u / 10i128.pow((old_s - s) as u32)
                    };
                    Value::Decimal(u, *p, *s)
                }
                Value::Float(v) => {
                    Value::Decimal((*v as f64 * 10f64.powi(*s as i32)).round() as i128, *p, *s)
                }
                Value::Double(v) => {
                    Value::Decimal((v * 10f64.powi(*s as i32)).round() as i128, *p, *s)
                }
                Value::Str(txt) => match txt.trim().parse::<f64>() {
                    Ok(v) => Value::Decimal((v * 10f64.powi(*s as i32)).round() as i128, *p, *s),
                    Err(_) => Value::Null,
                },
                _ => return Err(cast_err(self, target)),
            },
            T::String => Value::str(self.to_string()),
            T::Date => match self {
                Value::Int(v) => Value::Date(*v),
                Value::Long(v) => Value::Date(*v as i32),
                Value::Str(s) => parse_date(s).map(Value::Date).unwrap_or(Value::Null),
                Value::Timestamp(t) => Value::Date((*t / 86_400_000_000) as i32),
                _ => return Err(cast_err(self, target)),
            },
            T::Timestamp => match self {
                Value::Long(v) => Value::Timestamp(*v),
                Value::Date(d) => Value::Timestamp(*d as i64 * 86_400_000_000),
                Value::Str(s) => parse_date(s)
                    .map(|d| Value::Timestamp(d as i64 * 86_400_000_000))
                    .unwrap_or(Value::Null),
                _ => return Err(cast_err(self, target)),
            },
            _ => return Err(cast_err(self, target)),
        };
        Ok(out)
    }
}

fn type_rank(v: &Value) -> u8 {
    match v {
        Value::Null => 0,
        Value::Boolean(_) => 1,
        Value::Int(_) | Value::Long(_) | Value::Float(_) | Value::Double(_) => 2,
        Value::Decimal(_, _, _) => 2,
        Value::Date(_) => 3,
        Value::Timestamp(_) => 4,
        Value::Str(_) => 5,
        Value::Binary(_) => 6,
        Value::Array(_) => 7,
        Value::Struct(_) => 8,
    }
}

fn type_err(op: &str, a: &Value, b: &Value) -> CatalystError {
    CatalystError::eval(format!(
        "cannot apply '{op}' to {} and {}",
        a.dtype(),
        b.dtype()
    ))
}

fn cast_err(v: &Value, t: &DataType) -> CatalystError {
    CatalystError::eval(format!("cannot cast {} to {t}", v.dtype()))
}

/// Parse `YYYY-MM-DD` into days since the Unix epoch.
pub fn parse_date(s: &str) -> Option<i32> {
    let s = s.trim();
    let mut parts = s.splitn(3, '-');
    let year: i64 = parts.next()?.parse().ok()?;
    let month: u32 = parts.next()?.parse().ok()?;
    let day: u32 = parts
        .next()?
        .split(|c: char| !c.is_ascii_digit())
        .next()?
        .parse()
        .ok()?;
    if !(1..=12).contains(&month) || !(1..=31).contains(&day) {
        return None;
    }
    // Days from civil algorithm (Howard Hinnant), valid far beyond our needs.
    let y = if month <= 2 { year - 1 } else { year };
    let era = if y >= 0 { y } else { y - 399 } / 400;
    let yoe = y - era * 400;
    let mp = (month as i64 + 9) % 12;
    let doy = (153 * mp + 2) / 5 + day as i64 - 1;
    let doe = yoe * 365 + yoe / 4 - yoe / 100 + doy;
    Some((era * 146_097 + doe - 719_468) as i32)
}

/// Format days since the epoch back to `YYYY-MM-DD`.
pub fn format_date(days: i32) -> String {
    let z = days as i64 + 719_468;
    let era = if z >= 0 { z } else { z - 146_096 } / 146_097;
    let doe = z - era * 146_097;
    let yoe = (doe - doe / 1460 + doe / 36_524 - doe / 146_096) / 365;
    let y = yoe + era * 400;
    let doy = doe - (365 * yoe + yoe / 4 - yoe / 100);
    let mp = (5 * doy + 2) / 153;
    let d = doy - (153 * mp + 2) / 5 + 1;
    let m = if mp < 10 { mp + 3 } else { mp - 9 };
    let y = if m <= 2 { y + 1 } else { y };
    format!("{y:04}-{m:02}-{d:02}")
}

fn binary_numeric(
    a: &Value,
    b: &Value,
    op: &str,
    int_op: impl Fn(i64, i64) -> Option<i64>,
    float_op: impl Fn(f64, f64) -> f64,
) -> Result<Value> {
    use Value::*;
    if a.is_null() || b.is_null() {
        return Ok(Null);
    }
    match (a, b) {
        (Int(x), Int(y)) => int_op(*x as i64, *y as i64)
            .map(|v| {
                if v >= i32::MIN as i64 && v <= i32::MAX as i64 {
                    Int(v as i32)
                } else {
                    Long(v)
                }
            })
            .ok_or_else(|| CatalystError::eval(format!("integer overflow in '{op}'"))),
        (Decimal(ua, pa, sa), Decimal(ub, _pb, sb)) => {
            if op == "*" {
                let s = sa + sb;
                return Ok(Decimal(ua * ub, (pa + s).min(38), s));
            }
            let (x, y, s) = Value::decimal_align((*ua, *sa), (*ub, *sb));
            let unscaled = match op {
                "+" => x + y,
                "-" => x - y,
                _ => return Err(type_err(op, a, b)),
            };
            Ok(Decimal(unscaled, 38.min(*pa + 1), s))
        }
        _ => match (a.as_i64(), b.as_i64()) {
            (Some(x), Some(y)) => int_op(x, y)
                .map(Long)
                .ok_or_else(|| CatalystError::eval(format!("integer overflow in '{op}'"))),
            _ => match (a.as_f64(), b.as_f64()) {
                (Some(x), Some(y)) => Ok(Double(float_op(x, y))),
                _ => {
                    if op == "+" {
                        if let (Some(x), Some(y)) = (a.as_str(), b.as_str()) {
                            return Ok(Value::str(format!("{x}{y}")));
                        }
                    }
                    Err(type_err(op, a, b))
                }
            },
        },
    }
}

impl PartialEq for Value {
    fn eq(&self, other: &Self) -> bool {
        self.total_cmp(other) == Ordering::Equal
    }
}

impl Eq for Value {}

impl PartialOrd for Value {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Value {
    fn cmp(&self, other: &Self) -> Ordering {
        self.total_cmp(other)
    }
}

impl Hash for Value {
    fn hash<H: Hasher>(&self, state: &mut H) {
        match self {
            Value::Null => 0u8.hash(state),
            Value::Boolean(b) => b.hash(state),
            // All numerics hash via a canonical f64/i64 split so that
            // Int(1), Long(1) and Double(1.0) group together after
            // coercion edge cases.
            Value::Int(v) => hash_num(*v as f64, Some(*v as i64), state),
            Value::Long(v) => hash_num(*v as f64, Some(*v), state),
            Value::Float(v) => hash_num(*v as f64, exact_int(*v as f64), state),
            Value::Double(v) => hash_num(*v, exact_int(*v), state),
            Value::Decimal(u, _, s) => {
                let as_f = *u as f64 / 10f64.powi(*s as i32);
                hash_num(as_f, exact_int(as_f), state);
            }
            Value::Str(s) => {
                2u8.hash(state);
                s.hash(state);
            }
            Value::Date(d) => {
                3u8.hash(state);
                d.hash(state);
            }
            Value::Timestamp(t) => {
                4u8.hash(state);
                t.hash(state);
            }
            Value::Binary(b) => {
                5u8.hash(state);
                b.hash(state);
            }
            Value::Array(items) | Value::Struct(items) => {
                6u8.hash(state);
                for v in items.iter() {
                    v.hash(state);
                }
            }
        }
    }
}

fn exact_int(v: f64) -> Option<i64> {
    if v.fract() == 0.0 && v.abs() < 2f64.powi(53) {
        Some(v as i64)
    } else {
        None
    }
}

fn hash_num<H: Hasher>(f: f64, i: Option<i64>, state: &mut H) {
    1u8.hash(state);
    match i {
        Some(i) => i.hash(state),
        None => {
            // Canonicalize NaN and -0.0.
            let f = if f.is_nan() {
                f64::NAN
            } else if f == 0.0 {
                0.0
            } else {
                f
            };
            f.to_bits().hash(state);
        }
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::Null => write!(f, "NULL"),
            Value::Boolean(b) => write!(f, "{b}"),
            Value::Int(v) => write!(f, "{v}"),
            Value::Long(v) => write!(f, "{v}"),
            Value::Float(v) => write!(f, "{v}"),
            Value::Double(v) => write!(f, "{v}"),
            Value::Decimal(u, _, s) => {
                if *s == 0 {
                    write!(f, "{u}")
                } else {
                    let pow = 10i128.pow(*s as u32);
                    let sign = if *u < 0 { "-" } else { "" };
                    let abs = u.abs();
                    write!(
                        f,
                        "{sign}{}.{:0width$}",
                        abs / pow,
                        abs % pow,
                        width = *s as usize
                    )
                }
            }
            Value::Str(s) => write!(f, "{s}"),
            Value::Date(d) => write!(f, "{}", format_date(*d)),
            Value::Timestamp(t) => write!(f, "{t}us"),
            Value::Binary(b) => write!(
                f,
                "0x{}",
                b.iter().map(|x| format!("{x:02x}")).collect::<String>()
            ),
            Value::Array(items) => {
                write!(f, "[")?;
                for (i, v) in items.iter().enumerate() {
                    if i > 0 {
                        write!(f, ", ")?;
                    }
                    write!(f, "{v}")?;
                }
                write!(f, "]")
            }
            Value::Struct(items) => {
                write!(f, "{{")?;
                for (i, v) in items.iter().enumerate() {
                    if i > 0 {
                        write!(f, ", ")?;
                    }
                    write!(f, "{v}")?;
                }
                write!(f, "}}")
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn null_propagates_through_arithmetic() {
        assert_eq!(Value::Null.add(&Value::Int(1)).unwrap(), Value::Null);
        assert_eq!(Value::Int(1).mul(&Value::Null).unwrap(), Value::Null);
    }

    #[test]
    fn integer_arithmetic_widens_on_overflow() {
        let big = Value::Int(i32::MAX);
        assert_eq!(
            big.add(&Value::Int(1)).unwrap(),
            Value::Long(i32::MAX as i64 + 1)
        );
    }

    #[test]
    fn division_by_zero_is_null() {
        assert_eq!(Value::Int(1).div(&Value::Int(0)).unwrap(), Value::Null);
        assert_eq!(Value::Long(7).rem(&Value::Long(0)).unwrap(), Value::Null);
    }

    #[test]
    fn division_promotes_to_double() {
        assert_eq!(
            Value::Int(7).div(&Value::Int(2)).unwrap(),
            Value::Double(3.5)
        );
    }

    #[test]
    fn string_concat_via_plus() {
        assert_eq!(
            Value::str("ab").add(&Value::str("cd")).unwrap(),
            Value::str("abcd")
        );
    }

    #[test]
    fn sql_cmp_returns_none_on_null() {
        assert_eq!(Value::Null.sql_cmp(&Value::Int(1)), None);
        assert_eq!(Value::Int(1).sql_cmp(&Value::Int(2)), Some(Ordering::Less));
    }

    #[test]
    fn cross_numeric_compare() {
        assert_eq!(
            Value::Int(2).sql_cmp(&Value::Double(2.0)),
            Some(Ordering::Equal)
        );
        assert_eq!(
            Value::Long(3).sql_cmp(&Value::Float(2.5)),
            Some(Ordering::Greater)
        );
    }

    #[test]
    fn nan_and_negzero_hash_consistently() {
        use std::collections::hash_map::DefaultHasher;
        fn h(v: &Value) -> u64 {
            let mut s = DefaultHasher::new();
            v.hash(&mut s);
            s.finish()
        }
        assert_eq!(h(&Value::Double(0.0)), h(&Value::Double(-0.0)));
        assert_eq!(h(&Value::Double(f64::NAN)), h(&Value::Double(f64::NAN)));
        assert_eq!(h(&Value::Int(5)), h(&Value::Long(5)));
        assert_eq!(h(&Value::Long(5)), h(&Value::Double(5.0)));
    }

    #[test]
    fn cast_string_to_numbers() {
        assert_eq!(
            Value::str("42").cast_to(&DataType::Int).unwrap(),
            Value::Int(42)
        );
        assert_eq!(
            Value::str("4.5").cast_to(&DataType::Double).unwrap(),
            Value::Double(4.5)
        );
        // Unparseable strings become NULL, not an error.
        assert_eq!(
            Value::str("abc").cast_to(&DataType::Int).unwrap(),
            Value::Null
        );
    }

    #[test]
    fn cast_decimal_rescales() {
        let d = Value::Decimal(12345, 10, 2); // 123.45
        let up = d.cast_to(&DataType::Decimal(12, 4)).unwrap();
        assert_eq!(up, Value::Decimal(1_234_500, 12, 4));
        let down = d.cast_to(&DataType::Decimal(10, 1)).unwrap();
        assert_eq!(down, Value::Decimal(1234, 10, 1));
    }

    #[test]
    fn decimal_addition_aligns_scales() {
        let a = Value::Decimal(150, 10, 2); // 1.50
        let b = Value::Decimal(25, 10, 1); // 2.5
        assert_eq!(a.add(&b).unwrap(), Value::Decimal(400, 11, 2)); // 4.00
    }

    #[test]
    fn date_roundtrip() {
        for s in ["1970-01-01", "2015-01-01", "1999-12-31", "2026-07-07"] {
            let d = parse_date(s).unwrap();
            assert_eq!(format_date(d), s);
        }
        assert_eq!(parse_date("1970-01-01"), Some(0));
        assert_eq!(parse_date("1970-01-02"), Some(1));
        assert_eq!(parse_date("not a date"), None);
    }

    #[test]
    fn total_order_puts_null_first() {
        let mut vals = [Value::Int(2), Value::Null, Value::Int(1)];
        vals.sort();
        assert_eq!(vals[0], Value::Null);
        assert_eq!(vals[1], Value::Int(1));
    }
}
