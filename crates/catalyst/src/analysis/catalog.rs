//! The Catalog: tracks tables in all data sources (§4.3.1) plus
//! registered functions. Temp tables registered from DataFrames stay
//! *unmaterialized views* — their logical plans are inlined, so
//! optimizations happen across SQL and the original DataFrame expressions
//! (§3.3).

use crate::error::{CatalystError, Result};
use crate::expr::UdfImpl;
use crate::plan::LogicalPlan;
use parking_lot::RwLock;
use std::collections::HashMap;
use std::sync::Arc;

/// Table name → logical plan resolution.
pub trait Catalog: Send + Sync {
    /// Look up a table by name.
    fn lookup(&self, name: &str) -> Option<LogicalPlan>;
    /// All registered table names (sorted).
    fn table_names(&self) -> Vec<String>;
}

/// In-memory catalog of temp tables / views.
#[derive(Default)]
pub struct SimpleCatalog {
    tables: RwLock<HashMap<String, LogicalPlan>>,
}

impl SimpleCatalog {
    /// Register (or replace) a table.
    pub fn register(&self, name: impl Into<String>, plan: LogicalPlan) {
        self.tables
            .write()
            .insert(name.into().to_ascii_lowercase(), plan);
    }

    /// Remove a table; true if it existed.
    pub fn unregister(&self, name: &str) -> bool {
        self.tables
            .write()
            .remove(&name.to_ascii_lowercase())
            .is_some()
    }
}

impl Catalog for SimpleCatalog {
    fn lookup(&self, name: &str) -> Option<LogicalPlan> {
        self.tables.read().get(&name.to_ascii_lowercase()).cloned()
    }

    fn table_names(&self) -> Vec<String> {
        let mut names: Vec<String> = self.tables.read().keys().cloned().collect();
        names.sort();
        names
    }
}

/// A session-local catalog layered over a shared one: lookups hit the
/// session's own temp views first, then fall through to the shared
/// catalog; registrations always land in the session layer, so one
/// session's `CREATE TEMP TABLE` never leaks into another's namespace
/// while shared (server-level) tables stay visible to everyone.
pub struct OverlayCatalog {
    local: SimpleCatalog,
    shared: Arc<SimpleCatalog>,
}

impl OverlayCatalog {
    /// Layer a fresh session namespace over `shared`.
    pub fn over(shared: Arc<SimpleCatalog>) -> Self {
        OverlayCatalog {
            local: SimpleCatalog::default(),
            shared,
        }
    }

    /// Register (or replace) a table in the *session* layer. A shared
    /// table of the same name is shadowed for this session only.
    pub fn register(&self, name: impl Into<String>, plan: LogicalPlan) {
        self.local.register(name, plan);
    }

    /// Remove a session-layer table; true if it existed. Shared tables
    /// cannot be dropped through a session.
    pub fn unregister(&self, name: &str) -> bool {
        self.local.unregister(name)
    }
}

impl Catalog for OverlayCatalog {
    fn lookup(&self, name: &str) -> Option<LogicalPlan> {
        self.local.lookup(name).or_else(|| self.shared.lookup(name))
    }

    fn table_names(&self) -> Vec<String> {
        let mut names = self.local.table_names();
        names.extend(self.shared.table_names());
        names.sort();
        names.dedup();
        names
    }
}

/// Registry of user-defined functions (§3.7: inline registration).
#[derive(Default)]
pub struct FunctionRegistry {
    udfs: RwLock<HashMap<String, Arc<UdfImpl>>>,
}

impl FunctionRegistry {
    /// Register a UDF under its name.
    pub fn register(&self, udf: UdfImpl) {
        self.udfs
            .write()
            .insert(udf.name.to_ascii_lowercase(), Arc::new(udf));
    }

    /// Look up a UDF.
    pub fn lookup(&self, name: &str) -> Option<Arc<UdfImpl>> {
        self.udfs.read().get(&name.to_ascii_lowercase()).cloned()
    }

    /// Registered names (sorted).
    pub fn names(&self) -> Vec<String> {
        let mut names: Vec<String> = self.udfs.read().keys().cloned().collect();
        names.sort();
        names
    }
}

/// Look up a table or fail with a helpful message.
pub fn require_table(catalog: &dyn Catalog, name: &str) -> Result<LogicalPlan> {
    catalog.lookup(name).ok_or_else(|| {
        CatalystError::analysis(format!(
            "table '{name}' not found; known tables: [{}]",
            catalog.table_names().join(", ")
        ))
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::expr::ColumnRef;
    use crate::types::DataType;

    fn table() -> LogicalPlan {
        LogicalPlan::LocalRelation {
            output: vec![ColumnRef::new("x", DataType::Int, false)],
            rows: Arc::new(vec![]),
        }
    }

    #[test]
    fn register_lookup_case_insensitive() {
        let c = SimpleCatalog::default();
        c.register("Users", table());
        assert!(c.lookup("users").is_some());
        assert!(c.lookup("USERS").is_some());
        assert!(c.lookup("missing").is_none());
        assert_eq!(c.table_names(), vec!["users".to_string()]);
        assert!(c.unregister("users"));
        assert!(!c.unregister("users"));
    }

    #[test]
    fn overlay_shadows_and_isolates() {
        let shared = Arc::new(SimpleCatalog::default());
        shared.register("events", table());
        let a = OverlayCatalog::over(shared.clone());
        let b = OverlayCatalog::over(shared.clone());

        // Both sessions see the shared table.
        assert!(a.lookup("events").is_some());
        assert!(b.lookup("events").is_some());

        // A session-local view is invisible to the other session.
        a.register("mine", table());
        assert!(a.lookup("mine").is_some());
        assert!(b.lookup("mine").is_none());
        assert_eq!(a.table_names(), vec!["events", "mine"]);
        assert_eq!(b.table_names(), vec!["events"]);

        // Shadowing is per-session and unregister exposes the shared
        // table again rather than dropping it.
        a.register("events", table());
        assert!(a.unregister("events"));
        assert!(a.lookup("events").is_some(), "shared table still visible");
        assert!(!a.unregister("events"), "shared layer is read-only");
        assert!(shared.lookup("events").is_some());
    }

    #[test]
    fn require_table_lists_known_tables() {
        let c = SimpleCatalog::default();
        c.register("users", table());
        let err = require_table(&c, "logs").unwrap_err();
        assert!(err.to_string().contains("users"));
    }

    #[test]
    fn function_registry_roundtrip() {
        use crate::value::Value;
        let r = FunctionRegistry::default();
        r.register(UdfImpl {
            name: "twice".into(),
            return_type: DataType::Long,
            func: Box::new(|args| Ok(Value::Long(args[0].as_i64().unwrap_or(0) * 2))),
        });
        assert!(r.lookup("TWICE").is_some());
        assert!(r.lookup("thrice").is_none());
        assert_eq!(r.names(), vec!["twice".to_string()]);
    }
}
