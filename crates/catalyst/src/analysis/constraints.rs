//! Constraint and nullability inference (static analysis).
//!
//! A bottom-up abstract interpretation over analyzed logical plans that
//! infers, per plan node:
//!
//! * **nullability** per output attribute (refined below the conservative
//!   [`crate::expr::Expr::nullable`] by filters, join conditions, and
//!   source statistics),
//! * **value domains** per attribute — constant / interval / finite set —
//!   derived from literals, filters, casts, and join semantics, and
//! * a **constraint set**: predicates known true for every row the node
//!   produces (outer-join null-extension handled by dropping the
//!   null-extended side's constraints and flipping its nullability —
//!   domains describe only the *non-null* values an attribute can take,
//!   so null-extension never invalidates a domain).
//!
//! Consumers: the constraint optimizer rules
//! ([`crate::optimizer::constraint_rules`]) and the plan lint engine
//! ([`crate::analysis::lint`]). Scans seed their initial facts from
//! [`crate::source::BaseRelation::column_statistics`] when the source
//! exposes per-column min/max/null-count statistics.

use crate::expr::{AggFunc, BinaryOperator, ColumnRef, Expr, ExprId};
use crate::interpreter;
use crate::plan::{JoinType, LogicalPlan};
use crate::row::Row;
use crate::types::DataType;
use crate::value::Value;
use std::cmp::Ordering;
use std::collections::HashMap;

/// Rows a LocalRelation may have before we stop computing per-column
/// statistics for it (plans embed literal row sets; keep analysis cheap).
const LOCAL_STATS_CAP: usize = 4096;

/// Maximum finite-set size kept precise; larger sets collapse to ranges.
const FINITE_CAP: usize = 32;

// ---------------------------------------------------------------------
// Domains
// ---------------------------------------------------------------------

/// The set of *non-null* values an attribute can take. NULL is tracked
/// separately via [`AttrFacts::nullable`], so outer-join null-extension
/// only flips nullability and never widens a domain.
#[derive(Debug, Clone, PartialEq, Default)]
pub enum Domain {
    /// Nothing known.
    #[default]
    Any,
    /// Exactly this (non-null) value.
    Constant(Value),
    /// Closed interval; `None` means unbounded on that side.
    Interval {
        /// Lower bound (inclusive).
        min: Option<Value>,
        /// Upper bound (inclusive).
        max: Option<Value>,
    },
    /// One of these (non-null) values.
    Finite(Vec<Value>),
}

fn vcmp(a: &Value, b: &Value) -> Option<Ordering> {
    a.sql_cmp(b)
}

impl Domain {
    /// Lower/upper bounds of the domain, when known.
    pub fn bounds(&self) -> (Option<Value>, Option<Value>) {
        match self {
            Domain::Any => (None, None),
            Domain::Constant(v) => (Some(v.clone()), Some(v.clone())),
            Domain::Interval { min, max } => (min.clone(), max.clone()),
            Domain::Finite(vs) => {
                let mut min: Option<Value> = None;
                let mut max: Option<Value> = None;
                for v in vs {
                    match &min {
                        Some(m) if vcmp(v, m) != Some(Ordering::Less) => {}
                        _ => min = Some(v.clone()),
                    }
                    match &max {
                        Some(m) if vcmp(v, m) != Some(Ordering::Greater) => {}
                        _ => max = Some(v.clone()),
                    }
                }
                (min, max)
            }
        }
    }

    /// Could the domain contain `v`? Conservative: unknown ⇒ `true`.
    pub fn may_contain(&self, v: &Value) -> bool {
        match self {
            Domain::Any => true,
            Domain::Constant(c) => {
                vcmp(c, v) != Some(Ordering::Less) && vcmp(c, v) != Some(Ordering::Greater)
            }
            Domain::Interval { min, max } => {
                let below = min
                    .as_ref()
                    .map(|m| vcmp(v, m) == Some(Ordering::Less))
                    .unwrap_or(false);
                let above = max
                    .as_ref()
                    .map(|m| vcmp(v, m) == Some(Ordering::Greater))
                    .unwrap_or(false);
                !(below || above)
            }
            Domain::Finite(vs) => vs.iter().any(|c| vcmp(c, v) == Some(Ordering::Equal)),
        }
    }

    /// The single value of a constant domain.
    pub fn as_constant(&self) -> Option<&Value> {
        match self {
            Domain::Constant(v) => Some(v),
            Domain::Finite(vs) if vs.len() == 1 => vs.first(),
            _ => None,
        }
    }

    /// Intersection; `None` means the intersection is provably empty.
    pub fn intersect(&self, other: &Domain) -> Option<Domain> {
        match (self, other) {
            (Domain::Any, d) | (d, Domain::Any) => Some(d.clone()),
            (Domain::Constant(v), d) | (d, Domain::Constant(v)) => {
                if d.may_contain(v) {
                    Some(Domain::Constant(v.clone()))
                } else {
                    None
                }
            }
            (Domain::Finite(vs), d) | (d, Domain::Finite(vs)) => {
                let kept: Vec<Value> = vs.iter().filter(|v| d.may_contain(v)).cloned().collect();
                if kept.is_empty() {
                    None
                } else {
                    Some(Domain::Finite(kept))
                }
            }
            (Domain::Interval { min: a0, max: a1 }, Domain::Interval { min: b0, max: b1 }) => {
                let min = tighter(a0, b0, Ordering::Greater);
                let max = tighter(a1, b1, Ordering::Less);
                if let (Some(lo), Some(hi)) = (&min, &max) {
                    if vcmp(lo, hi) == Some(Ordering::Greater) {
                        return None;
                    }
                }
                Some(Domain::Interval { min, max })
            }
        }
    }

    /// Least upper bound (for `Union` nodes): a domain containing every
    /// value either input can produce.
    pub fn join(&self, other: &Domain) -> Domain {
        match (self, other) {
            (Domain::Any, _) | (_, Domain::Any) => Domain::Any,
            (Domain::Constant(a), Domain::Constant(b)) if vcmp(a, b) == Some(Ordering::Equal) => {
                Domain::Constant(a.clone())
            }
            (Domain::Finite(a), Domain::Finite(b)) if a.len() + b.len() <= FINITE_CAP => {
                let mut out = a.clone();
                for v in b {
                    if !out.iter().any(|o| vcmp(o, v) == Some(Ordering::Equal)) {
                        out.push(v.clone());
                    }
                }
                Domain::Finite(out)
            }
            _ => {
                let (a0, a1) = self.bounds();
                let (b0, b1) = other.bounds();
                let min = match (a0, b0) {
                    (Some(a), Some(b)) => Some(if vcmp(&a, &b) == Some(Ordering::Greater) {
                        b
                    } else {
                        a
                    }),
                    _ => None,
                };
                let max = match (a1, b1) {
                    (Some(a), Some(b)) => Some(if vcmp(&a, &b) == Some(Ordering::Less) {
                        b
                    } else {
                        a
                    }),
                    _ => None,
                };
                if min.is_none() && max.is_none() {
                    Domain::Any
                } else {
                    Domain::Interval { min, max }
                }
            }
        }
    }
}

/// Keep the tighter of two optional bounds (`prefer` = Greater keeps the
/// larger value, i.e. the tighter lower bound).
fn tighter(a: &Option<Value>, b: &Option<Value>, prefer: Ordering) -> Option<Value> {
    match (a, b) {
        (Some(x), Some(y)) => Some(if vcmp(x, y) == Some(prefer) {
            x.clone()
        } else {
            y.clone()
        }),
        (Some(x), None) | (None, Some(x)) => Some(x.clone()),
        (None, None) => None,
    }
}

// ---------------------------------------------------------------------
// Facts
// ---------------------------------------------------------------------

/// What is known about one attribute at one plan node.
#[derive(Debug, Clone, PartialEq)]
pub struct AttrFacts {
    /// Can the attribute be NULL here?
    pub nullable: bool,
    /// Domain of its non-null values.
    pub domain: Domain,
}

impl AttrFacts {
    /// Nothing known beyond declared nullability.
    pub fn unknown(nullable: bool) -> Self {
        AttrFacts {
            nullable,
            domain: Domain::Any,
        }
    }
}

/// Everything the analysis knows about one plan node's output.
#[derive(Debug, Clone, Default)]
pub struct NodeFacts {
    /// Per-attribute facts, keyed by [`ExprId`].
    pub attrs: HashMap<ExprId, AttrFacts>,
    /// Predicates known true for every output row.
    pub constraints: Vec<Expr>,
    /// The node provably produces zero rows.
    pub always_empty: bool,
}

impl NodeFacts {
    /// Facts for one attribute, if tracked.
    pub fn attr(&self, id: ExprId) -> Option<&AttrFacts> {
        self.attrs.get(&id)
    }

    /// Is `c` provably non-null at this node?
    pub fn is_non_null(&self, c: &ColumnRef) -> bool {
        self.attr(c.id).map(|f| !f.nullable).unwrap_or(!c.nullable)
    }

    fn set_non_null(&mut self, id: ExprId, declared: bool) {
        self.attrs
            .entry(id)
            .or_insert_with(|| AttrFacts::unknown(declared))
            .nullable = false;
    }

    /// Merge another node's facts in (used for join inputs).
    fn absorb(&mut self, other: &NodeFacts) {
        for (id, f) in &other.attrs {
            self.attrs.insert(*id, f.clone());
        }
    }
}

/// Compute facts for `plan`'s output, recursing over the whole subtree.
pub fn facts(plan: &LogicalPlan) -> NodeFacts {
    let children: Vec<NodeFacts> = plan.children().iter().map(|c| facts(c)).collect();
    node_facts(plan, &children)
}

/// Merged facts of all of `plan`'s children — the frame this node's own
/// expressions evaluate against.
pub fn input_facts(plan: &LogicalPlan) -> NodeFacts {
    let mut out = NodeFacts::default();
    for c in plan.children() {
        let f = facts(&c);
        out.constraints.extend(f.constraints.iter().cloned());
        out.always_empty |= f.always_empty;
        out.absorb(&f);
    }
    out
}

/// Compute one node's facts from its children's (bottom-up step).
pub fn node_facts(plan: &LogicalPlan, children: &[NodeFacts]) -> NodeFacts {
    match plan {
        LogicalPlan::UnresolvedRelation { .. } => NodeFacts::default(),
        LogicalPlan::Scan {
            relation,
            output,
            filters,
        } => {
            let mut f = NodeFacts::default();
            let schema = relation.schema();
            let stats = relation.column_statistics();
            for c in output {
                let mut af = AttrFacts::unknown(c.nullable);
                if let Some(stats) = &stats {
                    if let Ok(i) = schema.index_of(&c.name) {
                        // Partial statistics (e.g. from a partially
                        // evicted cache) describe a subset of the rows:
                        // they prove nothing about nullability, domains,
                        // or emptiness, so they must not seed facts.
                        if let Some(s) = stats.get(i).filter(|s| !s.partial) {
                            if s.null_count == Some(0) {
                                af.nullable = false;
                            }
                            match (&s.min, &s.max) {
                                (Some(lo), Some(hi)) => {
                                    af.domain = if s.null_count == Some(0)
                                        && vcmp(lo, hi) == Some(Ordering::Equal)
                                    {
                                        Domain::Constant(lo.clone())
                                    } else {
                                        Domain::Interval {
                                            min: Some(lo.clone()),
                                            max: Some(hi.clone()),
                                        }
                                    };
                                }
                                _ => {
                                    // No non-null values at all.
                                    if s.row_count.is_some() && s.row_count == s.null_count {
                                        af.domain = Domain::Finite(vec![]);
                                    }
                                }
                            }
                            if s.row_count == Some(0) {
                                f.always_empty = true;
                            }
                        }
                    }
                }
                f.attrs.insert(c.id, af);
            }
            for conj in filters.iter().flat_map(split_conjuncts_ref) {
                apply_conjunct(&mut f, &conj);
            }
            f
        }
        LogicalPlan::External { output, .. } => {
            let mut f = NodeFacts::default();
            for c in output {
                f.attrs.insert(c.id, AttrFacts::unknown(c.nullable));
            }
            f
        }
        LogicalPlan::LocalRelation { output, rows } => {
            let mut f = NodeFacts {
                always_empty: rows.is_empty(),
                ..Default::default()
            };
            for (i, c) in output.iter().enumerate() {
                let mut af = AttrFacts::unknown(c.nullable);
                if !rows.is_empty() && rows.len() <= LOCAL_STATS_CAP {
                    let mut any_null = false;
                    let mut min: Option<Value> = None;
                    let mut max: Option<Value> = None;
                    for r in rows.iter() {
                        let v = r.get(i);
                        if v.is_null() {
                            any_null = true;
                            continue;
                        }
                        match &min {
                            Some(m) if vcmp(v, m) != Some(Ordering::Less) => {}
                            _ => min = Some(v.clone()),
                        }
                        match &max {
                            Some(m) if vcmp(v, m) != Some(Ordering::Greater) => {}
                            _ => max = Some(v.clone()),
                        }
                    }
                    af.nullable = any_null;
                    if let (Some(lo), Some(hi)) = (min, max) {
                        af.domain = if !any_null && vcmp(&lo, &hi) == Some(Ordering::Equal) {
                            Domain::Constant(lo)
                        } else {
                            Domain::Interval {
                                min: Some(lo),
                                max: Some(hi),
                            }
                        };
                    }
                }
                f.attrs.insert(c.id, af);
            }
            f
        }
        LogicalPlan::Project { exprs, .. } => {
            let input = &children[0];
            let mut f = NodeFacts {
                always_empty: input.always_empty,
                ..Default::default()
            };
            let mut passthrough: Vec<ExprId> = Vec::new();
            for e in exprs {
                if let Ok(attr) = e.to_attribute() {
                    f.attrs.insert(attr.id, expr_facts(e, input));
                    if matches!(e, Expr::Column(_)) {
                        passthrough.push(attr.id);
                    }
                }
            }
            f.constraints = input
                .constraints
                .iter()
                .filter(|c| c.references().iter().all(|r| passthrough.contains(&r.id)))
                .cloned()
                .collect();
            f
        }
        LogicalPlan::Filter { predicate, .. } => {
            let mut f = children[0].clone();
            for conj in split_conjuncts_ref(predicate) {
                apply_conjunct(&mut f, &conj);
                if !f.constraints.contains(&conj) {
                    f.constraints.push(conj);
                }
            }
            f
        }
        LogicalPlan::Join {
            join_type,
            condition,
            left,
            right,
        } => {
            let (lf, rf) = (&children[0], &children[1]);
            let mut f = NodeFacts::default();
            f.absorb(lf);
            f.absorb(rf);
            // Null-extension: flip nullability of the outer side(s); their
            // domains stay valid (domains describe non-null values only).
            let nullify = |f: &mut NodeFacts, side: &LogicalPlan| {
                for c in side.output() {
                    if let Some(af) = f.attrs.get_mut(&c.id) {
                        af.nullable = true;
                    }
                }
            };
            match join_type {
                JoinType::Inner => {
                    f.constraints.extend(lf.constraints.iter().cloned());
                    f.constraints.extend(rf.constraints.iter().cloned());
                    for conj in condition.iter().flat_map(split_conjuncts_ref) {
                        apply_conjunct(&mut f, &conj);
                        if !f.constraints.contains(&conj) {
                            f.constraints.push(conj);
                        }
                    }
                    f.always_empty = lf.always_empty || rf.always_empty;
                }
                JoinType::Cross => {
                    f.constraints.extend(lf.constraints.iter().cloned());
                    f.constraints.extend(rf.constraints.iter().cloned());
                    f.always_empty = lf.always_empty || rf.always_empty;
                }
                JoinType::Left => {
                    f.constraints.extend(lf.constraints.iter().cloned());
                    nullify(&mut f, right);
                    f.always_empty = lf.always_empty;
                }
                JoinType::Right => {
                    f.constraints.extend(rf.constraints.iter().cloned());
                    nullify(&mut f, left);
                    f.always_empty = rf.always_empty;
                }
                JoinType::Full => {
                    nullify(&mut f, left);
                    nullify(&mut f, right);
                    f.always_empty = lf.always_empty && rf.always_empty;
                }
            }
            f
        }
        LogicalPlan::Aggregate {
            groupings,
            aggregates,
            ..
        } => {
            let input = &children[0];
            let mut f = NodeFacts::default();
            let global = groupings.is_empty();
            // A global aggregate over empty input still yields one row.
            f.always_empty = input.always_empty && !global;
            let mut passthrough: Vec<ExprId> = Vec::new();
            for e in aggregates {
                if let Ok(attr) = e.to_attribute() {
                    f.attrs.insert(attr.id, agg_expr_facts(e, input, global));
                    if matches!(e, Expr::Column(_)) {
                        passthrough.push(attr.id);
                    }
                }
            }
            f.constraints = input
                .constraints
                .iter()
                .filter(|c| c.references().iter().all(|r| passthrough.contains(&r.id)))
                .cloned()
                .collect();
            f
        }
        LogicalPlan::Sort { .. } | LogicalPlan::Distinct { .. } | LogicalPlan::Sample { .. } => {
            children[0].clone()
        }
        LogicalPlan::Window { window_exprs, .. } => {
            // Every input column passes through untouched, so the input's
            // facts and constraints stay valid; the appended window
            // columns get fresh unknown facts.
            let mut f = children[0].clone();
            for e in window_exprs {
                if let Ok(attr) = e.to_attribute() {
                    f.attrs.insert(attr.id, AttrFacts::unknown(attr.nullable));
                }
            }
            f
        }
        LogicalPlan::Limit { n, .. } => {
            let mut f = children[0].clone();
            if *n == 0 {
                f.always_empty = true;
            }
            f
        }
        LogicalPlan::SubqueryAlias { .. } => children[0].clone(),
        LogicalPlan::Union { inputs } => {
            let mut f = NodeFacts {
                always_empty: !children.is_empty() && children.iter().all(|c| c.always_empty),
                ..Default::default()
            };
            if let Some(first) = inputs.first() {
                let first_out = first.output();
                let outs: Vec<Vec<ColumnRef>> = inputs.iter().map(|i| i.output()).collect();
                for (pos, c) in first_out.iter().enumerate() {
                    let mut merged: Option<AttrFacts> = None;
                    for (child, out) in children.iter().zip(&outs) {
                        let af = out
                            .get(pos)
                            .map(|cc| {
                                child
                                    .attr(cc.id)
                                    .cloned()
                                    .unwrap_or_else(|| AttrFacts::unknown(cc.nullable))
                            })
                            .unwrap_or_else(|| AttrFacts::unknown(true));
                        merged = Some(match merged {
                            None => af,
                            Some(m) => AttrFacts {
                                nullable: m.nullable || af.nullable,
                                domain: m.domain.join(&af.domain),
                            },
                        });
                    }
                    f.attrs.insert(
                        c.id,
                        merged.unwrap_or_else(|| AttrFacts::unknown(c.nullable)),
                    );
                }
            }
            f
        }
    }
}

/// `split_conjuncts` over a borrowed expression.
fn split_conjuncts_ref(e: &Expr) -> Vec<Expr> {
    crate::optimizer::split_conjuncts(e)
}

// ---------------------------------------------------------------------
// Expression facts
// ---------------------------------------------------------------------

/// Facts for an expression evaluated against `input` facts.
pub fn expr_facts(e: &Expr, input: &NodeFacts) -> AttrFacts {
    // Constant subexpressions (including analyzer-inserted casts of
    // literals) evaluate at analysis time.
    if e.is_resolved() && e.foldable() {
        if let Ok(v) = interpreter::eval(e, &Row::empty()) {
            return if v.is_null() {
                AttrFacts {
                    nullable: true,
                    domain: Domain::Any,
                }
            } else {
                AttrFacts {
                    nullable: false,
                    domain: Domain::Constant(v),
                }
            };
        }
    }
    match e {
        Expr::Literal(v) => {
            if v.is_null() {
                AttrFacts {
                    nullable: true,
                    domain: Domain::Any,
                }
            } else {
                AttrFacts {
                    nullable: false,
                    domain: Domain::Constant(v.clone()),
                }
            }
        }
        Expr::Column(c) => input
            .attr(c.id)
            .cloned()
            .unwrap_or_else(|| AttrFacts::unknown(c.nullable)),
        Expr::Alias { child, .. } => expr_facts(child, input),
        Expr::Cast { expr, dtype } => {
            let inner = expr_facts(expr, input);
            let src = expr.data_type().unwrap_or(DataType::Null);
            let nullable = inner.nullable || cast_may_yield_null(&src, dtype);
            let domain = if lossless_cast(&src, dtype) {
                cast_domain(&inner.domain, dtype)
            } else {
                Domain::Any
            };
            AttrFacts { nullable, domain }
        }
        Expr::BinaryOp { left, op, right } => {
            let lf = expr_facts(left, input);
            let rf = expr_facts(right, input);
            let mut nullable = lf.nullable || rf.nullable;
            if matches!(op, BinaryOperator::Div | BinaryOperator::Mod) {
                // Division/modulo by zero yields NULL in this engine.
                nullable |= rf.domain.may_contain(&Value::Long(0))
                    || rf.domain.may_contain(&Value::Double(0.0));
            }
            AttrFacts {
                nullable,
                domain: Domain::Any,
            }
        }
        Expr::Negate(inner) | Expr::UnscaledValue(inner) => AttrFacts {
            nullable: expr_facts(inner, input).nullable,
            domain: Domain::Any,
        },
        Expr::Not(inner) => AttrFacts {
            nullable: expr_facts(inner, input).nullable,
            domain: Domain::Any,
        },
        Expr::IsNull(_) | Expr::IsNotNull(_) => AttrFacts {
            nullable: false,
            domain: Domain::Any,
        },
        _ => AttrFacts::unknown(e.nullable()),
    }
}

/// Facts for an `Aggregate` output expression (`global` = no groupings,
/// where an empty input makes every aggregate NULL except COUNT).
fn agg_expr_facts(e: &Expr, input: &NodeFacts, global: bool) -> AttrFacts {
    match e {
        Expr::Alias { child, .. } => agg_expr_facts(child, input, global),
        Expr::Agg { func, arg, .. } => match func {
            AggFunc::Count => AttrFacts {
                nullable: false,
                domain: Domain::Interval {
                    min: Some(Value::Long(0)),
                    max: None,
                },
            },
            AggFunc::Min | AggFunc::Max => {
                let af = arg
                    .as_ref()
                    .map(|a| expr_facts(a, input))
                    .unwrap_or_else(|| AttrFacts::unknown(true));
                AttrFacts {
                    nullable: af.nullable || global,
                    domain: af.domain,
                }
            }
            AggFunc::Sum | AggFunc::Avg => {
                let af = arg
                    .as_ref()
                    .map(|a| expr_facts(a, input))
                    .unwrap_or_else(|| AttrFacts::unknown(true));
                AttrFacts {
                    nullable: af.nullable || global,
                    domain: Domain::Any,
                }
            }
        },
        other => expr_facts(other, input),
    }
}

/// Can `CAST(src AS dst)` produce NULL from a non-null input?
pub fn cast_may_yield_null(src: &DataType, dst: &DataType) -> bool {
    src == &DataType::String && dst != &DataType::String
}

/// Value-preserving casts: every source value maps to a distinct target
/// value and back ([`Domain`]s survive them; comparisons can unwrap them).
pub fn lossless_cast(src: &DataType, dst: &DataType) -> bool {
    use DataType::*;
    src == dst || matches!((src, dst), (Int, Long) | (Int, Double) | (Float, Double))
}

/// A numeric cast that can silently lose precision or truncate (the lint
/// engine's "lossy numeric cast" class). Analyzer-inserted widenings
/// (Int→Long, Int/Long→Double, Float→Double) are deliberately excluded.
pub fn lossy_numeric_cast(src: &DataType, dst: &DataType) -> bool {
    use DataType::*;
    matches!(
        (src, dst),
        (Long, Int)
            | (Double, Int)
            | (Double, Long)
            | (Double, Float)
            | (Float, Int)
            | (Float, Long)
            | (Decimal(_, _), Int)
            | (Decimal(_, _), Long)
    )
}

fn cast_value(v: &Value, dtype: &DataType) -> Option<Value> {
    interpreter::eval(
        &Expr::Cast {
            expr: Box::new(Expr::Literal(v.clone())),
            dtype: dtype.clone(),
        },
        &Row::empty(),
    )
    .ok()
    .filter(|v| !v.is_null())
}

fn cast_domain(d: &Domain, dtype: &DataType) -> Domain {
    let map = |v: &Value| cast_value(v, dtype);
    match d {
        Domain::Any => Domain::Any,
        Domain::Constant(v) => map(v).map(Domain::Constant).unwrap_or(Domain::Any),
        Domain::Interval { min, max } => {
            let lo = min.as_ref().map(&map);
            let hi = max.as_ref().map(&map);
            match (lo, hi) {
                (Some(None), _) | (_, Some(None)) => Domain::Any,
                (lo, hi) => Domain::Interval {
                    min: lo.flatten(),
                    max: hi.flatten(),
                },
            }
        }
        Domain::Finite(vs) => {
            let mapped: Option<Vec<Value>> = vs.iter().map(map).collect();
            mapped.map(Domain::Finite).unwrap_or(Domain::Any)
        }
    }
}

// ---------------------------------------------------------------------
// Conjunct application (filter / join-condition refinement)
// ---------------------------------------------------------------------

/// Refine `f` with the knowledge that `conjunct` evaluates TRUE for every
/// surviving row. Sets `always_empty` when the conjunct contradicts the
/// already-known domains.
pub fn apply_conjunct(f: &mut NodeFacts, conjunct: &Expr) {
    // Any column on a strict path of a null-rejecting conjunct is
    // non-null in the rows that survive.
    for c in null_rejected_columns(conjunct) {
        f.set_non_null(c.id, c.nullable);
    }
    match conjunct {
        Expr::BinaryOp { left, op, right } if op.is_comparison() => match (&**left, &**right) {
            (Expr::Column(c), rhs) if rhs.is_resolved() && rhs.foldable() => {
                if let Ok(v) = interpreter::eval(rhs, &Row::empty()) {
                    refine_column(f, c, *op, &v);
                }
            }
            (lhs, Expr::Column(c)) if lhs.is_resolved() && lhs.foldable() => {
                if let Ok(v) = interpreter::eval(lhs, &Row::empty()) {
                    refine_column(f, c, flip(*op), &v);
                }
            }
            (Expr::Column(a), Expr::Column(b)) if *op == BinaryOperator::Eq => {
                let da = f.attr(a.id).map(|x| x.domain.clone()).unwrap_or_default();
                let db = f.attr(b.id).map(|x| x.domain.clone()).unwrap_or_default();
                match da.intersect(&db) {
                    Some(d) => {
                        if let Some(af) = f.attrs.get_mut(&a.id) {
                            af.domain = d.clone();
                        }
                        if let Some(bf) = f.attrs.get_mut(&b.id) {
                            bf.domain = d;
                        }
                    }
                    None => f.always_empty = true,
                }
            }
            _ => {}
        },
        Expr::InList {
            expr,
            list,
            negated: false,
        } => {
            if let Expr::Column(c) = &**expr {
                let vals: Option<Vec<Value>> = list
                    .iter()
                    .map(|e| match e {
                        Expr::Literal(v) if !v.is_null() => Some(v.clone()),
                        _ => None,
                    })
                    .collect();
                if let Some(vals) = vals {
                    if vals.len() <= FINITE_CAP {
                        intersect_column(f, c, Domain::Finite(vals));
                    }
                }
            }
        }
        Expr::IsNull(inner) => {
            if let Expr::Column(c) = &**inner {
                if f.is_non_null(c) {
                    f.always_empty = true;
                }
            }
        }
        // Bare boolean column used as a predicate.
        Expr::Column(c) if c.dtype == DataType::Boolean => {
            intersect_column(f, c, Domain::Constant(Value::Boolean(true)));
        }
        Expr::Not(inner) => {
            if let Expr::Column(c) = &**inner {
                if c.dtype == DataType::Boolean {
                    intersect_column(f, c, Domain::Constant(Value::Boolean(false)));
                }
            }
        }
        _ => {}
    }
}

fn flip(op: BinaryOperator) -> BinaryOperator {
    match op {
        BinaryOperator::Lt => BinaryOperator::Gt,
        BinaryOperator::LtEq => BinaryOperator::GtEq,
        BinaryOperator::Gt => BinaryOperator::Lt,
        BinaryOperator::GtEq => BinaryOperator::LtEq,
        other => other,
    }
}

fn refine_column(f: &mut NodeFacts, c: &ColumnRef, op: BinaryOperator, v: &Value) {
    if v.is_null() {
        return;
    }
    let refinement = match op {
        BinaryOperator::Eq => Some(Domain::Constant(v.clone())),
        BinaryOperator::Lt | BinaryOperator::LtEq => {
            // Closed-interval over-approximation of `< v` is sound.
            Some(Domain::Interval {
                min: None,
                max: Some(v.clone()),
            })
        }
        BinaryOperator::Gt | BinaryOperator::GtEq => Some(Domain::Interval {
            min: Some(v.clone()),
            max: None,
        }),
        BinaryOperator::NotEq => {
            let cur = f.attr(c.id).map(|x| x.domain.clone()).unwrap_or_default();
            match cur {
                Domain::Constant(cv) if vcmp(&cv, v) == Some(Ordering::Equal) => {
                    f.always_empty = true;
                }
                Domain::Finite(vs) => {
                    let kept: Vec<Value> = vs
                        .into_iter()
                        .filter(|x| vcmp(x, v) != Some(Ordering::Equal))
                        .collect();
                    if kept.is_empty() {
                        f.always_empty = true;
                    } else if let Some(af) = f.attrs.get_mut(&c.id) {
                        af.domain = Domain::Finite(kept);
                    }
                }
                _ => {}
            }
            None
        }
        _ => None,
    };
    if let Some(d) = refinement {
        intersect_column(f, c, d);
    }
}

fn intersect_column(f: &mut NodeFacts, c: &ColumnRef, d: Domain) {
    let cur = f.attr(c.id).map(|x| x.domain.clone()).unwrap_or_default();
    match cur.intersect(&d) {
        Some(nd) => {
            f.attrs
                .entry(c.id)
                .or_insert_with(|| AttrFacts::unknown(c.nullable))
                .domain = nd;
        }
        None => f.always_empty = true,
    }
}

/// Columns that, when NULL, prevent `e` from evaluating TRUE (so a filter
/// on `e` implies `IS NOT NULL` on each of them).
pub fn null_rejected_columns(e: &Expr) -> Vec<ColumnRef> {
    match e {
        Expr::Column(c) if c.dtype == DataType::Boolean => vec![c.clone()],
        Expr::BinaryOp {
            left,
            op: BinaryOperator::And,
            right,
        } => {
            let mut out = null_rejected_columns(left);
            for c in null_rejected_columns(right) {
                if !out.iter().any(|o| o.id == c.id) {
                    out.push(c);
                }
            }
            out
        }
        Expr::BinaryOp {
            left,
            op: BinaryOperator::Or,
            right,
        } => {
            let l = null_rejected_columns(left);
            let r = null_rejected_columns(right);
            l.into_iter()
                .filter(|c| r.iter().any(|o| o.id == c.id))
                .collect()
        }
        Expr::BinaryOp { left, op, right } if op.is_comparison() || op.is_arithmetic() => {
            let mut out = strict_columns(left);
            for c in strict_columns(right) {
                if !out.iter().any(|o| o.id == c.id) {
                    out.push(c);
                }
            }
            out
        }
        Expr::IsNotNull(inner) => strict_columns(inner),
        Expr::Not(inner) => match &**inner {
            Expr::IsNull(x) => strict_columns(x),
            Expr::BinaryOp { op, .. } if op.is_comparison() => null_rejected_columns(inner),
            Expr::InList { .. } | Expr::Like { .. } => null_rejected_columns(inner),
            _ => vec![],
        },
        Expr::InList { expr, .. } => strict_columns(expr),
        Expr::Like { expr, pattern, .. } => {
            let mut out = strict_columns(expr);
            for c in strict_columns(pattern) {
                if !out.iter().any(|o| o.id == c.id) {
                    out.push(c);
                }
            }
            out
        }
        _ => vec![],
    }
}

/// Columns reachable through strict (NULL-in ⇒ NULL-out) nodes only.
fn strict_columns(e: &Expr) -> Vec<ColumnRef> {
    match e {
        Expr::Column(c) => vec![c.clone()],
        Expr::Alias { child, .. }
        | Expr::Cast { expr: child, .. }
        | Expr::Negate(child)
        | Expr::UnscaledValue(child) => strict_columns(child),
        Expr::BinaryOp { left, op, right } if op.is_arithmetic() => {
            let mut out = strict_columns(left);
            for c in strict_columns(right) {
                if !out.iter().any(|o| o.id == c.id) {
                    out.push(c);
                }
            }
            out
        }
        _ => vec![],
    }
}

// ---------------------------------------------------------------------
// Static predicate decisions
// ---------------------------------------------------------------------

/// Outcome of deciding a predicate against a node's facts.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Determination {
    /// Evaluates TRUE for every row.
    AlwaysTrue,
    /// Evaluates FALSE (not NULL) for every row.
    AlwaysFalse,
    /// Never evaluates TRUE (FALSE or NULL for every row).
    NeverTrue,
    /// Not statically decidable.
    Unknown,
}

impl Determination {
    /// The predicate can never be TRUE — a filter on it yields no rows.
    pub fn never_true(self) -> bool {
        matches!(self, Determination::AlwaysFalse | Determination::NeverTrue)
    }
}

/// Decide `pred` against `facts` (the facts of the node the predicate's
/// input rows come from).
pub fn determine(pred: &Expr, facts: &NodeFacts) -> Determination {
    if facts.constraints.contains(pred) {
        return Determination::AlwaysTrue;
    }
    if pred.is_resolved() && pred.foldable() {
        return match interpreter::eval(pred, &Row::empty()) {
            Ok(Value::Boolean(true)) => Determination::AlwaysTrue,
            Ok(Value::Boolean(false)) => Determination::AlwaysFalse,
            Ok(Value::Null) => Determination::NeverTrue,
            _ => Determination::Unknown,
        };
    }
    match pred {
        Expr::Literal(Value::Boolean(true)) => Determination::AlwaysTrue,
        Expr::Literal(Value::Boolean(false)) => Determination::AlwaysFalse,
        Expr::Literal(Value::Null) => Determination::NeverTrue,
        Expr::BinaryOp {
            left,
            op: BinaryOperator::And,
            right,
        } => {
            let (l, r) = (determine(left, facts), determine(right, facts));
            match (l, r) {
                (Determination::AlwaysTrue, Determination::AlwaysTrue) => Determination::AlwaysTrue,
                // FALSE AND x = FALSE, even for x = NULL.
                (Determination::AlwaysFalse, _) | (_, Determination::AlwaysFalse) => {
                    Determination::AlwaysFalse
                }
                (Determination::NeverTrue, _) | (_, Determination::NeverTrue) => {
                    Determination::NeverTrue
                }
                _ => Determination::Unknown,
            }
        }
        Expr::BinaryOp {
            left,
            op: BinaryOperator::Or,
            right,
        } => {
            let (l, r) = (determine(left, facts), determine(right, facts));
            match (l, r) {
                (Determination::AlwaysTrue, _) | (_, Determination::AlwaysTrue) => {
                    Determination::AlwaysTrue
                }
                (Determination::AlwaysFalse, Determination::AlwaysFalse) => {
                    Determination::AlwaysFalse
                }
                (l, r) if l.never_true() && r.never_true() => Determination::NeverTrue,
                _ => Determination::Unknown,
            }
        }
        Expr::Not(inner) => match determine(inner, facts) {
            Determination::AlwaysTrue => Determination::AlwaysFalse,
            Determination::AlwaysFalse => Determination::AlwaysTrue,
            _ => Determination::Unknown,
        },
        Expr::IsNotNull(inner) => {
            if !expr_facts(inner, facts).nullable {
                Determination::AlwaysTrue
            } else {
                Determination::Unknown
            }
        }
        Expr::IsNull(inner) => {
            if !expr_facts(inner, facts).nullable {
                Determination::AlwaysFalse
            } else {
                Determination::Unknown
            }
        }
        Expr::BinaryOp { left, op, right } if op.is_comparison() => {
            let lf = expr_facts(left, facts);
            let rf = expr_facts(right, facts);
            match compare_domains(&lf.domain, *op, &rf.domain) {
                Some(true) => {
                    if !lf.nullable && !rf.nullable {
                        Determination::AlwaysTrue
                    } else {
                        Determination::Unknown
                    }
                }
                Some(false) => {
                    if !lf.nullable && !rf.nullable {
                        Determination::AlwaysFalse
                    } else {
                        Determination::NeverTrue
                    }
                }
                None => Determination::Unknown,
            }
        }
        Expr::Column(c) if c.dtype == DataType::Boolean => {
            let af = expr_facts(pred, facts);
            match af.domain.as_constant() {
                Some(Value::Boolean(true)) if !af.nullable => Determination::AlwaysTrue,
                Some(Value::Boolean(false)) if !af.nullable => Determination::AlwaysFalse,
                Some(Value::Boolean(false)) => Determination::NeverTrue,
                _ => Determination::Unknown,
            }
        }
        _ => Determination::Unknown,
    }
}

/// Does `a op b` hold for every (`Some(true)`) / no (`Some(false)`) pair
/// of non-null values drawn from the two domains?
pub fn compare_domains(a: &Domain, op: BinaryOperator, b: &Domain) -> Option<bool> {
    let (a0, a1) = a.bounds();
    let (b0, b1) = b.bounds();
    let lt = |x: &Option<Value>, y: &Option<Value>| match (x, y) {
        (Some(x), Some(y)) => vcmp(x, y) == Some(Ordering::Less),
        _ => false,
    };
    let le = |x: &Option<Value>, y: &Option<Value>| match (x, y) {
        (Some(x), Some(y)) => matches!(vcmp(x, y), Some(Ordering::Less | Ordering::Equal)),
        _ => false,
    };
    let gt = |x: &Option<Value>, y: &Option<Value>| match (x, y) {
        (Some(x), Some(y)) => vcmp(x, y) == Some(Ordering::Greater),
        _ => false,
    };
    let ge = |x: &Option<Value>, y: &Option<Value>| match (x, y) {
        (Some(x), Some(y)) => matches!(vcmp(x, y), Some(Ordering::Greater | Ordering::Equal)),
        _ => false,
    };
    let eq_always = match (a.as_constant(), b.as_constant()) {
        (Some(x), Some(y)) => vcmp(x, y) == Some(Ordering::Equal),
        _ => false,
    };
    let eq_never = {
        let disjoint_bounds = lt(&a1, &b0) || gt(&a0, &b1);
        let finite_disjoint = match (a, b) {
            (Domain::Finite(_) | Domain::Constant(_), _) => {
                let (vals, other) = (a, b);
                finite_values(vals)
                    .map(|vs| vs.iter().all(|v| !other.may_contain(v)))
                    .unwrap_or(false)
            }
            (_, Domain::Finite(_) | Domain::Constant(_)) => finite_values(b)
                .map(|vs| vs.iter().all(|v| !a.may_contain(v)))
                .unwrap_or(false),
            _ => false,
        };
        disjoint_bounds || finite_disjoint
    };
    match op {
        BinaryOperator::Eq => {
            if eq_always {
                Some(true)
            } else if eq_never {
                Some(false)
            } else {
                None
            }
        }
        BinaryOperator::NotEq => {
            if eq_never {
                Some(true)
            } else if eq_always {
                Some(false)
            } else {
                None
            }
        }
        BinaryOperator::Lt => {
            if lt(&a1, &b0) {
                Some(true)
            } else if ge(&a0, &b1) {
                Some(false)
            } else {
                None
            }
        }
        BinaryOperator::LtEq => {
            if le(&a1, &b0) {
                Some(true)
            } else if gt(&a0, &b1) {
                Some(false)
            } else {
                None
            }
        }
        BinaryOperator::Gt => {
            if gt(&a0, &b1) {
                Some(true)
            } else if le(&a1, &b0) {
                Some(false)
            } else {
                None
            }
        }
        BinaryOperator::GtEq => {
            if ge(&a0, &b1) {
                Some(true)
            } else if lt(&a1, &b0) {
                Some(false)
            } else {
                None
            }
        }
        _ => None,
    }
}

fn finite_values(d: &Domain) -> Option<&[Value]> {
    match d {
        Domain::Finite(vs) => Some(vs),
        Domain::Constant(v) => Some(std::slice::from_ref(v)),
        _ => None,
    }
}

// ---------------------------------------------------------------------
// Whole-plan analysis with provenance (lint substrate)
// ---------------------------------------------------------------------

/// One analyzed plan node: pre-order id, display name, its facts, and the
/// ids of its children.
#[derive(Debug, Clone)]
pub struct AnalyzedNode {
    /// Pre-order id (root = 0) — stable provenance for diagnostics.
    pub id: usize,
    /// Operator display name (`Filter`, `Join[INNER]`, …).
    pub op: String,
    /// Facts for the node's output.
    pub facts: NodeFacts,
    /// Pre-order ids of the node's children, in order.
    pub children: Vec<usize>,
}

/// Facts for every node of a plan, indexed by pre-order id.
#[derive(Debug, Clone, Default)]
pub struct ConstraintAnalysis {
    /// Nodes in pre-order (`nodes[i].id == i`).
    pub nodes: Vec<AnalyzedNode>,
}

impl ConstraintAnalysis {
    /// Merged facts of node `id`'s children (the frame its expressions
    /// evaluate against).
    pub fn input_facts(&self, id: usize) -> NodeFacts {
        let mut out = NodeFacts::default();
        for &c in &self.nodes[id].children {
            let f = &self.nodes[c].facts;
            out.constraints.extend(f.constraints.iter().cloned());
            out.always_empty |= f.always_empty;
            out.absorb(f);
        }
        out
    }
}

/// Analyze every node of `plan`, assigning pre-order ids.
pub fn analyze_plan(plan: &LogicalPlan) -> ConstraintAnalysis {
    fn go(plan: &LogicalPlan, analysis: &mut ConstraintAnalysis) -> (usize, NodeFacts) {
        let id = analysis.nodes.len();
        analysis.nodes.push(AnalyzedNode {
            id,
            op: op_name(plan),
            facts: NodeFacts::default(),
            children: vec![],
        });
        let mut child_ids = Vec::new();
        let mut child_facts = Vec::new();
        for c in plan.children() {
            let (cid, cf) = go(&c, analysis);
            child_ids.push(cid);
            child_facts.push(cf);
        }
        let f = node_facts(plan, &child_facts);
        analysis.nodes[id].children = child_ids;
        analysis.nodes[id].facts = f.clone();
        (id, f)
    }
    let mut analysis = ConstraintAnalysis::default();
    go(plan, &mut analysis);
    analysis
}

/// Display name for a plan node (diagnostic provenance).
pub fn op_name(plan: &LogicalPlan) -> String {
    match plan {
        LogicalPlan::UnresolvedRelation { name } => format!("UnresolvedRelation({name})"),
        LogicalPlan::Scan { relation, .. } => format!("Scan({})", relation.name()),
        LogicalPlan::External { .. } => "External".into(),
        LogicalPlan::LocalRelation { rows, .. } => {
            if rows.is_empty() {
                "LocalRelation(empty)".into()
            } else {
                "LocalRelation".into()
            }
        }
        LogicalPlan::Project { .. } => "Project".into(),
        LogicalPlan::Filter { .. } => "Filter".into(),
        LogicalPlan::Join { join_type, .. } => format!("Join[{}]", join_type.keyword()),
        LogicalPlan::Aggregate { .. } => "Aggregate".into(),
        LogicalPlan::Sort { .. } => "Sort".into(),
        LogicalPlan::Window { .. } => "Window".into(),
        LogicalPlan::Limit { n, .. } => format!("Limit({n})"),
        LogicalPlan::Union { .. } => "Union".into(),
        LogicalPlan::Distinct { .. } => "Distinct".into(),
        LogicalPlan::SubqueryAlias { alias, .. } => format!("SubqueryAlias({alias})"),
        LogicalPlan::Sample { .. } => "Sample".into(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::expr::builders::{col, lit};
    use std::sync::Arc;

    fn leaf(cols: &[(&str, DataType, bool)]) -> (LogicalPlan, Vec<ColumnRef>) {
        let output: Vec<ColumnRef> = cols
            .iter()
            .map(|(n, t, nl)| ColumnRef::new(*n, t.clone(), *nl))
            .collect();
        (
            LogicalPlan::LocalRelation {
                output: output.clone(),
                rows: Arc::new(vec![
                    Row::new(vec![Value::Long(1), Value::Long(2)]),
                    Row::new(vec![Value::Long(100), Value::Long(200)]),
                ]),
            },
            output,
        )
    }

    fn two_col_leaf() -> (LogicalPlan, ColumnRef, ColumnRef) {
        let (p, out) = leaf(&[("a", DataType::Long, true), ("b", DataType::Long, false)]);
        (p, out[0].clone(), out[1].clone())
    }

    #[test]
    fn filter_refines_nullability_and_domain() {
        let (p, a, _) = two_col_leaf();
        let plan = p.filter(Expr::Column(a.clone()).gt(lit(5i64)));
        let f = facts(&plan);
        assert!(f.is_non_null(&a), "a > 5 rejects NULL a");
        let af = f.attr(a.id).unwrap();
        // The local-relation seed bounds a to [1, 100]; the filter tightens
        // the lower bound.
        assert_eq!(
            af.domain,
            Domain::Interval {
                min: Some(Value::Long(5)),
                max: Some(Value::Long(100))
            }
        );
    }

    #[test]
    fn contradictory_filters_mark_empty() {
        let (p, a, _) = two_col_leaf();
        let plan = p.filter(
            Expr::Column(a.clone())
                .gt(lit(10i64))
                .and(Expr::Column(a.clone()).lt(lit(0i64))),
        );
        let f = facts(&plan);
        assert!(f.always_empty);
    }

    #[test]
    fn outer_join_flips_nullability_keeps_domains() {
        let (l, a, _) = two_col_leaf();
        let (r0, rout) = leaf(&[("k", DataType::Long, false), ("v", DataType::Long, false)]);
        let k = rout[0].clone();
        let r = r0.filter(Expr::Column(k.clone()).eq(lit(7i64)));
        let plan = l.join(
            r,
            JoinType::Left,
            Some(Expr::Column(a.clone()).eq(Expr::Column(k.clone()))),
        );
        let f = facts(&plan);
        let kf = f.attr(k.id).unwrap();
        assert!(kf.nullable, "left join null-extends the right side");
        assert_eq!(
            kf.domain,
            Domain::Constant(Value::Long(7)),
            "domain survives"
        );
        // Right-side constraints are dropped.
        assert!(f.constraints.is_empty());
    }

    #[test]
    fn inner_join_keys_become_non_null() {
        let (l, a, _) = two_col_leaf();
        let (r, rout) = leaf(&[("k", DataType::Long, true), ("v", DataType::Long, false)]);
        let k = rout[0].clone();
        let plan = l.join(
            r,
            JoinType::Inner,
            Some(Expr::Column(a.clone()).eq(Expr::Column(k.clone()))),
        );
        let f = facts(&plan);
        assert!(f.is_non_null(&a));
        assert!(f.is_non_null(&k));
    }

    #[test]
    fn determine_decides_domain_comparisons() {
        let (p, a, _) = two_col_leaf();
        let plan = p.filter(Expr::Column(a.clone()).gt(lit(10i64)));
        let f = facts(&plan);
        assert_eq!(
            determine(&Expr::Column(a.clone()).gt(lit(5i64)), &f),
            Determination::AlwaysTrue
        );
        assert_eq!(
            determine(&Expr::Column(a.clone()).lt(lit(5i64)), &f),
            Determination::AlwaysFalse
        );
        assert_eq!(
            determine(&Expr::IsNotNull(Box::new(Expr::Column(a.clone()))), &f),
            Determination::AlwaysTrue
        );
    }

    #[test]
    fn nullable_comparison_is_never_true_not_always_false() {
        let (p, a, _) = two_col_leaf();
        // a < 50 implies a is non-null with domain [1, 50], so in this
        // frame a > 60 is AlwaysFalse (a definite FALSE, never NULL)…
        let plan = p.filter(Expr::Column(a.clone()).lt(lit(50i64)));
        let f = facts(&plan);
        assert_eq!(
            determine(&Expr::Column(a.clone()).gt(lit(60i64)), &f),
            Determination::AlwaysFalse
        );
        // …but against a leaf whose data actually contains a NULL in `a`,
        // a > 200 is NeverTrue: it could evaluate to FALSE or to NULL.
        let a2 = ColumnRef::new("a", DataType::Long, true);
        let b2 = ColumnRef::new("b", DataType::Long, false);
        let p2 = LogicalPlan::LocalRelation {
            output: vec![a2.clone(), b2],
            rows: Arc::new(vec![
                Row::new(vec![Value::Null, Value::Long(2)]),
                Row::new(vec![Value::Long(100), Value::Long(200)]),
            ]),
        };
        let f2 = facts(&p2);
        assert!(f2.attr(a2.id).unwrap().nullable);
        let d = determine(&Expr::Column(a2.clone()).gt(lit(200i64)), &f2);
        assert_eq!(d, Determination::NeverTrue);
        assert!(d.never_true());
    }

    #[test]
    fn local_relation_stats_seed_domains() {
        let out = vec![ColumnRef::new("x", DataType::Long, true)];
        let x = out[0].clone();
        let plan = LogicalPlan::LocalRelation {
            output: out,
            rows: Arc::new(vec![
                Row::new(vec![Value::Long(3)]),
                Row::new(vec![Value::Long(9)]),
            ]),
        };
        let f = facts(&plan);
        let xf = f.attr(x.id).unwrap();
        assert!(!xf.nullable, "no NULLs observed");
        assert_eq!(
            xf.domain,
            Domain::Interval {
                min: Some(Value::Long(3)),
                max: Some(Value::Long(9))
            }
        );
    }

    #[test]
    fn union_joins_domains() {
        let mk = |v: i64| {
            let out = vec![ColumnRef::new("x", DataType::Long, false)];
            LogicalPlan::LocalRelation {
                output: out,
                rows: Arc::new(vec![Row::new(vec![Value::Long(v)])]),
            }
        };
        let u = mk(1).union(vec![mk(5)]);
        let first_id = u.output()[0].id;
        let f = facts(&u);
        let xf = f.attr(first_id).unwrap();
        assert!(!xf.nullable);
        assert_eq!(
            xf.domain,
            Domain::Interval {
                min: Some(Value::Long(1)),
                max: Some(Value::Long(5))
            }
        );
    }

    #[test]
    fn null_rejection_through_or_and_arithmetic() {
        let (_, a, b) = two_col_leaf();
        let both = Expr::Column(a.clone())
            .gt(lit(1i64))
            .or(Expr::Column(a.clone()).lt(lit(0i64)));
        let ids: Vec<ExprId> = null_rejected_columns(&both).iter().map(|c| c.id).collect();
        assert_eq!(ids, vec![a.id], "OR keeps columns rejected by both sides");
        let arith = Expr::Column(a.clone())
            .add(Expr::Column(b.clone()))
            .gt(lit(0i64));
        let mut ids: Vec<ExprId> = null_rejected_columns(&arith).iter().map(|c| c.id).collect();
        ids.sort_unstable();
        let mut want = vec![a.id, b.id];
        want.sort_unstable();
        assert_eq!(ids, want);
        let not_rejecting = Expr::IsNull(Box::new(Expr::Column(a.clone())));
        assert!(null_rejected_columns(&not_rejecting).is_empty());
    }

    #[test]
    fn global_aggregate_over_empty_is_not_empty() {
        let out = vec![ColumnRef::new("x", DataType::Long, false)];
        let x = out[0].clone();
        let empty = LogicalPlan::LocalRelation {
            output: out,
            rows: Arc::new(vec![]),
        };
        let global = empty.clone().aggregate(
            vec![],
            vec![crate::expr::builders::count(Expr::Column(x.clone())).alias("n")],
        );
        assert!(!facts(&global).always_empty);
        let grouped = empty.aggregate(
            vec![Expr::Column(x.clone())],
            vec![
                Expr::Column(x.clone()),
                crate::expr::builders::count(col("x")).alias("n"),
            ],
        );
        assert!(facts(&grouped).always_empty);
    }

    #[test]
    fn analyze_plan_assigns_preorder_ids() {
        let (p, a, _) = two_col_leaf();
        let plan = p.filter(Expr::Column(a).gt(lit(0i64))).limit(3);
        let analysis = analyze_plan(&plan);
        assert_eq!(analysis.nodes.len(), 3);
        assert_eq!(analysis.nodes[0].op, "Limit(3)");
        assert_eq!(analysis.nodes[1].op, "Filter");
        assert_eq!(analysis.nodes[2].op, "LocalRelation");
        assert_eq!(analysis.nodes[0].children, vec![1]);
        assert_eq!(analysis.nodes[1].children, vec![2]);
    }
}
