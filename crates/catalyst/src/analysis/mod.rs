//! Analysis (§4.3.1): turn an unresolved logical plan into a resolved,
//! type-checked one.
//!
//! The analyzer repeatedly applies resolution rules until a fixed point:
//!
//! * **ResolveRelations** — look up relations by name from the catalog
//!   (errors eagerly with the list of known tables);
//! * **ResolveReferences** — map named attributes to the unique-id'd
//!   output attributes of each operator's children, expanding `*` and
//!   falling back to struct-field access for dotted names;
//! * **ResolveFunctions** — match function calls to builtins, aggregates,
//!   or registered UDFs;
//! * **AliasUnnamed** — give every projection output a stable name/id;
//! * **TypeCoercion** — propagate and coerce types through expressions by
//!   inserting casts toward the tightest common type.
//!
//! After the fixed point, [`check_analysis`] runs sanity checks over the
//! tree (everything resolved, predicates boolean, aggregates well-formed)
//! — the "sanity checks after each batch" of §4.2. Analysis runs eagerly
//! when DataFrames are constructed (§3.4), so these errors surface as
//! soon as the user types an invalid line of code.

pub mod catalog;
pub mod constraints;
pub mod lint;

pub use catalog::{Catalog, FunctionRegistry, OverlayCatalog, SimpleCatalog};

use crate::error::{CatalystError, Result};
use crate::expr::{AggFunc, BinaryOperator, ColumnRef, Expr, ScalarFunc, SortOrder};
use crate::plan::LogicalPlan;
use crate::tree::{Transformed, TreeNode};
use crate::types::DataType;
use std::sync::Arc;

/// The analyzer: resolution + coercion rules over a catalog.
pub struct Analyzer {
    catalog: Arc<dyn Catalog>,
    functions: Arc<FunctionRegistry>,
}

impl Analyzer {
    /// Build an analyzer.
    pub fn new(catalog: Arc<dyn Catalog>, functions: Arc<FunctionRegistry>) -> Self {
        Analyzer { catalog, functions }
    }

    /// Resolve and validate `plan`.
    pub fn analyze(&self, plan: LogicalPlan) -> Result<LogicalPlan> {
        let mut plan = plan;
        for _ in 0..50 {
            let mut changed = false;
            plan = self.resolve_relations(plan, &mut changed)?;
            plan = resolve_references(plan, &self.functions, &mut changed)?;
            plan = alias_unnamed(plan, &mut changed);
            plan = coerce_types(plan, &mut changed)?;
            if !changed {
                break;
            }
        }
        check_analysis(&plan)?;
        // With plan validation on (debug builds / CATALYST_VALIDATE=1),
        // hold the analyzer to the same invariants the optimizer is held
        // to: a plan leaving analysis must pass every static check.
        if crate::validation::enabled() {
            let violations = crate::validation::PlanValidator::new().check_logical(&plan);
            if !violations.is_empty() {
                return Err(CatalystError::analysis(format!(
                    "analyzed plan failed integrity checks:\n{}",
                    crate::validation::render_violations(&violations)
                )));
            }
        }
        Ok(plan)
    }

    fn resolve_relations(&self, plan: LogicalPlan, changed: &mut bool) -> Result<LogicalPlan> {
        let mut err = None;
        let out = plan.transform_up(&mut |p| match p {
            LogicalPlan::UnresolvedRelation { name } => {
                match catalog::require_table(self.catalog.as_ref(), &name) {
                    Ok(resolved) => Transformed::yes(resolved.subquery_alias(name)),
                    Err(e) => {
                        err = Some(e);
                        Transformed::no(LogicalPlan::UnresolvedRelation { name })
                    }
                }
            }
            other => Transformed::no(other),
        });
        if let Some(e) = err {
            return Err(e);
        }
        *changed |= out.changed;
        Ok(out.data)
    }
}

/// Resolve attribute and function names bottom-up.
fn resolve_references(
    plan: LogicalPlan,
    functions: &FunctionRegistry,
    changed: &mut bool,
) -> Result<LogicalPlan> {
    let mut err: Option<CatalystError> = None;
    let out = plan.transform_up(&mut |p| {
        if err.is_some() {
            return Transformed::no(p);
        }
        let attrs: Vec<ColumnRef> = p.children().iter().flat_map(|c| c.output()).collect();

        // Expand wildcards in projections first.
        let (p, mut ch) = match p {
            LogicalPlan::Project { input, exprs }
                if exprs.iter().any(|e| matches!(e, Expr::Wildcard { .. }))
                    && !attrs.is_empty() =>
            {
                let mut out_exprs = Vec::with_capacity(exprs.len());
                for e in exprs {
                    match e {
                        Expr::Wildcard { qualifier } => {
                            for a in attrs.iter().filter(|a| match &qualifier {
                                Some(q) => a
                                    .qualifier
                                    .as_deref()
                                    .is_some_and(|mine| mine.eq_ignore_ascii_case(q)),
                                None => true,
                            }) {
                                out_exprs.push(Expr::Column(a.clone()));
                            }
                        }
                        other => out_exprs.push(other),
                    }
                }
                (
                    LogicalPlan::Project {
                        input,
                        exprs: out_exprs,
                    },
                    true,
                )
            }
            other => (other, false),
        };

        // Resolve names/functions in this node's expressions.
        let resolved = p.map_expressions(&mut |e| {
            e.transform_up(&mut |e| resolve_expr(e, &attrs, functions, &mut err))
        });
        ch |= resolved.changed;
        Transformed {
            data: resolved.data,
            changed: ch,
        }
    });
    if let Some(e) = err {
        return Err(e);
    }
    *changed |= out.changed;
    Ok(out.data)
}

fn resolve_expr(
    e: Expr,
    attrs: &[ColumnRef],
    functions: &FunctionRegistry,
    err: &mut Option<CatalystError>,
) -> Transformed<Expr> {
    match e {
        Expr::UnresolvedAttribute { qualifier, name } => {
            let matches: Vec<&ColumnRef> = attrs
                .iter()
                .filter(|a| a.matches(qualifier.as_deref(), &name))
                .collect();
            match matches.len() {
                1 => Transformed::yes(Expr::Column(matches[0].clone())),
                0 => {
                    // Dotted name that didn't match `table.column`: try
                    // `struct_column.field` (§5.1 path access).
                    if let Some(q) = &qualifier {
                        let base: Vec<&ColumnRef> =
                            attrs.iter().filter(|a| a.matches(None, q)).collect();
                        if base.len() == 1 && matches!(base[0].dtype, DataType::Struct(_)) {
                            return Transformed::yes(Expr::GetField {
                                expr: Box::new(Expr::Column(base[0].clone())),
                                name: Arc::from(name.as_str()),
                            });
                        }
                    }
                    // Leave unresolved: a later fixed-point iteration may
                    // succeed once relations resolve; check_analysis
                    // reports leftovers.
                    Transformed::no(Expr::UnresolvedAttribute { qualifier, name })
                }
                _ => {
                    *err = Some(CatalystError::analysis(format!(
                        "ambiguous reference '{}{}' matches {} columns",
                        qualifier.map(|q| format!("{q}.")).unwrap_or_default(),
                        name,
                        matches.len()
                    )));
                    Transformed::no(Expr::Literal(crate::value::Value::Null))
                }
            }
        }
        Expr::UnresolvedFunction {
            name,
            args,
            distinct,
        } => {
            let is_star = args.len() == 1 && matches!(args[0], Expr::Wildcard { .. });
            if let Some(func) = AggFunc::from_name(&name) {
                let arg = if is_star || args.is_empty() {
                    None
                } else {
                    Some(Box::new(args[0].clone()))
                };
                if func != AggFunc::Count && arg.is_none() {
                    *err = Some(CatalystError::analysis(format!(
                        "aggregate {name}() requires an argument"
                    )));
                    return Transformed::no(Expr::Literal(crate::value::Value::Null));
                }
                return Transformed::yes(Expr::Agg {
                    func,
                    arg,
                    distinct,
                });
            }
            if let Some(func) = ScalarFunc::from_name(&name) {
                return Transformed::yes(Expr::ScalarFn { func, args });
            }
            if let Some(udf) = functions.lookup(&name) {
                return Transformed::yes(Expr::Udf { udf, args });
            }
            *err = Some(CatalystError::analysis(format!(
                "undefined function '{name}'; registered UDFs: [{}]",
                functions.names().join(", ")
            )));
            Transformed::no(Expr::Literal(crate::value::Value::Null))
        }
        other => Transformed::no(other),
    }
}

/// Wrap unnamed projection/aggregate outputs in aliases so every output
/// attribute has a stable name and id.
fn alias_unnamed(plan: LogicalPlan, changed: &mut bool) -> LogicalPlan {
    fn needs_alias(e: &Expr) -> bool {
        !matches!(
            e,
            Expr::Column(_) | Expr::Alias { .. } | Expr::Wildcard { .. }
        )
    }
    fn alias_all(exprs: Vec<Expr>, ch: &mut bool) -> Vec<Expr> {
        exprs
            .into_iter()
            .map(|e| {
                if needs_alias(&e) {
                    *ch = true;
                    let name = e.auto_name();
                    e.alias(name)
                } else {
                    e
                }
            })
            .collect()
    }
    let out = plan.transform_up(&mut |p| match p {
        LogicalPlan::Project { input, exprs } => {
            let mut ch = false;
            let exprs = alias_all(exprs, &mut ch);
            let node = LogicalPlan::Project { input, exprs };
            if ch {
                Transformed::yes(node)
            } else {
                Transformed::no(node)
            }
        }
        LogicalPlan::Aggregate {
            input,
            groupings,
            aggregates,
        } => {
            let mut ch = false;
            let aggregates = alias_all(aggregates, &mut ch);
            let node = LogicalPlan::Aggregate {
                input,
                groupings,
                aggregates,
            };
            if ch {
                Transformed::yes(node)
            } else {
                Transformed::no(node)
            }
        }
        other => Transformed::no(other),
    });
    *changed |= out.changed;
    out.data
}

/// Insert casts so operand types agree (§4.3.1: "propagating and coercing
/// types through expressions").
fn coerce_types(plan: LogicalPlan, changed: &mut bool) -> Result<LogicalPlan> {
    let out = plan.transform_all_expressions(&mut |e| {
        if !e.is_resolved() {
            return Transformed::no(e);
        }
        coerce_expr(e)
    });
    *changed |= out.changed;
    Ok(out.data)
}

fn cast_if_needed(e: Expr, target: &DataType) -> (Expr, bool) {
    match e.data_type() {
        Ok(t) if &t == target => (e, false),
        Ok(DataType::Null) => (e, false), // NULL literals adapt at runtime
        Ok(_) => (e.cast(target.clone()), true),
        Err(_) => (e, false),
    }
}

fn coerce_expr(e: Expr) -> Transformed<Expr> {
    match e {
        Expr::BinaryOp { left, op, right } if op.is_arithmetic() || op.is_comparison() => {
            let (lt, rt) = match (left.data_type(), right.data_type()) {
                (Ok(l), Ok(r)) => (l, r),
                _ => return Transformed::no(Expr::BinaryOp { left, op, right }),
            };
            // Division always goes through Double (Hive semantics).
            if op == BinaryOperator::Div {
                let (l, lc) = cast_if_needed(*left, &DataType::Double);
                let (r, rc) = cast_if_needed(*right, &DataType::Double);
                let node = Expr::BinaryOp {
                    left: Box::new(l),
                    op,
                    right: Box::new(r),
                };
                return if lc || rc {
                    Transformed::yes(node)
                } else {
                    Transformed::no(node)
                };
            }
            if lt == rt || lt == DataType::Null || rt == DataType::Null {
                return Transformed::no(Expr::BinaryOp { left, op, right });
            }
            // Date/timestamp compared with a string: parse the string side
            // ('2015-01-01' style literals, as in the §5.3 query).
            if op.is_comparison() {
                let temporal = |t: &DataType| matches!(t, DataType::Date | DataType::Timestamp);
                if temporal(&lt) && rt == DataType::String {
                    let (r, _) = cast_if_needed(*right, &lt);
                    return Transformed::yes(Expr::BinaryOp {
                        left,
                        op,
                        right: Box::new(r),
                    });
                }
                if temporal(&rt) && lt == DataType::String {
                    let (l, _) = cast_if_needed(*left, &rt);
                    return Transformed::yes(Expr::BinaryOp {
                        left: Box::new(l),
                        op,
                        right,
                    });
                }
            }
            match DataType::tightest_common_type(&lt, &rt) {
                Some(common) => {
                    let (l, lc) = cast_if_needed(*left, &common);
                    let (r, rc) = cast_if_needed(*right, &common);
                    let node = Expr::BinaryOp {
                        left: Box::new(l),
                        op,
                        right: Box::new(r),
                    };
                    if lc || rc {
                        Transformed::yes(node)
                    } else {
                        Transformed::no(node)
                    }
                }
                None => Transformed::no(Expr::BinaryOp { left, op, right }),
            }
        }
        Expr::InList {
            expr,
            list,
            negated,
        } => {
            let base = match expr.data_type() {
                Ok(t) => t,
                Err(_) => {
                    return Transformed::no(Expr::InList {
                        expr,
                        list,
                        negated,
                    })
                }
            };
            let mut common = base.clone();
            for item in &list {
                if let Ok(t) = item.data_type() {
                    common = DataType::tightest_common_type(&common, &t).unwrap_or(common);
                }
            }
            let mut ch = false;
            let (e2, c0) = cast_if_needed(*expr, &common);
            ch |= c0;
            let list2: Vec<Expr> = list
                .into_iter()
                .map(|i| {
                    let (i2, c) = cast_if_needed(i, &common);
                    ch |= c;
                    i2
                })
                .collect();
            let node = Expr::InList {
                expr: Box::new(e2),
                list: list2,
                negated,
            };
            if ch {
                Transformed::yes(node)
            } else {
                Transformed::no(node)
            }
        }
        other => Transformed::no(other),
    }
}

/// Post-analysis sanity checks.
pub fn check_analysis(plan: &LogicalPlan) -> Result<()> {
    let mut problem: Option<CatalystError> = None;
    plan.for_each(&mut |p| {
        if problem.is_some() {
            return;
        }
        if let LogicalPlan::UnresolvedRelation { name } = p {
            problem = Some(CatalystError::analysis(format!(
                "unresolved table '{name}'"
            )));
            return;
        }
        let child_cols: Vec<String> = p
            .children()
            .iter()
            .flat_map(|c| c.output())
            .map(|a| match a.qualifier {
                Some(q) => format!("{q}.{}", a.name),
                None => a.name.to_string(),
            })
            .collect();
        let in_window = matches!(p, LogicalPlan::Window { .. });
        for e in p.expressions() {
            e.for_each_node(&mut |e| {
                if problem.is_some() {
                    return;
                }
                match e {
                    Expr::WindowFunction { func, .. } if !in_window => {
                        problem = Some(CatalystError::analysis(format!(
                            "window function {}() is only allowed in the SELECT list",
                            func.name()
                        )));
                    }
                    Expr::UnresolvedAttribute { qualifier, name } => {
                        let full = match qualifier {
                            Some(q) => format!("{q}.{name}"),
                            None => name.clone(),
                        };
                        problem = Some(CatalystError::analysis(format!(
                            "cannot resolve column '{full}'; available: [{}]",
                            child_cols.join(", ")
                        )));
                    }
                    Expr::UnresolvedFunction { name, .. } => {
                        problem = Some(CatalystError::analysis(format!(
                            "unresolved function '{name}'"
                        )));
                    }
                    Expr::Wildcard { .. } => {
                        problem = Some(CatalystError::analysis(
                            "'*' is only allowed in a SELECT list",
                        ));
                    }
                    _ => {}
                }
            });
        }
        if problem.is_some() {
            return;
        }
        match p {
            LogicalPlan::Filter { predicate, .. } => {
                if let Ok(t) = predicate.data_type() {
                    if t != DataType::Boolean && t != DataType::Null {
                        problem = Some(CatalystError::analysis(format!(
                            "filter predicate '{predicate}' has type {t}, expected BOOLEAN"
                        )));
                    }
                }
            }
            LogicalPlan::Join {
                condition: Some(c), ..
            } => {
                if let Ok(t) = c.data_type() {
                    if t != DataType::Boolean {
                        problem = Some(CatalystError::analysis(format!(
                            "join condition '{c}' has type {t}, expected BOOLEAN"
                        )));
                    }
                }
            }
            LogicalPlan::Aggregate {
                groupings,
                aggregates,
                ..
            } => {
                for agg in aggregates {
                    if let Some(e) = invalid_aggregate_expr(agg, groupings) {
                        problem = Some(CatalystError::analysis(format!(
                            "expression '{e}' is neither in GROUP BY nor inside an \
                             aggregate function"
                        )));
                        return;
                    }
                }
            }
            LogicalPlan::Union { inputs } => {
                if let Some(first) = inputs.first() {
                    let w = first.output().len();
                    for i in inputs.iter().skip(1) {
                        if i.output().len() != w {
                            problem = Some(CatalystError::analysis(format!(
                                "UNION inputs have different widths ({} vs {})",
                                w,
                                i.output().len()
                            )));
                        }
                    }
                }
            }
            _ => {}
        }
    });
    match problem {
        Some(e) => Err(e),
        None => Ok(()),
    }
}

/// If `expr` references a column that is neither a grouping expression nor
/// under an aggregate function, return the offending subexpression.
fn invalid_aggregate_expr(expr: &Expr, groupings: &[Expr]) -> Option<Expr> {
    // An expression equal to a grouping expression is fine wherever it
    // appears; aggregates guard everything below them.
    if groupings.iter().any(|g| g == expr) {
        return None;
    }
    match expr {
        Expr::Alias { child, .. } => invalid_aggregate_expr(child, groupings),
        Expr::Agg { .. } => None,
        Expr::Column(_) => Some(expr.clone()),
        _ => {
            let mut offender = None;
            visit_direct_children(expr, &mut |c| {
                if offender.is_none() {
                    offender = invalid_aggregate_expr(c, groupings);
                }
            });
            offender
        }
    }
}

/// Call `f` on each *direct* child expression.
fn visit_direct_children(e: &Expr, f: &mut dyn FnMut(&Expr)) {
    match e {
        Expr::Literal(_)
        | Expr::UnresolvedAttribute { .. }
        | Expr::Wildcard { .. }
        | Expr::Column(_)
        | Expr::BoundRef { .. } => {}
        Expr::UnresolvedFunction { args, .. }
        | Expr::ScalarFn { args, .. }
        | Expr::Udf { args, .. } => args.iter().for_each(f),
        Expr::Alias { child, .. } => f(child),
        Expr::BinaryOp { left, right, .. } => {
            f(left);
            f(right);
        }
        Expr::Not(e)
        | Expr::Negate(e)
        | Expr::IsNull(e)
        | Expr::IsNotNull(e)
        | Expr::UnscaledValue(e) => f(e),
        Expr::Like { expr, pattern, .. } => {
            f(expr);
            f(pattern);
        }
        Expr::InList { expr, list, .. } => {
            f(expr);
            list.iter().for_each(f);
        }
        Expr::Case {
            operand,
            branches,
            else_expr,
        } => {
            if let Some(o) = operand {
                f(o);
            }
            for (c, r) in branches {
                f(c);
                f(r);
            }
            if let Some(e) = else_expr {
                f(e);
            }
        }
        Expr::Cast { expr, .. } | Expr::GetField { expr, .. } | Expr::MakeDecimal { expr, .. } => {
            f(expr)
        }
        Expr::GetItem { expr, index } => {
            f(expr);
            f(index);
        }
        Expr::Agg { arg, .. } => {
            if let Some(a) = arg {
                f(a);
            }
        }
        Expr::WindowFunction {
            args,
            partition_by,
            order_by,
            ..
        } => {
            args.iter().chain(partition_by).for_each(&mut *f);
            order_by.iter().for_each(|o| f(&o.expr));
        }
    }
}

/// Resolve a sort-order list against given attributes (used by the
/// DataFrame API's eager analysis of `order_by`).
pub fn resolve_sort_orders(
    orders: Vec<SortOrder>,
    attrs: &[ColumnRef],
    functions: &FunctionRegistry,
) -> Result<Vec<SortOrder>> {
    let mut err = None;
    let out = orders
        .into_iter()
        .map(|o| SortOrder {
            expr: o
                .expr
                .transform_up(&mut |e| resolve_expr(e, attrs, functions, &mut err))
                .data,
            ascending: o.ascending,
        })
        .collect();
    match err {
        Some(e) => Err(e),
        None => Ok(out),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::expr::builders::{col, count, count_star, lit, sum};
    use crate::row::Row;
    use crate::value::Value;

    fn users_table() -> LogicalPlan {
        LogicalPlan::LocalRelation {
            output: vec![
                ColumnRef::new("name", DataType::String, false),
                ColumnRef::new("age", DataType::Int, false),
            ],
            rows: Arc::new(vec![Row::new(vec![Value::str("Alice"), Value::Int(22)])]),
        }
    }

    fn analyzer() -> (Analyzer, Arc<SimpleCatalog>) {
        let catalog = Arc::new(SimpleCatalog::default());
        catalog.register("users", users_table());
        let a = Analyzer::new(catalog.clone(), Arc::new(FunctionRegistry::default()));
        (a, catalog)
    }

    #[test]
    fn resolves_table_and_columns() {
        let (a, _) = analyzer();
        let plan = LogicalPlan::UnresolvedRelation {
            name: "users".into(),
        }
        .filter(col("age").lt(lit(21)))
        .project(vec![col("name")]);
        let analyzed = a.analyze(plan).unwrap();
        assert!(analyzed.is_resolved());
        assert_eq!(analyzed.schema().field(0).name.as_ref(), "name");
    }

    #[test]
    fn unknown_table_errors_eagerly_with_candidates() {
        let (a, _) = analyzer();
        let plan = LogicalPlan::UnresolvedRelation {
            name: "missing".into(),
        };
        let err = a.analyze(plan).unwrap_err().to_string();
        assert!(err.contains("missing"));
        assert!(err.contains("users"));
    }

    #[test]
    fn unknown_column_errors_with_available_columns() {
        let (a, _) = analyzer();
        let plan = LogicalPlan::UnresolvedRelation {
            name: "users".into(),
        }
        .filter(col("aage").lt(lit(21)));
        let err = a.analyze(plan).unwrap_err().to_string();
        assert!(err.contains("aage"), "{err}");
        assert!(err.contains("age"), "{err}");
    }

    #[test]
    fn wildcard_expands_to_all_columns() {
        let (a, _) = analyzer();
        let plan = LogicalPlan::UnresolvedRelation {
            name: "users".into(),
        }
        .project(vec![Expr::Wildcard { qualifier: None }]);
        let analyzed = a.analyze(plan).unwrap();
        assert_eq!(analyzed.schema().len(), 2);
    }

    #[test]
    fn type_coercion_inserts_casts() {
        let (a, _) = analyzer();
        // age (Int) + 1.5 (Double) → cast(age as Double) + 1.5.
        let plan = LogicalPlan::UnresolvedRelation {
            name: "users".into(),
        }
        .project(vec![col("age").add(lit(1.5f64)).alias("x")]);
        let analyzed = a.analyze(plan).unwrap();
        let mut saw_cast = false;
        analyzed.for_each(&mut |p| {
            for e in p.expressions() {
                e.for_each_node(&mut |e| {
                    if matches!(e, Expr::Cast { .. }) {
                        saw_cast = true;
                    }
                });
            }
        });
        assert!(saw_cast);
        assert_eq!(analyzed.schema().field(0).dtype, DataType::Double);
    }

    #[test]
    fn aggregate_validation_catches_ungrouped_column() {
        let (a, _) = analyzer();
        // SELECT name, count(*) FROM users GROUP BY age — name is invalid.
        let plan = LogicalPlan::UnresolvedRelation {
            name: "users".into(),
        }
        .aggregate(vec![col("age")], vec![col("name"), count_star().alias("n")]);
        let err = a.analyze(plan).unwrap_err().to_string();
        assert!(err.contains("GROUP BY"), "{err}");
    }

    #[test]
    fn valid_aggregate_passes() {
        let (a, _) = analyzer();
        let plan = LogicalPlan::UnresolvedRelation {
            name: "users".into(),
        }
        .aggregate(
            vec![col("name")],
            vec![
                col("name"),
                count(col("age")).alias("c"),
                sum(col("age")).alias("s"),
            ],
        );
        let analyzed = a.analyze(plan).unwrap();
        assert_eq!(analyzed.schema().len(), 3);
        // SUM over INT yields LONG.
        assert_eq!(analyzed.schema().field(2).dtype, DataType::Long);
    }

    #[test]
    fn count_star_resolves() {
        let (a, _) = analyzer();
        let plan = LogicalPlan::UnresolvedRelation {
            name: "users".into(),
        }
        .aggregate(
            vec![],
            vec![Expr::UnresolvedFunction {
                name: "count".into(),
                args: vec![Expr::Wildcard { qualifier: None }],
                distinct: false,
            }],
        );
        let analyzed = a.analyze(plan).unwrap();
        assert_eq!(analyzed.schema().field(0).dtype, DataType::Long);
    }

    #[test]
    fn udf_resolution() {
        let catalog = Arc::new(SimpleCatalog::default());
        catalog.register("users", users_table());
        let functions = Arc::new(FunctionRegistry::default());
        functions.register(crate::expr::UdfImpl {
            name: "shout".into(),
            return_type: DataType::String,
            func: Box::new(|args| Ok(Value::str(format!("{}!", args[0].as_str().unwrap_or(""))))),
        });
        let a = Analyzer::new(catalog, functions);
        let plan = LogicalPlan::UnresolvedRelation {
            name: "users".into(),
        }
        .project(vec![Expr::UnresolvedFunction {
            name: "shout".into(),
            args: vec![col("name")],
            distinct: false,
        }]);
        let analyzed = a.analyze(plan).unwrap();
        assert_eq!(analyzed.schema().field(0).dtype, DataType::String);
    }

    #[test]
    fn undefined_function_errors() {
        let (a, _) = analyzer();
        let plan = LogicalPlan::UnresolvedRelation {
            name: "users".into(),
        }
        .project(vec![Expr::UnresolvedFunction {
            name: "nope".into(),
            args: vec![],
            distinct: false,
        }]);
        let err = a.analyze(plan).unwrap_err().to_string();
        assert!(err.contains("nope"));
    }

    #[test]
    fn filter_must_be_boolean() {
        let (a, _) = analyzer();
        let plan = LogicalPlan::UnresolvedRelation {
            name: "users".into(),
        }
        .filter(col("age").add(lit(1)));
        let err = a.analyze(plan).unwrap_err().to_string();
        assert!(err.contains("BOOLEAN"), "{err}");
    }

    #[test]
    fn qualified_references_through_alias() {
        let (a, _) = analyzer();
        let plan = LogicalPlan::UnresolvedRelation {
            name: "users".into(),
        }
        .subquery_alias("u")
        .filter(col("u.age").gt(lit(18)))
        .project(vec![col("u.name")]);
        let analyzed = a.analyze(plan).unwrap();
        assert!(analyzed.is_resolved());
    }

    #[test]
    fn struct_field_access_resolves_dotted_path() {
        use crate::types::StructField;
        let catalog = Arc::new(SimpleCatalog::default());
        let loc_type = DataType::struct_type(vec![
            StructField::new("lat", DataType::Double, false),
            StructField::new("long", DataType::Double, false),
        ]);
        catalog.register(
            "tweets",
            LogicalPlan::LocalRelation {
                output: vec![ColumnRef::new("loc", loc_type, true)],
                rows: Arc::new(vec![]),
            },
        );
        let a = Analyzer::new(catalog, Arc::new(FunctionRegistry::default()));
        let plan = LogicalPlan::UnresolvedRelation {
            name: "tweets".into(),
        }
        .project(vec![col("loc.lat")]);
        let analyzed = a.analyze(plan).unwrap();
        assert_eq!(analyzed.schema().field(0).dtype, DataType::Double);
    }
}
