//! Static lint pass over analyzed logical plans.
//!
//! Consumes the same abstract interpretation as the constraint optimizer
//! rules ([`super::constraints`]) but reports instead of rewriting:
//! each finding is a structured [`LintDiagnostic`] carrying a stable
//! code, a severity, and plan-node provenance (the pre-order node id and
//! display name from [`super::constraints::analyze_plan`]).
//!
//! The pass runs over the *analyzed* plan — before optimization — so
//! that an always-false predicate is reported even though the optimizer
//! would silently prune it, and so node ids line up with what the user
//! wrote rather than with a rewritten tree.
//!
//! Eight diagnostic classes:
//!
//! | code | class | severity |
//! |------|-------|----------|
//! | `L001` | predicate can never be true | warn |
//! | `L002` | possible division by zero | warn |
//! | `L003` | lossy numeric cast | info |
//! | `L004` | comparison only ever yields NULL | warn |
//! | `L005` | aggregate over provably-constant column | info |
//! | `L006` | duplicate projection name | warn |
//! | `L007` | running window frame without ORDER BY | warn |
//! | `L008` | uncached relation scanned more than once | warn |
//!
//! Every detector is deliberately narrow — it fires only on *provable*
//! facts (a divisor whose domain is exactly zero, a cast the type lattice
//! marks narrowing) — so the pass stays silent on idiomatic plans.

use super::constraints::{
    analyze_plan, determine, expr_facts, lossy_numeric_cast, Determination, Domain, NodeFacts,
};
use crate::expr::{AggFunc, BinaryOperator, Expr};
use crate::interpreter;
use crate::plan::LogicalPlan;
use crate::row::Row;
use crate::value::Value;

/// How bad a finding is.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum LintSeverity {
    /// Stylistic or performance smell; the query is still correct.
    Info,
    /// Very likely a logic error, but the query runs.
    Warn,
    /// The query cannot produce meaningful results.
    Error,
}

impl LintSeverity {
    /// Lowercase display name (`info` / `warn` / `error`).
    pub fn name(self) -> &'static str {
        match self {
            LintSeverity::Info => "info",
            LintSeverity::Warn => "warn",
            LintSeverity::Error => "error",
        }
    }

    /// Parse a `spark.sql.lint.level` threshold. `off` maps to `None`
    /// (report nothing).
    pub fn threshold(level: &str) -> Option<LintSeverity> {
        match level.to_ascii_lowercase().as_str() {
            "info" => Some(LintSeverity::Info),
            "warn" => Some(LintSeverity::Warn),
            "error" => Some(LintSeverity::Error),
            _ => None,
        }
    }
}

/// The eight diagnostic classes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LintClass {
    /// `L001`: a filter conjunct or join condition the constraint pass
    /// proves can never be TRUE.
    AlwaysFalsePredicate,
    /// `L002`: a division or modulo whose divisor is provably zero (or
    /// drawn from a finite set containing zero) — it yields NULL on
    /// every row here.
    DivisionByZero,
    /// `L003`: a numeric cast that can silently truncate or overflow.
    LossyNumericCast,
    /// `L004`: a comparison with a NULL operand — it can only ever
    /// evaluate to NULL, never TRUE or FALSE.
    NullOnlyComparison,
    /// `L005`: `MIN`/`MAX`/`AVG`/`SUM` over a column the constraint pass
    /// proves constant.
    ConstantAggregate,
    /// `L006`: two projection outputs share a name; one shadows the
    /// other in downstream `SELECT`s.
    DuplicateProjection,
    /// `L007`: a window aggregate with an explicit running (non-whole-
    /// partition) frame but no ORDER BY — the frame boundary then depends
    /// on arbitrary row order.
    UnorderedRunningWindow,
    /// `L008`: the same uncached source relation is scanned more than
    /// once within one plan — each scan re-reads the source, where a
    /// `CACHE TABLE` would pay the read once. A cheap cache-hygiene
    /// signal for shared multi-tenant deployments.
    UncachedRepeatedScan,
}

impl LintClass {
    /// Stable diagnostic code.
    pub fn code(self) -> &'static str {
        match self {
            LintClass::AlwaysFalsePredicate => "L001",
            LintClass::DivisionByZero => "L002",
            LintClass::LossyNumericCast => "L003",
            LintClass::NullOnlyComparison => "L004",
            LintClass::ConstantAggregate => "L005",
            LintClass::DuplicateProjection => "L006",
            LintClass::UnorderedRunningWindow => "L007",
            LintClass::UncachedRepeatedScan => "L008",
        }
    }

    /// Default severity.
    pub fn severity(self) -> LintSeverity {
        match self {
            LintClass::AlwaysFalsePredicate => LintSeverity::Warn,
            LintClass::DivisionByZero => LintSeverity::Warn,
            LintClass::LossyNumericCast => LintSeverity::Info,
            LintClass::NullOnlyComparison => LintSeverity::Warn,
            LintClass::ConstantAggregate => LintSeverity::Info,
            LintClass::DuplicateProjection => LintSeverity::Warn,
            LintClass::UnorderedRunningWindow => LintSeverity::Warn,
            LintClass::UncachedRepeatedScan => LintSeverity::Warn,
        }
    }
}

/// One structured finding.
#[derive(Debug, Clone)]
pub struct LintDiagnostic {
    /// Which class fired.
    pub class: LintClass,
    /// Severity (the class default).
    pub severity: LintSeverity,
    /// Pre-order id of the plan node (matches
    /// [`super::constraints::analyze_plan`] numbering).
    pub node_id: usize,
    /// Display name of that node (`Filter`, `Join[INNER]`, …).
    pub node: String,
    /// Human-readable explanation naming the offending expression.
    pub message: String,
}

impl LintDiagnostic {
    /// `warn[L001] at #2 Filter: …` — the one-line rendering used by
    /// `EXPLAIN LINT` and the `== Lint ==` section.
    pub fn render(&self) -> String {
        format!(
            "{}[{}] at #{} {}: {}",
            self.severity.name(),
            self.class.code(),
            self.node_id,
            self.node,
            self.message
        )
    }
}

/// Lint an analyzed plan. Diagnostics come back in plan pre-order, then
/// by class code within a node.
pub fn lint_plan(plan: &LogicalPlan) -> Vec<LintDiagnostic> {
    let analysis = analyze_plan(plan);
    let mut nodes: Vec<&LogicalPlan> = Vec::with_capacity(analysis.nodes.len());
    collect_preorder(plan, &mut nodes);
    debug_assert_eq!(nodes.len(), analysis.nodes.len());

    let mut out = Vec::new();
    for (id, p) in nodes.iter().enumerate() {
        let frame = analysis.input_facts(id);
        let mut emit = |class: LintClass, message: String| {
            out.push(LintDiagnostic {
                class,
                severity: class.severity(),
                node_id: id,
                node: analysis.nodes[id].op.clone(),
                message,
            });
        };
        check_always_false(p, &frame, &mut emit);
        check_expressions(p, &frame, &mut emit);
        check_constant_aggregate(p, &frame, &mut emit);
        check_duplicate_projection(p, &mut emit);
        check_unordered_running_window(p, &mut emit);
    }
    check_uncached_repeated_scan(&nodes, &analysis, &mut out);
    out
}

// ---- L008: uncached relation scanned more than once ----

/// Counts [`LogicalPlan::Scan`] nodes per relation name across the whole
/// plan (self-joins, repeated CTE-style references). Cached relations —
/// whose scans read the in-memory columnar cache, named
/// `InMemoryCache:<table>` — are exempt: re-scanning them is the point.
fn check_uncached_repeated_scan(
    nodes: &[&LogicalPlan],
    analysis: &super::constraints::ConstraintAnalysis,
    out: &mut Vec<LintDiagnostic>,
) {
    let mut first_seen: Vec<(String, usize, usize)> = Vec::new(); // (name, first id, count)
    for (id, p) in nodes.iter().enumerate() {
        let LogicalPlan::Scan { relation, .. } = p else {
            continue;
        };
        let name = relation.name();
        if name.starts_with("InMemoryCache:") {
            continue;
        }
        match first_seen.iter_mut().find(|(n, _, _)| *n == name) {
            Some((_, _, count)) => *count += 1,
            None => first_seen.push((name, id, 1)),
        }
    }
    for (name, id, count) in first_seen {
        if count > 1 {
            out.push(LintDiagnostic {
                class: LintClass::UncachedRepeatedScan,
                severity: LintClass::UncachedRepeatedScan.severity(),
                node_id: id,
                node: analysis.nodes[id].op.clone(),
                message: format!(
                    "uncached relation `{name}` is scanned {count} times in this \
                     plan; each scan re-reads the source (consider CACHE TABLE)"
                ),
            });
        }
    }
}

/// Filter diagnostics to the configured minimum severity (`off`, `info`,
/// `warn`, `error`).
pub fn lint_plan_at_level(plan: &LogicalPlan, level: &str) -> Vec<LintDiagnostic> {
    let Some(threshold) = LintSeverity::threshold(level) else {
        return Vec::new();
    };
    lint_plan(plan)
        .into_iter()
        .filter(|d| d.severity >= threshold)
        .collect()
}

fn collect_preorder<'a>(plan: &'a LogicalPlan, out: &mut Vec<&'a LogicalPlan>) {
    out.push(plan);
    match plan {
        LogicalPlan::Project { input, .. }
        | LogicalPlan::Filter { input, .. }
        | LogicalPlan::Aggregate { input, .. }
        | LogicalPlan::Sort { input, .. }
        | LogicalPlan::Limit { input, .. }
        | LogicalPlan::Distinct { input }
        | LogicalPlan::SubqueryAlias { input, .. }
        | LogicalPlan::Window { input, .. }
        | LogicalPlan::Sample { input, .. } => collect_preorder(input, out),
        LogicalPlan::Join { left, right, .. } => {
            collect_preorder(left, out);
            collect_preorder(right, out);
        }
        LogicalPlan::Union { inputs } => {
            for i in inputs {
                collect_preorder(i, out);
            }
        }
        _ => {}
    }
}

// ---- L001: always-false predicate ----

fn check_always_false(
    plan: &LogicalPlan,
    frame: &NodeFacts,
    emit: &mut impl FnMut(LintClass, String),
) {
    let pred = match plan {
        LogicalPlan::Filter { predicate, .. } => predicate,
        LogicalPlan::Join {
            condition: Some(c), ..
        } => c,
        _ => return,
    };
    for conjunct in crate::optimizer::split_conjuncts(pred) {
        match determine(&conjunct, frame) {
            Determination::AlwaysFalse => emit(
                LintClass::AlwaysFalsePredicate,
                format!("predicate `{conjunct}` is always FALSE; no row can satisfy it"),
            ),
            Determination::NeverTrue => emit(
                LintClass::AlwaysFalsePredicate,
                format!("predicate `{conjunct}` can never be TRUE (only FALSE or NULL)"),
            ),
            _ => {}
        }
    }
}

// ---- L002 / L003 / L004: per-expression checks ----

fn check_expressions(
    plan: &LogicalPlan,
    frame: &NodeFacts,
    emit: &mut impl FnMut(LintClass, String),
) {
    // Scan filters evaluate against the base relation, not child nodes;
    // their columns are in scope regardless, so the same frame applies.
    for root in plan.expressions() {
        root.for_each_node(&mut |e| {
            check_div_by_zero(e, frame, emit);
            check_lossy_cast(e, emit);
            check_null_comparison(e, emit);
        });
    }
}

/// Zero in the divisor's *provable* domain only — a plain nullable
/// column divisor stays silent.
fn check_div_by_zero(e: &Expr, frame: &NodeFacts, emit: &mut impl FnMut(LintClass, String)) {
    let Expr::BinaryOp { op, right, .. } = e else {
        return;
    };
    if !matches!(op, BinaryOperator::Div | BinaryOperator::Mod) {
        return;
    }
    let divisor_zero = match &expr_facts(right, frame).domain {
        Domain::Constant(v) => is_zero(v),
        Domain::Finite(vs) => vs.iter().any(is_zero),
        _ => false,
    };
    if divisor_zero {
        emit(
            LintClass::DivisionByZero,
            format!("divisor `{right}` can be zero; `{e}` yields NULL on those rows"),
        );
    }
}

fn is_zero(v: &Value) -> bool {
    match v {
        Value::Int(0) | Value::Long(0) => true,
        Value::Float(f) => *f == 0.0,
        Value::Double(d) => *d == 0.0,
        _ => false,
    }
}

fn check_lossy_cast(e: &Expr, emit: &mut impl FnMut(LintClass, String)) {
    let Expr::Cast { expr, dtype } = e else {
        return;
    };
    let Ok(src) = expr.data_type() else { return };
    if lossy_numeric_cast(&src, dtype) {
        emit(
            LintClass::LossyNumericCast,
            format!("cast `{e}` narrows {src} to {dtype}; values outside range truncate"),
        );
    }
}

/// A comparison with a provably-NULL operand (an explicit NULL literal,
/// or a cast/coercion that folds to NULL) never yields TRUE or FALSE.
fn check_null_comparison(e: &Expr, emit: &mut impl FnMut(LintClass, String)) {
    let Expr::BinaryOp { left, op, right } = e else {
        return;
    };
    if !matches!(
        op,
        BinaryOperator::Eq
            | BinaryOperator::NotEq
            | BinaryOperator::Lt
            | BinaryOperator::LtEq
            | BinaryOperator::Gt
            | BinaryOperator::GtEq
    ) {
        return;
    }
    for side in [left, right] {
        if folds_to_null(side) {
            emit(
                LintClass::NullOnlyComparison,
                format!(
                    "operand `{side}` of `{e}` is NULL; the comparison never \
                     yields TRUE or FALSE (use IS NULL / IS NOT NULL)"
                ),
            );
            return;
        }
    }
}

fn folds_to_null(e: &Expr) -> bool {
    if matches!(e, Expr::Literal(Value::Null)) {
        return true;
    }
    if !e.is_resolved() || !e.foldable() {
        return false;
    }
    matches!(interpreter::eval(e, &Row::empty()), Ok(Value::Null))
}

// ---- L005: aggregate over provably-constant column ----

fn check_constant_aggregate(
    plan: &LogicalPlan,
    frame: &NodeFacts,
    emit: &mut impl FnMut(LintClass, String),
) {
    let LogicalPlan::Aggregate { aggregates, .. } = plan else {
        return;
    };
    for a in aggregates {
        a.for_each_node(&mut |e| {
            let Expr::Agg {
                func,
                arg: Some(arg),
                distinct: false,
            } = e
            else {
                return;
            };
            // COUNT of a constant still counts rows — meaningful.
            if matches!(func, AggFunc::Count) {
                return;
            }
            // Only flag columns the *input data* proves constant;
            // aggregating a literal is usually deliberate.
            if !matches!(arg.as_ref(), Expr::Column(_)) {
                return;
            }
            if let Domain::Constant(v) = &expr_facts(arg, frame).domain {
                emit(
                    LintClass::ConstantAggregate,
                    format!("`{e}` aggregates a provably-constant column (always {v:?})"),
                );
            }
        });
    }
}

// ---- L006: duplicate projection names ----

fn check_duplicate_projection(plan: &LogicalPlan, emit: &mut impl FnMut(LintClass, String)) {
    let LogicalPlan::Project { exprs, .. } = plan else {
        return;
    };
    let mut seen: Vec<String> = Vec::with_capacity(exprs.len());
    for e in exprs {
        let Ok(attr) = e.to_attribute() else { continue };
        let name = attr.name.as_ref();
        if seen.iter().any(|s| s.eq_ignore_ascii_case(name)) {
            emit(
                LintClass::DuplicateProjection,
                format!(
                    "projection name `{name}` appears more than once; \
                     later uses resolve ambiguously"
                ),
            );
        } else {
            seen.push(name.to_string());
        }
    }
}

// ---- L007: running window frame without ORDER BY ----

/// A frame-sensitive window aggregate whose explicit frame is narrower
/// than the whole partition is order-dependent; without ORDER BY the row
/// order inside the partition — and therefore the result — is arbitrary.
fn check_unordered_running_window(plan: &LogicalPlan, emit: &mut impl FnMut(LintClass, String)) {
    let LogicalPlan::Window { window_exprs, .. } = plan else {
        return;
    };
    for w in window_exprs {
        w.for_each_node(&mut |e| {
            let Expr::WindowFunction {
                func,
                order_by,
                frame,
                ..
            } = e
            else {
                return;
            };
            if func.frame_sensitive() && order_by.is_empty() && !frame.is_whole_partition() {
                emit(
                    LintClass::UnorderedRunningWindow,
                    format!(
                        "`{e}` has a running frame but no ORDER BY; the frame \
                         boundary depends on arbitrary row order (add ORDER BY \
                         or drop the frame)"
                    ),
                );
            }
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::expr::builders::{count, lit, sum};
    use crate::expr::ColumnRef;
    use crate::types::DataType;
    use std::sync::Arc;

    fn leaf(cols: &[(&str, DataType, bool)], rows: Vec<Row>) -> (LogicalPlan, Vec<ColumnRef>) {
        let output: Vec<ColumnRef> = cols
            .iter()
            .map(|(n, t, nl)| ColumnRef::new(*n, t.clone(), *nl))
            .collect();
        (
            LogicalPlan::LocalRelation {
                output: output.clone(),
                rows: Arc::new(rows),
            },
            output,
        )
    }

    fn codes(diags: &[LintDiagnostic]) -> Vec<&'static str> {
        diags.iter().map(|d| d.class.code()).collect()
    }

    #[test]
    fn always_false_predicate_reported_with_provenance() {
        let (p, out) = leaf(
            &[("a", DataType::Long, false)],
            vec![
                Row::new(vec![Value::Long(1)]),
                Row::new(vec![Value::Long(10)]),
            ],
        );
        let a = out[0].clone();
        let plan = p.filter(
            Expr::Column(a.clone())
                .gt(lit(0i64))
                .and(Expr::Column(a).gt(lit(100i64))),
        );
        let diags = lint_plan(&plan);
        assert_eq!(codes(&diags), vec!["L001"], "{diags:?}");
        assert_eq!(diags[0].node_id, 0);
        assert_eq!(diags[0].node, "Filter");
        assert_eq!(diags[0].severity, LintSeverity::Warn);
    }

    #[test]
    fn division_by_constant_zero_reported() {
        let (p, out) = leaf(
            &[("a", DataType::Long, false), ("z", DataType::Long, false)],
            vec![Row::new(vec![Value::Long(1), Value::Long(0)])],
        );
        let a = out[0].clone();
        let z = out[1].clone();
        let plan = p.project(vec![Expr::BinaryOp {
            left: Box::new(Expr::Column(a)),
            op: BinaryOperator::Div,
            right: Box::new(Expr::Column(z)),
        }
        .alias("q")]);
        let diags = lint_plan(&plan);
        assert_eq!(codes(&diags), vec!["L002"], "{diags:?}");
    }

    #[test]
    fn division_by_unconstrained_column_is_silent() {
        let (p, out) = leaf(
            &[("a", DataType::Long, false), ("b", DataType::Long, false)],
            vec![
                Row::new(vec![Value::Long(1), Value::Long(2)]),
                Row::new(vec![Value::Long(5), Value::Long(7)]),
            ],
        );
        let a = out[0].clone();
        let b = out[1].clone();
        let plan = p.project(vec![Expr::BinaryOp {
            left: Box::new(Expr::Column(a)),
            op: BinaryOperator::Div,
            right: Box::new(Expr::Column(b)),
        }
        .alias("q")]);
        assert!(lint_plan(&plan).is_empty());
    }

    #[test]
    fn lossy_cast_reported_lossless_not() {
        let (p, out) = leaf(&[("x", DataType::Long, false)], vec![]);
        let x = out[0].clone();
        let plan = p.clone().project(vec![Expr::Cast {
            expr: Box::new(Expr::Column(x.clone())),
            dtype: DataType::Int,
        }
        .alias("narrow")]);
        let diags = lint_plan(&plan);
        // The empty leaf also makes the subtree empty, but no L001 fires
        // (no predicate); only the cast is flagged.
        assert_eq!(codes(&diags), vec!["L003"], "{diags:?}");
        assert_eq!(diags[0].severity, LintSeverity::Info);

        let (p2, out2) = leaf(&[("i", DataType::Int, false)], vec![]);
        let plan = p2.project(vec![Expr::Cast {
            expr: Box::new(Expr::Column(out2[0].clone())),
            dtype: DataType::Long,
        }
        .alias("wide")]);
        assert!(lint_plan(&plan).is_empty());
    }

    #[test]
    fn null_comparison_reported() {
        let (p, out) = leaf(&[("a", DataType::Long, true)], vec![]);
        let a = out[0].clone();
        let plan = p.filter(Expr::Column(a).eq(Expr::Literal(Value::Null)));
        let diags = lint_plan(&plan);
        assert!(
            codes(&diags).contains(&"L004"),
            "NULL comparison must be flagged: {diags:?}"
        );
    }

    #[test]
    fn constant_aggregate_reported_count_exempt() {
        let (p, out) = leaf(
            &[("k", DataType::Long, false), ("v", DataType::Long, false)],
            vec![
                Row::new(vec![Value::Long(7), Value::Long(1)]),
                Row::new(vec![Value::Long(7), Value::Long(2)]),
            ],
        );
        let k = out[0].clone();
        let v = out[1].clone();
        let plan = p.aggregate(
            vec![],
            vec![
                sum(Expr::Column(k.clone())).alias("s"),
                count(Expr::Column(v)).alias("c"),
            ],
        );
        let diags = lint_plan(&plan);
        assert_eq!(codes(&diags), vec!["L005"], "{diags:?}");
        assert!(diags[0].message.contains('k'), "{diags:?}");
    }

    #[test]
    fn duplicate_projection_reported() {
        let (p, out) = leaf(
            &[("a", DataType::Long, false), ("b", DataType::Long, false)],
            vec![Row::new(vec![Value::Long(1), Value::Long(2)])],
        );
        let a = out[0].clone();
        let b = out[1].clone();
        let plan = p.project(vec![Expr::Column(a).alias("x"), Expr::Column(b).alias("x")]);
        let diags = lint_plan(&plan);
        assert_eq!(codes(&diags), vec!["L006"], "{diags:?}");
    }

    #[test]
    fn unordered_running_window_reported_ordered_not() {
        use crate::expr::{FrameBound, FrameUnits, SortOrder, WindowFrame, WindowFunc};
        let (p, out) = leaf(
            &[("k", DataType::Long, false), ("v", DataType::Long, false)],
            vec![Row::new(vec![Value::Long(1), Value::Long(2)])],
        );
        let k = out[0].clone();
        let v = out[1].clone();
        let running = WindowFrame {
            units: FrameUnits::Rows,
            start: FrameBound::UnboundedPreceding,
            end: FrameBound::CurrentRow,
        };
        let unordered = Expr::WindowFunction {
            func: WindowFunc::Agg(AggFunc::Sum),
            args: vec![Expr::Column(v.clone())],
            partition_by: vec![Expr::Column(k.clone())],
            order_by: vec![],
            frame: running,
        }
        .alias("w");
        let plan = p
            .clone()
            .window(vec![unordered], vec![Expr::Column(k.clone())], vec![]);
        let diags = lint_plan(&plan);
        assert_eq!(codes(&diags), vec!["L007"], "{diags:?}");
        assert_eq!(diags[0].severity, LintSeverity::Warn);

        let order = vec![SortOrder {
            expr: Expr::Column(v.clone()),
            ascending: true,
        }];
        let ordered = Expr::WindowFunction {
            func: WindowFunc::Agg(AggFunc::Sum),
            args: vec![Expr::Column(v)],
            partition_by: vec![Expr::Column(k.clone())],
            order_by: order.clone(),
            frame: running,
        }
        .alias("w");
        let plan = p.window(vec![ordered], vec![Expr::Column(k)], order);
        assert!(lint_plan(&plan).is_empty(), "{:?}", lint_plan(&plan));
    }

    #[test]
    fn repeated_uncached_scan_reported_cached_and_single_not() {
        use crate::plan::JoinType;
        use crate::schema::Schema;
        use crate::source::{BaseRelation, Filter, RowIter};
        use crate::types::StructField;

        struct NamedRelation(&'static str);
        impl BaseRelation for NamedRelation {
            fn name(&self) -> String {
                self.0.to_string()
            }
            fn schema(&self) -> crate::schema::SchemaRef {
                Arc::new(Schema::new(vec![StructField::new(
                    "a",
                    DataType::Long,
                    false,
                )]))
            }
            fn scan_partition(
                &self,
                _partition: usize,
                _projection: Option<&[usize]>,
                _filters: &[Filter],
            ) -> crate::error::Result<RowIter> {
                Ok(Box::new(std::iter::empty()))
            }
            fn as_any(&self) -> &dyn std::any::Any {
                self
            }
        }

        let scan = |rel: &'static str, col: &str| {
            let relation: Arc<dyn BaseRelation> = Arc::new(NamedRelation(rel));
            let output = vec![ColumnRef::new(col, DataType::Long, false)];
            LogicalPlan::Scan {
                relation,
                output,
                filters: vec![],
            }
        };

        // Same relation on both sides of a join: flagged once.
        let left = scan("events", "a");
        let right = scan("events", "b");
        let l = left.output()[0].clone();
        let r = right.output()[0].clone();
        let plan = left.join(
            right,
            JoinType::Inner,
            Some(Expr::Column(l).eq(Expr::Column(r))),
        );
        let diags = lint_plan(&plan);
        assert_eq!(codes(&diags), vec!["L008"], "{diags:?}");
        assert!(diags[0].message.contains("events"), "{diags:?}");
        assert_eq!(diags[0].severity, LintSeverity::Warn);

        // Distinct relations: silent.
        let left = scan("events", "a");
        let right = scan("users", "b");
        let l = left.output()[0].clone();
        let r = right.output()[0].clone();
        let plan = left.join(
            right,
            JoinType::Inner,
            Some(Expr::Column(l).eq(Expr::Column(r))),
        );
        assert!(lint_plan(&plan).is_empty());

        // Cached relations (InMemoryCache:*) are exempt.
        let left = scan("InMemoryCache:events", "a");
        let right = scan("InMemoryCache:events", "b");
        let l = left.output()[0].clone();
        let r = right.output()[0].clone();
        let plan = left.join(
            right,
            JoinType::Inner,
            Some(Expr::Column(l).eq(Expr::Column(r))),
        );
        assert!(lint_plan(&plan).is_empty());
    }

    #[test]
    fn level_threshold_filters() {
        let (p, out) = leaf(&[("x", DataType::Long, false)], vec![]);
        let x = out[0].clone();
        let plan = p.project(vec![Expr::Cast {
            expr: Box::new(Expr::Column(x)),
            dtype: DataType::Int,
        }
        .alias("narrow")]);
        assert_eq!(lint_plan_at_level(&plan, "info").len(), 1);
        assert!(lint_plan_at_level(&plan, "warn").is_empty());
        assert!(lint_plan_at_level(&plan, "off").is_empty());
    }
}
