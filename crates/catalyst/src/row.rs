//! Rows: the tuple representation flowing between physical operators.

use crate::value::Value;
use std::fmt;

/// A single record. Field order matches the owning schema.
///
/// Clones are cheap-ish: scalar values copy inline and string/array
/// payloads are `Arc`-shared, which matters when rows cross the shuffle.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Row {
    values: Vec<Value>,
}

impl Row {
    /// Build a row from values.
    pub fn new(values: Vec<Value>) -> Self {
        Row { values }
    }

    /// Empty row.
    pub fn empty() -> Self {
        Row { values: vec![] }
    }

    /// Number of fields.
    pub fn len(&self) -> usize {
        self.values.len()
    }

    /// True when the row has no fields.
    pub fn is_empty(&self) -> bool {
        self.values.is_empty()
    }

    /// Value at position `i`.
    #[inline]
    pub fn get(&self, i: usize) -> &Value {
        &self.values[i]
    }

    /// All values.
    pub fn values(&self) -> &[Value] {
        &self.values
    }

    /// Consume into the value vector.
    pub fn into_values(self) -> Vec<Value> {
        self.values
    }

    /// True if the value at `i` is NULL.
    #[inline]
    pub fn is_null(&self, i: usize) -> bool {
        self.values[i].is_null()
    }

    /// i64 accessor (panics on type mismatch — used by typed readers).
    pub fn get_long(&self, i: usize) -> i64 {
        self.values[i].as_i64().expect("not an integral value")
    }

    /// f64 accessor.
    pub fn get_double(&self, i: usize) -> f64 {
        self.values[i].as_f64().expect("not a numeric value")
    }

    /// str accessor.
    pub fn get_str(&self, i: usize) -> &str {
        self.values[i].as_str().expect("not a string value")
    }

    /// bool accessor.
    pub fn get_bool(&self, i: usize) -> bool {
        self.values[i].as_bool().expect("not a boolean value")
    }

    /// Project a subset of columns into a new row.
    pub fn project(&self, indices: &[usize]) -> Row {
        Row::new(indices.iter().map(|&i| self.values[i].clone()).collect())
    }

    /// Concatenate two rows (join output).
    pub fn concat(&self, other: &Row) -> Row {
        let mut values = Vec::with_capacity(self.values.len() + other.values.len());
        values.extend_from_slice(&self.values);
        values.extend_from_slice(&other.values);
        Row::new(values)
    }

    /// Approximate in-memory footprint (for the §3.6 cache comparison).
    pub fn approx_bytes(&self) -> u64 {
        24 + self.values.iter().map(Value::approx_bytes).sum::<u64>()
    }
}

impl From<Vec<Value>> for Row {
    fn from(values: Vec<Value>) -> Self {
        Row::new(values)
    }
}

impl fmt::Display for Row {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "[")?;
        for (i, v) in self.values.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{v}")?;
        }
        write!(f, "]")
    }
}

/// Convenience macro for building rows in tests and examples.
#[macro_export]
macro_rules! row {
    ($($v:expr),* $(,)?) => {
        $crate::row::Row::new(vec![$($v),*])
    };
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::value::Value;

    #[test]
    fn accessors_and_projection() {
        let r = Row::new(vec![Value::Long(1), Value::str("x"), Value::Double(2.5)]);
        assert_eq!(r.get_long(0), 1);
        assert_eq!(r.get_str(1), "x");
        assert_eq!(r.get_double(2), 2.5);
        let p = r.project(&[2, 0]);
        assert_eq!(p, Row::new(vec![Value::Double(2.5), Value::Long(1)]));
    }

    #[test]
    fn concat_joins_rows() {
        let a = Row::new(vec![Value::Int(1)]);
        let b = Row::new(vec![Value::Int(2), Value::Int(3)]);
        assert_eq!(a.concat(&b).len(), 3);
    }

    #[test]
    fn rows_are_hashable_group_keys() {
        use std::collections::HashSet;
        let mut set = HashSet::new();
        set.insert(Row::new(vec![Value::Int(1), Value::str("a")]));
        set.insert(Row::new(vec![Value::Int(1), Value::str("a")]));
        assert_eq!(set.len(), 1);
    }

    #[test]
    fn row_macro_builds_rows() {
        let r = row![Value::Int(1), Value::Null];
        assert_eq!(r.len(), 2);
        assert!(r.is_null(1));
    }
}
