//! Expression compilation — the Rust analogue of Catalyst's runtime code
//! generation (§4.3.4).
//!
//! The paper uses Scala quasiquotes to turn an expression tree into JVM
//! bytecode, eliminating the per-row cost of walking the tree (branching
//! and virtual calls) and of boxing intermediate values. Rust has no
//! stable JIT, so we substitute the closest native mechanism: each tree is
//! *compiled once* into a fused closure graph specialized to the static
//! types of its operands. Per row, evaluation is a chain of direct calls
//! over unboxed `i64`/`f64`/`bool` (`Option` for NULL) with no node-type
//! dispatch and no intermediate [`Value`] allocation.
//!
//! Like the paper's generator, compilation is *composable* and partial:
//! any subtree the compiler does not specialize falls back to the
//! interpreter ("it was straightforward to combine code-generated
//! evaluation with interpreted evaluation"), so every expression can be
//! compiled.

use crate::error::Result;
use crate::expr::{BinaryOperator, Expr, ScalarFunc};
use crate::interpreter;
use crate::row::Row;
use crate::types::DataType;
use crate::value::Value;
use std::sync::Arc;

/// A compiled per-row evaluator returning an unboxed `Option<T>`
/// (`None` = SQL NULL).
pub type RowFn<T> = Arc<dyn Fn(&Row) -> Option<T> + Send + Sync>;

/// A compiled evaluator, specialized by result type when possible.
#[derive(Clone)]
pub enum Compiled {
    /// Integral result (Int and Long unify to i64 internally).
    Long(RowFn<i64>),
    /// Floating result (Float and Double unify to f64 internally).
    Double(RowFn<f64>),
    /// Boolean result.
    Bool(RowFn<bool>),
    /// String result.
    Str(RowFn<Arc<str>>),
    /// Unspecialized fallback: interpret the subtree.
    Fallback(Arc<dyn Fn(&Row) -> Result<Value> + Send + Sync>),
}

impl Compiled {
    /// Evaluate to a boxed [`Value`], tagging integers/floats with the
    /// declared `dtype` (Int vs Long, Float vs Double).
    pub fn eval_value(&self, row: &Row, dtype: &DataType) -> Result<Value> {
        Ok(match self {
            Compiled::Long(f) => match f(row) {
                None => Value::Null,
                Some(v) => match dtype {
                    DataType::Int => Value::Int(v as i32),
                    _ => Value::Long(v),
                },
            },
            Compiled::Double(f) => match f(row) {
                None => Value::Null,
                Some(v) => match dtype {
                    DataType::Float => Value::Float(v as f32),
                    _ => Value::Double(v),
                },
            },
            Compiled::Bool(f) => f(row).map_or(Value::Null, Value::Boolean),
            Compiled::Str(f) => f(row).map_or(Value::Null, Value::Str),
            Compiled::Fallback(f) => f(row)?,
        })
    }
}

/// Compile a bound expression.
pub fn compile(expr: &Expr) -> Compiled {
    if let Some(c) = try_compile(expr) {
        return c;
    }
    fallback(expr)
}

fn fallback(expr: &Expr) -> Compiled {
    let e = expr.clone();
    Compiled::Fallback(Arc::new(move |row| interpreter::eval(&e, row)))
}

fn as_long(c: &Compiled) -> Option<RowFn<i64>> {
    match c {
        Compiled::Long(f) => Some(f.clone()),
        _ => None,
    }
}

fn as_double(c: &Compiled) -> Option<RowFn<f64>> {
    match c {
        Compiled::Double(f) => Some(f.clone()),
        Compiled::Long(f) => {
            let f = f.clone();
            Some(Arc::new(move |row| f(row).map(|v| v as f64)))
        }
        _ => None,
    }
}

fn as_str_fn(c: &Compiled) -> Option<RowFn<Arc<str>>> {
    match c {
        Compiled::Str(f) => Some(f.clone()),
        _ => None,
    }
}

fn as_bool_fn(c: &Compiled) -> Option<RowFn<bool>> {
    match c {
        Compiled::Bool(f) => Some(f.clone()),
        _ => None,
    }
}

fn try_compile(expr: &Expr) -> Option<Compiled> {
    match expr {
        Expr::Literal(Value::Int(v)) => {
            let v = *v as i64;
            Some(Compiled::Long(Arc::new(move |_| Some(v))))
        }
        Expr::Literal(Value::Long(v)) => {
            let v = *v;
            Some(Compiled::Long(Arc::new(move |_| Some(v))))
        }
        Expr::Literal(Value::Float(v)) => {
            let v = *v as f64;
            Some(Compiled::Double(Arc::new(move |_| Some(v))))
        }
        Expr::Literal(Value::Double(v)) => {
            let v = *v;
            Some(Compiled::Double(Arc::new(move |_| Some(v))))
        }
        Expr::Literal(Value::Boolean(b)) => {
            let b = *b;
            Some(Compiled::Bool(Arc::new(move |_| Some(b))))
        }
        Expr::Literal(Value::Str(s)) => {
            let s = s.clone();
            Some(Compiled::Str(Arc::new(move |_| Some(s.clone()))))
        }
        Expr::BoundRef { index, dtype, .. } => compile_bound_ref(*index, dtype),
        Expr::Alias { child, .. } => try_compile(child),
        Expr::Cast { expr, dtype } => {
            let inner = compile(expr);
            match dtype {
                DataType::Long | DataType::Int => match inner {
                    Compiled::Long(f) => Some(Compiled::Long(f)),
                    Compiled::Double(f) => Some(Compiled::Long(Arc::new(move |row| {
                        f(row).map(|v| v as i64)
                    }))),
                    _ => None,
                },
                DataType::Double | DataType::Float => as_double(&inner).map(Compiled::Double),
                _ => None,
            }
        }
        Expr::Negate(e) => match compile(e) {
            Compiled::Long(f) => Some(Compiled::Long(Arc::new(move |row| f(row).map(|v| -v)))),
            Compiled::Double(f) => Some(Compiled::Double(Arc::new(move |row| f(row).map(|v| -v)))),
            _ => None,
        },
        Expr::Not(e) => {
            let f = as_bool_fn(&compile(e))?;
            Some(Compiled::Bool(Arc::new(move |row| f(row).map(|b| !b))))
        }
        Expr::IsNull(e) => {
            let c = compile(e);
            Some(Compiled::Bool(is_null_fn(c, true)))
        }
        Expr::IsNotNull(e) => {
            let c = compile(e);
            Some(Compiled::Bool(is_null_fn(c, false)))
        }
        Expr::BinaryOp { left, op, right } => compile_binary(left, *op, right),
        Expr::ScalarFn { func, args } => compile_scalar_fn(*func, args),
        // IN over constant lists: compiled membership test. (SQL
        // three-valued semantics: NULL input → NULL; a NULL in the list
        // only matters for non-matches, which the fallback handles, so we
        // only take lists with no NULLs here.)
        Expr::InList {
            expr,
            list,
            negated,
        } => {
            let negated = *negated;
            match compile(expr) {
                Compiled::Long(f) => {
                    let mut values = Vec::with_capacity(list.len());
                    for item in list {
                        match item {
                            Expr::Literal(Value::Int(v)) => values.push(*v as i64),
                            Expr::Literal(Value::Long(v)) => values.push(*v),
                            _ => return None,
                        }
                    }
                    values.sort_unstable();
                    Some(Compiled::Bool(Arc::new(move |row| {
                        f(row).map(|v| values.binary_search(&v).is_ok() != negated)
                    })))
                }
                Compiled::Str(f) => {
                    let mut values: Vec<Arc<str>> = Vec::with_capacity(list.len());
                    for item in list {
                        match item {
                            Expr::Literal(Value::Str(s)) => values.push(s.clone()),
                            _ => return None,
                        }
                    }
                    values.sort();
                    Some(Compiled::Bool(Arc::new(move |row| {
                        f(row).map(|v| {
                            values
                                .binary_search_by(|p| p.as_ref().cmp(v.as_ref()))
                                .is_ok()
                                != negated
                        })
                    })))
                }
                _ => None,
            }
        }
        Expr::Like {
            expr,
            pattern,
            negated,
        } => {
            // Pattern must be a literal for the compiled path.
            let s = as_str_fn(&compile(expr))?;
            if let Expr::Literal(Value::Str(p)) = pattern.as_ref() {
                let p: String = p.to_string();
                let negated = *negated;
                Some(Compiled::Bool(Arc::new(move |row| {
                    s(row).map(|v| interpreter::like_match(&v, &p) != negated)
                })))
            } else {
                None
            }
        }
        _ => None,
    }
}

fn is_null_fn(c: Compiled, want_null: bool) -> RowFn<bool> {
    macro_rules! arm {
        ($f:expr) => {{
            let f = $f;
            Arc::new(move |row: &Row| Some(f(row).is_none() == want_null)) as RowFn<bool>
        }};
    }
    match c {
        Compiled::Long(f) => arm!(f),
        Compiled::Double(f) => arm!(f),
        Compiled::Bool(f) => arm!(f),
        Compiled::Str(f) => arm!(f),
        Compiled::Fallback(f) => Arc::new(move |row| f(row).ok().map(|v| v.is_null() == want_null)),
    }
}

fn compile_bound_ref(index: usize, dtype: &DataType) -> Option<Compiled> {
    match dtype {
        DataType::Int | DataType::Long => Some(Compiled::Long(Arc::new(move |row| {
            match row.values().get(index) {
                Some(Value::Long(v)) => Some(*v),
                Some(Value::Int(v)) => Some(*v as i64),
                _ => None,
            }
        }))),
        DataType::Float | DataType::Double => {
            Some(Compiled::Double(Arc::new(move |row| {
                match row.values().get(index) {
                    Some(Value::Double(v)) => Some(*v),
                    Some(Value::Float(v)) => Some(*v as f64),
                    Some(Value::Long(v)) => Some(*v as f64),
                    Some(Value::Int(v)) => Some(*v as f64),
                    _ => None,
                }
            })))
        }
        DataType::Boolean => Some(Compiled::Bool(Arc::new(move |row| {
            match row.values().get(index) {
                Some(Value::Boolean(b)) => Some(*b),
                _ => None,
            }
        }))),
        DataType::String => Some(Compiled::Str(Arc::new(move |row| {
            match row.values().get(index) {
                Some(Value::Str(s)) => Some(s.clone()),
                _ => None,
            }
        }))),
        _ => None,
    }
}

macro_rules! arith {
    ($l:expr, $r:expr, $op:tt) => {{
        let (l, r) = ($l, $r);
        Arc::new(move |row: &Row| Some(l(row)? $op r(row)?))
    }};
}

macro_rules! cmp_fn {
    ($l:expr, $r:expr, $op:ident) => {{
        let (l, r) = ($l, $r);
        Arc::new(move |row: &Row| Some(l(row)?.$op(&r(row)?))) as RowFn<bool>
    }};
}

fn compile_binary(left: &Expr, op: BinaryOperator, right: &Expr) -> Option<Compiled> {
    use BinaryOperator::*;
    let lc = try_compile(left)?;
    let rc = try_compile(right)?;

    // Boolean connectives: three-valued logic over Option<bool>.
    if op == And || op == Or {
        let l = as_bool_fn(&lc)?;
        let r = as_bool_fn(&rc)?;
        let f: RowFn<bool> = match op {
            And => Arc::new(move |row| match (l(row), r(row)) {
                (Some(false), _) | (_, Some(false)) => Some(false),
                (Some(true), Some(true)) => Some(true),
                _ => None,
            }),
            Or => Arc::new(move |row| match (l(row), r(row)) {
                (Some(true), _) | (_, Some(true)) => Some(true),
                (Some(false), Some(false)) => Some(false),
                _ => None,
            }),
            _ => unreachable!(),
        };
        return Some(Compiled::Bool(f));
    }

    // Integer fast path: both sides integral, op not division.
    if let (Some(l), Some(r)) = (as_long(&lc), as_long(&rc)) {
        return Some(match op {
            Add => Compiled::Long(arith!(l, r, +)),
            Sub => Compiled::Long(arith!(l, r, -)),
            Mul => Compiled::Long(arith!(l, r, *)),
            Mod => Compiled::Long(Arc::new(move |row| {
                let b = r(row)?;
                if b == 0 {
                    None
                } else {
                    Some(l(row)? % b)
                }
            })),
            Div => Compiled::Double(Arc::new(move |row| {
                let b = r(row)?;
                if b == 0 {
                    None
                } else {
                    Some(l(row)? as f64 / b as f64)
                }
            })),
            Eq => Compiled::Bool(cmp_fn!(l, r, eq)),
            NotEq => Compiled::Bool(cmp_fn!(l, r, ne)),
            Lt => Compiled::Bool(cmp_fn!(l, r, lt)),
            LtEq => Compiled::Bool(cmp_fn!(l, r, le)),
            Gt => Compiled::Bool(cmp_fn!(l, r, gt)),
            GtEq => Compiled::Bool(cmp_fn!(l, r, ge)),
            And | Or => unreachable!(),
        });
    }

    // Float path: both sides numeric.
    if let (Some(l), Some(r)) = (as_double(&lc), as_double(&rc)) {
        return Some(match op {
            Add => Compiled::Double(arith!(l, r, +)),
            Sub => Compiled::Double(arith!(l, r, -)),
            Mul => Compiled::Double(arith!(l, r, *)),
            Div => Compiled::Double(Arc::new(move |row| {
                let b = r(row)?;
                if b == 0.0 {
                    None
                } else {
                    Some(l(row)? / b)
                }
            })),
            Mod => Compiled::Double(Arc::new(move |row| {
                let b = r(row)?;
                if b == 0.0 {
                    None
                } else {
                    Some(l(row)? % b)
                }
            })),
            Eq => Compiled::Bool(cmp_fn!(l, r, eq)),
            NotEq => Compiled::Bool(cmp_fn!(l, r, ne)),
            Lt => Compiled::Bool(cmp_fn!(l, r, lt)),
            LtEq => Compiled::Bool(cmp_fn!(l, r, le)),
            Gt => Compiled::Bool(cmp_fn!(l, r, gt)),
            GtEq => Compiled::Bool(cmp_fn!(l, r, ge)),
            And | Or => unreachable!(),
        });
    }

    // String comparisons.
    if let (Some(l), Some(r)) = (as_str_fn(&lc), as_str_fn(&rc)) {
        return Some(match op {
            Eq => Compiled::Bool(cmp_fn!(l, r, eq)),
            NotEq => Compiled::Bool(cmp_fn!(l, r, ne)),
            Lt => Compiled::Bool(cmp_fn!(l, r, lt)),
            LtEq => Compiled::Bool(cmp_fn!(l, r, le)),
            Gt => Compiled::Bool(cmp_fn!(l, r, gt)),
            GtEq => Compiled::Bool(cmp_fn!(l, r, ge)),
            Add => {
                let (l, r) = (l, r);
                Compiled::Str(Arc::new(move |row| {
                    let a = l(row)?;
                    let b = r(row)?;
                    Some(Arc::from(format!("{a}{b}")))
                }))
            }
            _ => return None,
        });
    }

    None
}

fn compile_scalar_fn(func: ScalarFunc, args: &[Expr]) -> Option<Compiled> {
    use ScalarFunc::*;
    match func {
        StartsWith | EndsWith | Contains => {
            let s = as_str_fn(&try_compile(&args[0])?)?;
            let p = as_str_fn(&try_compile(&args[1])?)?;
            Some(Compiled::Bool(Arc::new(move |row| {
                let a = s(row)?;
                let b = p(row)?;
                Some(match func {
                    StartsWith => a.starts_with(b.as_ref()),
                    EndsWith => a.ends_with(b.as_ref()),
                    _ => a.contains(b.as_ref()),
                })
            })))
        }
        Length => {
            let s = as_str_fn(&try_compile(&args[0])?)?;
            Some(Compiled::Long(Arc::new(move |row| {
                Some(s(row)?.chars().count() as i64)
            })))
        }
        Substr => {
            let s = as_str_fn(&try_compile(&args[0])?)?;
            let pos = as_long(&try_compile(&args[1])?)?;
            let len = match args.get(2) {
                Some(a) => Some(as_long(&try_compile(a)?)?),
                None => None,
            };
            Some(Compiled::Str(Arc::new(move |row| {
                let v = s(row)?;
                let start = (pos(row)?.max(1) - 1) as usize;
                let take = match &len {
                    Some(l) => l(row)?.max(0) as usize,
                    None => usize::MAX,
                };
                Some(Arc::from(
                    v.chars().skip(start).take(take).collect::<String>(),
                ))
            })))
        }
        Upper | Lower | Trim => {
            let s = as_str_fn(&try_compile(&args[0])?)?;
            Some(Compiled::Str(Arc::new(move |row| {
                let v = s(row)?;
                Some(match func {
                    Upper => Arc::from(v.to_uppercase()),
                    Lower => Arc::from(v.to_lowercase()),
                    _ => Arc::from(v.trim()),
                })
            })))
        }
        Abs => match try_compile(&args[0])? {
            Compiled::Long(f) => Some(Compiled::Long(Arc::new(move |row| f(row).map(i64::abs)))),
            Compiled::Double(f) => {
                Some(Compiled::Double(Arc::new(move |row| f(row).map(f64::abs))))
            }
            _ => None,
        },
        Sqrt => {
            let f = as_double(&try_compile(&args[0])?)?;
            Some(Compiled::Double(Arc::new(move |row| f(row).map(f64::sqrt))))
        }
        _ => None,
    }
}

/// Compile a predicate to a plain `fn(&Row) -> bool` (NULL ⇒ false).
pub fn compile_predicate(expr: &Expr) -> Arc<dyn Fn(&Row) -> bool + Send + Sync> {
    match compile(expr) {
        Compiled::Bool(f) => Arc::new(move |row| f(row).unwrap_or(false)),
        other => {
            let dtype = expr.data_type().unwrap_or(DataType::Boolean);
            Arc::new(move |row| matches!(other.eval_value(row, &dtype), Ok(Value::Boolean(true))))
        }
    }
}

/// Compile a projection to a row-to-row function.
pub fn compile_projection(exprs: &[Expr]) -> Arc<dyn Fn(&Row) -> Result<Row> + Send + Sync> {
    let compiled: Vec<(Compiled, DataType)> = exprs
        .iter()
        .map(|e| (compile(e), e.data_type().unwrap_or(DataType::String)))
        .collect();
    Arc::new(move |row| {
        let mut out = Vec::with_capacity(compiled.len());
        for (c, t) in &compiled {
            out.push(c.eval_value(row, t)?);
        }
        Ok(Row::new(out))
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::expr::builders::lit;

    fn bound_long(index: usize) -> Expr {
        Expr::BoundRef {
            index,
            dtype: DataType::Long,
            nullable: true,
            name: "x".into(),
        }
    }

    #[test]
    fn compiles_x_plus_x_plus_x() {
        // The Figure 4 expression.
        let x = bound_long(0);
        let e = x.clone().add(x.clone()).add(x);
        let c = compile(&e);
        assert!(matches!(c, Compiled::Long(_)));
        let row = Row::new(vec![Value::Long(7)]);
        assert_eq!(
            c.eval_value(&row, &DataType::Long).unwrap(),
            Value::Long(21)
        );
        // Agrees with the interpreter.
        let x = bound_long(0);
        let e = x.clone().add(x.clone()).add(x);
        assert_eq!(interpreter::eval(&e, &row).unwrap(), Value::Long(21));
    }

    #[test]
    fn null_propagates_in_compiled_code() {
        let e = bound_long(0).add(lit(1i64));
        let c = compile(&e);
        let row = Row::new(vec![Value::Null]);
        assert_eq!(c.eval_value(&row, &DataType::Long).unwrap(), Value::Null);
    }

    #[test]
    fn compiled_predicate_handles_null_as_false() {
        let p = compile_predicate(&bound_long(0).gt(lit(5i64)));
        assert!(p(&Row::new(vec![Value::Long(10)])));
        assert!(!p(&Row::new(vec![Value::Long(1)])));
        assert!(!p(&Row::new(vec![Value::Null])));
    }

    #[test]
    fn string_ops_compile() {
        let s = Expr::BoundRef {
            index: 0,
            dtype: DataType::String,
            nullable: true,
            name: "s".into(),
        };
        let e = Expr::ScalarFn {
            func: ScalarFunc::StartsWith,
            args: vec![s, lit("he")],
        };
        let c = compile(&e);
        assert!(matches!(c, Compiled::Bool(_)));
        let row = Row::new(vec![Value::str("hello")]);
        assert_eq!(
            c.eval_value(&row, &DataType::Boolean).unwrap(),
            Value::Boolean(true)
        );
    }

    #[test]
    fn division_by_zero_is_null_in_compiled_code() {
        let e = bound_long(0).div(lit(0i64));
        let c = compile(&e);
        let row = Row::new(vec![Value::Long(10)]);
        assert_eq!(c.eval_value(&row, &DataType::Double).unwrap(), Value::Null);
    }

    #[test]
    fn fallback_agrees_with_interpreter_on_case() {
        use crate::expr::builders::when;
        let e = when(bound_long(0).gt(lit(0i64)), lit("pos")).otherwise(lit("neg"));
        let c = compile(&e);
        let row = Row::new(vec![Value::Long(3)]);
        assert_eq!(
            c.eval_value(&row, &DataType::String).unwrap(),
            interpreter::eval(&e, &row).unwrap()
        );
    }

    #[test]
    fn projection_emits_declared_int_type() {
        let e = Expr::BoundRef {
            index: 0,
            dtype: DataType::Int,
            nullable: false,
            name: "i".into(),
        };
        let proj = compile_projection(&[e.add(lit(1))]);
        let out = proj(&Row::new(vec![Value::Int(41)])).unwrap();
        assert_eq!(out.get(0), &Value::Int(42));
    }

    #[test]
    fn in_list_compiles_and_matches_interpreter() {
        let e = bound_long(0).in_list(vec![lit(1i64), lit(5i64), lit(9i64)]);
        let c = compile(&e);
        assert!(matches!(c, Compiled::Bool(_)));
        for v in [0i64, 1, 5, 9, 10] {
            let row = Row::new(vec![Value::Long(v)]);
            assert_eq!(
                c.eval_value(&row, &DataType::Boolean).unwrap(),
                interpreter::eval(&e, &row).unwrap(),
                "v = {v}"
            );
        }
        // NULL input stays NULL.
        let row = Row::new(vec![Value::Null]);
        assert_eq!(c.eval_value(&row, &DataType::Boolean).unwrap(), Value::Null);
        // Lists containing NULL fall back (three-valued IN).
        let e = bound_long(0).in_list(vec![lit(1i64), Expr::Literal(Value::Null)]);
        assert!(matches!(compile(&e), Compiled::Fallback(_)));
    }

    #[test]
    fn negated_in_list_compiles() {
        let e = Expr::InList {
            expr: Box::new(bound_long(0)),
            list: vec![lit(2i64)],
            negated: true,
        };
        let c = compile(&e);
        let hit = Row::new(vec![Value::Long(2)]);
        let miss = Row::new(vec![Value::Long(3)]);
        assert_eq!(
            c.eval_value(&hit, &DataType::Boolean).unwrap(),
            Value::Boolean(false)
        );
        assert_eq!(
            c.eval_value(&miss, &DataType::Boolean).unwrap(),
            Value::Boolean(true)
        );
    }

    #[test]
    fn mixed_int_float_promotes() {
        let e = bound_long(0).add(lit(0.5f64));
        let c = compile(&e);
        assert!(matches!(c, Compiled::Double(_)));
        let row = Row::new(vec![Value::Long(1)]);
        assert_eq!(
            c.eval_value(&row, &DataType::Double).unwrap(),
            Value::Double(1.5)
        );
    }
}
