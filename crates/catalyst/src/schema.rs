//! Relation schemas: an ordered list of named, typed fields.

use crate::error::{CatalystError, Result};
use crate::types::{DataType, StructField};
use std::fmt;
use std::sync::Arc;

/// Shared schema handle.
pub type SchemaRef = Arc<Schema>;

/// Ordered collection of fields describing a relation or DataFrame.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Schema {
    fields: Vec<StructField>,
}

impl Schema {
    /// Build a schema from fields.
    pub fn new(fields: Vec<StructField>) -> Self {
        Schema { fields }
    }

    /// Empty schema.
    pub fn empty() -> SchemaRef {
        Arc::new(Schema { fields: vec![] })
    }

    /// Fields in order.
    pub fn fields(&self) -> &[StructField] {
        &self.fields
    }

    /// Number of fields.
    pub fn len(&self) -> usize {
        self.fields.len()
    }

    /// True when the schema has no fields.
    pub fn is_empty(&self) -> bool {
        self.fields.is_empty()
    }

    /// Field at position `i`.
    pub fn field(&self, i: usize) -> &StructField {
        &self.fields[i]
    }

    /// Index of the field named `name` (case-insensitive, like Spark SQL).
    pub fn index_of(&self, name: &str) -> Result<usize> {
        let mut found = None;
        for (i, f) in self.fields.iter().enumerate() {
            if f.name.eq_ignore_ascii_case(name) {
                if found.is_some() {
                    return Err(CatalystError::analysis(format!(
                        "ambiguous column reference '{name}'"
                    )));
                }
                found = Some(i);
            }
        }
        found.ok_or_else(|| {
            let known: Vec<&str> = self.fields.iter().map(|f| f.name.as_ref()).collect();
            CatalystError::analysis(format!(
                "cannot resolve column '{name}' among ({})",
                known.join(", ")
            ))
        })
    }

    /// Select a subset of fields by position.
    pub fn project(&self, indices: &[usize]) -> Schema {
        Schema::new(indices.iter().map(|&i| self.fields[i].clone()).collect())
    }

    /// Concatenate two schemas (join output).
    pub fn merge(&self, other: &Schema) -> Schema {
        let mut fields = self.fields.clone();
        fields.extend(other.fields.iter().cloned());
        Schema::new(fields)
    }

    /// Rough serialized size of one row with this schema (cost model).
    pub fn approx_row_bytes(&self) -> u64 {
        self.fields
            .iter()
            .map(|f| f.dtype.approx_value_bytes())
            .sum::<u64>()
            .max(1)
    }

    /// Equivalent struct data type.
    pub fn as_struct_type(&self) -> DataType {
        DataType::struct_type(self.fields.clone())
    }
}

impl fmt::Display for Schema {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for (i, field) in self.fields.iter().enumerate() {
            if i > 0 {
                writeln!(f, ",")?;
            }
            write!(f, "{} {}", field.name, field.dtype)?;
            if !field.nullable {
                write!(f, " NOT NULL")?;
            }
        }
        Ok(())
    }
}

impl FromIterator<StructField> for Schema {
    fn from_iter<I: IntoIterator<Item = StructField>>(iter: I) -> Self {
        Schema::new(iter.into_iter().collect())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Schema {
        Schema::new(vec![
            StructField::new("id", DataType::Long, false),
            StructField::new("name", DataType::String, true),
        ])
    }

    #[test]
    fn index_of_is_case_insensitive() {
        let s = sample();
        assert_eq!(s.index_of("NAME").unwrap(), 1);
        assert_eq!(s.index_of("id").unwrap(), 0);
    }

    #[test]
    fn unknown_column_lists_candidates() {
        let err = sample().index_of("missing").unwrap_err();
        let msg = err.to_string();
        assert!(msg.contains("missing"));
        assert!(msg.contains("id"));
    }

    #[test]
    fn ambiguous_column_is_an_error() {
        let s = Schema::new(vec![
            StructField::new("x", DataType::Int, false),
            StructField::new("X", DataType::Long, false),
        ]);
        assert!(s.index_of("x").is_err());
    }

    #[test]
    fn project_and_merge() {
        let s = sample();
        let p = s.project(&[1]);
        assert_eq!(p.len(), 1);
        assert_eq!(p.field(0).name.as_ref(), "name");
        let m = s.merge(&p);
        assert_eq!(m.len(), 3);
    }
}
