//! Catalyst error types.
//!
//! Analysis errors are reported *eagerly* when plans are constructed
//! (§3.4 of the paper: the API analyzes logical plans eagerly even though
//! execution is lazy), so they carry enough context to point at the
//! offending expression.

use std::fmt;

/// Errors raised while analyzing, optimizing, planning, or evaluating.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CatalystError {
    /// Name resolution or semantic check failure (unknown column, type
    /// mismatch, aggregate misuse, …).
    Analysis(String),
    /// SQL text could not be parsed.
    Parse(String),
    /// A cast or arithmetic operation failed at runtime.
    Eval(String),
    /// Planner could not produce a physical plan.
    Plan(String),
    /// Problem in a data source.
    DataSource(String),
    /// Anything else.
    Internal(String),
}

impl CatalystError {
    /// Shorthand for an analysis error.
    pub fn analysis(msg: impl Into<String>) -> Self {
        CatalystError::Analysis(msg.into())
    }

    /// Shorthand for an evaluation error.
    pub fn eval(msg: impl Into<String>) -> Self {
        CatalystError::Eval(msg.into())
    }
}

impl fmt::Display for CatalystError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CatalystError::Analysis(m) => write!(f, "analysis error: {m}"),
            CatalystError::Parse(m) => write!(f, "parse error: {m}"),
            CatalystError::Eval(m) => write!(f, "evaluation error: {m}"),
            CatalystError::Plan(m) => write!(f, "planning error: {m}"),
            CatalystError::DataSource(m) => write!(f, "data source error: {m}"),
            CatalystError::Internal(m) => write!(f, "internal error: {m}"),
        }
    }
}

impl std::error::Error for CatalystError {}

/// Result alias used across the optimizer.
pub type Result<T> = std::result::Result<T, CatalystError>;
