//! Plan-level optimization rules: predicate pushdown, projection pruning,
//! filter/projection collapsing, limit pushdown.

use crate::expr::{BinaryOperator, ColumnRef, Expr, ExprId};
use crate::plan::{JoinType, LogicalPlan};
use crate::rules::Rule;
use crate::tree::{Transformed, TreeNode};
use crate::value::Value;
use std::collections::HashMap;
use std::sync::Arc;

/// Split a predicate on AND into conjuncts.
pub fn split_conjuncts(e: &Expr) -> Vec<Expr> {
    match e {
        Expr::BinaryOp {
            left,
            op: BinaryOperator::And,
            right,
        } => {
            let mut out = split_conjuncts(left);
            out.extend(split_conjuncts(right));
            out
        }
        other => vec![other.clone()],
    }
}

/// AND together a list of conjuncts (None when empty).
pub fn conjunction(mut conjuncts: Vec<Expr>) -> Option<Expr> {
    let first = if conjuncts.is_empty() {
        return None;
    } else {
        conjuncts.remove(0)
    };
    Some(conjuncts.into_iter().fold(first, |acc, c| acc.and(c)))
}

/// True when every column `e` references appears in `attrs`.
fn references_subset(e: &Expr, attrs: &[ColumnRef]) -> bool {
    e.references()
        .iter()
        .all(|r| attrs.iter().any(|a| a.id == r.id))
}

/// Replace `Column(id)` with `map[id]` throughout an expression.
fn substitute(e: Expr, map: &HashMap<ExprId, Expr>) -> Transformed<Expr> {
    e.transform_up(&mut |e| match e {
        Expr::Column(c) => match map.get(&c.id) {
            Some(repl) => Transformed::yes(repl.clone()),
            None => Transformed::no(Expr::Column(c)),
        },
        other => Transformed::no(other),
    })
}

/// Alias-substitution map of a projection: output attribute id → the
/// *named* expression that computes it. Keeping the `Alias` wrapper (with
/// its id) is essential: a collapsed projection item must still produce
/// the same output attribute.
fn projection_map(exprs: &[Expr]) -> Option<HashMap<ExprId, Expr>> {
    let mut map = HashMap::new();
    for e in exprs {
        match e {
            Expr::Column(c) => {
                map.insert(c.id, e.clone());
            }
            Expr::Alias { id, .. } => {
                map.insert(*id, e.clone());
            }
            _ => return None, // unnamed exprs: analysis should have aliased
        }
    }
    Some(map)
}

/// Remove `SubqueryAlias` nodes once analysis is done — qualifiers only
/// matter for name resolution, and attribute ids are stable, so aliases
/// just obstruct pattern-matching rules (Spark's
/// `EliminateSubqueryAliases`).
pub struct EliminateSubqueryAliases;

impl Rule<LogicalPlan> for EliminateSubqueryAliases {
    fn name(&self) -> &str {
        "EliminateSubqueryAliases"
    }

    fn apply(&self, plan: LogicalPlan) -> Transformed<LogicalPlan> {
        plan.transform_up(&mut |p| match p {
            LogicalPlan::SubqueryAlias { input, .. } => Transformed::yes((*input).clone()),
            other => Transformed::no(other),
        })
    }
}

/// Merge adjacent Filters into one conjunction.
pub struct CombineFilters;

impl Rule<LogicalPlan> for CombineFilters {
    fn name(&self) -> &str {
        "CombineFilters"
    }

    fn apply(&self, plan: LogicalPlan) -> Transformed<LogicalPlan> {
        plan.transform_up(&mut |p| match p {
            LogicalPlan::Filter { input, predicate } => match &*input {
                LogicalPlan::Filter {
                    input: inner,
                    predicate: inner_pred,
                } => Transformed::yes(LogicalPlan::Filter {
                    input: inner.clone(),
                    predicate: inner_pred.clone().and(predicate),
                }),
                _ => Transformed::no(LogicalPlan::Filter { input, predicate }),
            },
            other => Transformed::no(other),
        })
    }
}

/// Remove always-true filters; replace always-false/null filters with an
/// empty relation.
pub struct PruneFilters;

impl Rule<LogicalPlan> for PruneFilters {
    fn name(&self) -> &str {
        "PruneFilters"
    }

    fn apply(&self, plan: LogicalPlan) -> Transformed<LogicalPlan> {
        plan.transform_up(&mut |p| match p {
            LogicalPlan::Filter { input, predicate } => match &predicate {
                Expr::Literal(Value::Boolean(true)) => Transformed::yes((*input).clone()),
                Expr::Literal(Value::Boolean(false)) | Expr::Literal(Value::Null) => {
                    Transformed::yes(LogicalPlan::empty(input.output()))
                }
                _ => Transformed::no(LogicalPlan::Filter { input, predicate }),
            },
            other => Transformed::no(other),
        })
    }
}

/// Merge adjacent Projects, inlining aliases.
pub struct CollapseProjects;

impl Rule<LogicalPlan> for CollapseProjects {
    fn name(&self) -> &str {
        "CollapseProjects"
    }

    fn apply(&self, plan: LogicalPlan) -> Transformed<LogicalPlan> {
        plan.transform_up(&mut |p| match p {
            LogicalPlan::Project { input, exprs } => match &*input {
                LogicalPlan::Project {
                    input: inner,
                    exprs: inner_exprs,
                } => match projection_map(inner_exprs) {
                    Some(map) => {
                        let merged: Vec<Expr> = exprs
                            .iter()
                            .map(|e| substitute(e.clone(), &map).data)
                            .collect();
                        Transformed::yes(LogicalPlan::Project {
                            input: inner.clone(),
                            exprs: merged,
                        })
                    }
                    None => Transformed::no(LogicalPlan::Project { input, exprs }),
                },
                _ => Transformed::no(LogicalPlan::Project { input, exprs }),
            },
            other => Transformed::no(other),
        })
    }
}

/// Predicate pushdown (§4.3.2): move filters toward the data.
pub struct PushDownPredicate;

impl Rule<LogicalPlan> for PushDownPredicate {
    fn name(&self) -> &str {
        "PushDownPredicate"
    }

    fn apply(&self, plan: LogicalPlan) -> Transformed<LogicalPlan> {
        plan.transform_up(&mut |p| {
            let LogicalPlan::Filter { input, predicate } = p else {
                return Transformed::no(p);
            };
            match (*input).clone() {
                // Below a projection: substitute aliases, move under.
                LogicalPlan::Project {
                    input: child,
                    exprs,
                } => {
                    // Don't push through aggregate-producing projections
                    // (can't happen post-analysis, but be safe) or UDFs in
                    // substituted positions.
                    match projection_map(&exprs) {
                        Some(map) => {
                            let new_pred = substitute(predicate, &map).data;
                            Transformed::yes(LogicalPlan::Project {
                                input: Arc::new(LogicalPlan::Filter {
                                    input: child,
                                    predicate: new_pred,
                                }),
                                exprs,
                            })
                        }
                        None => Transformed::no(LogicalPlan::Filter {
                            input: Arc::new(LogicalPlan::Project {
                                input: child,
                                exprs,
                            }),
                            predicate,
                        }),
                    }
                }
                // Below an alias: ids are stable, just swap.
                LogicalPlan::SubqueryAlias {
                    input: child,
                    alias,
                } => Transformed::yes(LogicalPlan::SubqueryAlias {
                    input: Arc::new(LogicalPlan::Filter {
                        input: child,
                        predicate,
                    }),
                    alias,
                }),
                // Below a sort (order unaffected by filtering).
                LogicalPlan::Sort {
                    input: child,
                    orders,
                } => Transformed::yes(LogicalPlan::Sort {
                    input: Arc::new(LogicalPlan::Filter {
                        input: child,
                        predicate,
                    }),
                    orders,
                }),
                // Into both sides of a union.
                LogicalPlan::Union { inputs } => {
                    // Union inputs share the first input's output ids only
                    // if built from the same plan; remap by position.
                    let first_out = inputs.first().map(|i| i.output()).unwrap_or_default();
                    let pushed: Vec<Arc<LogicalPlan>> = inputs
                        .iter()
                        .map(|i| {
                            let out = i.output();
                            let map: HashMap<ExprId, Expr> = first_out
                                .iter()
                                .zip(out.iter())
                                .map(|(f, o)| (f.id, Expr::Column(o.clone())))
                                .collect();
                            let pred = substitute(predicate.clone(), &map).data;
                            Arc::new(LogicalPlan::Filter {
                                input: i.clone(),
                                predicate: pred,
                            })
                        })
                        .collect();
                    Transformed::yes(LogicalPlan::Union { inputs: pushed })
                }
                // Split across a join.
                LogicalPlan::Join {
                    left,
                    right,
                    join_type,
                    condition,
                } => {
                    let left_out = left.output();
                    let right_out = right.output();
                    let mut to_left = Vec::new();
                    let mut to_right = Vec::new();
                    let mut kept = Vec::new();
                    for c in split_conjuncts(&predicate) {
                        // Pushing below an outer join's preserved side is
                        // fine; pushing into the null-producing side is
                        // not. Inner/cross joins accept both.
                        let can_left = matches!(
                            join_type,
                            JoinType::Inner | JoinType::Cross | JoinType::Left
                        );
                        let can_right = matches!(
                            join_type,
                            JoinType::Inner | JoinType::Cross | JoinType::Right
                        );
                        if can_left && references_subset(&c, &left_out) {
                            to_left.push(c);
                        } else if can_right && references_subset(&c, &right_out) {
                            to_right.push(c);
                        } else {
                            kept.push(c);
                        }
                    }
                    // For inner/cross joins, conjuncts spanning both sides
                    // become part of the join condition (enabling equi-join
                    // detection at physical planning); for outer joins they
                    // must stay above.
                    let absorb_into_condition =
                        matches!(join_type, JoinType::Inner | JoinType::Cross);
                    let kept_in_condition = absorb_into_condition && !kept.is_empty();
                    if to_left.is_empty() && to_right.is_empty() && !kept_in_condition {
                        return Transformed::no(LogicalPlan::Filter {
                            input: Arc::new(LogicalPlan::Join {
                                left,
                                right,
                                join_type,
                                condition,
                            }),
                            predicate,
                        });
                    }
                    let new_left = match conjunction(to_left) {
                        Some(p) => Arc::new(LogicalPlan::Filter {
                            input: left,
                            predicate: p,
                        }),
                        None => left,
                    };
                    let new_right = match conjunction(to_right) {
                        Some(p) => Arc::new(LogicalPlan::Filter {
                            input: right,
                            predicate: p,
                        }),
                        None => right,
                    };
                    let (condition, kept, join_type) = if kept_in_condition {
                        let mut all = condition.map(|c| split_conjuncts(&c)).unwrap_or_default();
                        all.extend(kept);
                        (conjunction(all), vec![], JoinType::Inner)
                    } else {
                        (condition, kept, join_type)
                    };
                    let join = LogicalPlan::Join {
                        left: new_left,
                        right: new_right,
                        join_type,
                        condition,
                    };
                    match conjunction(kept) {
                        Some(p) => Transformed::yes(LogicalPlan::Filter {
                            input: Arc::new(join),
                            predicate: p,
                        }),
                        None => Transformed::yes(join),
                    }
                }
                // Below an aggregate, for conjuncts over grouping columns.
                LogicalPlan::Aggregate {
                    input: child,
                    groupings,
                    aggregates,
                } => {
                    let agg_out = LogicalPlan::Aggregate {
                        input: child.clone(),
                        groupings: groupings.clone(),
                        aggregates: aggregates.clone(),
                    };
                    // Output attr id → grouping expression it names.
                    let mut group_map: HashMap<ExprId, Expr> = HashMap::new();
                    for a in &aggregates {
                        match a {
                            Expr::Column(c) if groupings.contains(a) => {
                                group_map.insert(c.id, a.clone());
                            }
                            Expr::Alias {
                                child: inner, id, ..
                            } if groupings.contains(inner) => {
                                group_map.insert(*id, (**inner).clone());
                            }
                            _ => {}
                        }
                    }
                    let mut pushable = Vec::new();
                    let mut kept = Vec::new();
                    for c in split_conjuncts(&predicate) {
                        let refs = c.references();
                        if !c.contains_aggregate()
                            && !refs.is_empty()
                            && refs.iter().all(|r| group_map.contains_key(&r.id))
                        {
                            pushable.push(substitute(c, &group_map).data);
                        } else {
                            kept.push(c);
                        }
                    }
                    if pushable.is_empty() {
                        return Transformed::no(LogicalPlan::Filter {
                            input: Arc::new(agg_out),
                            predicate,
                        });
                    }
                    let filtered_child = Arc::new(LogicalPlan::Filter {
                        input: child,
                        predicate: conjunction(pushable).unwrap(),
                    });
                    let new_agg = LogicalPlan::Aggregate {
                        input: filtered_child,
                        groupings,
                        aggregates,
                    };
                    match conjunction(kept) {
                        Some(p) => Transformed::yes(LogicalPlan::Filter {
                            input: Arc::new(new_agg),
                            predicate: p,
                        }),
                        None => Transformed::yes(new_agg),
                    }
                }
                other => Transformed::no(LogicalPlan::Filter {
                    input: Arc::new(other),
                    predicate,
                }),
            }
        })
    }
}

/// Projection pruning (§4.3.2): narrow join and aggregate inputs to the
/// columns actually used, shrinking shuffles.
pub struct ColumnPruning;

impl ColumnPruning {
    fn prune_side(side: Arc<LogicalPlan>, required: &[ColumnRef]) -> (Arc<LogicalPlan>, bool) {
        let out = side.output();
        let mut keep: Vec<ColumnRef> = out
            .iter()
            .filter(|c| required.iter().any(|r| r.id == c.id))
            .cloned()
            .collect();
        // Nothing required (e.g. COUNT(*)): keep the narrowest column so
        // downstream scans still decode as little as possible.
        if keep.is_empty() {
            match out.iter().min_by_key(|c| c.dtype.approx_value_bytes()) {
                Some(cheapest) => keep.push(cheapest.clone()),
                None => return (side, false),
            }
        }
        if keep.len() == out.len() {
            return (side, false);
        }
        let exprs = keep.into_iter().map(Expr::Column).collect();
        (Arc::new(LogicalPlan::Project { input: side, exprs }), true)
    }
}

impl Rule<LogicalPlan> for ColumnPruning {
    fn name(&self) -> &str {
        "ColumnPruning"
    }

    fn apply(&self, plan: LogicalPlan) -> Transformed<LogicalPlan> {
        plan.transform_down(&mut |p| match p {
            // Project over Join: push the required set into both sides.
            LogicalPlan::Project { input, exprs } => match (*input).clone() {
                LogicalPlan::Join {
                    left,
                    right,
                    join_type,
                    condition,
                } => {
                    let mut required: Vec<ColumnRef> =
                        exprs.iter().flat_map(|e| e.references()).collect();
                    if let Some(c) = &condition {
                        required.extend(c.references());
                    }
                    let (new_left, lc) = Self::prune_side(left, &required);
                    let (new_right, rc) = Self::prune_side(right, &required);
                    let node = LogicalPlan::Project {
                        input: Arc::new(LogicalPlan::Join {
                            left: new_left,
                            right: new_right,
                            join_type,
                            condition,
                        }),
                        exprs,
                    };
                    if lc || rc {
                        Transformed::yes(node)
                    } else {
                        Transformed::no(node)
                    }
                }
                other => Transformed::no(LogicalPlan::Project {
                    input: Arc::new(other),
                    exprs,
                }),
            },
            // Aggregate: its input only needs grouping/aggregate refs.
            LogicalPlan::Aggregate {
                input,
                groupings,
                aggregates,
            } => {
                let required: Vec<ColumnRef> = groupings
                    .iter()
                    .chain(aggregates.iter())
                    .flat_map(|e| e.references())
                    .collect();
                let (new_input, ch) = Self::prune_side(input, &required);
                let node = LogicalPlan::Aggregate {
                    input: new_input,
                    groupings,
                    aggregates,
                };
                if ch {
                    Transformed::yes(node)
                } else {
                    Transformed::no(node)
                }
            }
            other => Transformed::no(other),
        })
    }
}

/// `Limit(Limit(x))` → single limit with the smaller bound.
pub struct CombineLimits;

impl Rule<LogicalPlan> for CombineLimits {
    fn name(&self) -> &str {
        "CombineLimits"
    }

    fn apply(&self, plan: LogicalPlan) -> Transformed<LogicalPlan> {
        plan.transform_up(&mut |p| match p {
            LogicalPlan::Limit { input, n } => match &*input {
                LogicalPlan::Limit { input: inner, n: m } => Transformed::yes(LogicalPlan::Limit {
                    input: inner.clone(),
                    n: n.min(*m),
                }),
                _ => Transformed::no(LogicalPlan::Limit { input, n }),
            },
            other => Transformed::no(other),
        })
    }
}

/// Push limits through projections and into union branches.
pub struct PushDownLimit;

impl Rule<LogicalPlan> for PushDownLimit {
    fn name(&self) -> &str {
        "PushDownLimit"
    }

    fn apply(&self, plan: LogicalPlan) -> Transformed<LogicalPlan> {
        plan.transform_up(&mut |p| match p {
            LogicalPlan::Limit { input, n } => match (*input).clone() {
                LogicalPlan::Project {
                    input: child,
                    exprs,
                } => Transformed::yes(LogicalPlan::Project {
                    input: Arc::new(LogicalPlan::Limit { input: child, n }),
                    exprs,
                }),
                LogicalPlan::Union { inputs } => {
                    // Cap each branch, keep the outer limit.
                    let already_capped = inputs
                        .iter()
                        .all(|i| matches!(&**i, LogicalPlan::Limit { n: m, .. } if *m <= n));
                    if already_capped {
                        return Transformed::no(LogicalPlan::Limit {
                            input: Arc::new(LogicalPlan::Union { inputs }),
                            n,
                        });
                    }
                    let capped: Vec<Arc<LogicalPlan>> = inputs
                        .into_iter()
                        .map(|i| Arc::new(LogicalPlan::Limit { input: i, n }))
                        .collect();
                    Transformed::yes(LogicalPlan::Limit {
                        input: Arc::new(LogicalPlan::Union { inputs: capped }),
                        n,
                    })
                }
                other => Transformed::no(LogicalPlan::Limit {
                    input: Arc::new(other),
                    n,
                }),
            },
            other => Transformed::no(other),
        })
    }
}
