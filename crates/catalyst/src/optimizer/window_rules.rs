//! Window-operator rules: frame normalization and narrowing.

use crate::expr::{Expr, FrameBound, FrameUnits, WindowFrame, WindowFunc};
use crate::plan::LogicalPlan;
use crate::rules::Rule;
use crate::tree::{Transformed, TreeNode};

/// Rewrite every window frame to the cheapest equivalent the executor can
/// run:
///
/// * frame-insensitive functions (`rank`, `row_number`, `dense_rank`,
///   `lag`, `lead`) get the canonical `ROWS CURRENT ROW .. CURRENT ROW`
///   frame, so the executor skips frame bookkeeping for them entirely;
/// * without ORDER BY every partition row is a peer of every other, so
///   any RANGE frame spans the whole partition and collapses to the
///   whole-partition frame, which the executor evaluates once per
///   partition instead of once per row.
pub struct NarrowWindowFrames;

/// The semantics-preserving normal form of `frame` for `func`.
fn normalized(func: WindowFunc, has_order_by: bool, frame: WindowFrame) -> WindowFrame {
    if !func.frame_sensitive() {
        return WindowFrame {
            units: FrameUnits::Rows,
            start: FrameBound::CurrentRow,
            end: FrameBound::CurrentRow,
        };
    }
    if frame.is_whole_partition() {
        return frame;
    }
    // RANGE bounds are peer-group edges; with no ORDER BY the whole
    // partition is one peer group, so an unbounded-to-peer-edge frame
    // covers every row.
    if !has_order_by && frame.units == FrameUnits::Range {
        return WindowFrame::whole_partition();
    }
    frame
}

impl Rule<LogicalPlan> for NarrowWindowFrames {
    fn name(&self) -> &str {
        "NarrowWindowFrames"
    }

    fn apply(&self, plan: LogicalPlan) -> Transformed<LogicalPlan> {
        plan.transform_up(&mut |p| match p {
            LogicalPlan::Window {
                input,
                window_exprs,
                partition_by,
                order_by,
            } => {
                let mut changed = false;
                let window_exprs: Vec<Expr> = window_exprs
                    .into_iter()
                    .map(|e| {
                        let t = e.transform_up(&mut |x| match x {
                            Expr::WindowFunction {
                                func,
                                args,
                                partition_by,
                                order_by,
                                frame,
                            } => {
                                let norm = normalized(func, !order_by.is_empty(), frame);
                                let node = Expr::WindowFunction {
                                    func,
                                    args,
                                    partition_by,
                                    order_by,
                                    frame: norm,
                                };
                                if norm == frame {
                                    Transformed::no(node)
                                } else {
                                    Transformed::yes(node)
                                }
                            }
                            other => Transformed::no(other),
                        });
                        changed |= t.changed;
                        t.data
                    })
                    .collect();
                let node = LogicalPlan::Window {
                    input,
                    window_exprs,
                    partition_by,
                    order_by,
                };
                if changed {
                    Transformed::yes(node)
                } else {
                    Transformed::no(node)
                }
            }
            other => Transformed::no(other),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::expr::builders::col;
    use crate::expr::{ColumnRef, SortOrder};
    use crate::types::DataType;
    use std::sync::Arc;

    fn window_plan(func: WindowFunc, order: bool, frame: WindowFrame) -> LogicalPlan {
        let base = LogicalPlan::LocalRelation {
            output: vec![
                ColumnRef::new("k", DataType::Long, false),
                ColumnRef::new("v", DataType::Long, false),
            ],
            rows: Arc::new(vec![]),
        };
        let order_by = if order {
            vec![SortOrder {
                expr: col("v"),
                ascending: true,
            }]
        } else {
            vec![]
        };
        let w = Expr::WindowFunction {
            func,
            args: vec![],
            partition_by: vec![col("k")],
            order_by: order_by.clone(),
            frame,
        }
        .alias("w");
        base.window(vec![w], vec![col("k")], order_by)
    }

    fn frame_of(plan: &LogicalPlan) -> WindowFrame {
        let mut out = None;
        plan.for_each(&mut |p| {
            for e in p.expressions() {
                e.for_each_node(&mut |x| {
                    if let Expr::WindowFunction { frame, .. } = x {
                        out = Some(*frame);
                    }
                });
            }
        });
        out.expect("no window function in plan")
    }

    #[test]
    fn rank_frame_collapses_to_current_row() {
        let plan = window_plan(WindowFunc::Rank, true, WindowFrame::default_for(true));
        let out = NarrowWindowFrames.apply(plan);
        assert!(out.changed);
        let f = frame_of(&out.data);
        assert_eq!(f.start, FrameBound::CurrentRow);
        assert_eq!(f.end, FrameBound::CurrentRow);
    }

    #[test]
    fn unbounded_both_ways_is_already_whole_partition() {
        let plan = window_plan(
            WindowFunc::Agg(crate::expr::AggFunc::Sum),
            true,
            WindowFrame {
                units: FrameUnits::Range,
                start: FrameBound::UnboundedPreceding,
                end: FrameBound::UnboundedFollowing,
            },
        );
        let out = NarrowWindowFrames.apply(plan);
        assert!(!out.changed);
        assert!(frame_of(&out.data).is_whole_partition());
    }

    #[test]
    fn running_range_frame_without_order_by_widens_to_partition() {
        let plan = window_plan(
            WindowFunc::Agg(crate::expr::AggFunc::Avg),
            false,
            WindowFrame {
                units: FrameUnits::Range,
                start: FrameBound::UnboundedPreceding,
                end: FrameBound::CurrentRow,
            },
        );
        let out = NarrowWindowFrames.apply(plan);
        assert!(out.changed);
        assert!(frame_of(&out.data).is_whole_partition());
    }

    #[test]
    fn ordered_running_frame_is_kept() {
        let frame = WindowFrame {
            units: FrameUnits::Range,
            start: FrameBound::UnboundedPreceding,
            end: FrameBound::CurrentRow,
        };
        let plan = window_plan(WindowFunc::Agg(crate::expr::AggFunc::Sum), true, frame);
        let out = NarrowWindowFrames.apply(plan);
        assert!(!out.changed);
        assert_eq!(frame_of(&out.data), frame);
    }
}
