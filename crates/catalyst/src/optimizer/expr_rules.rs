//! Expression-level optimization rules (§4.3.2): constant folding, null
//! propagation, Boolean simplification, cast simplification, LIKE
//! simplification, and the paper's `DecimalAggregates` showcase rule.

use crate::expr::{BinaryOperator, Expr};
use crate::interpreter;
use crate::plan::LogicalPlan;
use crate::row::Row;
use crate::rules::Rule;
use crate::tree::Transformed;
use crate::types::DataType;
use crate::value::Value;

/// Evaluate subexpressions with no attribute references at plan time.
pub struct ConstantFolding;

impl Rule<LogicalPlan> for ConstantFolding {
    fn name(&self) -> &str {
        "ConstantFolding"
    }

    fn apply(&self, plan: LogicalPlan) -> Transformed<LogicalPlan> {
        plan.transform_all_expressions(&mut |e| {
            // Never fold an Alias node itself: the alias carries the
            // output name and attribute id, and replacing it with a bare
            // literal silently drops the column from `output()`. The
            // alias's child has already been folded by the bottom-up
            // traversal.
            if matches!(e, Expr::Literal(_) | Expr::Alias { .. })
                || !e.is_resolved()
                || !e.foldable()
            {
                return Transformed::no(e);
            }
            match interpreter::eval(&e, &Row::empty()) {
                Ok(v) => Transformed::yes(Expr::Literal(v)),
                Err(_) => Transformed::no(e), // leave runtime errors to runtime
            }
        })
    }
}

/// `x + NULL → NULL`, `IS NULL(non-nullable) → false`, etc.
pub struct NullPropagation;

impl Rule<LogicalPlan> for NullPropagation {
    fn name(&self) -> &str {
        "NullPropagation"
    }

    fn apply(&self, plan: LogicalPlan) -> Transformed<LogicalPlan> {
        plan.transform_all_expressions(&mut |e| match e {
            // Arithmetic/comparison with a NULL literal operand is NULL.
            Expr::BinaryOp { left, op, right }
                if !op.is_boolean()
                    && (matches!(*left, Expr::Literal(Value::Null))
                        || matches!(*right, Expr::Literal(Value::Null))) =>
            {
                Transformed::yes(Expr::Literal(Value::Null))
            }
            Expr::IsNull(inner) => match &*inner {
                Expr::Literal(v) => Transformed::yes(Expr::Literal(Value::Boolean(v.is_null()))),
                Expr::Column(c) if !c.nullable => {
                    Transformed::yes(Expr::Literal(Value::Boolean(false)))
                }
                _ => Transformed::no(Expr::IsNull(inner)),
            },
            Expr::IsNotNull(inner) => match &*inner {
                Expr::Literal(v) => Transformed::yes(Expr::Literal(Value::Boolean(!v.is_null()))),
                Expr::Column(c) if !c.nullable => {
                    Transformed::yes(Expr::Literal(Value::Boolean(true)))
                }
                _ => Transformed::no(Expr::IsNotNull(inner)),
            },
            other => Transformed::no(other),
        })
    }
}

/// Boolean algebra: identity/annihilator elimination, double negation,
/// and `col = col` for non-nullable columns (enabled by unique expr ids).
pub struct BooleanSimplification;

impl Rule<LogicalPlan> for BooleanSimplification {
    fn name(&self) -> &str {
        "BooleanSimplification"
    }

    fn apply(&self, plan: LogicalPlan) -> Transformed<LogicalPlan> {
        plan.transform_all_expressions(&mut |e| match e {
            Expr::BinaryOp {
                left,
                op: BinaryOperator::And,
                right,
            } => match (&*left, &*right) {
                (Expr::Literal(Value::Boolean(true)), _) => Transformed::yes(*right),
                (_, Expr::Literal(Value::Boolean(true))) => Transformed::yes(*left),
                (Expr::Literal(Value::Boolean(false)), _)
                | (_, Expr::Literal(Value::Boolean(false))) => {
                    Transformed::yes(Expr::Literal(Value::Boolean(false)))
                }
                _ => Transformed::no(Expr::BinaryOp {
                    left,
                    op: BinaryOperator::And,
                    right,
                }),
            },
            Expr::BinaryOp {
                left,
                op: BinaryOperator::Or,
                right,
            } => match (&*left, &*right) {
                (Expr::Literal(Value::Boolean(false)), _) => Transformed::yes(*right),
                (_, Expr::Literal(Value::Boolean(false))) => Transformed::yes(*left),
                (Expr::Literal(Value::Boolean(true)), _)
                | (_, Expr::Literal(Value::Boolean(true))) => {
                    Transformed::yes(Expr::Literal(Value::Boolean(true)))
                }
                _ => Transformed::no(Expr::BinaryOp {
                    left,
                    op: BinaryOperator::Or,
                    right,
                }),
            },
            Expr::Not(inner) => match *inner {
                Expr::Literal(Value::Boolean(b)) => {
                    Transformed::yes(Expr::Literal(Value::Boolean(!b)))
                }
                Expr::Not(inner2) => Transformed::yes(*inner2),
                other => Transformed::no(Expr::Not(Box::new(other))),
            },
            // col = col is true for non-nullable columns; the unique-ID
            // analysis step (§4.3.1) is what makes this sound.
            Expr::BinaryOp {
                left,
                op: BinaryOperator::Eq,
                right,
            } => match (&*left, &*right) {
                (Expr::Column(a), Expr::Column(b)) if a.id == b.id && !a.nullable => {
                    Transformed::yes(Expr::Literal(Value::Boolean(true)))
                }
                _ => Transformed::no(Expr::BinaryOp {
                    left,
                    op: BinaryOperator::Eq,
                    right,
                }),
            },
            other => Transformed::no(other),
        })
    }
}

/// Remove casts to the expression's own type.
pub struct SimplifyCasts;

impl Rule<LogicalPlan> for SimplifyCasts {
    fn name(&self) -> &str {
        "SimplifyCasts"
    }

    fn apply(&self, plan: LogicalPlan) -> Transformed<LogicalPlan> {
        plan.transform_all_expressions(&mut |e| match e {
            Expr::Cast { expr, dtype } => match expr.data_type() {
                Ok(t) if t == dtype => Transformed::yes(*expr),
                _ => Transformed::no(Expr::Cast { expr, dtype }),
            },
            other => Transformed::no(other),
        })
    }
}

/// The paper's 12-line rule: LIKE patterns with simple shapes become
/// `starts_with` / `ends_with` / `contains` / equality calls.
pub struct SimplifyLike;

impl Rule<LogicalPlan> for SimplifyLike {
    fn name(&self) -> &str {
        "SimplifyLike"
    }

    fn apply(&self, plan: LogicalPlan) -> Transformed<LogicalPlan> {
        plan.transform_all_expressions(&mut |e| match e {
            Expr::Like {
                expr,
                pattern,
                negated: false,
            } => {
                let pat = match &*pattern {
                    Expr::Literal(Value::Str(s)) => s.clone(),
                    _ => {
                        return Transformed::no(Expr::Like {
                            expr,
                            pattern,
                            negated: false,
                        })
                    }
                };
                let inner = pat.trim_matches('%');
                // Only simplify when the inner text has no wildcards.
                if inner.contains('%') || inner.contains('_') {
                    return Transformed::no(Expr::Like {
                        expr,
                        pattern,
                        negated: false,
                    });
                }
                let starts = pat.starts_with('%');
                let ends = pat.ends_with('%');
                let make = |func| Expr::ScalarFn {
                    func,
                    args: vec![(*expr).clone(), Expr::Literal(Value::str(inner))],
                };
                match (starts, ends) {
                    (false, false) => {
                        Transformed::yes((*expr).clone().eq(Expr::Literal(Value::str(inner))))
                    }
                    (false, true) => Transformed::yes(make(crate::expr::ScalarFunc::StartsWith)),
                    (true, false) => Transformed::yes(make(crate::expr::ScalarFunc::EndsWith)),
                    (true, true) => Transformed::yes(make(crate::expr::ScalarFunc::Contains)),
                }
            }
            other => Transformed::no(other),
        })
    }
}

/// Maximum number of decimal digits representable in a Long.
const MAX_LONG_DIGITS: u8 = 18;

/// The paper's §4.3.2 `DecimalAggregates` rule, reproduced: sums over
/// small-precision decimals run on unscaled 64-bit longs and convert back.
pub struct DecimalAggregates;

impl Rule<LogicalPlan> for DecimalAggregates {
    fn name(&self) -> &str {
        "DecimalAggregates"
    }

    fn apply(&self, plan: LogicalPlan) -> Transformed<LogicalPlan> {
        plan.transform_all_expressions(&mut |e| match e {
            Expr::Agg {
                func: crate::expr::AggFunc::Sum,
                arg: Some(arg),
                distinct: false,
            } => {
                // Skip if already rewritten (argument is UnscaledValue).
                if matches!(*arg, Expr::UnscaledValue(_)) {
                    return Transformed::no(Expr::Agg {
                        func: crate::expr::AggFunc::Sum,
                        arg: Some(arg),
                        distinct: false,
                    });
                }
                match arg.data_type() {
                    Ok(DataType::Decimal(prec, scale)) if prec + 10 <= MAX_LONG_DIGITS => {
                        Transformed::yes(Expr::MakeDecimal {
                            expr: Box::new(Expr::Agg {
                                func: crate::expr::AggFunc::Sum,
                                arg: Some(Box::new(Expr::UnscaledValue(arg))),
                                distinct: false,
                            }),
                            precision: prec + 10,
                            scale,
                        })
                    }
                    _ => Transformed::no(Expr::Agg {
                        func: crate::expr::AggFunc::Sum,
                        arg: Some(arg),
                        distinct: false,
                    }),
                }
            }
            other => Transformed::no(other),
        })
    }
}
