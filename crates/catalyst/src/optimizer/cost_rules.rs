//! Cost-based optimizer rules (`spark.sql.cbo.enabled`): join
//! reordering by estimated cardinality, aggregates answered from source
//! statistics, and common-subexpression elimination.
//!
//! All three run in [`super::Optimizer::cbo_phase`], after the standard
//! and constraint batches, under the same [`crate::validation`] monitor
//! — a rewrite that breaks a plan invariant is rolled back. Estimates
//! come from [`crate::cost`]; they pick *plans*, never results, so a bad
//! estimate costs performance (and adaptive execution claws some of it
//! back at runtime) but never correctness.

use crate::cost::{self, StatsIndex};
use crate::expr::{AggFunc, ColumnRef, Expr, ExprId};
use crate::optimizer::plan_rules::{conjunction, split_conjuncts};
use crate::plan::{JoinType, LogicalPlan};
use crate::row::Row;
use crate::rules::Rule;
use crate::tree::{Transformed, TreeNode};
use crate::types::DataType;
use crate::value::Value;
use std::collections::HashSet;
use std::sync::Arc;

/// Attribute ids referenced by an expression.
fn attr_ids(e: &Expr) -> HashSet<ExprId> {
    let mut out = HashSet::new();
    e.for_each(&mut |n| {
        if let Expr::Column(c) = n {
            out.insert(c.id);
        }
    });
    out
}

// ---------------------------------------------------------------------
// Join reordering
// ---------------------------------------------------------------------

/// Reorder chains of inner equi-joins by estimated output cardinality.
///
/// A maximal subtree of `Inner` joins with conditions is flattened into
/// its relations and conjuncts, then rebuilt left-deep greedily: start
/// from the smallest estimated relation, repeatedly join the connected
/// relation that minimizes the estimated intermediate cardinality
/// (NDV-based equi-join selectivity). A `Project` restores the original
/// column order, so the rewrite is invisible to parents. Chains where
/// any relation lacks a row estimate, or where the greedy order would
/// introduce a cross product, are left untouched.
pub struct ReorderJoins;

/// True for a node that roots (part of) a reorderable chain.
fn is_chain_join(plan: &LogicalPlan) -> bool {
    matches!(
        plan,
        LogicalPlan::Join {
            join_type: JoinType::Inner,
            condition: Some(_),
            ..
        }
    )
}

/// Flatten a chain of inner joins into `(leaves, conjuncts)`. Bare
/// column-pruning projections interposed by the standard batches are
/// transparent: the rebuilt chain re-derives column flow from its
/// leaves, and the restoring `Project` on top keeps the schema parents
/// see unchanged.
fn flatten_chain(plan: &LogicalPlan, leaves: &mut Vec<LogicalPlan>, conjuncts: &mut Vec<Expr>) {
    match plan {
        LogicalPlan::Join {
            left,
            right,
            join_type: JoinType::Inner,
            condition: Some(cond),
        } => {
            flatten_chain(left, leaves, conjuncts);
            flatten_chain(right, leaves, conjuncts);
            conjuncts.extend(split_conjuncts(cond));
        }
        LogicalPlan::Project { exprs, input }
            if exprs.iter().all(|e| matches!(e, Expr::Column(_))) && is_chain_join(input) =>
        {
            flatten_chain(input, leaves, conjuncts);
        }
        other => leaves.push(other.clone()),
    }
}

struct ChainLeaf {
    plan: LogicalPlan,
    rows: f64,
    attrs: HashSet<ExprId>,
}

/// Greedy left-deep reorder. Returns `None` when the chain cannot or
/// need not be reordered.
fn reorder(
    original: &LogicalPlan,
    leaf_plans: Vec<LogicalPlan>,
    conjuncts: Vec<Expr>,
    idx: &StatsIndex,
) -> Option<LogicalPlan> {
    let mut leaves = Vec::with_capacity(leaf_plans.len());
    for plan in leaf_plans {
        let rows = cost::estimate_rows(&plan, idx)?;
        let attrs = plan.output().into_iter().map(|c| c.id).collect();
        leaves.push(ChainLeaf { plan, rows, attrs });
    }
    let conj_attrs: Vec<HashSet<ExprId>> = conjuncts.iter().map(attr_ids).collect();

    // Greedy order: smallest relation first, then the connected relation
    // with the smallest estimated join output.
    let n = leaves.len();
    let mut remaining: HashSet<usize> = (0..n).collect();
    let start = (0..n).min_by(|&a, &b| leaves[a].rows.total_cmp(&leaves[b].rows))?;
    remaining.remove(&start);
    let mut order = vec![start];
    let mut placed: HashSet<usize> = HashSet::new();
    let mut cur_attrs = leaves[start].attrs.clone();
    let mut cur_rows = leaves[start].rows;

    while !remaining.is_empty() {
        let mut best: Option<(usize, f64, Vec<usize>)> = None;
        for &j in &remaining {
            // Conjuncts that become fully evaluable by adding leaf j and
            // actually connect it to the current prefix.
            let applicable: Vec<usize> = (0..conjuncts.len())
                .filter(|&k| !placed.contains(&k))
                .filter(|&k| {
                    let a = &conj_attrs[k];
                    a.iter()
                        .all(|id| cur_attrs.contains(id) || leaves[j].attrs.contains(id))
                })
                .collect();
            let connects = applicable.iter().any(|&k| {
                let a = &conj_attrs[k];
                a.iter().any(|id| cur_attrs.contains(id))
                    && a.iter().any(|id| leaves[j].attrs.contains(id))
            });
            if !connects {
                continue;
            }
            let cond = conjunction(applicable.iter().map(|&k| conjuncts[k].clone()).collect());
            let card = cost::join_cardinality(
                cur_rows,
                leaves[j].rows,
                JoinType::Inner,
                cond.as_ref(),
                idx,
            );
            if best.as_ref().is_none_or(|(_, c, _)| card < *c) {
                best = Some((j, card, applicable));
            }
        }
        // A disconnected remainder would force a cross product — bail.
        let (j, card, applicable) = best?;
        remaining.remove(&j);
        placed.extend(applicable);
        cur_attrs.extend(leaves[j].attrs.iter().copied());
        cur_rows = card;
        order.push(j);
    }

    if order.iter().copied().eq(0..n) {
        return None; // already in the best order found
    }

    // Rebuild left-deep along `order`, attaching each conjunct at the
    // first join where all its attributes are available.
    let mut placed: HashSet<usize> = HashSet::new();
    let mut avail = leaves[order[0]].attrs.clone();
    let mut built = leaves[order[0]].plan.clone();
    for &j in &order[1..] {
        avail.extend(leaves[j].attrs.iter().copied());
        let here: Vec<usize> = (0..conjuncts.len())
            .filter(|k| !placed.contains(k))
            .filter(|&k| conj_attrs[k].iter().all(|id| avail.contains(id)))
            .collect();
        let cond = conjunction(here.iter().map(|&k| conjuncts[k].clone()).collect())?;
        placed.extend(here);
        built = LogicalPlan::Join {
            left: Arc::new(built),
            right: Arc::new(leaves[j].plan.clone()),
            join_type: JoinType::Inner,
            condition: Some(cond),
        };
    }
    if placed.len() != conjuncts.len() {
        return None; // a conjunct found no home — keep the original plan
    }

    // Restore the original column order (and schema) for parents.
    Some(LogicalPlan::Project {
        exprs: original.output().into_iter().map(Expr::Column).collect(),
        input: Arc::new(built),
    })
}

fn reorder_walk(plan: LogicalPlan, idx: &StatsIndex) -> Transformed<LogicalPlan> {
    if is_chain_join(&plan) {
        let mut leaves = Vec::new();
        let mut conjuncts = Vec::new();
        flatten_chain(&plan, &mut leaves, &mut conjuncts);
        if leaves.len() >= 3 {
            // Optimize *inside* each relation first (nested chains under
            // aggregates, projections, …), then order the chain itself.
            let mut rewritten = Vec::with_capacity(leaves.len());
            for l in leaves {
                rewritten.push(reorder_walk(l, idx).data);
            }
            if let Some(new_plan) = reorder(&plan, rewritten, conjuncts, idx) {
                return Transformed::yes(new_plan);
            }
        }
    }
    plan.map_children(&mut |c| reorder_walk(c, idx))
}

impl Rule<LogicalPlan> for ReorderJoins {
    fn name(&self) -> &str {
        "ReorderJoins"
    }

    fn apply(&self, tree: LogicalPlan) -> Transformed<LogicalPlan> {
        let idx = StatsIndex::build(&tree);
        reorder_walk(tree, &idx)
    }
}

// ---------------------------------------------------------------------
// Aggregates answered from statistics
// ---------------------------------------------------------------------

/// Answer global `COUNT(*)` / `COUNT(col)` / `MIN(col)` / `MAX(col)`
/// straight from source statistics, replacing the scan with a one-row
/// [`LogicalPlan::LocalRelation`].
///
/// Fires only when the statistics are *exact*: complete (not the
/// partial stats of a half-evicted cache), with known row and null
/// counts, over an unfiltered scan. MIN/MAX additionally require a type
/// whose statistics ordering matches SQL ordering (floats are excluded:
/// NaN sorts differently in stats than in aggregation).
pub struct AggregateFromStats;

/// Types whose stats min/max equal SQL MIN/MAX.
fn minmax_safe(dtype: &DataType) -> bool {
    matches!(
        dtype,
        DataType::Int
            | DataType::Long
            | DataType::String
            | DataType::Boolean
            | DataType::Date
            | DataType::Timestamp
    )
}

/// The statistics entry for column `name` of `relation`, if exact.
fn exact_stats<'a>(
    stats: &'a [crate::source::ColumnStatistics],
    schema: &crate::schema::Schema,
    name: &str,
) -> Option<&'a crate::source::ColumnStatistics> {
    let i = schema.index_of(name).ok()?;
    stats.get(i).filter(|s| !s.partial)
}

/// Compute one aggregate from stats, or `None` if it cannot be proven.
fn answer_from_stats(
    func: AggFunc,
    arg: Option<&Expr>,
    distinct: bool,
    stats: &[crate::source::ColumnStatistics],
    schema: &crate::schema::Schema,
    total_rows: u64,
) -> Option<Value> {
    if distinct {
        return None;
    }
    match (func, arg) {
        (AggFunc::Count, None) => Some(Value::Long(total_rows as i64)),
        (AggFunc::Count, Some(Expr::Column(c))) => {
            let s = exact_stats(stats, schema, &c.name)?;
            let (rows, nulls) = (s.row_count?, s.null_count?);
            Some(Value::Long(rows.saturating_sub(nulls) as i64))
        }
        (AggFunc::Min | AggFunc::Max, Some(Expr::Column(c))) => {
            if !minmax_safe(&c.dtype) {
                return None;
            }
            let s = exact_stats(stats, schema, &c.name)?;
            let (rows, nulls) = (s.row_count?, s.null_count?);
            let bound = if func == AggFunc::Min { &s.min } else { &s.max };
            match bound {
                Some(v) => Some(v.clone()),
                // No recorded bound is only provable when there are no
                // non-null values: MIN/MAX of nothing is NULL.
                None if nulls == rows => Some(Value::Null),
                None => None,
            }
        }
        _ => None,
    }
}

impl Rule<LogicalPlan> for AggregateFromStats {
    fn name(&self) -> &str {
        "AggregateFromStats"
    }

    fn apply(&self, tree: LogicalPlan) -> Transformed<LogicalPlan> {
        tree.transform_up(&mut |plan| {
            let LogicalPlan::Aggregate {
                input,
                groupings,
                aggregates,
            } = &plan
            else {
                return Transformed::no(plan);
            };
            if !groupings.is_empty() {
                return Transformed::no(plan);
            }
            // Unfiltered scan, possibly under pass-through (pruning)
            // projections of bare columns.
            let mut source = input.as_ref();
            while let LogicalPlan::Project { exprs, input: next } = source {
                if !exprs.iter().all(|e| matches!(e, Expr::Column(_))) {
                    return Transformed::no(plan);
                }
                source = next.as_ref();
            }
            let LogicalPlan::Scan {
                relation, filters, ..
            } = source
            else {
                return Transformed::no(plan);
            };
            if !filters.is_empty() {
                return Transformed::no(plan);
            }
            let Some(stats) = relation.column_statistics() else {
                return Transformed::no(plan);
            };
            if stats.iter().any(|s| s.partial) {
                return Transformed::no(plan);
            }
            let Some(total_rows) = relation
                .row_count()
                .or_else(|| stats.first().and_then(|s| s.row_count))
            else {
                return Transformed::no(plan);
            };
            let schema = relation.schema();

            let mut out_attrs: Vec<ColumnRef> = Vec::with_capacity(aggregates.len());
            let mut values: Vec<Value> = Vec::with_capacity(aggregates.len());
            for agg in aggregates {
                let (inner, attr) = match (agg, agg.to_attribute()) {
                    (Expr::Alias { child, .. }, Ok(attr)) => (child.as_ref(), attr),
                    _ => return Transformed::no(plan),
                };
                let Expr::Agg {
                    func,
                    arg,
                    distinct,
                } = inner
                else {
                    return Transformed::no(plan);
                };
                let Some(v) = answer_from_stats(
                    *func,
                    arg.as_deref(),
                    *distinct,
                    &stats,
                    schema.as_ref(),
                    total_rows,
                ) else {
                    return Transformed::no(plan);
                };
                out_attrs.push(attr);
                values.push(v);
            }
            Transformed::yes(LogicalPlan::LocalRelation {
                output: out_attrs,
                rows: Arc::new(vec![Row::new(values)]),
            })
        })
    }
}

// ---------------------------------------------------------------------
// Common-subexpression elimination
// ---------------------------------------------------------------------

/// Hoist subexpressions that occur more than once — across one
/// projection's expressions, or shared between a projection and the
/// filter directly beneath it — into a project below, so each is
/// evaluated once per row instead of once per occurrence.
///
/// Only deterministic, side-effect-free expressions are hoisted (no
/// UDFs, aggregates, or window functions). The CBO cleanup batch
/// deliberately omits `CollapseProjects` and `PushDownPredicate`, which
/// would inline the hoisted expressions right back.
pub struct CommonSubexprElimination;

/// Cheap leaf expressions that are never worth hoisting.
fn trivial(e: &Expr) -> bool {
    matches!(
        e,
        Expr::Literal(_) | Expr::Column(_) | Expr::BoundRef { .. } | Expr::Wildcard { .. }
    )
}

/// Expressions that may not be duplicated-or-hoisted safely.
fn hoistable(e: &Expr) -> bool {
    let mut ok = true;
    e.for_each(&mut |n| match n {
        Expr::Udf { .. }
        | Expr::Agg { .. }
        | Expr::WindowFunction { .. }
        | Expr::UnresolvedAttribute { .. }
        | Expr::UnresolvedFunction { .. }
        | Expr::Wildcard { .. } => ok = false,
        _ => {}
    });
    ok && e.data_type().is_ok()
}

/// Count how often each non-trivial subexpression occurs across `exprs`.
fn repeated_subexprs(exprs: &[&Expr]) -> Vec<Expr> {
    let mut counts: Vec<(Expr, usize)> = Vec::new();
    for e in exprs {
        e.for_each(&mut |n| {
            // Skip the alias wrapper itself; its child is visited too.
            if trivial(n) || matches!(n, Expr::Alias { .. }) {
                return;
            }
            match counts.iter_mut().find(|(c, _)| c == n) {
                Some((_, k)) => *k += 1,
                None => counts.push((n.clone(), 1)),
            }
        });
    }
    let repeated: Vec<Expr> = counts
        .iter()
        .filter(|(e, k)| *k >= 2 && hoistable(e))
        .map(|(e, _)| e.clone())
        .collect();
    // Keep only maximal candidates: a repeated subexpression of another
    // repeated expression is eliminated for free when its parent is.
    repeated
        .iter()
        .filter(|e| {
            !repeated.iter().any(|other| {
                if other == *e {
                    return false;
                }
                let mut contained = false;
                other.for_each(&mut |n| contained |= *n == **e);
                contained
            })
        })
        .cloned()
        .collect()
}

/// Replace occurrences of each `(pattern, replacement)` in `e`.
fn substitute(e: Expr, subs: &[(Expr, Expr)]) -> Expr {
    e.transform_up(&mut |n| match subs.iter().find(|(p, _)| *p == n) {
        Some((_, r)) => Transformed::yes(r.clone()),
        None => Transformed::no(n),
    })
    .data
}

impl Rule<LogicalPlan> for CommonSubexprElimination {
    fn name(&self) -> &str {
        "CommonSubexprElimination"
    }

    fn apply(&self, tree: LogicalPlan) -> Transformed<LogicalPlan> {
        tree.transform_up(&mut |plan| {
            let LogicalPlan::Project { exprs, input } = &plan else {
                return Transformed::no(plan);
            };
            // Share across the filter directly beneath, when present.
            let (filter_pred, base) = match input.as_ref() {
                LogicalPlan::Filter { predicate, input } => (Some(predicate), input.clone()),
                _ => (None, input.clone()),
            };
            let mut scan_list: Vec<&Expr> = exprs.iter().collect();
            if let Some(p) = filter_pred {
                scan_list.push(p);
            }
            let candidates = repeated_subexprs(&scan_list);
            // Hoisted expressions must be computable from the base input
            // (everything the filter and projection see comes from it).
            let base_ids: HashSet<ExprId> = base.output().into_iter().map(|c| c.id).collect();
            let candidates: Vec<Expr> = candidates
                .into_iter()
                .filter(|e| attr_ids(e).is_subset(&base_ids))
                .collect();
            if candidates.is_empty() {
                return Transformed::no(plan);
            }

            let mut inner_exprs: Vec<Expr> = base.output().into_iter().map(Expr::Column).collect();
            let mut subs: Vec<(Expr, Expr)> = Vec::with_capacity(candidates.len());
            for (i, sub) in candidates.into_iter().enumerate() {
                let aliased = sub.clone().alias(format!("_cse{i}"));
                let Ok(attr) = aliased.to_attribute() else {
                    continue;
                };
                inner_exprs.push(aliased);
                subs.push((sub, Expr::Column(attr)));
            }
            if subs.is_empty() {
                return Transformed::no(plan);
            }

            let inner = LogicalPlan::Project {
                exprs: inner_exprs,
                input: Arc::new(base.as_ref().clone()),
            };
            let below: LogicalPlan = match filter_pred {
                Some(p) => LogicalPlan::Filter {
                    predicate: substitute(p.clone(), &subs),
                    input: Arc::new(inner),
                },
                None => inner,
            };
            let out_exprs: Vec<Expr> = exprs.iter().map(|e| substitute(e.clone(), &subs)).collect();
            Transformed::yes(LogicalPlan::Project {
                exprs: out_exprs,
                input: Arc::new(below),
            })
        })
    }
}
