//! Logical optimization (§4.3.2): rule-based rewrites over resolved
//! plans, executed in fixed-point batches.

pub mod constraint_rules;
pub mod cost_rules;
pub mod expr_rules;
pub mod plan_rules;
pub mod window_rules;

pub use constraint_rules::{
    InferIsNotNullFilters, PropagateEmptyRelations, PruneConstrainedFilters,
    SimplifyDomainComparisons, UnwrapLosslessCasts,
};
pub use cost_rules::{AggregateFromStats, CommonSubexprElimination, ReorderJoins};
pub use expr_rules::{
    BooleanSimplification, ConstantFolding, DecimalAggregates, NullPropagation, SimplifyCasts,
    SimplifyLike,
};
pub use plan_rules::{
    conjunction, split_conjuncts, CollapseProjects, ColumnPruning, CombineFilters, CombineLimits,
    EliminateSubqueryAliases, PruneFilters, PushDownLimit, PushDownPredicate,
};
pub use window_rules::NarrowWindowFrames;

use crate::plan::LogicalPlan;
use crate::rules::{
    Batch, ExecutionMonitor, InvariantViolation, RuleExecutor, RuleHealthReport, TraceEvent,
};
use crate::validation::PlanValidator;

/// The logical optimizer: a rule executor with the standard batches plus
/// any user-registered extension batches (§4.4).
pub struct Optimizer {
    executor: RuleExecutor<LogicalPlan>,
}

impl Default for Optimizer {
    fn default() -> Self {
        Optimizer::new()
    }
}

impl Optimizer {
    /// Standard rule batches.
    pub fn new() -> Self {
        let executor = RuleExecutor::new(vec![
            Batch::once("Finish Analysis", vec![Box::new(EliminateSubqueryAliases)]),
            Batch::fixed_point(
                "Operator Optimizations",
                vec![
                    Box::new(ConstantFolding),
                    Box::new(NullPropagation),
                    Box::new(BooleanSimplification),
                    Box::new(SimplifyCasts),
                    Box::new(SimplifyLike),
                    Box::new(CombineFilters),
                    Box::new(PushDownPredicate),
                    Box::new(PruneFilters),
                    Box::new(CollapseProjects),
                    Box::new(ColumnPruning),
                    Box::new(CombineLimits),
                    Box::new(PushDownLimit),
                    Box::new(DecimalAggregates),
                    Box::new(NarrowWindowFrames),
                ],
            ),
        ]);
        Optimizer { executor }
    }

    /// The constraint-driven phase (`spark.sql.constraints.enabled`):
    /// rules consuming the [`crate::analysis::constraints`] abstract
    /// interpretation, followed by a cleanup pass of the standard rules
    /// to fold the literals and collapse the filters the constraint
    /// rules expose. Runs as a separate executor *after* [`Optimizer::new`]
    /// so it sees the settled plan shape.
    pub fn constraint_phase() -> Self {
        let executor = RuleExecutor::new(vec![
            Batch::fixed_point(
                "Constraint Optimizations",
                vec![
                    Box::new(UnwrapLosslessCasts),
                    Box::new(SimplifyDomainComparisons),
                    Box::new(InferIsNotNullFilters),
                    Box::new(PruneConstrainedFilters),
                    Box::new(PropagateEmptyRelations),
                ],
            ),
            Batch::fixed_point(
                "Constraint Cleanup",
                vec![
                    Box::new(ConstantFolding),
                    Box::new(BooleanSimplification),
                    Box::new(CombineFilters),
                    Box::new(PushDownPredicate),
                    Box::new(PruneFilters),
                    Box::new(CollapseProjects),
                    Box::new(ColumnPruning),
                ],
            ),
        ]);
        Optimizer { executor }
    }

    /// The cost-based phase (`spark.sql.cbo.enabled`): statistics-driven
    /// join reordering, aggregates answered from source statistics, and
    /// common-subexpression elimination, followed by a cleanup pass.
    /// Runs after [`Optimizer::constraint_phase`] so estimates see the
    /// settled plan. The cleanup batch deliberately omits
    /// `CollapseProjects` and `PushDownPredicate`: both would inline the
    /// subexpressions CSE just hoisted.
    pub fn cbo_phase() -> Self {
        let executor = RuleExecutor::new(vec![
            Batch::once(
                "CBO Statistics Aggregates",
                vec![Box::new(AggregateFromStats)],
            ),
            Batch::once("CBO Join Reordering", vec![Box::new(ReorderJoins)]),
            Batch::once(
                "CBO Subexpression Elimination",
                vec![Box::new(CommonSubexprElimination)],
            ),
            Batch::fixed_point(
                "CBO Cleanup",
                vec![
                    Box::new(ConstantFolding),
                    Box::new(BooleanSimplification),
                    Box::new(PruneFilters),
                    Box::new(ColumnPruning),
                ],
            ),
        ]);
        Optimizer { executor }
    }

    /// Append a user batch (extension point).
    pub fn add_batch(&mut self, batch: Batch<LogicalPlan>) {
        self.executor.add_batch(batch);
    }

    /// Optimize a resolved plan.
    ///
    /// When plan validation is enabled ([`crate::validation::enabled`] —
    /// default in debug builds, `CATALYST_VALIDATE=1` in release), every
    /// rewrite is checked as a post-condition and the process panics with
    /// a full report (batch, rule, iteration, invariant, plan diff) if
    /// any rule breaks a plan invariant. Use [`Optimizer::optimize_monitored`]
    /// for a non-panicking variant that returns the violations.
    pub fn optimize(&self, plan: LogicalPlan) -> LogicalPlan {
        if crate::validation::enabled() {
            let out = self.optimize_monitored(plan);
            if !out.violations.is_empty() {
                let mut report = String::from("optimizer rule broke a plan invariant:\n");
                for v in &out.violations {
                    report.push_str(&v.to_string());
                    report.push('\n');
                }
                panic!("{report}");
            }
            out.plan
        } else {
            self.executor.execute(plan, None)
        }
    }

    /// Optimize while recording which rules fired (for EXPLAIN-style
    /// tracing).
    pub fn optimize_traced(&self, plan: LogicalPlan) -> (LogicalPlan, Vec<TraceEvent>) {
        let mut trace = Vec::new();
        let out = self.executor.execute(plan, Some(&mut trace));
        (out, trace)
    }

    /// Optimize under a caller-supplied [`ExecutionMonitor`] — the
    /// building block behind [`Optimizer::optimize_monitored`] for
    /// callers that want health counters without validation (pass
    /// `ExecutionMonitor::new()`) or want to keep the monitor around.
    pub fn optimize_with(
        &self,
        plan: LogicalPlan,
        monitor: &mut ExecutionMonitor<'_, LogicalPlan>,
    ) -> LogicalPlan {
        self.executor.execute_monitored(plan, monitor)
    }

    /// Optimize under full monitoring: per-rule health counters, a
    /// plan-change log, and invariant validation with rollback. A rewrite
    /// that violates an invariant is discarded (the plan keeps its
    /// pre-rule shape) and reported in [`OptimizeOutcome::violations`];
    /// this never panics.
    pub fn optimize_monitored(&self, plan: LogicalPlan) -> OptimizeOutcome {
        let validator = PlanValidator::new();
        let mut monitor = ExecutionMonitor::with_validator(&validator);
        let plan = self.executor.execute_monitored(plan, &mut monitor);
        OptimizeOutcome {
            plan,
            trace: monitor.trace,
            health: monitor.health,
            violations: monitor.violations,
        }
    }
}

/// Everything one monitored optimizer run produces.
pub struct OptimizeOutcome {
    /// The optimized plan (violating rewrites rolled back).
    pub plan: LogicalPlan,
    /// Plan-change log: every fired rule with its before/after diff, plus
    /// non-convergence markers.
    pub trace: Vec<TraceEvent>,
    /// Per-rule fire counts, effectiveness, idempotence probes, and
    /// non-converged batches.
    pub health: RuleHealthReport,
    /// Rewrites rejected by the validator, with full context.
    pub violations: Vec<InvariantViolation>,
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::analysis::{Analyzer, FunctionRegistry, SimpleCatalog};
    use crate::expr::builders::{col, lit, sum};
    use crate::expr::{ColumnRef, Expr, ScalarFunc};
    use crate::plan::JoinType;
    use crate::row::Row;
    use crate::tree::{Transformed, TreeNode};
    use crate::types::DataType;
    use crate::value::Value;
    use std::sync::Arc;

    fn table(cols: &[(&str, DataType)]) -> LogicalPlan {
        LogicalPlan::LocalRelation {
            output: cols
                .iter()
                .map(|(n, t)| ColumnRef::new(*n, t.clone(), false))
                .collect(),
            rows: Arc::new(vec![Row::new(vec![])]),
        }
    }

    fn analyze(plan: LogicalPlan, tables: Vec<(&str, LogicalPlan)>) -> LogicalPlan {
        let catalog = Arc::new(SimpleCatalog::default());
        for (n, p) in tables {
            catalog.register(n, p);
        }
        Analyzer::new(catalog, Arc::new(FunctionRegistry::default()))
            .analyze(plan)
            .unwrap()
    }

    fn count_nodes(plan: &LogicalPlan, pred: impl Fn(&LogicalPlan) -> bool) -> usize {
        let mut n = 0;
        plan.for_each(&mut |p| {
            if pred(p) {
                n += 1;
            }
        });
        n
    }

    #[test]
    fn constant_folding_folds_arithmetic() {
        let t = table(&[("x", DataType::Long)]);
        let plan = analyze(
            LogicalPlan::UnresolvedRelation { name: "t".into() }
                .project(vec![col("x").add(lit(1i64).add(lit(2i64))).alias("y")]),
            vec![("t", t)],
        );
        let opt = Optimizer::new().optimize(plan);
        let mut saw_three = false;
        opt.for_each(&mut |p| {
            for e in p.expressions() {
                e.for_each_node(&mut |e| {
                    if matches!(e, Expr::Literal(Value::Long(3))) {
                        saw_three = true;
                    }
                });
            }
        });
        assert!(saw_three, "{opt}");
    }

    #[test]
    fn filter_true_is_removed_filter_false_becomes_empty() {
        let t = table(&[("x", DataType::Long)]);
        let plan = analyze(
            LogicalPlan::UnresolvedRelation { name: "t".into() }.filter(lit(1i64).lt(lit(2i64))),
            vec![("t", t.clone())],
        );
        let opt = Optimizer::new().optimize(plan);
        assert_eq!(
            count_nodes(&opt, |p| matches!(p, LogicalPlan::Filter { .. })),
            0
        );

        let plan = analyze(
            LogicalPlan::UnresolvedRelation { name: "t".into() }.filter(lit(1i64).gt(lit(2i64))),
            vec![("t", t)],
        );
        let opt = Optimizer::new().optimize(plan);
        assert_eq!(
            count_nodes(
                &opt,
                |p| matches!(p, LogicalPlan::LocalRelation { rows, .. } if rows.is_empty())
            ),
            1,
            "{opt}"
        );
    }

    #[test]
    fn like_prefix_becomes_starts_with() {
        let t = table(&[("s", DataType::String)]);
        let plan = analyze(
            LogicalPlan::UnresolvedRelation { name: "t".into() }.filter(col("s").like(lit("abc%"))),
            vec![("t", t)],
        );
        let opt = Optimizer::new().optimize(plan);
        let mut saw = false;
        opt.for_each(&mut |p| {
            for e in p.expressions() {
                e.for_each_node(&mut |e| {
                    if matches!(
                        e,
                        Expr::ScalarFn {
                            func: ScalarFunc::StartsWith,
                            ..
                        }
                    ) {
                        saw = true;
                    }
                });
            }
        });
        assert!(saw, "{opt}");
    }

    #[test]
    fn like_infix_becomes_contains_and_exact_becomes_eq() {
        let t = table(&[("s", DataType::String)]);
        let plan = analyze(
            LogicalPlan::UnresolvedRelation { name: "t".into() }
                .filter(col("s").like(lit("%mid%")).and(col("s").like(lit("exact")))),
            vec![("t", t)],
        );
        let opt = Optimizer::new().optimize(plan);
        let (mut contains, mut eq) = (false, false);
        opt.for_each(&mut |p| {
            for e in p.expressions() {
                e.for_each_node(&mut |e| match e {
                    Expr::ScalarFn {
                        func: ScalarFunc::Contains,
                        ..
                    } => contains = true,
                    Expr::BinaryOp {
                        op: crate::expr::BinaryOperator::Eq,
                        ..
                    } => eq = true,
                    _ => {}
                });
            }
        });
        assert!(contains && eq, "{opt}");
    }

    fn depth_of(p: &LogicalPlan, f: &dyn Fn(&LogicalPlan) -> bool, d: usize) -> Option<usize> {
        if f(p) {
            return Some(d);
        }
        for c in p.children() {
            if let Some(found) = depth_of(&c, f, d + 1) {
                return Some(found);
            }
        }
        None
    }

    #[test]
    fn predicate_pushes_through_projection() {
        let t = table(&[("x", DataType::Long), ("y", DataType::Long)]);
        let plan = analyze(
            LogicalPlan::UnresolvedRelation { name: "t".into() }
                .project(vec![col("x"), col("y")])
                .filter(col("x").gt(lit(5i64))),
            vec![("t", t)],
        );
        let opt = Optimizer::new().optimize(plan);
        let proj_depth = depth_of(&opt, &|p| matches!(p, LogicalPlan::Project { .. }), 0);
        let filter_depth = depth_of(&opt, &|p| matches!(p, LogicalPlan::Filter { .. }), 0);
        match (proj_depth, filter_depth) {
            (Some(pd), Some(fd)) => {
                assert!(
                    fd > pd,
                    "filter ({fd}) should be below project ({pd}) in\n{opt}"
                )
            }
            _ => panic!("missing nodes in\n{opt}"),
        }
    }

    #[test]
    fn predicate_splits_across_join() {
        let l = table(&[("a", DataType::Long)]);
        let r = table(&[("b", DataType::Long)]);
        let join = LogicalPlan::UnresolvedRelation { name: "l".into() }.join(
            LogicalPlan::UnresolvedRelation { name: "r".into() },
            JoinType::Inner,
            Some(col("a").eq(col("b"))),
        );
        let plan = analyze(
            join.filter(col("a").gt(lit(1i64)).and(col("b").lt(lit(10i64)))),
            vec![("l", l), ("r", r)],
        );
        let opt = Optimizer::new().optimize(plan);
        fn top_filter(p: &LogicalPlan) -> bool {
            match p {
                LogicalPlan::Filter { input, .. } => matches!(&**input, LogicalPlan::Join { .. }),
                _ => false,
            }
        }
        assert_eq!(count_nodes(&opt, top_filter), 0, "{opt}");
        assert_eq!(
            count_nodes(&opt, |p| matches!(p, LogicalPlan::Filter { .. })),
            2,
            "{opt}"
        );
    }

    #[test]
    fn column_pruning_narrows_join_inputs() {
        let l = table(&[("a", DataType::Long), ("unused1", DataType::String)]);
        let r = table(&[("b", DataType::Long), ("unused2", DataType::String)]);
        let plan = analyze(
            LogicalPlan::UnresolvedRelation { name: "l".into() }
                .join(
                    LogicalPlan::UnresolvedRelation { name: "r".into() },
                    JoinType::Inner,
                    Some(col("a").eq(col("b"))),
                )
                .project(vec![col("a")]),
            vec![("l", l), ("r", r)],
        );
        let opt = Optimizer::new().optimize(plan);
        let mut join_input_widths = vec![];
        opt.for_each(&mut |p| {
            if let LogicalPlan::Join { left, right, .. } = p {
                join_input_widths.push((left.output().len(), right.output().len()));
            }
        });
        assert_eq!(join_input_widths, vec![(1, 1)], "{opt}");
    }

    #[test]
    fn decimal_aggregates_rewrites_small_precision_sums() {
        let t = table(&[("d", DataType::Decimal(6, 2))]);
        let plan = analyze(
            LogicalPlan::UnresolvedRelation { name: "t".into() }
                .aggregate(vec![], vec![sum(col("d")).alias("s")]),
            vec![("t", t)],
        );
        let opt = Optimizer::new().optimize(plan);
        let mut saw_make_decimal = false;
        let mut saw_unscaled = false;
        opt.for_each(&mut |p| {
            for e in p.expressions() {
                e.for_each_node(&mut |e| match e {
                    Expr::MakeDecimal {
                        precision: 16,
                        scale: 2,
                        ..
                    } => saw_make_decimal = true,
                    Expr::UnscaledValue(_) => saw_unscaled = true,
                    _ => {}
                });
            }
        });
        assert!(saw_make_decimal && saw_unscaled, "{opt}");
    }

    #[test]
    fn decimal_aggregates_skips_large_precision() {
        let t = table(&[("d", DataType::Decimal(12, 2))]);
        let plan = analyze(
            LogicalPlan::UnresolvedRelation { name: "t".into() }
                .aggregate(vec![], vec![sum(col("d")).alias("s")]),
            vec![("t", t)],
        );
        let opt = Optimizer::new().optimize(plan);
        let mut saw_make_decimal = false;
        opt.for_each(&mut |p| {
            for e in p.expressions() {
                e.for_each_node(&mut |e| {
                    if matches!(e, Expr::MakeDecimal { .. }) {
                        saw_make_decimal = true;
                    }
                });
            }
        });
        assert!(!saw_make_decimal, "{opt}");
    }

    #[test]
    fn limits_combine_and_push_through_projects() {
        let t = table(&[("x", DataType::Long)]);
        let plan = analyze(
            LogicalPlan::UnresolvedRelation { name: "t".into() }
                .limit(100)
                .project(vec![col("x")])
                .limit(10),
            vec![("t", t)],
        );
        let opt = Optimizer::new().optimize(plan);
        let mut limits = vec![];
        opt.for_each(&mut |p| {
            if let LogicalPlan::Limit { n, .. } = p {
                limits.push(*n);
            }
        });
        assert_eq!(limits, vec![10], "{opt}");
    }

    #[test]
    fn user_batches_extend_the_optimizer() {
        use crate::rules::{Batch, FnRule};
        let t = table(&[("x", DataType::Long)]);
        let plan = analyze(
            LogicalPlan::UnresolvedRelation { name: "t".into() }.limit(7),
            vec![("t", t)],
        );
        let mut opt = Optimizer::new();
        opt.add_batch(Batch::once(
            "user",
            vec![Box::new(FnRule::new("DoubleLimit", |p: LogicalPlan| {
                p.transform_up(&mut |p| match p {
                    LogicalPlan::Limit { input, n } => {
                        Transformed::yes(LogicalPlan::Limit { input, n: n * 2 })
                    }
                    other => Transformed::no(other),
                })
            }))],
        ));
        let out = opt.optimize(plan);
        let mut limits = vec![];
        out.for_each(&mut |p| {
            if let LogicalPlan::Limit { n, .. } = p {
                limits.push(*n);
            }
        });
        assert_eq!(limits, vec![14]);
    }

    #[test]
    fn trace_reports_fired_rules() {
        let t = table(&[("x", DataType::Long)]);
        let plan = analyze(
            LogicalPlan::UnresolvedRelation { name: "t".into() }.filter(lit(1i64).lt(lit(2i64))),
            vec![("t", t)],
        );
        let (_, trace) = Optimizer::new().optimize_traced(plan);
        assert!(trace.iter().any(|e| e.rule == "ConstantFolding"));
        assert!(trace.iter().any(|e| e.rule == "PruneFilters"));
    }
}
