//! Constraint-driven optimizations: rules that consume the bottom-up
//! abstract interpretation in [`crate::analysis::constraints`].
//!
//! These run as a separate optimizer phase *after* the standard batches
//! (gated by `spark.sql.constraints.enabled`), because they want to see
//! the plan in its settled shape — filters combined and pushed, casts
//! simplified — before reasoning about nullability and value domains.
//!
//! Soundness notes that every rule here leans on:
//!
//! * Domains describe the **non-NULL** values an attribute can take;
//!   nullability is tracked separately. An outer join therefore only
//!   flips nullability, never widens a domain.
//! * Filter semantics drop rows whose predicate is NULL, so a conjunct
//!   that can *never be TRUE* (`Determination::never_true`) empties the
//!   filter even when it could evaluate to NULL.
//! * A global aggregate over an empty input still returns one row, which
//!   [`constraints::node_facts`] already accounts for: such a node is
//!   never marked `always_empty`, so [`PropagateEmptyRelations`] cannot
//!   prune it.

use crate::analysis::constraints::{
    self, determine, lossless_cast, null_rejected_columns, Determination, NodeFacts,
};
use crate::expr::{BinaryOperator, ColumnRef, Expr};
use crate::plan::{JoinType, LogicalPlan};
use crate::rules::Rule;
use crate::tree::{Transformed, TreeNode};
use crate::value::Value;

use super::{conjunction, split_conjuncts};

/// Merged facts of a node's children — the frame its expressions
/// evaluate against.
fn child_frame(plan: &LogicalPlan) -> NodeFacts {
    constraints::input_facts(plan)
}

// ---------------------------------------------------------------------------
// PruneConstrainedFilters
// ---------------------------------------------------------------------------

/// Drop filter conjuncts the constraint pass proves always-TRUE, and
/// rewrite filters with a never-TRUE conjunct (definitely FALSE *or*
/// NULL — either way the row is dropped) to an empty relation.
pub struct PruneConstrainedFilters;

impl Rule<LogicalPlan> for PruneConstrainedFilters {
    fn name(&self) -> &str {
        "PruneConstrainedFilters"
    }

    fn apply(&self, plan: LogicalPlan) -> Transformed<LogicalPlan> {
        plan.transform_up(&mut |p| {
            let LogicalPlan::Filter { input, predicate } = p else {
                return Transformed::no(p);
            };
            // Judge each conjunct against the input facts refined by the
            // conjuncts already accepted, so pairwise contradictions
            // (`a > 10 AND a < 5`) surface as an empty frame even though
            // neither conjunct is decidable alone.
            let mut frame = constraints::facts(&input);
            let conjuncts = split_conjuncts(&predicate);
            let mut kept = Vec::with_capacity(conjuncts.len());
            let mut changed = false;
            for c in conjuncts {
                match determine(&c, &frame) {
                    Determination::AlwaysTrue => changed = true,
                    d if d.never_true() => {
                        // Filter output == input output; an empty relation
                        // with the same attributes keeps parents resolved.
                        return Transformed::yes(LogicalPlan::empty(input.output()));
                    }
                    _ => {
                        constraints::apply_conjunct(&mut frame, &c);
                        if frame.always_empty {
                            return Transformed::yes(LogicalPlan::empty(input.output()));
                        }
                        kept.push(c);
                    }
                }
            }
            if !changed {
                return Transformed::no(LogicalPlan::Filter { input, predicate });
            }
            match conjunction(kept) {
                Some(pred) => Transformed::yes(LogicalPlan::Filter {
                    input,
                    predicate: pred,
                }),
                None => Transformed::yes(input.as_ref().clone()),
            }
        })
    }
}

// ---------------------------------------------------------------------------
// PropagateEmptyRelations
// ---------------------------------------------------------------------------

/// Replace subtrees the constraint pass proves empty (contradictory
/// filters, zero-row scans, inner joins against empty inputs, …) with an
/// empty [`LogicalPlan::LocalRelation`] carrying the same output
/// attributes.
pub struct PropagateEmptyRelations;

fn is_empty_relation(p: &LogicalPlan) -> bool {
    matches!(p, LogicalPlan::LocalRelation { rows, .. } if rows.is_empty())
}

impl Rule<LogicalPlan> for PropagateEmptyRelations {
    fn name(&self) -> &str {
        "PropagateEmptyRelations"
    }

    fn apply(&self, plan: LogicalPlan) -> Transformed<LogicalPlan> {
        plan.transform_up(&mut |p| {
            if is_empty_relation(&p) || matches!(p, LogicalPlan::External { .. }) {
                return Transformed::no(p);
            }
            if constraints::facts(&p).always_empty {
                let out = p.output();
                return Transformed::yes(LogicalPlan::empty(out));
            }
            Transformed::no(p)
        })
    }
}

// ---------------------------------------------------------------------------
// InferIsNotNullFilters
// ---------------------------------------------------------------------------

/// Materialize inferred non-nullness as explicit `IS NOT NULL` filters:
///
/// * on the null-rejecting side(s) of a join condition — both inputs of
///   an inner join, only the preserved side of an outer join — so the
///   standard pushdown batch can sink them into scans and skip
///   null-keyed rows before the shuffle;
/// * ahead of filter predicates that null-reject a column, so the same
///   pushdown applies.
///
/// Idempotent by construction: a column whose input facts already prove
/// non-nullness (including via a previously inserted filter) is skipped.
pub struct InferIsNotNullFilters;

/// `IS NOT NULL c1 AND ... AND cN` over `input`, skipping columns the
/// input already proves non-null. Returns `None` when nothing new.
fn not_null_guard(input: &LogicalPlan, cols: &[ColumnRef]) -> Option<Expr> {
    let facts = constraints::facts(input);
    let fresh: Vec<Expr> = cols
        .iter()
        .filter(|c| !facts.is_non_null(c))
        .map(|c| Expr::IsNotNull(Box::new(Expr::Column(c.clone()))))
        .collect();
    conjunction(fresh)
}

impl Rule<LogicalPlan> for InferIsNotNullFilters {
    fn name(&self) -> &str {
        "InferIsNotNullFilters"
    }

    fn apply(&self, plan: LogicalPlan) -> Transformed<LogicalPlan> {
        plan.transform_up(&mut |p| match p {
            LogicalPlan::Join {
                left,
                right,
                join_type,
                condition: Some(cond),
            } => {
                let rejected = null_rejected_columns(&cond);
                let left_out = left.output();
                let right_out = right.output();
                let on_side = |out: &[ColumnRef]| -> Vec<ColumnRef> {
                    rejected
                        .iter()
                        .filter(|c| out.iter().any(|o| o.id == c.id))
                        .cloned()
                        .collect()
                };
                // The null-supplying side of an outer join keeps its NULL
                // keys (they surface as unmatched rows), so only the
                // side(s) whose rows must satisfy the condition to appear
                // at all may be filtered.
                let (filter_left, filter_right) = match join_type {
                    JoinType::Inner => (true, true),
                    JoinType::Left => (false, true),
                    JoinType::Right => (true, false),
                    JoinType::Full | JoinType::Cross => (false, false),
                };
                let mut changed = false;
                let left = if filter_left {
                    match not_null_guard(&left, &on_side(&left_out)) {
                        Some(g) => {
                            changed = true;
                            std::sync::Arc::new(left.as_ref().clone().filter(g))
                        }
                        None => left,
                    }
                } else {
                    left
                };
                let right = if filter_right {
                    match not_null_guard(&right, &on_side(&right_out)) {
                        Some(g) => {
                            changed = true;
                            std::sync::Arc::new(right.as_ref().clone().filter(g))
                        }
                        None => right,
                    }
                } else {
                    right
                };
                let rebuilt = LogicalPlan::Join {
                    left,
                    right,
                    join_type,
                    condition: Some(cond),
                };
                if changed {
                    Transformed::yes(rebuilt)
                } else {
                    Transformed::no(rebuilt)
                }
            }
            LogicalPlan::Filter { input, predicate } => {
                let rejected = null_rejected_columns(&predicate);
                let already: Vec<Expr> = split_conjuncts(&predicate);
                let facts = constraints::facts(&input);
                let fresh: Vec<Expr> = rejected
                    .iter()
                    .filter(|c| !facts.is_non_null(c))
                    .map(|c| Expr::IsNotNull(Box::new(Expr::Column(c.clone()))))
                    .filter(|e| !already.contains(e))
                    .collect();
                match conjunction(fresh) {
                    Some(extra) => Transformed::yes(LogicalPlan::Filter {
                        input,
                        predicate: extra.and(predicate),
                    }),
                    None => Transformed::no(LogicalPlan::Filter { input, predicate }),
                }
            }
            other => Transformed::no(other),
        })
    }
}

// ---------------------------------------------------------------------------
// SimplifyDomainComparisons
// ---------------------------------------------------------------------------

/// Replace comparison / null-test subexpressions the constraint pass
/// fully decides with literal `TRUE` / `FALSE`.
///
/// Only the two *definite* verdicts rewrite: `AlwaysTrue` and
/// `AlwaysFalse` guarantee a non-NULL boolean on every row. `NeverTrue`
/// (false **or** NULL) is not equivalent to `FALSE` in expression
/// position — `(a > 5) IS NULL` distinguishes them — so it is left for
/// [`PruneConstrainedFilters`], where filter semantics make the two
/// interchangeable.
pub struct SimplifyDomainComparisons;

fn is_decidable_shape(e: &Expr) -> bool {
    matches!(
        e,
        Expr::BinaryOp {
            op: BinaryOperator::Eq
                | BinaryOperator::NotEq
                | BinaryOperator::Lt
                | BinaryOperator::LtEq
                | BinaryOperator::Gt
                | BinaryOperator::GtEq,
            ..
        } | Expr::IsNull(_)
            | Expr::IsNotNull(_)
    )
}

impl Rule<LogicalPlan> for SimplifyDomainComparisons {
    fn name(&self) -> &str {
        "SimplifyDomainComparisons"
    }

    fn apply(&self, plan: LogicalPlan) -> Transformed<LogicalPlan> {
        plan.transform_up(&mut |p| {
            // Scan filters evaluate against the base relation, not a
            // child node; leave them to the scan's own machinery.
            if matches!(p, LogicalPlan::Scan { .. }) {
                return Transformed::no(p);
            }
            let frame = child_frame(&p);
            p.map_expressions(&mut |e| {
                e.transform_up(&mut |sub| {
                    if !is_decidable_shape(&sub) || sub.foldable() {
                        return Transformed::no(sub);
                    }
                    match determine(&sub, &frame) {
                        Determination::AlwaysTrue => {
                            Transformed::yes(Expr::Literal(Value::Boolean(true)))
                        }
                        Determination::AlwaysFalse => {
                            Transformed::yes(Expr::Literal(Value::Boolean(false)))
                        }
                        _ => Transformed::no(sub),
                    }
                })
            })
        })
    }
}

// ---------------------------------------------------------------------------
// UnwrapLosslessCasts
// ---------------------------------------------------------------------------

/// Rewrite `CAST(e AS wider) <op> literal` to `e <op> literal'` when the
/// cast is lossless (`Int→Long`, `Int→Double`, `Float→Double`) and the
/// literal round-trips exactly through the narrower type. This exposes
/// the raw column to domain refinement and lets comparison filters push
/// down to scans in the column's native type.
pub struct UnwrapLosslessCasts;

/// Cast `v` to `narrow` if casting it back yields exactly `v`.
fn round_trip(
    v: &Value,
    narrow: &crate::types::DataType,
    wide: &crate::types::DataType,
) -> Option<Value> {
    let narrowed = v.cast_to(narrow).ok()?;
    if narrowed.is_null() {
        return None;
    }
    let back = narrowed.cast_to(wide).ok()?;
    if &back == v {
        Some(narrowed)
    } else {
        None
    }
}

fn unwrap_side(cast_side: &Expr, lit_side: &Expr) -> Option<(Expr, Expr)> {
    let Expr::Cast { expr, dtype } = cast_side else {
        return None;
    };
    let Expr::Literal(v) = lit_side else {
        return None;
    };
    let src = expr.data_type().ok()?;
    if !lossless_cast(&src, dtype) || src == *dtype {
        return None;
    }
    let narrowed = round_trip(v, &src, dtype)?;
    Some(((**expr).clone(), Expr::Literal(narrowed)))
}

impl Rule<LogicalPlan> for UnwrapLosslessCasts {
    fn name(&self) -> &str {
        "UnwrapLosslessCasts"
    }

    fn apply(&self, plan: LogicalPlan) -> Transformed<LogicalPlan> {
        plan.transform_all_expressions(&mut |e| {
            let Expr::BinaryOp { left, op, right } = &e else {
                return Transformed::no(e);
            };
            if !matches!(
                op,
                BinaryOperator::Eq
                    | BinaryOperator::NotEq
                    | BinaryOperator::Lt
                    | BinaryOperator::LtEq
                    | BinaryOperator::Gt
                    | BinaryOperator::GtEq
            ) {
                return Transformed::no(e);
            }
            if let Some((col, l)) = unwrap_side(left, right) {
                return Transformed::yes(Expr::BinaryOp {
                    left: Box::new(col),
                    op: *op,
                    right: Box::new(l),
                });
            }
            if let Some((col, l)) = unwrap_side(right, left) {
                return Transformed::yes(Expr::BinaryOp {
                    left: Box::new(l),
                    op: *op,
                    right: Box::new(col),
                });
            }
            Transformed::no(e)
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::expr::builders::lit;
    use crate::row::Row;
    use crate::types::DataType;
    use std::sync::Arc;

    fn leaf(cols: &[(&str, DataType, bool)], rows: Vec<Row>) -> (LogicalPlan, Vec<ColumnRef>) {
        let output: Vec<ColumnRef> = cols
            .iter()
            .map(|(n, t, nl)| ColumnRef::new(*n, t.clone(), *nl))
            .collect();
        (
            LogicalPlan::LocalRelation {
                output: output.clone(),
                rows: Arc::new(rows),
            },
            output,
        )
    }

    fn long_rows(vals: &[i64]) -> Vec<Row> {
        vals.iter()
            .map(|v| Row::new(vec![Value::Long(*v)]))
            .collect()
    }

    /// One NULL row plus a value row, so stats seeding cannot prove the
    /// column non-null.
    fn nullable_rows(val: i64) -> Vec<Row> {
        vec![
            Row::new(vec![Value::Null]),
            Row::new(vec![Value::Long(val)]),
        ]
    }

    #[test]
    fn contradictory_filter_becomes_empty() {
        let (p, out) = leaf(&[("a", DataType::Long, true)], long_rows(&[1, 100]));
        let a = out[0].clone();
        let plan = p.filter(
            Expr::Column(a.clone())
                .gt(lit(10i64))
                .and(Expr::Column(a).lt(lit(5i64))),
        );
        let rewritten = PruneConstrainedFilters.apply(plan).data;
        assert!(is_empty_relation(&rewritten), "{rewritten:?}");
        assert_eq!(rewritten.output(), out);
    }

    #[test]
    fn redundant_conjunct_dropped() {
        let (p, out) = leaf(&[("a", DataType::Long, true)], long_rows(&[1, 100]));
        let a = out[0].clone();
        // a > 10 implies a > 5: the second conjunct is decided by the
        // constraint set of the first.
        let inner = p.filter(Expr::Column(a.clone()).gt(lit(10i64)));
        let plan = inner.filter(Expr::Column(a).gt(lit(10i64)));
        let rewritten = PruneConstrainedFilters.apply(plan).data;
        let mut filters = 0;
        rewritten.for_each(&mut |n| {
            if matches!(n, LogicalPlan::Filter { .. }) {
                filters += 1;
            }
        });
        assert_eq!(
            filters, 1,
            "duplicate filter should collapse: {rewritten:?}"
        );
    }

    #[test]
    fn empty_propagates_through_project_but_not_global_agg() {
        let (p, out) = leaf(&[("a", DataType::Long, true)], vec![]);
        let a = out[0].clone();
        let proj = p.clone().project(vec![Expr::Column(a.clone()).alias("x")]);
        let rewritten = PropagateEmptyRelations.apply(proj).data;
        assert!(is_empty_relation(&rewritten), "{rewritten:?}");

        // A global aggregate over empty input still yields one row.
        let agg = p.aggregate(
            vec![],
            vec![crate::expr::builders::count(Expr::Column(a)).alias("c")],
        );
        let kept = PropagateEmptyRelations.apply(agg).data;
        assert!(
            matches!(kept, LogicalPlan::Aggregate { .. }),
            "global aggregate must survive: {kept:?}"
        );
    }

    #[test]
    fn inner_join_gains_not_null_filters() {
        let (l, lout) = leaf(&[("a", DataType::Long, true)], nullable_rows(1));
        let (r, rout) = leaf(&[("k", DataType::Long, true)], nullable_rows(1));
        let a = lout[0].clone();
        let k = rout[0].clone();
        let plan = l.join(
            r,
            JoinType::Inner,
            Some(Expr::Column(a).eq(Expr::Column(k))),
        );
        let rewritten = InferIsNotNullFilters.apply(plan).data;
        let mut not_null_filters = 0;
        rewritten.for_each(&mut |n| {
            if let LogicalPlan::Filter { predicate, .. } = n {
                if matches!(predicate, Expr::IsNotNull(_)) {
                    not_null_filters += 1;
                }
            }
        });
        assert_eq!(not_null_filters, 2, "{rewritten:?}");
        // Idempotent: a second application adds nothing.
        let again = InferIsNotNullFilters.apply(rewritten);
        assert!(!again.changed, "{:?}", again.data);
    }

    #[test]
    fn left_join_guards_only_right_side() {
        let (l, lout) = leaf(&[("a", DataType::Long, true)], nullable_rows(1));
        let (r, rout) = leaf(&[("k", DataType::Long, true)], nullable_rows(1));
        let plan = l.join(
            r,
            JoinType::Left,
            Some(Expr::Column(lout[0].clone()).eq(Expr::Column(rout[0].clone()))),
        );
        let rewritten = InferIsNotNullFilters.apply(plan).data;
        let LogicalPlan::Join { left, right, .. } = &rewritten else {
            panic!("expected join: {rewritten:?}");
        };
        assert!(
            matches!(**left, LogicalPlan::LocalRelation { .. }),
            "preserved side untouched"
        );
        assert!(
            matches!(**right, LogicalPlan::Filter { .. }),
            "null-supplying side guarded"
        );
    }

    #[test]
    fn domain_decided_comparison_becomes_literal() {
        let (p, out) = leaf(&[("a", DataType::Long, true)], long_rows(&[1, 100]));
        let a = out[0].clone();
        let plan = p
            .filter(Expr::Column(a.clone()).gt(lit(10i64)))
            .project(vec![Expr::Column(a).gt(lit(5i64)).alias("always")]);
        let rewritten = SimplifyDomainComparisons.apply(plan).data;
        let LogicalPlan::Project { exprs, .. } = &rewritten else {
            panic!("expected project: {rewritten:?}");
        };
        let Expr::Alias { child: expr, .. } = &exprs[0] else {
            panic!("expected alias: {:?}", exprs[0]);
        };
        assert_eq!(**expr, Expr::Literal(Value::Boolean(true)), "{rewritten:?}");
    }

    #[test]
    fn lossless_cast_comparison_unwraps() {
        let (p, out) = leaf(&[("i", DataType::Int, true)], vec![]);
        let i = out[0].clone();
        let cast = Expr::Cast {
            expr: Box::new(Expr::Column(i.clone())),
            dtype: DataType::Long,
        };
        let plan = p.clone().filter(cast.gt(lit(5i64)));
        let rewritten = UnwrapLosslessCasts.apply(plan).data;
        let LogicalPlan::Filter { predicate, .. } = &rewritten else {
            panic!("expected filter: {rewritten:?}");
        };
        assert_eq!(
            *predicate,
            Expr::Column(i.clone()).gt(Expr::Literal(Value::Int(5)))
        );

        // A literal that does not round-trip is left alone.
        let cast = Expr::Cast {
            expr: Box::new(Expr::Column(i)),
            dtype: DataType::Double,
        };
        let plan = p.filter(cast.clone().gt(Expr::Literal(Value::Double(5.5))));
        let kept = UnwrapLosslessCasts.apply(plan);
        assert!(!kept.changed, "{:?}", kept.data);
    }
}
