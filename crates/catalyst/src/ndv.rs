//! Distinct-value (NDV) estimation with a KMV (k-minimum-values) sketch.
//!
//! Every value is hashed to a point on the `u64` line; the sketch keeps
//! only the `k` smallest distinct hashes it has seen. Below capacity the
//! sketch *is* the distinct set (exact count, modulo 64-bit hash
//! collisions); at capacity the density of the k retained points
//! estimates the total: if the k-th smallest hash lands at fraction `f`
//! of the hash space, about `(k-1)/f` distinct values exist.
//!
//! Merging two sketches is the set union of their hashes truncated back
//! to the k smallest — an associative, commutative, idempotent operation,
//! so per-batch sketches can be combined in any order (row groups, cache
//! partitions, shuffle sides) and always yield the same relation-level
//! sketch. That property is what lets the colfile writer and the
//! columnar cache collect statistics independently per block and still
//! report one coherent estimate through
//! [`crate::source::ColumnStatistics`].

use crate::value::Value;
use std::collections::hash_map::DefaultHasher;
use std::hash::{Hash, Hasher};

/// Default number of retained minimum hashes. 256 gives a relative
/// standard error of about `1/sqrt(k-1)` ≈ 6%, plenty for join ordering
/// where decisions compare cardinalities that differ by integer factors.
pub const DEFAULT_K: usize = 256;

/// A k-minimum-values distinct-count sketch.
#[derive(Debug, Clone, PartialEq)]
pub struct NdvSketch {
    /// Retained distinct hashes, sorted ascending; at most `k`.
    hashes: Vec<u64>,
    /// Capacity — the sketch threshold below which counts are exact.
    k: usize,
}

impl Default for NdvSketch {
    fn default() -> Self {
        NdvSketch::new(DEFAULT_K)
    }
}

/// Deterministic 64-bit hash of a value (nulls excluded by callers).
/// `DefaultHasher::new()` uses fixed keys, so hashes — and therefore
/// serialized sketches — are stable across processes and runs.
fn hash_value(v: &Value) -> u64 {
    let mut h = DefaultHasher::new();
    v.hash(&mut h);
    h.finish()
}

impl NdvSketch {
    /// An empty sketch retaining at most `k` hashes (`k >= 2`).
    pub fn new(k: usize) -> Self {
        NdvSketch {
            hashes: Vec::new(),
            k: k.max(2),
        }
    }

    /// Rebuild a sketch from serialized hashes (sorted or not).
    pub fn from_hashes(k: usize, mut hashes: Vec<u64>) -> Self {
        hashes.sort_unstable();
        hashes.dedup();
        hashes.truncate(k.max(2));
        NdvSketch {
            hashes,
            k: k.max(2),
        }
    }

    /// The retained hashes, sorted ascending (for serialization).
    pub fn hashes(&self) -> &[u64] {
        &self.hashes
    }

    /// The sketch capacity.
    pub fn k(&self) -> usize {
        self.k
    }

    /// Fold one value in; nulls are ignored (NDV counts non-null values).
    pub fn insert(&mut self, v: &Value) {
        if v.is_null() {
            return;
        }
        self.insert_hash(hash_value(v));
    }

    /// Fold a precomputed hash in.
    pub fn insert_hash(&mut self, h: u64) {
        match self.hashes.binary_search(&h) {
            Ok(_) => {}
            Err(pos) => {
                if self.hashes.len() < self.k {
                    self.hashes.insert(pos, h);
                } else if pos < self.k {
                    // Larger than the new hash ⇒ the current maximum
                    // falls out of the k smallest.
                    self.hashes.insert(pos, h);
                    self.hashes.pop();
                }
            }
        }
    }

    /// Union with another sketch (set union, truncated to the k
    /// smallest). Associative and commutative. The result keeps the
    /// *smaller* `k` of the two inputs: a sketch that already truncated
    /// at a lower capacity cannot supply the hashes a larger capacity
    /// would need, so claiming the larger `k` could mislabel an estimate
    /// as exact.
    pub fn merge(&mut self, other: &NdvSketch) {
        self.k = self.k.min(other.k);
        let mut merged = Vec::with_capacity((self.hashes.len() + other.hashes.len()).min(self.k));
        let (mut i, mut j) = (0, 0);
        while merged.len() < self.k && (i < self.hashes.len() || j < other.hashes.len()) {
            let next = match (self.hashes.get(i), other.hashes.get(j)) {
                (Some(a), Some(b)) if a == b => {
                    i += 1;
                    j += 1;
                    *a
                }
                (Some(a), Some(b)) if a < b => {
                    i += 1;
                    *a
                }
                (Some(_), Some(b)) => {
                    j += 1;
                    *b
                }
                (Some(a), None) => {
                    i += 1;
                    *a
                }
                (None, Some(b)) => {
                    j += 1;
                    *b
                }
                (None, None) => break,
            };
            merged.push(next);
        }
        self.hashes = merged;
    }

    /// True while the sketch has never discarded a hash — the estimate
    /// is an exact distinct count.
    pub fn is_exact(&self) -> bool {
        self.hashes.len() < self.k
    }

    /// Estimated number of distinct (non-null) values.
    pub fn estimate(&self) -> u64 {
        if self.is_exact() {
            return self.hashes.len() as u64;
        }
        // k-th minimum at fraction f of the hash space ⇒ ndv ≈ (k-1)/f.
        let kth = self.hashes[self.hashes.len() - 1];
        let f = (kth as f64 + 1.0) / (u64::MAX as f64 + 1.0);
        let est = ((self.hashes.len() as f64 - 1.0) / f).round();
        (est as u64).max(self.hashes.len() as u64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exact_below_capacity() {
        let mut s = NdvSketch::new(64);
        for i in 0..50i64 {
            s.insert(&Value::Long(i % 25));
        }
        assert!(s.is_exact());
        assert_eq!(s.estimate(), 25);
        // Nulls never count.
        s.insert(&Value::Null);
        assert_eq!(s.estimate(), 25);
    }

    #[test]
    fn estimate_within_bounds_on_all_distinct() {
        let mut s = NdvSketch::new(256);
        let n = 100_000i64;
        for i in 0..n {
            s.insert(&Value::Long(i));
        }
        assert!(!s.is_exact());
        let est = s.estimate() as f64;
        // 3-sigma of the KMV relative error (~6% at k=256).
        assert!(
            (est - n as f64).abs() / n as f64 <= 0.2,
            "estimate {est} too far from {n}"
        );
    }

    #[test]
    fn merge_matches_single_pass() {
        let mut whole = NdvSketch::new(128);
        let mut left = NdvSketch::new(128);
        let mut right = NdvSketch::new(128);
        for i in 0..10_000i64 {
            let v = Value::Long(i * 37 % 4096);
            whole.insert(&v);
            if i % 2 == 0 {
                left.insert(&v);
            } else {
                right.insert(&v);
            }
        }
        let mut merged = left.clone();
        merged.merge(&right);
        assert_eq!(merged, whole);
    }

    /// Build a sketch over `n` values drawn from `gen`.
    fn sketch_of(k: usize, n: i64, gen: impl Fn(i64) -> i64) -> NdvSketch {
        let mut s = NdvSketch::new(k);
        for i in 0..n {
            s.insert(&Value::Long(gen(i)));
        }
        s
    }

    #[test]
    fn merge_is_commutative_and_associative() {
        // Three block sketches with overlapping value ranges, small k so
        // all three are saturated and truncation actually happens.
        let a = sketch_of(32, 5_000, |i| i % 700);
        let b = sketch_of(32, 5_000, |i| 350 + i % 900);
        let c = sketch_of(32, 5_000, |i| i * 13 % 1_500);

        let mut ab = a.clone();
        ab.merge(&b);
        let mut ba = b.clone();
        ba.merge(&a);
        assert_eq!(ab, ba, "merge must be commutative");

        // (a ∪ b) ∪ c == a ∪ (b ∪ c): row groups can be combined in
        // whatever order blocks arrive.
        let mut ab_c = ab.clone();
        ab_c.merge(&c);
        let mut bc = b.clone();
        bc.merge(&c);
        let mut a_bc = a.clone();
        a_bc.merge(&bc);
        assert_eq!(ab_c, a_bc, "merge must be associative");

        // Idempotent, too: re-merging a block changes nothing.
        let mut again = ab_c.clone();
        again.merge(&b);
        assert_eq!(again, ab_c);
    }

    #[test]
    fn merge_keeps_the_smaller_capacity() {
        // A sketch truncated at k=16 cannot supply the hashes a k=256
        // union would need; the merge must demote itself rather than
        // claim exactness it cannot back.
        let coarse = sketch_of(16, 10_000, |i| i);
        let fine = sketch_of(256, 200, |i| i);
        assert!(fine.is_exact());
        let mut m = fine.clone();
        m.merge(&coarse);
        assert_eq!(m.k(), 16);
        assert!(!m.is_exact());

        let mut m2 = coarse.clone();
        m2.merge(&fine);
        assert_eq!(m, m2);
    }

    #[test]
    fn estimate_tracks_distinct_count_not_row_count_on_skew() {
        // 100k rows, 1k distinct values, zipf-ish skew: one value covers
        // half the rows. NDV must land near 1 000, nowhere near 100 000.
        let n = 100_000i64;
        let s = sketch_of(256, n, |i| if i % 2 == 0 { 0 } else { 1 + i % 999 });
        let est = s.estimate() as f64;
        assert!(
            (est - 1_000.0).abs() / 1_000.0 <= 0.25,
            "skewed estimate {est} too far from 1000"
        );
    }

    #[test]
    fn exact_fallback_survives_serialization_round_trip() {
        // Below capacity the sketch is the distinct set; a round trip
        // through the serialized hash list (colfile footer form) must
        // preserve both the count and the exactness claim.
        let s = sketch_of(64, 1_000, |i| i % 40);
        assert!(s.is_exact());
        assert_eq!(s.estimate(), 40);
        let restored = NdvSketch::from_hashes(s.k(), s.hashes().to_vec());
        assert_eq!(restored, s);
        assert!(restored.is_exact());
        assert_eq!(restored.estimate(), 40);

        // Saturated sketches round-trip, too.
        let big = sketch_of(32, 50_000, |i| i);
        assert!(!big.is_exact());
        let restored = NdvSketch::from_hashes(big.k(), big.hashes().to_vec());
        assert_eq!(restored, big);
        assert_eq!(restored.estimate(), big.estimate());
    }
}
