//! Rule executor: batches of rules run to fixed point (§4.2).
//!
//! "Catalyst groups rules into batches, and executes each batch until it
//! reaches a fixed point, that is, until the tree stops changing after
//! applying its rules." Rules report change through the
//! [`Transformed::changed`] flag; a batch terminates when a full pass over
//! its rules changes nothing, or when the iteration cap is hit (a safety
//! valve against non-converging rule sets).

use crate::tree::Transformed;

/// A named rewrite over trees of type `T`.
pub trait Rule<T>: Send + Sync {
    /// Rule name for tracing/EXPLAIN.
    fn name(&self) -> &str;
    /// Apply once; report whether anything changed.
    fn apply(&self, tree: T) -> Transformed<T>;
}

/// Wrap a closure as a rule.
pub struct FnRule<T> {
    name: String,
    f: Box<dyn Fn(T) -> Transformed<T> + Send + Sync>,
}

impl<T> FnRule<T> {
    /// Create a rule from a closure.
    pub fn new(name: impl Into<String>, f: impl Fn(T) -> Transformed<T> + Send + Sync + 'static) -> Self {
        FnRule { name: name.into(), f: Box::new(f) }
    }
}

impl<T> Rule<T> for FnRule<T> {
    fn name(&self) -> &str {
        &self.name
    }
    fn apply(&self, tree: T) -> Transformed<T> {
        (self.f)(tree)
    }
}

/// How many times a batch may run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Strategy {
    /// Run each rule exactly once.
    Once,
    /// Iterate until no rule changes the tree, capped at `max_iterations`.
    FixedPoint {
        /// Iteration cap.
        max_iterations: usize,
    },
}

/// A named group of rules with an execution strategy.
pub struct Batch<T> {
    /// Batch name.
    pub name: String,
    /// Execution strategy.
    pub strategy: Strategy,
    /// Rules in application order.
    pub rules: Vec<Box<dyn Rule<T>>>,
}

impl<T> Batch<T> {
    /// A fixed-point batch with the default cap of 100 iterations.
    pub fn fixed_point(name: impl Into<String>, rules: Vec<Box<dyn Rule<T>>>) -> Self {
        Batch { name: name.into(), strategy: Strategy::FixedPoint { max_iterations: 100 }, rules }
    }

    /// A once batch.
    pub fn once(name: impl Into<String>, rules: Vec<Box<dyn Rule<T>>>) -> Self {
        Batch { name: name.into(), strategy: Strategy::Once, rules }
    }
}

/// Trace record of one rule application that changed the tree.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TraceEvent {
    /// Batch the rule ran in.
    pub batch: String,
    /// Rule that fired.
    pub rule: String,
    /// Iteration within the batch.
    pub iteration: usize,
}

/// Runs batches of rules in order.
pub struct RuleExecutor<T> {
    batches: Vec<Batch<T>>,
}

impl<T> RuleExecutor<T> {
    /// Build an executor from batches.
    pub fn new(batches: Vec<Batch<T>>) -> Self {
        RuleExecutor { batches }
    }

    /// Append a batch (the extension point: "developers can add batches of
    /// rules to each phase of query optimization at runtime", §4.4).
    pub fn add_batch(&mut self, batch: Batch<T>) {
        self.batches.push(batch);
    }

    /// Insert a batch before the others (for rules that must see the raw
    /// tree first).
    pub fn prepend_batch(&mut self, batch: Batch<T>) {
        self.batches.insert(0, batch);
    }

    /// Run every batch; optionally record which rules fired into `trace`.
    pub fn execute(&self, mut tree: T, mut trace: Option<&mut Vec<TraceEvent>>) -> T {
        for batch in &self.batches {
            let max = match batch.strategy {
                Strategy::Once => 1,
                Strategy::FixedPoint { max_iterations } => max_iterations,
            };
            for iteration in 0..max {
                let mut any_change = false;
                for rule in &batch.rules {
                    let out = rule.apply(tree);
                    if out.changed {
                        any_change = true;
                        if let Some(t) = trace.as_deref_mut() {
                            t.push(TraceEvent {
                                batch: batch.name.clone(),
                                rule: rule.name().to_string(),
                                iteration,
                            });
                        }
                    }
                    tree = out.data;
                }
                if !any_change {
                    break; // fixed point
                }
            }
        }
        tree
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    // Trees are plain i64 here; rules are numeric rewrites.
    fn halve() -> Box<dyn Rule<i64>> {
        Box::new(FnRule::new("halve", |n: i64| {
            if n > 1 && n % 2 == 0 {
                Transformed::yes(n / 2)
            } else {
                Transformed::no(n)
            }
        }))
    }

    fn dec_odd() -> Box<dyn Rule<i64>> {
        Box::new(FnRule::new("dec-odd", |n: i64| {
            if n > 1 && n % 2 == 1 {
                Transformed::yes(n - 1)
            } else {
                Transformed::no(n)
            }
        }))
    }

    #[test]
    fn fixed_point_composes_simple_rules_into_global_effect() {
        // Collatz-ish: repeatedly halving/decrementing reaches 1 — each
        // rule is tiny but the batch has a large cumulative effect (§4.2).
        let exec = RuleExecutor::new(vec![Batch::fixed_point("shrink", vec![halve(), dec_odd()])]);
        assert_eq!(exec.execute(1000, None), 1);
        assert_eq!(exec.execute(77, None), 1);
    }

    #[test]
    fn once_strategy_runs_single_pass() {
        let exec = RuleExecutor::new(vec![Batch::once("shrink", vec![halve()])]);
        assert_eq!(exec.execute(8, None), 4);
    }

    #[test]
    fn iteration_cap_stops_nonconverging_batches() {
        let flip = Box::new(FnRule::new("flip", |n: i64| Transformed::yes(-n)));
        let exec = RuleExecutor::new(vec![Batch {
            name: "osc".into(),
            strategy: Strategy::FixedPoint { max_iterations: 7 },
            rules: vec![flip],
        }]);
        // 7 iterations of negation: odd count -> negated.
        assert_eq!(exec.execute(5, None), -5);
    }

    #[test]
    fn trace_records_fired_rules() {
        let exec = RuleExecutor::new(vec![Batch::fixed_point("shrink", vec![halve()])]);
        let mut trace = Vec::new();
        exec.execute(8, Some(&mut trace));
        assert_eq!(trace.len(), 3); // 8 -> 4 -> 2 -> 1
        assert!(trace.iter().all(|e| e.rule == "halve"));
    }

    #[test]
    fn added_batches_run_after_existing_ones() {
        let mut exec = RuleExecutor::new(vec![Batch::once("noop", vec![])]);
        exec.add_batch(Batch::once(
            "user",
            vec![Box::new(FnRule::new("plus-one", |n: i64| Transformed::yes(n + 1)))],
        ));
        assert_eq!(exec.execute(1, None), 2);
    }
}
