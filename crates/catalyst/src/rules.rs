//! Rule executor: batches of rules run to fixed point (§4.2).
//!
//! "Catalyst groups rules into batches, and executes each batch until it
//! reaches a fixed point, that is, until the tree stops changing after
//! applying its rules." Rules report change through the
//! [`Transformed::changed`] flag; a batch terminates when a full pass over
//! its rules changes nothing, or when the iteration cap is hit (a safety
//! valve against non-converging rule sets).
//!
//! Beyond plain execution, the executor supports *monitored* execution
//! ([`RuleExecutor::execute_monitored`]): every rule application is
//! counted into a [`RuleHealthReport`], each change can be checked by a
//! [`RuleValidator`] as a per-rule post-condition (a rewrite that breaks a
//! plan invariant is rolled back and reported as an
//! [`InvariantViolation`] with a structural before/after diff), rules are
//! probed for idempotence, and batches that exhaust `max_iterations`
//! without converging are recorded instead of silently truncated.

use crate::tree::Transformed;

/// A named rewrite over trees of type `T`.
pub trait Rule<T>: Send + Sync {
    /// Rule name for tracing/EXPLAIN.
    fn name(&self) -> &str;
    /// Apply once; report whether anything changed.
    fn apply(&self, tree: T) -> Transformed<T>;
}

/// Wrap a closure as a rule.
pub struct FnRule<T> {
    name: String,
    f: Box<dyn Fn(T) -> Transformed<T> + Send + Sync>,
}

impl<T> FnRule<T> {
    /// Create a rule from a closure.
    pub fn new(
        name: impl Into<String>,
        f: impl Fn(T) -> Transformed<T> + Send + Sync + 'static,
    ) -> Self {
        FnRule {
            name: name.into(),
            f: Box::new(f),
        }
    }
}

impl<T> Rule<T> for FnRule<T> {
    fn name(&self) -> &str {
        &self.name
    }
    fn apply(&self, tree: T) -> Transformed<T> {
        (self.f)(tree)
    }
}

/// How many times a batch may run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Strategy {
    /// Run each rule exactly once.
    Once,
    /// Iterate until no rule changes the tree, capped at `max_iterations`.
    FixedPoint {
        /// Iteration cap.
        max_iterations: usize,
    },
}

/// A named group of rules with an execution strategy.
pub struct Batch<T> {
    /// Batch name.
    pub name: String,
    /// Execution strategy.
    pub strategy: Strategy,
    /// Rules in application order.
    pub rules: Vec<Box<dyn Rule<T>>>,
}

impl<T> Batch<T> {
    /// A fixed-point batch with the default cap of 100 iterations.
    pub fn fixed_point(name: impl Into<String>, rules: Vec<Box<dyn Rule<T>>>) -> Self {
        Batch {
            name: name.into(),
            strategy: Strategy::FixedPoint {
                max_iterations: 100,
            },
            rules,
        }
    }

    /// A once batch.
    pub fn once(name: impl Into<String>, rules: Vec<Box<dyn Rule<T>>>) -> Self {
        Batch {
            name: name.into(),
            strategy: Strategy::Once,
            rules,
        }
    }
}

/// What a [`TraceEvent`] records.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TraceKind {
    /// A rule application that changed the tree.
    RuleFired,
    /// A `FixedPoint` batch exhausted `max_iterations` while its last
    /// iteration was still changing the tree.
    NonConvergence,
}

/// Rendered before/after snapshot of a single rewrite (the plan-change
/// log). Only populated under monitored execution with a validator, since
/// rendering requires a [`RuleValidator`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PlanChange {
    /// Plan rendering before the rule fired.
    pub before: String,
    /// Plan rendering after the rule fired.
    pub after: String,
    /// Line diff between the two (`-` removed, `+` added).
    pub diff: String,
}

/// Trace record of one rule application that changed the tree, or of a
/// batch that failed to converge.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TraceEvent {
    /// Batch the rule ran in.
    pub batch: String,
    /// Rule that fired (for [`TraceKind::NonConvergence`], the batch name).
    pub rule: String,
    /// Iteration within the batch (for non-convergence, the iteration cap).
    pub iteration: usize,
    /// What this event records.
    pub kind: TraceKind,
    /// Structural before/after change, when a plan-change log was requested.
    pub change: Option<PlanChange>,
}

impl TraceEvent {
    fn fired(batch: &str, rule: &str, iteration: usize, change: Option<PlanChange>) -> Self {
        TraceEvent {
            batch: batch.to_string(),
            rule: rule.to_string(),
            iteration,
            kind: TraceKind::RuleFired,
            change,
        }
    }

    fn non_convergence(batch: &str, max_iterations: usize) -> Self {
        TraceEvent {
            batch: batch.to_string(),
            rule: batch.to_string(),
            iteration: max_iterations,
            kind: TraceKind::NonConvergence,
            change: None,
        }
    }
}

/// One invariant violated by a rule rewrite, as reported by a
/// [`RuleValidator`]. The validator names the invariant; the executor
/// attaches batch/rule/iteration context to build an
/// [`InvariantViolation`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RuleViolation {
    /// Name of the violated invariant (e.g. `schema-preserved`).
    pub invariant: String,
    /// Human-readable description of what went wrong.
    pub message: String,
}

/// A rule rewrite rejected by the validator, with full context: which
/// batch/rule/iteration produced it, which invariant broke, and a
/// structural before/after plan diff.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct InvariantViolation {
    /// Batch the offending rule ran in.
    pub batch: String,
    /// Rule whose rewrite violated the invariant.
    pub rule: String,
    /// Iteration within the batch.
    pub iteration: usize,
    /// Name of the violated invariant.
    pub invariant: String,
    /// Human-readable description of what went wrong.
    pub message: String,
    /// Line diff of the rejected rewrite (`-` before, `+` after).
    pub diff: String,
}

impl std::fmt::Display for InvariantViolation {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(
            f,
            "invariant '{}' violated by rule '{}' (batch '{}', iteration {}): {}",
            self.invariant, self.rule, self.batch, self.iteration, self.message
        )?;
        write!(f, "plan diff:\n{}", self.diff)
    }
}

/// Post-condition checker plugged into monitored execution: after every
/// rule application that changed the tree, `validate(before, after)` runs
/// and any violations cause the rewrite to be rolled back and reported.
pub trait RuleValidator<T>: Send + Sync {
    /// Check the rewrite `before -> after`; empty means the rewrite is ok.
    fn validate(&self, before: &T, after: &T) -> Vec<RuleViolation>;
    /// Render a tree for the plan-change log.
    fn render(&self, tree: &T) -> String;
    /// Line diff between two renderings (`-` removed, `+` added).
    fn diff(&self, before: &T, after: &T) -> String {
        format!(
            "--- before\n{}\n+++ after\n{}",
            self.render(before),
            self.render(after)
        )
    }
}

/// Health counters for one rule within one batch.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RuleHealth {
    /// Batch the rule belongs to.
    pub batch: String,
    /// Rule name.
    pub rule: String,
    /// Total applications (fired or not).
    pub applications: usize,
    /// Applications that changed the tree.
    pub fires: usize,
    /// Fires where immediately re-applying the rule changed the tree
    /// again — the rule is not idempotent on that input. Benign inside a
    /// `FixedPoint` batch (the loop re-runs it anyway) but a convergence
    /// hazard in a `Once` batch.
    pub reapply_changes: usize,
    /// Rewrites rejected by the validator and rolled back.
    pub rejected: usize,
}

impl RuleHealth {
    /// Fraction of applications that changed the tree (0.0 when never
    /// applied).
    pub fn effectiveness(&self) -> f64 {
        if self.applications == 0 {
            0.0
        } else {
            self.fires as f64 / self.applications as f64
        }
    }
}

/// A `FixedPoint` batch that hit its iteration cap while still changing
/// the tree. Before this report existed the executor silently kept the
/// last tree, hiding oscillating rule sets.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct NonConvergence {
    /// Batch that failed to converge.
    pub batch: String,
    /// The iteration cap that was exhausted.
    pub max_iterations: usize,
}

/// Aggregated per-rule health over one executor run: fire counts,
/// effectiveness, idempotence probes, rejected rewrites, and batches that
/// failed to converge.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct RuleHealthReport {
    /// Per-rule counters, in first-application order.
    pub rules: Vec<RuleHealth>,
    /// Batches that exhausted their iteration cap while still changing.
    pub non_converged: Vec<NonConvergence>,
}

impl RuleHealthReport {
    fn entry(&mut self, batch: &str, rule: &str) -> &mut RuleHealth {
        if let Some(i) = self
            .rules
            .iter()
            .position(|h| h.batch == batch && h.rule == rule)
        {
            return &mut self.rules[i];
        }
        self.rules.push(RuleHealth {
            batch: batch.to_string(),
            rule: rule.to_string(),
            applications: 0,
            fires: 0,
            reapply_changes: 0,
            rejected: 0,
        });
        self.rules.last_mut().unwrap()
    }

    /// Look up the counters for a rule, if it ever ran.
    pub fn health_for(&self, batch: &str, rule: &str) -> Option<&RuleHealth> {
        self.rules
            .iter()
            .find(|h| h.batch == batch && h.rule == rule)
    }

    /// Merge another report into this one (used when several executor runs
    /// back one query, e.g. re-analysis of subplans).
    pub fn merge(&mut self, other: &RuleHealthReport) {
        for h in &other.rules {
            let e = self.entry(&h.batch, &h.rule);
            e.applications += h.applications;
            e.fires += h.fires;
            e.reapply_changes += h.reapply_changes;
            e.rejected += h.rejected;
        }
        self.non_converged
            .extend(other.non_converged.iter().cloned());
    }

    /// Render the report as an aligned text table (the form surfaced next
    /// to `EXPLAIN ANALYZE` output).
    pub fn render(&self) -> String {
        let mut out = String::from("== Rule Health ==\n");
        if self.rules.is_empty() {
            out.push_str("(no rules ran)\n");
        } else {
            let bw = self
                .rules
                .iter()
                .map(|h| h.batch.len())
                .max()
                .unwrap()
                .max(5);
            let rw = self
                .rules
                .iter()
                .map(|h| h.rule.len())
                .max()
                .unwrap()
                .max(4);
            out.push_str(&format!(
                "{:bw$}  {:rw$}  {:>7}  {:>5}  {:>6}  {:>8}  {:>8}\n",
                "batch", "rule", "applied", "fired", "effect", "reapply", "rejected"
            ));
            for h in &self.rules {
                out.push_str(&format!(
                    "{:bw$}  {:rw$}  {:>7}  {:>5}  {:>5.0}%  {:>8}  {:>8}\n",
                    h.batch,
                    h.rule,
                    h.applications,
                    h.fires,
                    h.effectiveness() * 100.0,
                    h.reapply_changes,
                    h.rejected,
                ));
            }
        }
        if self.non_converged.is_empty() {
            out.push_str("non-converged batches: none\n");
        } else {
            for nc in &self.non_converged {
                out.push_str(&format!(
                    "non-converged batch: '{}' still changing after {} iterations\n",
                    nc.batch, nc.max_iterations
                ));
            }
        }
        out
    }
}

/// Collects everything monitored execution observes: the plan-change
/// trace, per-rule health counters, and validator violations. Create one
/// per [`RuleExecutor::execute_monitored`] run.
pub struct ExecutionMonitor<'a, T> {
    validator: Option<&'a dyn RuleValidator<T>>,
    log_changes: bool,
    check_idempotence: bool,
    /// Plan-change log: one event per fired rule plus non-convergence
    /// markers.
    pub trace: Vec<TraceEvent>,
    /// Per-rule health counters.
    pub health: RuleHealthReport,
    /// Rewrites rejected (and rolled back) by the validator.
    pub violations: Vec<InvariantViolation>,
}

impl<T> ExecutionMonitor<'static, T> {
    /// Monitor health and trace only — no validation, no cloning of the
    /// tree beyond what idempotence probing needs (none here).
    pub fn new() -> Self {
        ExecutionMonitor {
            validator: None,
            log_changes: false,
            check_idempotence: false,
            trace: Vec::new(),
            health: RuleHealthReport::default(),
            violations: Vec::new(),
        }
    }
}

impl<T> Default for ExecutionMonitor<'static, T> {
    fn default() -> Self {
        Self::new()
    }
}

impl<'a, T> ExecutionMonitor<'a, T> {
    /// Monitor with a validator: every changed rewrite is checked as a
    /// post-condition, rendered into the plan-change log, and probed for
    /// idempotence.
    pub fn with_validator(validator: &'a dyn RuleValidator<T>) -> Self {
        ExecutionMonitor {
            validator: Some(validator),
            log_changes: true,
            check_idempotence: true,
            trace: Vec::new(),
            health: RuleHealthReport::default(),
            violations: Vec::new(),
        }
    }

    /// Disable the per-change before/after rendering (cheaper when only
    /// violations matter).
    pub fn without_change_log(mut self) -> Self {
        self.log_changes = false;
        self
    }

    fn needs_before(&self) -> bool {
        self.validator.is_some() || self.log_changes
    }
}

/// Runs batches of rules in order.
pub struct RuleExecutor<T> {
    batches: Vec<Batch<T>>,
}

impl<T> RuleExecutor<T> {
    /// Build an executor from batches.
    pub fn new(batches: Vec<Batch<T>>) -> Self {
        RuleExecutor { batches }
    }

    /// Append a batch (the extension point: "developers can add batches of
    /// rules to each phase of query optimization at runtime", §4.4).
    pub fn add_batch(&mut self, batch: Batch<T>) {
        self.batches.push(batch);
    }

    /// Insert a batch before the others (for rules that must see the raw
    /// tree first).
    pub fn prepend_batch(&mut self, batch: Batch<T>) {
        self.batches.insert(0, batch);
    }

    /// Run every batch; optionally record which rules fired into `trace`.
    /// A `FixedPoint` batch that exhausts its cap while still changing
    /// emits a [`TraceKind::NonConvergence`] event rather than failing
    /// silently.
    pub fn execute(&self, mut tree: T, mut trace: Option<&mut Vec<TraceEvent>>) -> T {
        for batch in &self.batches {
            let max = match batch.strategy {
                Strategy::Once => 1,
                Strategy::FixedPoint { max_iterations } => max_iterations,
            };
            let mut converged = false;
            for iteration in 0..max {
                let mut any_change = false;
                for rule in &batch.rules {
                    let out = rule.apply(tree);
                    if out.changed {
                        any_change = true;
                        if let Some(t) = trace.as_deref_mut() {
                            t.push(TraceEvent::fired(&batch.name, rule.name(), iteration, None));
                        }
                    }
                    tree = out.data;
                }
                if !any_change {
                    converged = true;
                    break; // fixed point
                }
            }
            if !converged && matches!(batch.strategy, Strategy::FixedPoint { .. }) {
                if let Some(t) = trace.as_deref_mut() {
                    t.push(TraceEvent::non_convergence(&batch.name, max));
                }
            }
        }
        tree
    }
}

impl<T: Clone> RuleExecutor<T> {
    /// Run every batch under a monitor: count applications and fires per
    /// rule, probe idempotence, record the plan-change log, and — when the
    /// monitor carries a [`RuleValidator`] — check every changed rewrite
    /// as a post-condition. A rewrite that violates an invariant is
    /// **rolled back** (the rule's output is discarded) and reported in
    /// [`ExecutionMonitor::violations`], so a buggy rule cannot corrupt
    /// the tree it hands downstream.
    pub fn execute_monitored(&self, mut tree: T, monitor: &mut ExecutionMonitor<'_, T>) -> T {
        for batch in &self.batches {
            let max = match batch.strategy {
                Strategy::Once => 1,
                Strategy::FixedPoint { max_iterations } => max_iterations,
            };
            let mut converged = false;
            for iteration in 0..max {
                let mut any_change = false;
                for rule in &batch.rules {
                    let before = if monitor.needs_before() {
                        Some(tree.clone())
                    } else {
                        None
                    };
                    let out = rule.apply(tree);
                    monitor.health.entry(&batch.name, rule.name()).applications += 1;
                    if !out.changed {
                        tree = out.data;
                        continue;
                    }
                    if monitor.check_idempotence && rule.apply(out.data.clone()).changed {
                        monitor
                            .health
                            .entry(&batch.name, rule.name())
                            .reapply_changes += 1;
                    }
                    let rejected = match (monitor.validator, before.as_ref()) {
                        (Some(v), Some(b)) => {
                            let viols = v.validate(b, &out.data);
                            if viols.is_empty() {
                                false
                            } else {
                                let diff = v.diff(b, &out.data);
                                for viol in viols {
                                    monitor.violations.push(InvariantViolation {
                                        batch: batch.name.clone(),
                                        rule: rule.name().to_string(),
                                        iteration,
                                        invariant: viol.invariant,
                                        message: viol.message,
                                        diff: diff.clone(),
                                    });
                                }
                                true
                            }
                        }
                        _ => false,
                    };
                    if rejected {
                        monitor.health.entry(&batch.name, rule.name()).rejected += 1;
                        tree = before.expect("validator implies before snapshot");
                        continue;
                    }
                    any_change = true;
                    monitor.health.entry(&batch.name, rule.name()).fires += 1;
                    let change = match (&before, monitor.log_changes, monitor.validator) {
                        (Some(b), true, Some(v)) => Some(PlanChange {
                            before: v.render(b),
                            after: v.render(&out.data),
                            diff: v.diff(b, &out.data),
                        }),
                        _ => None,
                    };
                    monitor.trace.push(TraceEvent::fired(
                        &batch.name,
                        rule.name(),
                        iteration,
                        change,
                    ));
                    tree = out.data;
                }
                if !any_change {
                    converged = true;
                    break;
                }
            }
            if !converged && matches!(batch.strategy, Strategy::FixedPoint { .. }) {
                monitor.health.non_converged.push(NonConvergence {
                    batch: batch.name.clone(),
                    max_iterations: max,
                });
                monitor
                    .trace
                    .push(TraceEvent::non_convergence(&batch.name, max));
            }
        }
        tree
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    // Trees are plain i64 here; rules are numeric rewrites.
    fn halve() -> Box<dyn Rule<i64>> {
        Box::new(FnRule::new("halve", |n: i64| {
            if n > 1 && n % 2 == 0 {
                Transformed::yes(n / 2)
            } else {
                Transformed::no(n)
            }
        }))
    }

    fn dec_odd() -> Box<dyn Rule<i64>> {
        Box::new(FnRule::new("dec-odd", |n: i64| {
            if n > 1 && n % 2 == 1 {
                Transformed::yes(n - 1)
            } else {
                Transformed::no(n)
            }
        }))
    }

    #[test]
    fn fixed_point_composes_simple_rules_into_global_effect() {
        // Collatz-ish: repeatedly halving/decrementing reaches 1 — each
        // rule is tiny but the batch has a large cumulative effect (§4.2).
        let exec = RuleExecutor::new(vec![Batch::fixed_point("shrink", vec![halve(), dec_odd()])]);
        assert_eq!(exec.execute(1000, None), 1);
        assert_eq!(exec.execute(77, None), 1);
    }

    #[test]
    fn once_strategy_runs_single_pass() {
        let exec = RuleExecutor::new(vec![Batch::once("shrink", vec![halve()])]);
        assert_eq!(exec.execute(8, None), 4);
    }

    #[test]
    fn iteration_cap_stops_nonconverging_batches() {
        let flip = Box::new(FnRule::new("flip", |n: i64| Transformed::yes(-n)));
        let exec = RuleExecutor::new(vec![Batch {
            name: "osc".into(),
            strategy: Strategy::FixedPoint { max_iterations: 7 },
            rules: vec![flip],
        }]);
        // 7 iterations of negation: odd count -> negated.
        assert_eq!(exec.execute(5, None), -5);
    }

    #[test]
    fn trace_records_fired_rules() {
        let exec = RuleExecutor::new(vec![Batch::fixed_point("shrink", vec![halve()])]);
        let mut trace = Vec::new();
        exec.execute(8, Some(&mut trace));
        assert_eq!(trace.len(), 3); // 8 -> 4 -> 2 -> 1
        assert!(trace.iter().all(|e| e.rule == "halve"));
        assert!(trace.iter().all(|e| e.kind == TraceKind::RuleFired));
    }

    #[test]
    fn added_batches_run_after_existing_ones() {
        let mut exec = RuleExecutor::new(vec![Batch::once("noop", vec![])]);
        exec.add_batch(Batch::once(
            "user",
            vec![Box::new(FnRule::new("plus-one", |n: i64| {
                Transformed::yes(n + 1)
            }))],
        ));
        assert_eq!(exec.execute(1, None), 2);
    }

    #[test]
    fn oscillating_batch_reports_non_convergence() {
        // An oscillating rule (n -> -n forever) must not fail silently:
        // both the trace and the health report name the batch and its cap.
        let flip = Box::new(FnRule::new("flip", |n: i64| Transformed::yes(-n)));
        let exec = RuleExecutor::new(vec![Batch {
            name: "osc".into(),
            strategy: Strategy::FixedPoint { max_iterations: 7 },
            rules: vec![flip],
        }]);

        let mut trace = Vec::new();
        assert_eq!(exec.execute(5, Some(&mut trace)), -5);
        let nc: Vec<_> = trace
            .iter()
            .filter(|e| e.kind == TraceKind::NonConvergence)
            .collect();
        assert_eq!(nc.len(), 1);
        assert_eq!(nc[0].batch, "osc");
        assert_eq!(nc[0].iteration, 7);

        let mut monitor = ExecutionMonitor::new();
        assert_eq!(exec.execute_monitored(5, &mut monitor), -5);
        assert_eq!(monitor.health.non_converged.len(), 1);
        assert_eq!(monitor.health.non_converged[0].batch, "osc");
        assert_eq!(monitor.health.non_converged[0].max_iterations, 7);
        let report = monitor.health.render();
        assert!(report.contains("non-converged batch: 'osc'"), "{report}");
    }

    #[test]
    fn converging_batches_report_no_non_convergence() {
        let exec = RuleExecutor::new(vec![Batch::fixed_point("shrink", vec![halve(), dec_odd()])]);
        let mut trace = Vec::new();
        exec.execute(1000, Some(&mut trace));
        assert!(trace.iter().all(|e| e.kind == TraceKind::RuleFired));
    }

    #[test]
    fn monitor_counts_applications_fires_and_effectiveness() {
        let exec = RuleExecutor::new(vec![Batch::fixed_point("shrink", vec![halve(), dec_odd()])]);
        let mut monitor = ExecutionMonitor::new();
        assert_eq!(exec.execute_monitored(8, &mut monitor), 1);
        // 8 -> 4 -> 2 -> 1, then one clean pass: halve applied 4x, fired 3x.
        let h = monitor.health.health_for("shrink", "halve").unwrap();
        assert_eq!(h.applications, 4);
        assert_eq!(h.fires, 3);
        assert!((h.effectiveness() - 0.75).abs() < 1e-9);
        let d = monitor.health.health_for("shrink", "dec-odd").unwrap();
        assert_eq!(d.fires, 0);
        assert_eq!(d.effectiveness(), 0.0);
        // Trace matches plain execution.
        assert_eq!(monitor.trace.len(), 3);
    }

    struct NegativeForbidden;
    impl RuleValidator<i64> for NegativeForbidden {
        fn validate(&self, _before: &i64, after: &i64) -> Vec<RuleViolation> {
            if *after < 0 {
                vec![RuleViolation {
                    invariant: "non-negative".into(),
                    message: format!("tree became {after}"),
                }]
            } else {
                Vec::new()
            }
        }
        fn render(&self, tree: &i64) -> String {
            tree.to_string()
        }
    }

    #[test]
    fn validator_rejects_and_rolls_back_bad_rewrites() {
        // "negate" breaks the invariant; "halve" is fine. The bad rewrite
        // must be rolled back so the good rule still converges.
        let negate = Box::new(FnRule::new("negate", |n: i64| {
            if n > 2 {
                Transformed::yes(-n)
            } else {
                Transformed::no(n)
            }
        }));
        let exec = RuleExecutor::new(vec![Batch::fixed_point("mix", vec![negate, halve()])]);
        let validator = NegativeForbidden;
        let mut monitor = ExecutionMonitor::with_validator(&validator);
        assert_eq!(exec.execute_monitored(8, &mut monitor), 1);
        assert!(!monitor.violations.is_empty());
        let v = &monitor.violations[0];
        assert_eq!(v.batch, "mix");
        assert_eq!(v.rule, "negate");
        assert_eq!(v.invariant, "non-negative");
        assert!(
            v.diff.contains('8'),
            "diff should show the before tree: {}",
            v.diff
        );
        let h = monitor.health.health_for("mix", "negate").unwrap();
        assert!(h.rejected >= 1);
        assert_eq!(h.fires, 0);
    }

    #[test]
    fn monitor_probes_idempotence() {
        // inc-to-10 changes its own output when re-applied (7 -> 8 then
        // 8 -> 9): not idempotent. halve on 8 -> 4 also re-fires. Use a
        // rule idempotent by construction for the negative case.
        let snap = Box::new(FnRule::new("snap-to-zero", |n: i64| {
            if n != 0 {
                Transformed::yes(0)
            } else {
                Transformed::no(n)
            }
        }));
        let inc = Box::new(FnRule::new("inc-to-10", |n: i64| {
            if n < 10 {
                Transformed::yes(n + 1)
            } else {
                Transformed::no(n)
            }
        }));
        let validator = NegativeForbidden;
        let exec = RuleExecutor::new(vec![Batch::fixed_point("probe", vec![inc, snap])]);
        let mut monitor = ExecutionMonitor::with_validator(&validator);
        exec.execute_monitored(5, &mut monitor);
        assert!(
            monitor
                .health
                .health_for("probe", "inc-to-10")
                .unwrap()
                .reapply_changes
                > 0
        );
        assert_eq!(
            monitor
                .health
                .health_for("probe", "snap-to-zero")
                .unwrap()
                .reapply_changes,
            0
        );
    }

    #[test]
    fn change_log_records_before_after_and_diff() {
        let validator = NegativeForbidden;
        let exec = RuleExecutor::new(vec![Batch::fixed_point("shrink", vec![halve()])]);
        let mut monitor = ExecutionMonitor::with_validator(&validator);
        exec.execute_monitored(4, &mut monitor);
        let change = monitor.trace[0]
            .change
            .as_ref()
            .expect("change log populated");
        assert_eq!(change.before, "4");
        assert_eq!(change.after, "2");
    }

    #[test]
    fn health_report_renders_table() {
        let exec = RuleExecutor::new(vec![Batch::fixed_point("shrink", vec![halve()])]);
        let mut monitor = ExecutionMonitor::new();
        exec.execute_monitored(8, &mut monitor);
        let report = monitor.health.render();
        assert!(report.contains("halve"), "{report}");
        assert!(report.contains("non-converged batches: none"), "{report}");
    }
}
