//! Typed accumulator lanes for batch-native hash aggregation.
//!
//! One [`AccLane`] holds the accumulator state of one aggregate call for
//! *every* group, as primitive lanes indexed by group id. Updates run in
//! row-arrival order over `(lane, group)` assignments produced by
//! [`BatchGroups`](super::hash::BatchGroups), so the resulting partials
//! are exactly what the row path's per-row accumulators would have
//! produced for the same partition:
//!
//! * COUNT(\*) counts every row; every other aggregate skips NULL
//!   arguments.
//! * SUM/AVG over Int/Long lanes are exact 64-bit sums with the row
//!   path's sticky Int→Long widening (an Int sum that ever leaves i32
//!   range stays Long), and panic on 64-bit overflow like
//!   [`Value::add`].
//! * MIN/MAX compare with [`Value::total_cmp`] semantics (`i64::cmp`,
//!   [`f64::total_cmp`], byte-wise string compare) and keep the
//!   first-seen extreme on ties.
//!
//! The executor converts finished lanes into its spillable accumulator
//! partials via [`AccLane::partial`]; unsupported aggregate/type
//! combinations make [`AccLane::for_input`] return `None` and the caller
//! falls back to the row path.

use super::batch::{ColumnVector, VectorData};
use crate::types::DataType;
use crate::value::Value;
use std::cmp::Ordering;
use std::sync::Arc;

/// Which aggregate a lane accumulates (non-DISTINCT only).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LaneAgg {
    /// `COUNT(*)` — counts every row.
    CountStar,
    /// `COUNT(col)` — counts non-NULL arguments.
    Count,
    /// `SUM(col)`.
    Sum,
    /// `AVG(col)` — sum plus non-NULL count.
    Avg,
    /// `MIN(col)`.
    Min,
    /// `MAX(col)`.
    Max,
}

/// A finished per-group partial, in the executor's accumulator shape.
///
/// Mirrors the executor's spillable accumulator variants one-to-one so
/// the conversion is a plain constructor call.
#[derive(Debug, Clone)]
pub enum AccPartial {
    /// COUNT partial.
    Count(i64),
    /// SUM partial (None = no non-NULL input seen).
    Sum(Option<Value>),
    /// AVG partial: running sum + non-NULL count.
    Avg(Option<Value>, i64),
    /// MIN partial.
    Min(Option<Value>),
    /// MAX partial.
    Max(Option<Value>),
}

/// Typed accumulator lanes for one aggregate call across all groups.
#[derive(Debug)]
pub enum AccLane {
    /// COUNT(*) / COUNT(col): one count per group.
    Count {
        /// Per-group row (or non-NULL argument) counts.
        counts: Vec<i64>,
        /// True for COUNT(*): NULL arguments still count.
        all_rows: bool,
    },
    /// SUM/AVG over Int/Long lanes (exact 64-bit arithmetic).
    SumLong {
        /// Per-group running sums.
        sums: Vec<i64>,
        /// Per-group "saw a non-NULL value" flags.
        seen: Vec<bool>,
        /// Sticky per-group Int→Long widening flags (Int input only).
        wide: Vec<bool>,
        /// True when the argument type is Int (enables widening logic).
        int_input: bool,
        /// Per-group non-NULL counts (present for AVG).
        avg_counts: Option<Vec<i64>>,
    },
    /// SUM/AVG over Double lanes (f64 accumulation in arrival order).
    SumDouble {
        /// Per-group running sums.
        sums: Vec<f64>,
        /// Per-group "saw a non-NULL value" flags.
        seen: Vec<bool>,
        /// Per-group non-NULL counts (present for AVG).
        avg_counts: Option<Vec<i64>>,
    },
    /// MIN/MAX over Int/Long/Date/Timestamp lanes.
    ExtremeLong {
        /// Per-group current extreme.
        vals: Vec<i64>,
        /// Per-group "saw a non-NULL value" flags.
        seen: Vec<bool>,
        /// True for MIN, false for MAX.
        is_min: bool,
        /// Declared argument type, for re-tagging the finished value.
        dtype: DataType,
    },
    /// MIN/MAX over Double lanes ([`f64::total_cmp`] order).
    ExtremeDouble {
        /// Per-group current extreme.
        vals: Vec<f64>,
        /// Per-group "saw a non-NULL value" flags.
        seen: Vec<bool>,
        /// True for MIN, false for MAX.
        is_min: bool,
    },
    /// MIN/MAX over String lanes.
    ExtremeStr {
        /// Per-group current extreme (None = no non-NULL value yet).
        vals: Vec<Option<Arc<str>>>,
        /// True for MIN, false for MAX.
        is_min: bool,
    },
}

impl AccLane {
    /// Build a lane for `agg` over an argument of type `dtype`, or `None`
    /// when the combination has no typed lane (caller falls back to the
    /// row path). `dtype` is ignored for `CountStar`.
    pub fn for_input(agg: LaneAgg, dtype: &DataType) -> Option<AccLane> {
        match agg {
            LaneAgg::CountStar => Some(AccLane::Count {
                counts: Vec::new(),
                all_rows: true,
            }),
            LaneAgg::Count => Some(AccLane::Count {
                counts: Vec::new(),
                all_rows: false,
            }),
            LaneAgg::Sum | LaneAgg::Avg => {
                let avg = agg == LaneAgg::Avg;
                match dtype {
                    DataType::Int | DataType::Long => Some(AccLane::SumLong {
                        sums: Vec::new(),
                        seen: Vec::new(),
                        wide: Vec::new(),
                        int_input: matches!(dtype, DataType::Int),
                        avg_counts: avg.then(Vec::new),
                    }),
                    DataType::Double => Some(AccLane::SumDouble {
                        sums: Vec::new(),
                        seen: Vec::new(),
                        avg_counts: avg.then(Vec::new),
                    }),
                    _ => None,
                }
            }
            LaneAgg::Min | LaneAgg::Max => {
                let is_min = agg == LaneAgg::Min;
                match dtype {
                    DataType::Int | DataType::Long | DataType::Date | DataType::Timestamp => {
                        Some(AccLane::ExtremeLong {
                            vals: Vec::new(),
                            seen: Vec::new(),
                            is_min,
                            dtype: dtype.clone(),
                        })
                    }
                    DataType::Double => Some(AccLane::ExtremeDouble {
                        vals: Vec::new(),
                        seen: Vec::new(),
                        is_min,
                    }),
                    DataType::String => Some(AccLane::ExtremeStr {
                        vals: Vec::new(),
                        is_min,
                    }),
                    _ => None,
                }
            }
        }
    }

    /// Grow every per-group vector to `n` groups.
    fn ensure_groups(&mut self, n: usize) {
        match self {
            AccLane::Count { counts, .. } => counts.resize(n, 0),
            AccLane::SumLong {
                sums,
                seen,
                wide,
                avg_counts,
                ..
            } => {
                sums.resize(n, 0);
                seen.resize(n, false);
                wide.resize(n, false);
                if let Some(c) = avg_counts {
                    c.resize(n, 0);
                }
            }
            AccLane::SumDouble {
                sums,
                seen,
                avg_counts,
            } => {
                sums.resize(n, 0.0);
                seen.resize(n, false);
                if let Some(c) = avg_counts {
                    c.resize(n, 0);
                }
            }
            AccLane::ExtremeLong { vals, seen, .. } => {
                vals.resize(n, 0);
                seen.resize(n, false);
            }
            AccLane::ExtremeDouble { vals, seen, .. } => {
                vals.resize(n, 0.0);
                seen.resize(n, false);
            }
            AccLane::ExtremeStr { vals, .. } => vals.resize(n, None),
        }
    }

    /// Apply one batch worth of `(lane, group)` assignments (in arrival
    /// order). `arg` is the evaluated argument column; `None` only for
    /// COUNT(*). `num_groups` is the group count after assignment.
    pub fn update(
        &mut self,
        arg: Option<&ColumnVector>,
        assignments: &[(u32, u32)],
        num_groups: usize,
    ) {
        self.ensure_groups(num_groups);
        match self {
            AccLane::Count { counts, all_rows } => {
                if *all_rows {
                    for &(_, g) in assignments {
                        counts[g as usize] += 1;
                    }
                } else {
                    let col = arg.expect("COUNT(col) needs its argument column");
                    for &(i, g) in assignments {
                        if !col.is_null(i as usize) {
                            counts[g as usize] += 1;
                        }
                    }
                }
            }
            AccLane::SumLong {
                sums,
                seen,
                wide,
                int_input,
                avg_counts,
            } => {
                let col = arg.expect("SUM/AVG needs its argument column");
                let lanes = long_lane_view(col);
                for &(i, g) in assignments {
                    let (i, g) = (i as usize, g as usize);
                    if col.is_null(i) {
                        continue;
                    }
                    let v = lane_i64(col, lanes, i);
                    if seen[g] {
                        let s = sums[g].checked_add(v).expect("sum failed");
                        // Value::add widens Int sums to Long once — and
                        // only once — a running value leaves i32 range.
                        if *int_input && !wide[g] && i32::try_from(s).is_err() {
                            wide[g] = true;
                        }
                        sums[g] = s;
                    } else {
                        sums[g] = v;
                        seen[g] = true;
                    }
                    if let Some(c) = avg_counts {
                        c[g] += 1;
                    }
                }
            }
            AccLane::SumDouble {
                sums,
                seen,
                avg_counts,
            } => {
                let col = arg.expect("SUM/AVG needs its argument column");
                let lanes = double_lane_view(col);
                for &(i, g) in assignments {
                    let (i, g) = (i as usize, g as usize);
                    if col.is_null(i) {
                        continue;
                    }
                    let v = lane_f64(col, lanes, i);
                    if seen[g] {
                        sums[g] += v;
                    } else {
                        sums[g] = v;
                        seen[g] = true;
                    }
                    if let Some(c) = avg_counts {
                        c[g] += 1;
                    }
                }
            }
            AccLane::ExtremeLong {
                vals, seen, is_min, ..
            } => {
                let col = arg.expect("MIN/MAX needs its argument column");
                let lanes = long_lane_view(col);
                let want = if *is_min {
                    Ordering::Less
                } else {
                    Ordering::Greater
                };
                for &(i, g) in assignments {
                    let (i, g) = (i as usize, g as usize);
                    if col.is_null(i) {
                        continue;
                    }
                    let v = lane_i64(col, lanes, i);
                    if !seen[g] || v.cmp(&vals[g]) == want {
                        vals[g] = v;
                        seen[g] = true;
                    }
                }
            }
            AccLane::ExtremeDouble { vals, seen, is_min } => {
                let col = arg.expect("MIN/MAX needs its argument column");
                let lanes = double_lane_view(col);
                let want = if *is_min {
                    Ordering::Less
                } else {
                    Ordering::Greater
                };
                for &(i, g) in assignments {
                    let (i, g) = (i as usize, g as usize);
                    if col.is_null(i) {
                        continue;
                    }
                    let v = lane_f64(col, lanes, i);
                    if !seen[g] || v.total_cmp(&vals[g]) == want {
                        vals[g] = v;
                        seen[g] = true;
                    }
                }
            }
            AccLane::ExtremeStr { vals, is_min } => {
                let col = arg.expect("MIN/MAX needs its argument column");
                let want = if *is_min {
                    Ordering::Less
                } else {
                    Ordering::Greater
                };
                for &(i, g) in assignments {
                    let (i, g) = (i as usize, g as usize);
                    if col.is_null(i) {
                        continue;
                    }
                    let s = match col.get(i) {
                        Value::Str(s) => s,
                        other => panic!("MIN/MAX string lane got {other:?}"),
                    };
                    match &vals[g] {
                        Some(cur) if s.as_ref().cmp(cur.as_ref()) != want => {}
                        _ => vals[g] = Some(s),
                    }
                }
            }
        }
    }

    /// The finished partial for group `g`.
    pub fn partial(&self, g: usize) -> AccPartial {
        match self {
            AccLane::Count { counts, .. } => AccPartial::Count(counts.get(g).copied().unwrap_or(0)),
            AccLane::SumLong {
                sums,
                seen,
                wide,
                int_input,
                avg_counts,
            } => {
                let v = seen.get(g).copied().unwrap_or(false).then(|| {
                    let s = sums[g];
                    if *int_input && !wide[g] {
                        Value::Int(s as i32)
                    } else {
                        Value::Long(s)
                    }
                });
                match avg_counts {
                    Some(c) => AccPartial::Avg(v, c.get(g).copied().unwrap_or(0)),
                    None => AccPartial::Sum(v),
                }
            }
            AccLane::SumDouble {
                sums,
                seen,
                avg_counts,
            } => {
                let v = seen
                    .get(g)
                    .copied()
                    .unwrap_or(false)
                    .then(|| Value::Double(sums[g]));
                match avg_counts {
                    Some(c) => AccPartial::Avg(v, c.get(g).copied().unwrap_or(0)),
                    None => AccPartial::Sum(v),
                }
            }
            AccLane::ExtremeLong {
                vals,
                seen,
                is_min,
                dtype,
            } => {
                let v = seen.get(g).copied().unwrap_or(false).then(|| {
                    let x = vals[g];
                    match dtype {
                        DataType::Int => Value::Int(x as i32),
                        DataType::Date => Value::Date(x as i32),
                        DataType::Timestamp => Value::Timestamp(x),
                        _ => Value::Long(x),
                    }
                });
                if *is_min {
                    AccPartial::Min(v)
                } else {
                    AccPartial::Max(v)
                }
            }
            AccLane::ExtremeDouble { vals, seen, is_min } => {
                let v = seen
                    .get(g)
                    .copied()
                    .unwrap_or(false)
                    .then(|| Value::Double(vals[g]));
                if *is_min {
                    AccPartial::Min(v)
                } else {
                    AccPartial::Max(v)
                }
            }
            AccLane::ExtremeStr { vals, is_min } => {
                let v = vals.get(g).and_then(|o| o.clone()).map(Value::Str);
                if *is_min {
                    AccPartial::Min(v)
                } else {
                    AccPartial::Max(v)
                }
            }
        }
    }
}

/// Typed integer lanes when the column stores them natively; `None`
/// falls back to boxed [`ColumnVector::get`] per lane.
fn long_lane_view(col: &ColumnVector) -> Option<&[i64]> {
    match col.data() {
        VectorData::Long(v) => Some(v),
        _ => None,
    }
}

fn double_lane_view(col: &ColumnVector) -> Option<&[f64]> {
    match col.data() {
        VectorData::Double(v) => Some(v),
        _ => None,
    }
}

fn lane_i64(col: &ColumnVector, lanes: Option<&[i64]>, i: usize) -> i64 {
    match lanes {
        Some(v) => v[i],
        None => match col.get(i) {
            Value::Int(x) => x as i64,
            Value::Long(x) | Value::Timestamp(x) => x,
            Value::Date(x) => x as i64,
            other => panic!("integer aggregate lane got {other:?}"),
        },
    }
}

fn lane_f64(col: &ColumnVector, lanes: Option<&[f64]>, i: usize) -> f64 {
    match lanes {
        Some(v) => v[i],
        None => match col.get(i) {
            Value::Double(x) => x,
            other => panic!("double aggregate lane got {other:?}"),
        },
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn long_col(vals: &[Option<i64>]) -> ColumnVector {
        let values: Vec<Value> = vals
            .iter()
            .map(|v| v.map_or(Value::Null, Value::Long))
            .collect();
        ColumnVector::from_values(&DataType::Long, values)
    }

    #[test]
    fn count_star_counts_nulls_count_col_skips_them() {
        let col = long_col(&[Some(1), None, Some(3)]);
        let asg = [(0u32, 0u32), (1, 0), (2, 1)];
        let mut star = AccLane::for_input(LaneAgg::CountStar, &DataType::Long).unwrap();
        star.update(None, &asg, 2);
        let mut cnt = AccLane::for_input(LaneAgg::Count, &DataType::Long).unwrap();
        cnt.update(Some(&col), &asg, 2);
        assert!(matches!(star.partial(0), AccPartial::Count(2)));
        assert!(matches!(cnt.partial(0), AccPartial::Count(1)));
        assert!(matches!(cnt.partial(1), AccPartial::Count(1)));
    }

    #[test]
    fn int_sum_widens_stickily_like_value_add() {
        let values = vec![Value::Int(i32::MAX), Value::Int(1), Value::Int(-i32::MAX)];
        let col = ColumnVector::from_values(&DataType::Int, values);
        let asg = [(0u32, 0u32), (1, 0), (2, 0)];
        let mut sum = AccLane::for_input(LaneAgg::Sum, &DataType::Int).unwrap();
        sum.update(Some(&col), &asg, 1);
        // The running sum left i32 range at step 2, so it stays Long even
        // though the final value (1) fits an Int again.
        match sum.partial(0) {
            AccPartial::Sum(Some(Value::Long(1))) => {}
            other => panic!("expected sticky Long(1), got {other:?}"),
        }
    }

    #[test]
    fn double_min_uses_total_cmp_order() {
        let values = vec![Value::Double(0.0), Value::Double(-0.0)];
        let col = ColumnVector::from_values(&DataType::Double, values);
        let asg = [(0u32, 0u32), (1, 0)];
        let mut min = AccLane::for_input(LaneAgg::Min, &DataType::Double).unwrap();
        min.update(Some(&col), &asg, 1);
        // total_cmp orders -0.0 below 0.0, so -0.0 replaces the first.
        match min.partial(0) {
            AccPartial::Min(Some(Value::Double(d))) => assert!(d.is_sign_negative()),
            other => panic!("expected Min(-0.0), got {other:?}"),
        }
    }

    #[test]
    fn all_null_group_finishes_empty() {
        let col = long_col(&[None, None]);
        let asg = [(0u32, 0u32), (1, 0)];
        for agg in [LaneAgg::Sum, LaneAgg::Avg, LaneAgg::Min, LaneAgg::Max] {
            let mut lane = AccLane::for_input(agg, &DataType::Long).unwrap();
            lane.update(Some(&col), &asg, 1);
            match lane.partial(0) {
                AccPartial::Sum(None) | AccPartial::Min(None) | AccPartial::Max(None) => {}
                AccPartial::Avg(None, 0) => {}
                other => panic!("expected empty partial, got {other:?}"),
            }
        }
    }
}
