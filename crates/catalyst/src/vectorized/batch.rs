//! Columnar storage: typed column vectors and the [`RowBatch`] container.
//!
//! This file owns the data layout; the kernels in
//! [`kernels`](super::kernels) operate over it. The only place lanes are
//! copied back out into rows is [`RowBatch::into_selected_rows`] — the
//! single batch→row compaction boundary of the engine.

use crate::row::Row;
use crate::types::DataType;
use crate::value::Value;
use std::sync::Arc;

/// Physical lane storage of one [`ColumnVector`].
///
/// `Long` lanes back Int/Long/Date/Timestamp columns and `Double` lanes
/// back Float/Double columns; the vector's declared [`DataType`] decides
/// how lanes are re-tagged into [`Value`]s (and which kernels may touch
/// them — Date/Timestamp lanes are deliberately *not* exposed to numeric
/// kernels, mirroring what the row-path code generator refuses to
/// compile).
#[derive(Debug, Clone)]
pub enum VectorData {
    /// 64-bit integer lanes (Int/Long/Date/Timestamp storage).
    Long(Vec<i64>),
    /// 64-bit float lanes (Float/Double storage).
    Double(Vec<f64>),
    /// Boolean lanes.
    Bool(Vec<bool>),
    /// String lanes (shared, clones are cheap).
    Str(Vec<Arc<str>>),
    /// Boxed values — the universal fallback representation.
    Values(Vec<Value>),
}

impl VectorData {
    fn len(&self) -> usize {
        match self {
            VectorData::Long(v) => v.len(),
            VectorData::Double(v) => v.len(),
            VectorData::Bool(v) => v.len(),
            VectorData::Str(v) => v.len(),
            VectorData::Values(v) => v.len(),
        }
    }
}

/// A typed column of lanes plus an optional null mask.
///
/// `nulls[i] == true` means lane `i` is NULL; the corresponding data lane
/// holds an arbitrary filler and must not be interpreted. A missing mask
/// means no lane is NULL (for typed data) — boxed [`VectorData::Values`]
/// lanes may additionally contain explicit [`Value::Null`]s.
#[derive(Debug, Clone)]
pub struct ColumnVector {
    pub(super) dtype: DataType,
    pub(super) data: VectorData,
    pub(super) nulls: Option<Vec<bool>>,
}

/// A typed view over the numeric lanes of a vector, for kernels.
pub(super) enum NumLanes<'a> {
    I(&'a [i64]),
    F(&'a [f64]),
}

impl NumLanes<'_> {
    #[inline]
    pub(super) fn f64_at(&self, i: usize) -> f64 {
        match self {
            NumLanes::I(v) => v[i] as f64,
            NumLanes::F(v) => v[i],
        }
    }
}

impl ColumnVector {
    /// Build a vector from raw parts. `nulls`, when present, must be as
    /// long as `data`.
    pub fn new(dtype: DataType, data: VectorData, nulls: Option<Vec<bool>>) -> ColumnVector {
        debug_assert!(nulls.as_ref().is_none_or(|n| n.len() == data.len()));
        ColumnVector { dtype, data, nulls }
    }

    /// Build a boxed-values vector (the fallback representation).
    pub fn from_boxed(dtype: DataType, values: Vec<Value>) -> ColumnVector {
        ColumnVector {
            dtype,
            data: VectorData::Values(values),
            nulls: None,
        }
    }

    /// Build a typed vector from boxed values, falling back to boxed
    /// storage when a non-null value does not match `dtype`.
    pub fn from_values(dtype: &DataType, values: Vec<Value>) -> ColumnVector {
        let conforms = values.iter().all(|v| match dtype {
            DataType::Int => matches!(v, Value::Int(_) | Value::Null),
            DataType::Long => matches!(v, Value::Long(_) | Value::Null),
            DataType::Date => matches!(v, Value::Date(_) | Value::Null),
            DataType::Timestamp => matches!(v, Value::Timestamp(_) | Value::Null),
            DataType::Float => matches!(v, Value::Float(_) | Value::Null),
            DataType::Double => matches!(v, Value::Double(_) | Value::Null),
            DataType::Boolean => matches!(v, Value::Boolean(_) | Value::Null),
            DataType::String => matches!(v, Value::Str(_) | Value::Null),
            _ => false,
        });
        if !conforms {
            return ColumnVector::from_boxed(dtype.clone(), values);
        }
        let n = values.len();
        let mut nulls = vec![false; n];
        let mut any_null = false;
        let data = match dtype {
            DataType::Int | DataType::Long | DataType::Date | DataType::Timestamp => {
                let mut lanes = vec![0i64; n];
                for (i, v) in values.into_iter().enumerate() {
                    match v {
                        Value::Int(x) => lanes[i] = x as i64,
                        Value::Long(x) | Value::Timestamp(x) => lanes[i] = x,
                        Value::Date(x) => lanes[i] = x as i64,
                        _ => {
                            nulls[i] = true;
                            any_null = true;
                        }
                    }
                }
                VectorData::Long(lanes)
            }
            DataType::Float | DataType::Double => {
                let mut lanes = vec![0f64; n];
                for (i, v) in values.into_iter().enumerate() {
                    match v {
                        Value::Float(x) => lanes[i] = x as f64,
                        Value::Double(x) => lanes[i] = x,
                        _ => {
                            nulls[i] = true;
                            any_null = true;
                        }
                    }
                }
                VectorData::Double(lanes)
            }
            DataType::Boolean => {
                let mut lanes = vec![false; n];
                for (i, v) in values.into_iter().enumerate() {
                    match v {
                        Value::Boolean(x) => lanes[i] = x,
                        _ => {
                            nulls[i] = true;
                            any_null = true;
                        }
                    }
                }
                VectorData::Bool(lanes)
            }
            DataType::String => {
                let empty: Arc<str> = Arc::from("");
                let mut lanes = vec![empty; n];
                for (i, v) in values.into_iter().enumerate() {
                    match v {
                        Value::Str(s) => lanes[i] = s,
                        _ => {
                            nulls[i] = true;
                            any_null = true;
                        }
                    }
                }
                VectorData::Str(lanes)
            }
            _ => unreachable!("conformance check covers only typed dtypes"),
        };
        ColumnVector::new(dtype.clone(), data, any_null.then_some(nulls))
    }

    /// Number of lanes.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// True when the vector has no lanes.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Declared column type (decides lane re-tagging).
    pub fn dtype(&self) -> &DataType {
        &self.dtype
    }

    /// Raw lane storage.
    pub fn data(&self) -> &VectorData {
        &self.data
    }

    /// Null mask, if any lane is NULL (typed storage only).
    pub fn nulls(&self) -> Option<&[bool]> {
        self.nulls.as_deref()
    }

    /// Is lane `i` NULL?
    #[inline]
    pub fn is_null(&self, i: usize) -> bool {
        if self.nulls.as_ref().is_some_and(|n| n[i]) {
            return true;
        }
        matches!(&self.data, VectorData::Values(v) if v[i].is_null())
    }

    /// Lane `i` re-tagged as a [`Value`] according to the declared dtype.
    pub fn get(&self, i: usize) -> Value {
        if self.nulls.as_ref().is_some_and(|n| n[i]) {
            return Value::Null;
        }
        match &self.data {
            VectorData::Long(v) => match self.dtype {
                DataType::Int => Value::Int(v[i] as i32),
                DataType::Date => Value::Date(v[i] as i32),
                DataType::Timestamp => Value::Timestamp(v[i]),
                _ => Value::Long(v[i]),
            },
            VectorData::Double(v) => match self.dtype {
                DataType::Float => Value::Float(v[i] as f32),
                _ => Value::Double(v[i]),
            },
            VectorData::Bool(v) => Value::Boolean(v[i]),
            VectorData::Str(v) => Value::Str(v[i].clone()),
            VectorData::Values(v) => v[i].clone(),
        }
    }

    /// Predicate view of lane `i`: true iff the lane is a non-NULL SQL
    /// `TRUE` (NULL ⇒ false, mirroring `compile_predicate`).
    #[inline]
    pub fn is_true(&self, i: usize) -> bool {
        if self.nulls.as_ref().is_some_and(|n| n[i]) {
            return false;
        }
        match &self.data {
            VectorData::Bool(v) => v[i],
            VectorData::Values(v) => matches!(v[i], Value::Boolean(true)),
            _ => false,
        }
    }

    /// Integer lanes, only for Int/Long columns (Date/Timestamp lanes are
    /// hidden from numeric kernels, like in the code generator).
    pub(super) fn long_lanes(&self) -> Option<&[i64]> {
        match (&self.dtype, &self.data) {
            (DataType::Int | DataType::Long, VectorData::Long(v)) => Some(v),
            _ => None,
        }
    }

    pub(super) fn num_lanes(&self) -> Option<NumLanes<'_>> {
        match (&self.dtype, &self.data) {
            (DataType::Int | DataType::Long, VectorData::Long(v)) => Some(NumLanes::I(v)),
            (DataType::Float | DataType::Double, VectorData::Double(v)) => Some(NumLanes::F(v)),
            _ => None,
        }
    }

    pub(super) fn bool_lanes(&self) -> Option<&[bool]> {
        match (&self.dtype, &self.data) {
            (DataType::Boolean, VectorData::Bool(v)) => Some(v),
            _ => None,
        }
    }

    pub(super) fn str_lanes(&self) -> Option<&[Arc<str>]> {
        match (&self.dtype, &self.data) {
            (DataType::String, VectorData::Str(v)) => Some(v),
            _ => None,
        }
    }

    /// Re-tag a vector to the dtype an expression declares (e.g. Long
    /// lanes produced by integer arithmetic re-tagged as Int), mirroring
    /// `Compiled::eval_value`. Incompatible combinations are returned
    /// unchanged.
    pub(super) fn retagged(self: Arc<Self>, declared: &DataType) -> Arc<ColumnVector> {
        if &self.dtype == declared {
            return self;
        }
        let compatible = matches!(
            (&self.data, declared),
            (VectorData::Long(_), DataType::Int | DataType::Long)
                | (VectorData::Double(_), DataType::Float | DataType::Double)
                | (VectorData::Bool(_), DataType::Boolean)
                | (VectorData::Str(_), DataType::String)
        );
        if !compatible {
            return self;
        }
        Arc::new(ColumnVector::new(
            declared.clone(),
            self.data.clone(),
            self.nulls.clone(),
        ))
    }
}

/// A batch of rows in columnar form: column vectors sharing one lane
/// count, plus an optional selection vector of live lane indices.
///
/// Cloning is cheap (columns and selection are shared), so a `RowBatch`
/// flows through the engine's RDDs as an ordinary element.
#[derive(Debug, Clone)]
pub struct RowBatch {
    pub(super) columns: Vec<Arc<ColumnVector>>,
    pub(super) num_rows: usize,
    pub(super) selection: Option<Arc<Vec<u32>>>,
}

impl RowBatch {
    /// Build a batch from column vectors (each `num_rows` lanes long).
    pub fn new(columns: Vec<Arc<ColumnVector>>, num_rows: usize) -> RowBatch {
        debug_assert!(columns.iter().all(|c| c.len() == num_rows));
        RowBatch {
            columns,
            num_rows,
            selection: None,
        }
    }

    /// Transpose rows into a typed batch (the generic row→batch adapter
    /// for sources without a native vector scan).
    pub fn from_rows(dtypes: &[DataType], rows: &[Row]) -> RowBatch {
        let columns = dtypes
            .iter()
            .enumerate()
            .map(|(j, dt)| {
                let vals: Vec<Value> = rows
                    .iter()
                    .map(|r| r.values().get(j).cloned().unwrap_or(Value::Null))
                    .collect();
                Arc::new(ColumnVector::from_values(dt, vals))
            })
            .collect();
        RowBatch {
            columns,
            num_rows: rows.len(),
            selection: None,
        }
    }

    /// Physical lane count (selected or not).
    pub fn num_rows(&self) -> usize {
        self.num_rows
    }

    /// Live rows: selection length if present, else all lanes.
    pub fn selected_count(&self) -> usize {
        self.selection.as_ref().map_or(self.num_rows, |s| s.len())
    }

    /// Number of columns.
    pub fn num_columns(&self) -> usize {
        self.columns.len()
    }

    /// Column `i`.
    pub fn column(&self, i: usize) -> &Arc<ColumnVector> {
        &self.columns[i]
    }

    /// All columns.
    pub fn columns(&self) -> &[Arc<ColumnVector>] {
        &self.columns
    }

    /// The selection vector, if the batch has been filtered.
    pub fn selection(&self) -> Option<&[u32]> {
        self.selection.as_ref().map(|s| s.as_slice())
    }

    /// Replace the selection vector (callers pass indices already
    /// restricted to the previous selection).
    pub fn with_selection(mut self, selection: Vec<u32>) -> RowBatch {
        self.selection = Some(Arc::new(selection));
        self
    }

    /// Visit every selected lane index in order.
    #[inline]
    pub fn for_each_selected(&self, mut f: impl FnMut(usize)) {
        match &self.selection {
            Some(sel) => sel.iter().for_each(|&i| f(i as usize)),
            None => (0..self.num_rows).for_each(&mut f),
        }
    }

    /// Keep only the named columns (cheap: shares vectors). The selection
    /// vector is preserved.
    pub fn project(&self, indices: &[usize]) -> RowBatch {
        RowBatch {
            columns: indices.iter().map(|&i| self.columns[i].clone()).collect(),
            num_rows: self.num_rows,
            selection: self.selection.clone(),
        }
    }

    /// Gather lane `i` across all columns into a [`Row`] (fallback path).
    pub fn row(&self, i: usize) -> Row {
        Row::new(self.columns.iter().map(|c| c.get(i)).collect())
    }

    /// Compact the batch into materialized rows — the batch→row adapter.
    /// This is the only place selected lanes are copied out.
    pub fn into_selected_rows(self) -> Vec<Row> {
        let mut out = Vec::with_capacity(self.selected_count());
        self.for_each_selected(|i| out.push(self.row(i)));
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn typed_build_and_get_round_trip() {
        let vals = vec![Value::Int(1), Value::Null, Value::Int(-3)];
        let v = ColumnVector::from_values(&DataType::Int, vals.clone());
        assert!(matches!(v.data(), VectorData::Long(_)));
        for (i, expect) in vals.iter().enumerate() {
            assert_eq!(&v.get(i), expect);
        }
    }

    #[test]
    fn mixed_values_fall_back_to_boxed() {
        let vals = vec![Value::Int(1), Value::str("x")];
        let v = ColumnVector::from_values(&DataType::Int, vals.clone());
        assert!(matches!(v.data(), VectorData::Values(_)));
        assert_eq!(v.get(1), Value::str("x"));
    }
}
