//! Vectorized (batch-at-a-time) expression evaluation and operators.
//!
//! The row-at-a-time Volcano iterator pays a virtual call and a boxed
//! [`Value`](crate::value::Value) per column per row. This module
//! amortizes that overhead over whole batches: a [`RowBatch`] carries
//! typed column vectors ([`ColumnVector`]) plus an optional *selection
//! vector*, and [`eval_batch`] evaluates an expression tree one
//! **column** at a time with tight loops over primitive lanes — the
//! Shark/Flare-style answer to interpretation overhead that §3.4/§4.3.4
//! of the paper motivate.
//!
//! Layout:
//!
//! * [`batch`] — the storage types: [`VectorData`], [`ColumnVector`],
//!   [`RowBatch`] and the batch→row compaction point
//!   ([`RowBatch::into_selected_rows`]).
//! * [`kernels`] — columnar expression kernels ([`eval_batch`],
//!   [`eval_projection_batch`], [`filter_batch`]).
//! * [`hash`] — columnar group-key hashing for batch-native hash
//!   aggregation ([`BatchGroups`]).
//! * [`accumulators`] — typed accumulator lanes updated per-batch
//!   ([`AccLane`], [`LaneAgg`]).
//! * [`sort`] — batch-level sort-key extraction and index-sort + gather
//!   reordering ([`sort_keys_batch`], [`sorted_indices`]).
//!
//! Design rules (documented in DESIGN.md):
//!
//! * **Kernels mirror `codegen.rs`.** A kernel exists exactly where the
//!   row-path code generator compiles a closure (Long/Double arithmetic
//!   with Hive division semantics, three-valued AND/OR, string
//!   comparison/concat, numeric casts, null tests). Division or modulo by
//!   zero yields NULL in both paths.
//! * **Anything else falls back per row.** Unsupported nodes (CASE, LIKE,
//!   UDFs, decimals, dates, …) are evaluated with the tree-walking
//!   [`interpreter`](crate::interpreter) on the *selected* rows only,
//!   producing a boxed [`VectorData::Values`] column. Unselected lanes
//!   are never evaluated, matching the row path where filtered-out rows
//!   never reach the expression.
//! * **Filters select, they don't copy.** A predicate refines the
//!   selection vector; rows are compacted only at the batch→row adapter
//!   boundary ([`RowBatch::into_selected_rows`]).

pub mod accumulators;
pub mod batch;
pub mod hash;
pub mod kernels;
pub mod sort;

pub use accumulators::{AccLane, AccPartial, LaneAgg};
pub use batch::{ColumnVector, RowBatch, VectorData};
pub use hash::BatchGroups;
pub use kernels::{eval_batch, eval_projection_batch, filter_batch};
pub use sort::{sort_keys_batch, sorted_indices};
