//! Columnar expression kernels over [`RowBatch`] columns.
//!
//! A kernel exists exactly where the row-path code generator compiles a
//! closure; anything else falls back to the tree-walking interpreter on
//! the selected lanes only (see the module docs in
//! [`vectorized`](crate::vectorized)).

use super::batch::{ColumnVector, NumLanes, RowBatch, VectorData};
use crate::error::Result;
use crate::expr::{BinaryOperator, Expr};
use crate::interpreter;
use crate::types::DataType;
use crate::value::Value;
use std::sync::Arc;

/// Evaluate `expr` over a batch, returning one output lane per physical
/// row (unselected lanes hold unspecified filler). With `kernels` set,
/// supported subtrees run as columnar kernels; otherwise (and for
/// unsupported subtrees) the interpreter evaluates selected rows one at a
/// time, exactly like the row path with codegen disabled.
pub fn eval_batch(expr: &Expr, batch: &RowBatch, kernels: bool) -> Result<Arc<ColumnVector>> {
    if kernels {
        if let Some(v) = eval_kernel(expr, batch)? {
            return Ok(v);
        }
    }
    fallback_eval(expr, batch)
}

/// Evaluate a projection column-at-a-time. Output columns are re-tagged
/// to each expression's declared type; the input selection carries over.
pub fn eval_projection_batch(exprs: &[Expr], batch: &RowBatch, kernels: bool) -> Result<RowBatch> {
    let columns = exprs
        .iter()
        .map(|e| {
            let v = eval_batch(e, batch, kernels)?;
            Ok(match e.data_type() {
                Ok(declared) => v.retagged(&declared),
                Err(_) => v,
            })
        })
        .collect::<Result<Vec<_>>>()?;
    Ok(RowBatch {
        columns,
        num_rows: batch.num_rows,
        selection: batch.selection.clone(),
    })
}

/// Evaluate a predicate and refine the batch's selection vector to the
/// lanes where it is non-NULL `TRUE`. No rows are copied.
pub fn filter_batch(pred: &Expr, batch: &RowBatch, kernels: bool) -> Result<RowBatch> {
    let v = eval_batch(pred, batch, kernels)?;
    let mut sel = Vec::with_capacity(batch.selected_count());
    batch.for_each_selected(|i| {
        if v.is_true(i) {
            sel.push(i as u32);
        }
    });
    Ok(batch.clone().with_selection(sel))
}

/// Interpreter fallback: evaluate selected rows only; unselected lanes
/// stay NULL filler. Errors propagate exactly as in the row path.
fn fallback_eval(expr: &Expr, batch: &RowBatch) -> Result<Arc<ColumnVector>> {
    let mut out = vec![Value::Null; batch.num_rows];
    let mut err = None;
    batch.for_each_selected(|i| {
        if err.is_some() {
            return;
        }
        match interpreter::eval(expr, &batch.row(i)) {
            Ok(v) => out[i] = v,
            Err(e) => err = Some(e),
        }
    });
    if let Some(e) = err {
        return Err(e);
    }
    let dtype = expr.data_type().unwrap_or(DataType::Null);
    Ok(Arc::new(ColumnVector::from_boxed(dtype, out)))
}

/// Try to evaluate `expr` with columnar kernels; `Ok(None)` means some
/// node in the subtree has no kernel and the caller must fall back (the
/// same whole-subtree fallback rule `codegen::try_compile` uses).
fn eval_kernel(expr: &Expr, batch: &RowBatch) -> Result<Option<Arc<ColumnVector>>> {
    match expr {
        Expr::Literal(v) => Ok(broadcast(v, batch.num_rows)),
        Expr::BoundRef { index, .. } => Ok(batch.columns.get(*index).cloned()),
        Expr::Alias { child, .. } => eval_kernel(child, batch),
        Expr::Cast { expr, dtype } => {
            let Some(c) = eval_kernel(expr, batch)? else {
                return Ok(None);
            };
            Ok(cast_kernel(&c, dtype))
        }
        Expr::Negate(e) => {
            let Some(c) = eval_kernel(e, batch)? else {
                return Ok(None);
            };
            Ok(match c.num_lanes() {
                Some(NumLanes::I(v)) => Some(Arc::new(ColumnVector::new(
                    DataType::Long,
                    VectorData::Long(v.iter().map(|x| x.wrapping_neg()).collect()),
                    c.nulls.clone(),
                ))),
                Some(NumLanes::F(v)) => Some(Arc::new(ColumnVector::new(
                    DataType::Double,
                    VectorData::Double(v.iter().map(|x| -x).collect()),
                    c.nulls.clone(),
                ))),
                None => None,
            })
        }
        Expr::Not(e) => {
            let Some(c) = eval_kernel(e, batch)? else {
                return Ok(None);
            };
            Ok(c.bool_lanes().map(|v| {
                Arc::new(ColumnVector::new(
                    DataType::Boolean,
                    VectorData::Bool(v.iter().map(|b| !b).collect()),
                    c.nulls.clone(),
                ))
            }))
        }
        Expr::IsNull(e) => {
            let Some(c) = eval_kernel(e, batch)? else {
                return Ok(None);
            };
            Ok(Some(null_test(&c, batch.num_rows, true)))
        }
        Expr::IsNotNull(e) => {
            let Some(c) = eval_kernel(e, batch)? else {
                return Ok(None);
            };
            Ok(Some(null_test(&c, batch.num_rows, false)))
        }
        Expr::BinaryOp { left, op, right } => {
            let Some(l) = eval_kernel(left, batch)? else {
                return Ok(None);
            };
            let Some(r) = eval_kernel(right, batch)? else {
                return Ok(None);
            };
            Ok(binary_kernel(&l, *op, &r))
        }
        _ => Ok(None),
    }
}

/// Broadcast a literal into a full vector; non-primitive literals have no
/// kernel (the code generator refuses them too).
fn broadcast(v: &Value, n: usize) -> Option<Arc<ColumnVector>> {
    let (dtype, data) = match v {
        Value::Int(x) => (DataType::Int, VectorData::Long(vec![*x as i64; n])),
        Value::Long(x) => (DataType::Long, VectorData::Long(vec![*x; n])),
        Value::Float(x) => (DataType::Float, VectorData::Double(vec![*x as f64; n])),
        Value::Double(x) => (DataType::Double, VectorData::Double(vec![*x; n])),
        Value::Boolean(x) => (DataType::Boolean, VectorData::Bool(vec![*x; n])),
        Value::Str(s) => (DataType::String, VectorData::Str(vec![s.clone(); n])),
        _ => return None,
    };
    Some(Arc::new(ColumnVector::new(dtype, data, None)))
}

/// Numeric casts, mirroring the codegen `Cast` cases; everything else
/// falls back.
fn cast_kernel(c: &Arc<ColumnVector>, target: &DataType) -> Option<Arc<ColumnVector>> {
    match target {
        DataType::Int | DataType::Long => match c.num_lanes()? {
            NumLanes::I(_) => Some(c.clone().retagged(target)),
            NumLanes::F(v) => Some(Arc::new(ColumnVector::new(
                target.clone(),
                VectorData::Long(v.iter().map(|x| *x as i64).collect()),
                c.nulls.clone(),
            ))),
        },
        DataType::Float | DataType::Double => match c.num_lanes()? {
            NumLanes::I(v) => Some(Arc::new(ColumnVector::new(
                target.clone(),
                VectorData::Double(v.iter().map(|x| *x as f64).collect()),
                c.nulls.clone(),
            ))),
            NumLanes::F(_) => Some(c.clone().retagged(target)),
        },
        _ => None,
    }
}

/// `IS [NOT] NULL` as a lane test (never NULL itself).
fn null_test(c: &ColumnVector, n: usize, want_null: bool) -> Arc<ColumnVector> {
    let lanes = (0..n).map(|i| c.is_null(i) == want_null).collect();
    Arc::new(ColumnVector::new(
        DataType::Boolean,
        VectorData::Bool(lanes),
        None,
    ))
}

fn union_nulls(a: Option<&[bool]>, b: Option<&[bool]>, n: usize) -> Option<Vec<bool>> {
    match (a, b) {
        (None, None) => None,
        (Some(x), None) | (None, Some(x)) => Some(x.to_vec()),
        (Some(x), Some(y)) => Some((0..n).map(|i| x[i] || y[i]).collect()),
    }
}

/// Binary kernels with the exact semantics of `codegen::compile_binary`:
/// three-valued AND/OR, an exact integer fast path (Hive `/` always
/// fractional, `%`/`/` by zero ⇒ NULL), a widening float path, and string
/// comparison/concatenation. Type combinations the code generator would
/// not compile return `None`.
fn binary_kernel(
    l: &Arc<ColumnVector>,
    op: BinaryOperator,
    r: &Arc<ColumnVector>,
) -> Option<Arc<ColumnVector>> {
    use BinaryOperator::*;
    let n = l.len();

    if op == And || op == Or {
        let (lv, rv) = (l.bool_lanes()?, r.bool_lanes()?);
        let mut lanes = vec![false; n];
        let mut nulls = vec![false; n];
        let mut any_null = false;
        for i in 0..n {
            let a = (!l.nulls.as_ref().is_some_and(|m| m[i])).then(|| lv[i]);
            let b = (!r.nulls.as_ref().is_some_and(|m| m[i])).then(|| rv[i]);
            let out = match op {
                And => match (a, b) {
                    (Some(false), _) | (_, Some(false)) => Some(false),
                    (Some(true), Some(true)) => Some(true),
                    _ => None,
                },
                _ => match (a, b) {
                    (Some(true), _) | (_, Some(true)) => Some(true),
                    (Some(false), Some(false)) => Some(false),
                    _ => None,
                },
            };
            match out {
                Some(v) => lanes[i] = v,
                None => {
                    nulls[i] = true;
                    any_null = true;
                }
            }
        }
        return Some(Arc::new(ColumnVector::new(
            DataType::Boolean,
            VectorData::Bool(lanes),
            any_null.then_some(nulls),
        )));
    }

    // Integer fast path: exact 64-bit arithmetic and comparisons.
    if let (Some(lv), Some(rv)) = (l.long_lanes(), r.long_lanes()) {
        let nulls = union_nulls(l.nulls(), r.nulls(), n);
        return Some(match op {
            Add => long_arith(lv, rv, nulls, |a, b| a.wrapping_add(b)),
            Sub => long_arith(lv, rv, nulls, |a, b| a.wrapping_sub(b)),
            Mul => long_arith(lv, rv, nulls, |a, b| a.wrapping_mul(b)),
            Mod => {
                let mut nulls = nulls.unwrap_or_else(|| vec![false; n]);
                let mut lanes = vec![0i64; n];
                for i in 0..n {
                    if rv[i] == 0 {
                        nulls[i] = true;
                    } else if !nulls[i] {
                        lanes[i] = lv[i].wrapping_rem(rv[i]);
                    }
                }
                Arc::new(ColumnVector::new(
                    DataType::Long,
                    VectorData::Long(lanes),
                    Some(nulls),
                ))
            }
            Div => {
                let mut nulls = nulls.unwrap_or_else(|| vec![false; n]);
                let mut lanes = vec![0f64; n];
                for i in 0..n {
                    if rv[i] == 0 {
                        nulls[i] = true;
                    } else if !nulls[i] {
                        lanes[i] = lv[i] as f64 / rv[i] as f64;
                    }
                }
                Arc::new(ColumnVector::new(
                    DataType::Double,
                    VectorData::Double(lanes),
                    Some(nulls),
                ))
            }
            Eq => long_cmp(lv, rv, nulls, |o| o == std::cmp::Ordering::Equal),
            NotEq => long_cmp(lv, rv, nulls, |o| o != std::cmp::Ordering::Equal),
            Lt => long_cmp(lv, rv, nulls, |o| o == std::cmp::Ordering::Less),
            LtEq => long_cmp(lv, rv, nulls, |o| o != std::cmp::Ordering::Greater),
            Gt => long_cmp(lv, rv, nulls, |o| o == std::cmp::Ordering::Greater),
            GtEq => long_cmp(lv, rv, nulls, |o| o != std::cmp::Ordering::Less),
            And | Or => unreachable!(),
        });
    }

    // Float path: both sides numeric, at least one fractional.
    if let (Some(lv), Some(rv)) = (l.num_lanes(), r.num_lanes()) {
        let nulls = union_nulls(l.nulls(), r.nulls(), n);
        let arith = |f: fn(f64, f64) -> f64, zero_is_null: bool| {
            let mut nulls = nulls.clone().unwrap_or_else(|| vec![false; n]);
            let mut lanes = vec![0f64; n];
            for i in 0..n {
                let b = rv.f64_at(i);
                if zero_is_null && b == 0.0 {
                    nulls[i] = true;
                } else if !nulls[i] {
                    lanes[i] = f(lv.f64_at(i), b);
                }
            }
            Arc::new(ColumnVector::new(
                DataType::Double,
                VectorData::Double(lanes),
                Some(nulls),
            ))
        };
        let cmp = |f: fn(f64, f64) -> bool| {
            let lanes = (0..n).map(|i| f(lv.f64_at(i), rv.f64_at(i))).collect();
            Arc::new(ColumnVector::new(
                DataType::Boolean,
                VectorData::Bool(lanes),
                nulls.clone(),
            ))
        };
        return Some(match op {
            Add => arith(|a, b| a + b, false),
            Sub => arith(|a, b| a - b, false),
            Mul => arith(|a, b| a * b, false),
            Div => arith(|a, b| a / b, true),
            Mod => arith(|a, b| a % b, true),
            Eq => cmp(|a, b| a == b),
            NotEq => cmp(|a, b| a != b),
            Lt => cmp(|a, b| a < b),
            LtEq => cmp(|a, b| a <= b),
            Gt => cmp(|a, b| a > b),
            GtEq => cmp(|a, b| a >= b),
            And | Or => unreachable!(),
        });
    }

    // String comparisons and concatenation.
    if let (Some(lv), Some(rv)) = (l.str_lanes(), r.str_lanes()) {
        let nulls = union_nulls(l.nulls(), r.nulls(), n);
        if op == Add {
            let lanes = (0..n)
                .map(|i| Arc::from(format!("{}{}", lv[i], rv[i])))
                .collect();
            return Some(Arc::new(ColumnVector::new(
                DataType::String,
                VectorData::Str(lanes),
                nulls,
            )));
        }
        let cmp = |f: fn(std::cmp::Ordering) -> bool| {
            let lanes = (0..n)
                .map(|i| f(lv[i].as_ref().cmp(rv[i].as_ref())))
                .collect();
            Arc::new(ColumnVector::new(
                DataType::Boolean,
                VectorData::Bool(lanes),
                nulls.clone(),
            ))
        };
        return match op {
            Eq => Some(cmp(|o| o == std::cmp::Ordering::Equal)),
            NotEq => Some(cmp(|o| o != std::cmp::Ordering::Equal)),
            Lt => Some(cmp(|o| o == std::cmp::Ordering::Less)),
            LtEq => Some(cmp(|o| o != std::cmp::Ordering::Greater)),
            Gt => Some(cmp(|o| o == std::cmp::Ordering::Greater)),
            GtEq => Some(cmp(|o| o != std::cmp::Ordering::Less)),
            _ => None,
        };
    }

    None
}

fn long_arith(
    lv: &[i64],
    rv: &[i64],
    nulls: Option<Vec<bool>>,
    f: impl Fn(i64, i64) -> i64,
) -> Arc<ColumnVector> {
    let lanes = lv.iter().zip(rv).map(|(a, b)| f(*a, *b)).collect();
    Arc::new(ColumnVector::new(
        DataType::Long,
        VectorData::Long(lanes),
        nulls,
    ))
}

fn long_cmp(
    lv: &[i64],
    rv: &[i64],
    nulls: Option<Vec<bool>>,
    f: impl Fn(std::cmp::Ordering) -> bool,
) -> Arc<ColumnVector> {
    let lanes = lv.iter().zip(rv).map(|(a, b)| f(a.cmp(b))).collect();
    Arc::new(ColumnVector::new(
        DataType::Boolean,
        VectorData::Bool(lanes),
        nulls,
    ))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn bound(index: usize, dtype: DataType) -> Expr {
        Expr::BoundRef {
            index,
            dtype,
            nullable: true,
            name: Arc::from(format!("c{index}")),
        }
    }

    fn long_batch(vals: &[Option<i64>]) -> RowBatch {
        let values: Vec<Value> = vals
            .iter()
            .map(|v| v.map_or(Value::Null, Value::Long))
            .collect();
        RowBatch::new(
            vec![Arc::new(ColumnVector::from_values(&DataType::Long, values))],
            vals.len(),
        )
    }

    #[test]
    fn filter_refines_selection_without_copying() {
        let batch = long_batch(&[Some(1), Some(5), None, Some(9)]);
        let pred = Expr::BinaryOp {
            left: Box::new(bound(0, DataType::Long)),
            op: BinaryOperator::Gt,
            right: Box::new(Expr::Literal(Value::Long(4))),
        };
        for kernels in [true, false] {
            let out = filter_batch(&pred, &batch, kernels).unwrap();
            assert_eq!(out.num_rows(), 4, "lanes stay physical");
            assert_eq!(out.selection(), Some(&[1u32, 3][..]));
            let rows = out.into_selected_rows();
            assert_eq!(rows.len(), 2);
            assert_eq!(rows[0].get(0), &Value::Long(5));
        }
    }

    #[test]
    fn division_by_zero_is_null_in_both_paths() {
        let batch = long_batch(&[Some(10), Some(7)]);
        let div = Expr::BinaryOp {
            left: Box::new(bound(0, DataType::Long)),
            op: BinaryOperator::Div,
            right: Box::new(Expr::Literal(Value::Long(0))),
        };
        for kernels in [true, false] {
            let v = eval_batch(&div, &batch, kernels).unwrap();
            assert_eq!(v.get(0), Value::Null, "kernels={kernels}");
        }
        let modz = Expr::BinaryOp {
            left: Box::new(bound(0, DataType::Long)),
            op: BinaryOperator::Mod,
            right: Box::new(Expr::Literal(Value::Long(0))),
        };
        for kernels in [true, false] {
            let v = eval_batch(&modz, &batch, kernels).unwrap();
            assert_eq!(v.get(1), Value::Null, "kernels={kernels}");
        }
    }

    #[test]
    fn three_valued_and_or_match_interpreter() {
        let b = |v: Option<bool>| v.map_or(Value::Null, Value::Boolean);
        let cases = [
            (Some(true), None),
            (Some(false), None),
            (None, None),
            (Some(true), Some(false)),
        ];
        let values: Vec<Value> = cases.iter().map(|(a, _)| b(*a)).collect();
        let rvals: Vec<Value> = cases.iter().map(|(_, x)| b(*x)).collect();
        let batch = RowBatch::new(
            vec![
                Arc::new(ColumnVector::from_values(&DataType::Boolean, values)),
                Arc::new(ColumnVector::from_values(&DataType::Boolean, rvals)),
            ],
            cases.len(),
        );
        for op in [BinaryOperator::And, BinaryOperator::Or] {
            let e = Expr::BinaryOp {
                left: Box::new(bound(0, DataType::Boolean)),
                op,
                right: Box::new(bound(1, DataType::Boolean)),
            };
            let fast = eval_batch(&e, &batch, true).unwrap();
            let slow = eval_batch(&e, &batch, false).unwrap();
            for i in 0..cases.len() {
                assert_eq!(fast.get(i), slow.get(i), "{op:?} lane {i}");
            }
        }
    }

    #[test]
    fn fallback_only_touches_selected_lanes() {
        // CASE has no kernel; the unselected lane would divide by zero if
        // evaluated eagerly — selection must protect it like the row path.
        let batch = long_batch(&[Some(0), Some(2)]).with_selection(vec![1]);
        let case = Expr::Case {
            operand: None,
            branches: vec![(
                Expr::BinaryOp {
                    left: Box::new(bound(0, DataType::Long)),
                    op: BinaryOperator::Gt,
                    right: Box::new(Expr::Literal(Value::Long(1))),
                },
                Expr::Literal(Value::str("big")),
            )],
            else_expr: Some(Box::new(Expr::Literal(Value::str("small")))),
        };
        let v = eval_batch(&case, &batch, true).unwrap();
        assert_eq!(v.get(1), Value::str("big"));
        assert_eq!(v.get(0), Value::Null, "unselected lane untouched");
    }

    #[test]
    fn projection_retags_to_declared_type() {
        let vals = vec![Value::Int(3), Value::Int(4)];
        let batch = RowBatch::new(
            vec![Arc::new(ColumnVector::from_values(&DataType::Int, vals))],
            2,
        );
        // Int + Int declares Int via tightest_common_type.
        let e = Expr::BinaryOp {
            left: Box::new(bound(0, DataType::Int)),
            op: BinaryOperator::Add,
            right: Box::new(bound(0, DataType::Int)),
        };
        let out = eval_projection_batch(std::slice::from_ref(&e), &batch, true).unwrap();
        assert_eq!(out.column(0).get(0), Value::Int(6));
    }
}
