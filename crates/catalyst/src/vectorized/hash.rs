//! Columnar group-key hashing for batch-native hash aggregation.
//!
//! [`BatchGroups`] interns each distinct grouping key and hands back
//! dense group ids, one `(lane, group)` pair per selected lane, in
//! arrival order. The truth table is a `HashMap<Row, u32>` — the exact
//! key equality the row path's hash aggregation uses ([`Value`] hashing
//! canonicalizes numerics, so `Int(1)`/`Long(1)` land in one group on
//! both paths) — with typed caches layered on top so the hot loop never
//! boxes a row: single-column keys hash a raw `i64` or `Arc<str>`
//! directly, and multi-column keys (up to four columns) intern each
//! column's value to a dense per-column id and probe a packed id
//! *signature*, only materializing a boxed key row the first time a
//! combination is seen.

use super::batch::{ColumnVector, RowBatch, VectorData};
use crate::row::Row;
use crate::value::Value;
use std::collections::HashMap;
use std::sync::Arc;

/// How many key columns the packed-signature fast path covers; wider
/// keys fall back to boxed row interning per lane.
const MAX_SIG_COLS: usize = 4;

/// Per-column value interner backing the multi-column fast path.
///
/// Maps each distinct column value to a dense per-column id. Raw typed
/// caches (`i64` lanes, `Arc<str>` lanes) front a canonical
/// `HashMap<Value, u32>` so typed lanes in one batch and boxed lanes in
/// another agree on ids — [`Value`] hashing canonicalizes numerics, so
/// the id equivalence is exactly row-path key equality, column by
/// column. Equal values get equal ids and distinct values get distinct
/// ids, hence two key rows are equal iff their id signatures are equal.
#[derive(Debug, Default)]
struct ColumnInterner {
    /// Raw cache for integer-lane columns.
    by_long: HashMap<i64, u32>,
    /// Raw cache for string-lane columns.
    by_str: HashMap<Arc<str>, u32>,
    /// Canonical value → id map; the per-column source of truth.
    by_value: HashMap<Value, u32>,
    /// Cached id of NULL in this column.
    null_id: Option<u32>,
}

impl ColumnInterner {
    fn canonical(&mut self, v: Value) -> u32 {
        let next = self.by_value.len() as u32;
        *self.by_value.entry(v).or_insert(next)
    }

    /// Dense id of lane `i` of `col`.
    fn id(&mut self, col: &ColumnVector, i: usize) -> u32 {
        if col.is_null(i) {
            return match self.null_id {
                Some(id) => id,
                None => {
                    let id = self.canonical(Value::Null);
                    self.null_id = Some(id);
                    id
                }
            };
        }
        match col.data() {
            VectorData::Long(lanes) => {
                let raw = lanes[i];
                if let Some(&id) = self.by_long.get(&raw) {
                    return id;
                }
                let id = self.canonical(col.get(i));
                self.by_long.insert(raw, id);
                id
            }
            VectorData::Str(lanes) => {
                let raw = &lanes[i];
                if let Some(&id) = self.by_str.get(raw) {
                    return id;
                }
                let raw = raw.clone();
                let id = self.canonical(col.get(i));
                self.by_str.insert(raw, id);
                id
            }
            _ => self.canonical(col.get(i)),
        }
    }
}

/// Incremental group-key interner over batches of key columns.
#[derive(Debug, Default)]
pub struct BatchGroups {
    /// Key row → dense group id; the source of truth.
    truth: HashMap<Row, u32>,
    /// Distinct key rows in first-seen order, indexed by group id.
    keys: Vec<Row>,
    /// Fast path: single integer-lane key column.
    long_cache: HashMap<i64, u32>,
    /// Fast path: single string-lane key column.
    str_cache: HashMap<Arc<str>, u32>,
    /// Cached group id of the all-NULL single-column key.
    null_group: Option<u32>,
    /// Fast path: per-column interners for multi-column keys.
    col_interners: Vec<ColumnInterner>,
    /// Packed per-column id signature → group id (≤ [`MAX_SIG_COLS`]
    /// columns, 32 bits of id space per column).
    sig_cache: HashMap<u128, u32>,
}

impl BatchGroups {
    /// Fresh, empty interner.
    pub fn new() -> BatchGroups {
        BatchGroups::default()
    }

    /// Number of distinct groups seen so far.
    pub fn len(&self) -> usize {
        self.keys.len()
    }

    /// True before any key has been interned.
    pub fn is_empty(&self) -> bool {
        self.keys.is_empty()
    }

    /// The key row of group `g`.
    pub fn key(&self, g: usize) -> &Row {
        &self.keys[g]
    }

    /// All distinct key rows, in first-seen order.
    pub fn into_keys(self) -> Vec<Row> {
        self.keys
    }

    fn intern(&mut self, key: Row) -> u32 {
        if let Some(&g) = self.truth.get(&key) {
            return g;
        }
        let g = self.keys.len() as u32;
        self.keys.push(key.clone());
        self.truth.insert(key, g);
        g
    }

    fn intern_null(&mut self) -> u32 {
        match self.null_group {
            Some(g) => g,
            None => {
                let g = self.intern(Row::new(vec![Value::Null]));
                self.null_group = Some(g);
                g
            }
        }
    }

    /// Assign a group id to every selected lane of `key_batch` (the
    /// evaluated grouping columns), appending `(lane, group)` pairs to
    /// `out` in arrival order.
    pub fn assign(&mut self, key_batch: &RowBatch, out: &mut Vec<(u32, u32)>) {
        out.clear();
        out.reserve(key_batch.selected_count());
        if key_batch.num_columns() == 1 {
            let col = key_batch.column(0).clone();
            match col.data() {
                VectorData::Long(lanes) => {
                    key_batch.for_each_selected(|i| {
                        let g = if col.is_null(i) {
                            self.intern_null()
                        } else {
                            let raw = lanes[i];
                            match self.long_cache.get(&raw) {
                                Some(&g) => g,
                                None => {
                                    let g = self.intern(Row::new(vec![col.get(i)]));
                                    self.long_cache.insert(raw, g);
                                    g
                                }
                            }
                        };
                        out.push((i as u32, g));
                    });
                    return;
                }
                VectorData::Str(lanes) => {
                    key_batch.for_each_selected(|i| {
                        let g = if col.is_null(i) {
                            self.intern_null()
                        } else {
                            let raw = &lanes[i];
                            match self.str_cache.get(raw) {
                                Some(&g) => g,
                                None => {
                                    let g = self.intern(Row::new(vec![col.get(i)]));
                                    self.str_cache.insert(raw.clone(), g);
                                    g
                                }
                            }
                        };
                        out.push((i as u32, g));
                    });
                    return;
                }
                _ => {}
            }
        }
        let cols: Vec<&Arc<ColumnVector>> = key_batch.columns().iter().collect();
        if (2..=MAX_SIG_COLS).contains(&cols.len()) {
            if self.col_interners.len() != cols.len() {
                self.col_interners = (0..cols.len()).map(|_| ColumnInterner::default()).collect();
            }
            key_batch.for_each_selected(|i| {
                let mut sig = 0u128;
                for (j, c) in cols.iter().enumerate() {
                    sig |= (self.col_interners[j].id(c, i) as u128) << (32 * j);
                }
                let g = match self.sig_cache.get(&sig) {
                    Some(&g) => g,
                    None => {
                        let key = Row::new(cols.iter().map(|c| c.get(i)).collect());
                        let g = self.intern(key);
                        self.sig_cache.insert(sig, g);
                        g
                    }
                };
                out.push((i as u32, g));
            });
            return;
        }
        key_batch.for_each_selected(|i| {
            let key = Row::new(cols.iter().map(|c| c.get(i)).collect());
            let g = self.intern(key);
            out.push((i as u32, g));
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::types::DataType;

    fn batch_of(dtype: DataType, values: Vec<Value>) -> RowBatch {
        let n = values.len();
        RowBatch::new(vec![Arc::new(ColumnVector::from_values(&dtype, values))], n)
    }

    #[test]
    fn long_keys_intern_in_first_seen_order() {
        let b = batch_of(
            DataType::Long,
            vec![
                Value::Long(7),
                Value::Long(3),
                Value::Null,
                Value::Long(7),
                Value::Null,
            ],
        );
        let mut groups = BatchGroups::new();
        let mut out = Vec::new();
        groups.assign(&b, &mut out);
        assert_eq!(out, vec![(0, 0), (1, 1), (2, 2), (3, 0), (4, 2)]);
        assert_eq!(groups.len(), 3);
        assert_eq!(groups.key(2), &Row::new(vec![Value::Null]));
    }

    #[test]
    fn boxed_and_typed_batches_share_groups() {
        // First batch arrives typed, second as boxed values (the eval
        // fallback shape); both must agree on group ids.
        let typed = batch_of(DataType::Long, vec![Value::Long(1), Value::Long(2)]);
        let boxed = RowBatch::new(
            vec![Arc::new(ColumnVector::from_boxed(
                DataType::Long,
                vec![Value::Long(2), Value::Long(9)],
            ))],
            2,
        );
        let mut groups = BatchGroups::new();
        let mut out = Vec::new();
        groups.assign(&typed, &mut out);
        groups.assign(&boxed, &mut out);
        assert_eq!(out, vec![(0, 1), (1, 2)]);
        assert_eq!(groups.len(), 3);
    }

    #[test]
    fn multi_column_keys_use_row_equality() {
        let n = 3;
        let c1 = Arc::new(ColumnVector::from_values(
            &DataType::Long,
            vec![Value::Long(1), Value::Long(1), Value::Long(1)],
        ));
        let c2 = Arc::new(ColumnVector::from_values(
            &DataType::String,
            vec![Value::str("a"), Value::str("b"), Value::str("a")],
        ));
        let mut groups = BatchGroups::new();
        let mut out = Vec::new();
        groups.assign(&RowBatch::new(vec![c1, c2], n), &mut out);
        assert_eq!(out, vec![(0, 0), (1, 1), (2, 0)]);
    }

    #[test]
    fn multi_column_signature_cache_is_stable_across_batches() {
        // Typed lanes first, then boxed lanes (the eval fallback shape)
        // with NULLs and a numeric-width change; the packed-signature
        // fast path must agree with row-path key equality throughout.
        let typed = RowBatch::new(
            vec![
                Arc::new(ColumnVector::from_values(
                    &DataType::Long,
                    vec![Value::Long(1), Value::Long(2), Value::Null],
                )),
                Arc::new(ColumnVector::from_values(
                    &DataType::String,
                    vec![Value::str("a"), Value::str("a"), Value::str("b")],
                )),
            ],
            3,
        );
        let boxed = RowBatch::new(
            vec![
                Arc::new(ColumnVector::from_boxed(
                    DataType::Long,
                    vec![Value::Int(1), Value::Null, Value::Long(3)],
                )),
                Arc::new(ColumnVector::from_boxed(
                    DataType::String,
                    vec![Value::str("a"), Value::str("b"), Value::Null],
                )),
            ],
            3,
        );
        let mut groups = BatchGroups::new();
        let mut out = Vec::new();
        groups.assign(&typed, &mut out);
        assert_eq!(out, vec![(0, 0), (1, 1), (2, 2)]);
        groups.assign(&boxed, &mut out);
        // Int(1) canonicalizes to Long(1): lane 0 rejoins group 0.
        assert_eq!(out, vec![(0, 0), (1, 2), (2, 3)]);
        assert_eq!(groups.len(), 4);
        assert_eq!(groups.key(3), &Row::new(vec![Value::Long(3), Value::Null]));
    }

    #[test]
    fn selection_vector_limits_assignment() {
        let b = batch_of(
            DataType::String,
            vec![Value::str("x"), Value::str("y"), Value::str("x")],
        )
        .with_selection(vec![0, 2]);
        let mut groups = BatchGroups::new();
        let mut out = Vec::new();
        groups.assign(&b, &mut out);
        assert_eq!(out, vec![(0, 0), (2, 0)]);
        assert_eq!(groups.len(), 1);
    }
}
