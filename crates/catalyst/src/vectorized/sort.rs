//! Batch-level sort-key extraction and index-sort + gather reordering.
//!
//! The executor's sorts stay row-granular where spill byte-identity
//! demands it (the external-sort run writer consumes rows in arrival
//! order); what vectorizes is the expensive part — evaluating the ORDER
//! BY key expressions — plus an in-memory index sort used where a whole
//! partition is buffered. [`sorted_indices`] is a *stable* sort under
//! exactly the comparator the row path's `SortKey` uses
//! ([`crate::value::Value::total_cmp`] per key, descending keys reversed, NULLs
//! first ascending), so it yields the identical permutation.

use super::batch::{ColumnVector, RowBatch, VectorData};
use crate::error::Result;
use crate::expr::Expr;
use std::cmp::Ordering;
use std::sync::Arc;

/// Evaluate the bound ORDER BY key expressions over a batch, one column
/// per key (columnar where kernels exist, interpreter fallback
/// otherwise — the same contract as [`eval_batch`](super::eval_batch)).
pub fn sort_keys_batch(
    order_exprs: &[Expr],
    batch: &RowBatch,
    kernels: bool,
) -> Result<Vec<Arc<ColumnVector>>> {
    order_exprs
        .iter()
        .map(|e| super::eval_batch(e, batch, kernels))
        .collect()
}

/// Compare lane `i` against lane `j` of one key column with
/// [`crate::value::Value::total_cmp`] semantics, using typed lanes when available.
fn cmp_lanes(col: &ColumnVector, i: usize, j: usize) -> Ordering {
    match (col.is_null(i), col.is_null(j)) {
        (true, true) => return Ordering::Equal,
        (true, false) => return Ordering::Less,
        (false, true) => return Ordering::Greater,
        (false, false) => {}
    }
    match col.data() {
        VectorData::Long(v) => v[i].cmp(&v[j]),
        VectorData::Double(v) => v[i].total_cmp(&v[j]),
        VectorData::Bool(v) => v[i].cmp(&v[j]),
        VectorData::Str(v) => v[i].as_ref().cmp(v[j].as_ref()),
        VectorData::Values(_) => col.get(i).total_cmp(&col.get(j)),
    }
}

/// Stable index sort of the batch's *selected* lanes by the given key
/// columns (`true` = descending). Returns lane indices in sorted order;
/// equal keys keep arrival order, matching the row path's stable sort.
pub fn sorted_indices(batch: &RowBatch, keys: &[(Arc<ColumnVector>, bool)]) -> Vec<u32> {
    let mut indices = Vec::with_capacity(batch.selected_count());
    batch.for_each_selected(|i| indices.push(i as u32));
    indices.sort_by(|&a, &b| {
        for (col, descending) in keys {
            let mut o = cmp_lanes(col, a as usize, b as usize);
            if *descending {
                o = o.reverse();
            }
            if o != Ordering::Equal {
                return o;
            }
        }
        Ordering::Equal
    });
    indices
}

/// Gather-based reordering: the sorted indices become the batch's
/// selection vector, so no column data moves until the single
/// batch→row compaction boundary.
pub fn gather(batch: &RowBatch, indices: Vec<u32>) -> RowBatch {
    batch.clone().with_selection(indices)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::types::DataType;
    use crate::value::Value;

    fn batch(vals: Vec<Value>) -> RowBatch {
        let n = vals.len();
        RowBatch::new(
            vec![Arc::new(ColumnVector::from_values(&DataType::Long, vals))],
            n,
        )
    }

    #[test]
    fn stable_sort_keeps_arrival_order_on_ties() {
        let b = batch(vec![
            Value::Long(2),
            Value::Long(1),
            Value::Long(2),
            Value::Null,
        ]);
        let keys = vec![(b.column(0).clone(), false)];
        let idx = sorted_indices(&b, &keys);
        // NULLs first, then 1, then the two 2s in arrival order.
        assert_eq!(idx, vec![3, 1, 0, 2]);
        let rows = gather(&b, idx).into_selected_rows();
        assert_eq!(rows[0].get(0), &Value::Null);
        assert_eq!(rows[1].get(0), &Value::Long(1));
    }

    #[test]
    fn descending_reverses_but_keeps_null_rule() {
        let b = batch(vec![Value::Long(1), Value::Null, Value::Long(3)]);
        let keys = vec![(b.column(0).clone(), true)];
        let idx = sorted_indices(&b, &keys);
        // Descending reverses the whole total order, so NULL sorts last.
        assert_eq!(idx, vec![2, 0, 1]);
    }

    #[test]
    fn sorting_respects_existing_selection() {
        let b =
            batch(vec![Value::Long(5), Value::Long(1), Value::Long(3)]).with_selection(vec![0, 2]);
        let keys = vec![(b.column(0).clone(), false)];
        let idx = sorted_indices(&b, &keys);
        assert_eq!(idx, vec![2, 0], "unselected lane 1 never appears");
    }
}
