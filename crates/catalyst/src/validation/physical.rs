//! Physical-plan invariant checks (the `check_physical` half of
//! [`super::PlanValidator`]): reference binding against the right child,
//! shuffle-boundary expectations at hash joins, broadcast build-side
//! legality, and union shape.

use super::{hash_compatible, Invariant, Violation};
use crate::expr::{ColumnRef, Expr};
use crate::physical::{BuildSide, PhysicalPlan};
use crate::plan::JoinType;
use crate::types::DataType;

/// Run every physical invariant over the plan tree.
pub(super) fn check_plan(plan: &PhysicalPlan) -> Vec<Violation> {
    let mut v = Vec::new();
    walk(plan, &mut v);
    v
}

fn walk(plan: &PhysicalPlan, v: &mut Vec<Violation>) {
    check_node(plan, v);
    for c in plan.children() {
        walk(&c, v);
    }
}

/// Every `Column` reference in `e` must be produced by `available`.
fn refs_within(e: &Expr, available: &[ColumnRef], what: &str, v: &mut Vec<Violation>) {
    for r in e.references() {
        if !available.iter().any(|a| a.id == r.id) {
            v.push(Violation::new(
                Invariant::PhysicalReferences,
                format!(
                    "{what} references '{}'#{} which its input does not produce",
                    r.name, r.id
                ),
            ));
        }
    }
}

fn well_typed(e: &Expr, what: &str, v: &mut Vec<Violation>) {
    if e.is_resolved() {
        if let Err(err) = e.data_type() {
            v.push(Violation::new(
                Invariant::WellTypedExpressions,
                format!("{what} '{e}' fails to type-check: {err}"),
            ));
        }
    }
}

fn check_hash_join_keys(
    op: &str,
    left: &PhysicalPlan,
    right: &PhysicalPlan,
    left_keys: &[Expr],
    right_keys: &[Expr],
    v: &mut Vec<Violation>,
) {
    if left_keys.is_empty() || right_keys.is_empty() {
        v.push(Violation::new(
            Invariant::JoinKeysAligned,
            format!("{op} has no equi-join keys — nothing to hash-partition on"),
        ));
        return;
    }
    if left_keys.len() != right_keys.len() {
        v.push(Violation::new(
            Invariant::JoinKeysAligned,
            format!(
                "{op} has {} left keys but {} right keys",
                left_keys.len(),
                right_keys.len()
            ),
        ));
        return;
    }
    let lout = left.output();
    let rout = right.output();
    for (i, (lk, rk)) in left_keys.iter().zip(right_keys.iter()).enumerate() {
        refs_within(lk, &lout, &format!("{op} left key {i}"), v);
        refs_within(rk, &rout, &format!("{op} right key {i}"), v);
        well_typed(lk, &format!("{op} left key {i}"), v);
        well_typed(rk, &format!("{op} right key {i}"), v);
        if let (Ok(lt), Ok(rt)) = (lk.data_type(), rk.data_type()) {
            if !hash_compatible(&lt, &rt) {
                v.push(Violation::new(
                    Invariant::JoinKeysAligned,
                    format!(
                        "{op} key pair {i} compares incomparable types {lt} and {rt} — \
                         rows cannot co-partition"
                    ),
                ));
            }
        }
    }
}

fn check_node(plan: &PhysicalPlan, v: &mut Vec<Violation>) {
    match plan {
        PhysicalPlan::Scan {
            residual, output, ..
        } => {
            if let Some(r) = residual {
                refs_within(r, output, "Scan residual", v);
                well_typed(r, "Scan residual", v);
            }
        }
        PhysicalPlan::Project { input, exprs } => {
            let avail = input.output();
            for e in exprs {
                refs_within(e, &avail, "Project expression", v);
                well_typed(e, "Project expression", v);
                if e.is_resolved() && e.to_attribute().is_err() {
                    v.push(Violation::new(
                        Invariant::NamedOutputs,
                        format!("physical Project output '{e}' has no stable name"),
                    ));
                }
            }
        }
        PhysicalPlan::Filter { input, predicate } => {
            refs_within(predicate, &input.output(), "Filter predicate", v);
            well_typed(predicate, "Filter predicate", v);
            if let Ok(t) = predicate.data_type() {
                if !matches!(t, DataType::Boolean | DataType::Null) {
                    v.push(Violation::new(
                        Invariant::BooleanPredicates,
                        format!("physical Filter predicate '{predicate}' has type {t}"),
                    ));
                }
            }
        }
        PhysicalPlan::HashAggregate {
            input,
            groupings,
            output_exprs,
        } => {
            let avail = input.output();
            for e in groupings {
                refs_within(e, &avail, "HashAggregate grouping", v);
                well_typed(e, "HashAggregate grouping", v);
            }
            for e in output_exprs {
                refs_within(e, &avail, "HashAggregate output", v);
                well_typed(e, "HashAggregate output", v);
                if e.is_resolved() && e.to_attribute().is_err() {
                    v.push(Violation::new(
                        Invariant::NamedOutputs,
                        format!("HashAggregate output '{e}' has no stable name"),
                    ));
                }
            }
        }
        PhysicalPlan::Window {
            input,
            window_exprs,
            partition_by,
            order_by,
        } => {
            let avail = input.output();
            for e in window_exprs {
                refs_within(e, &avail, "Window expression", v);
                well_typed(e, "Window expression", v);
                if e.is_resolved() && e.to_attribute().is_err() {
                    v.push(Violation::new(
                        Invariant::NamedOutputs,
                        format!("Window output '{e}' has no stable name"),
                    ));
                }
            }
            for e in partition_by {
                refs_within(e, &avail, "Window partition key", v);
                well_typed(e, "Window partition key", v);
            }
            for o in order_by {
                refs_within(&o.expr, &avail, "Window order key", v);
                well_typed(&o.expr, "Window order key", v);
            }
        }
        PhysicalPlan::Sort { input, orders } | PhysicalPlan::TakeOrdered { input, orders, .. } => {
            let avail = input.output();
            for o in orders {
                refs_within(&o.expr, &avail, "sort key", v);
                well_typed(&o.expr, "sort key", v);
            }
        }
        PhysicalPlan::BroadcastHashJoin {
            left,
            right,
            left_keys,
            right_keys,
            join_type,
            build_side,
            residual,
        } => {
            check_hash_join_keys("BroadcastHashJoin", left, right, left_keys, right_keys, v);
            // Broadcasting the build side replicates it to every stream
            // partition; if the build side is the null-producing side of
            // an outer join, unmatched build rows cannot be emitted
            // exactly once. Mirrors the planner's `can_build_*` logic.
            let legal = match build_side {
                BuildSide::Right => matches!(join_type, JoinType::Inner | JoinType::Left),
                BuildSide::Left => matches!(join_type, JoinType::Inner | JoinType::Right),
            };
            if !legal {
                v.push(Violation::new(
                    Invariant::BuildSideLegal,
                    format!(
                        "BroadcastHashJoin builds {build_side:?} for a {} join — the \
                         null-producing side must be streamed",
                        join_type.keyword()
                    ),
                ));
            }
            if let Some(r) = residual {
                let mut avail = left.output();
                avail.extend(right.output());
                refs_within(r, &avail, "join residual", v);
                well_typed(r, "join residual", v);
            }
        }
        PhysicalPlan::ShuffledHashJoin {
            left,
            right,
            left_keys,
            right_keys,
            residual,
            ..
        } => {
            check_hash_join_keys("ShuffledHashJoin", left, right, left_keys, right_keys, v);
            if let Some(r) = residual {
                let mut avail = left.output();
                avail.extend(right.output());
                refs_within(r, &avail, "join residual", v);
                well_typed(r, "join residual", v);
            }
        }
        PhysicalPlan::NestedLoopJoin {
            left,
            right,
            condition,
            ..
        } => {
            if let Some(c) = condition {
                let mut avail = left.output();
                avail.extend(right.output());
                refs_within(c, &avail, "NestedLoopJoin condition", v);
                well_typed(c, "NestedLoopJoin condition", v);
            }
        }
        PhysicalPlan::Union { inputs } => {
            let Some(first) = inputs.first() else { return };
            let head = first.output();
            for (i, inp) in inputs.iter().enumerate().skip(1) {
                let o = inp.output();
                if o.len() != head.len() {
                    v.push(Violation::new(
                        Invariant::UnionShape,
                        format!(
                            "physical Union input {i} has {} columns, expected {}",
                            o.len(),
                            head.len()
                        ),
                    ));
                    continue;
                }
                for (a, b) in head.iter().zip(o.iter()) {
                    if !hash_compatible(&a.dtype, &b.dtype) {
                        v.push(Violation::new(
                            Invariant::UnionShape,
                            format!(
                                "physical Union input {i} column '{}' has type {} \
                                 incompatible with {}",
                                b.name, b.dtype, a.dtype
                            ),
                        ));
                    }
                }
            }
        }
        PhysicalPlan::ExternalScan { .. }
        | PhysicalPlan::LocalData { .. }
        | PhysicalPlan::Limit { .. }
        | PhysicalPlan::Sample { .. }
        | PhysicalPlan::Extension { .. } => {}
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::expr::builders::lit;
    use std::sync::Arc;

    fn local(cols: Vec<ColumnRef>) -> PhysicalPlan {
        PhysicalPlan::LocalData {
            rows: Arc::new(vec![]),
            output: cols,
        }
    }

    fn attr(name: &str, dtype: DataType) -> ColumnRef {
        ColumnRef::new(name, dtype, false)
    }

    #[test]
    fn clean_physical_plan_passes() {
        let a = attr("a", DataType::Long);
        let p = PhysicalPlan::Filter {
            input: Arc::new(local(vec![a.clone()])),
            predicate: Expr::Column(a).gt(lit(1i64)),
        };
        assert!(check_plan(&p).is_empty(), "{:?}", check_plan(&p));
    }

    #[test]
    fn unbound_reference_is_flagged() {
        let a = attr("a", DataType::Long);
        let ghost = attr("ghost", DataType::Long);
        let p = PhysicalPlan::Filter {
            input: Arc::new(local(vec![a])),
            predicate: Expr::Column(ghost).gt(lit(1i64)),
        };
        let v = check_plan(&p);
        assert!(
            v.iter()
                .any(|x| x.invariant == Invariant::PhysicalReferences),
            "{v:?}"
        );
    }

    #[test]
    fn illegal_broadcast_build_side_is_flagged() {
        let a = attr("a", DataType::Long);
        let b = attr("b", DataType::Long);
        // LEFT join building (broadcasting) the left side: the stream side
        // cannot emit unmatched left rows — illegal.
        let p = PhysicalPlan::BroadcastHashJoin {
            left: Arc::new(local(vec![a.clone()])),
            right: Arc::new(local(vec![b.clone()])),
            left_keys: vec![Expr::Column(a)],
            right_keys: vec![Expr::Column(b)],
            join_type: JoinType::Left,
            build_side: BuildSide::Left,
            residual: None,
        };
        let v = check_plan(&p);
        assert!(
            v.iter().any(|x| x.invariant == Invariant::BuildSideLegal),
            "{v:?}"
        );
    }

    #[test]
    fn misaligned_join_keys_are_flagged() {
        let a = attr("a", DataType::Long);
        let b = attr("b", DataType::Long);
        let p = PhysicalPlan::ShuffledHashJoin {
            left: Arc::new(local(vec![a.clone()])),
            right: Arc::new(local(vec![b.clone()])),
            left_keys: vec![Expr::Column(a.clone()), Expr::Column(a)],
            right_keys: vec![Expr::Column(b)],
            join_type: JoinType::Inner,
            build_side: BuildSide::Right,
            residual: None,
        };
        let v = check_plan(&p);
        assert!(
            v.iter().any(|x| x.invariant == Invariant::JoinKeysAligned),
            "{v:?}"
        );
    }

    #[test]
    fn empty_hash_join_keys_are_flagged() {
        let a = attr("a", DataType::Long);
        let b = attr("b", DataType::Long);
        let p = PhysicalPlan::ShuffledHashJoin {
            left: Arc::new(local(vec![a])),
            right: Arc::new(local(vec![b])),
            left_keys: vec![],
            right_keys: vec![],
            join_type: JoinType::Inner,
            build_side: BuildSide::Right,
            residual: None,
        };
        let v = check_plan(&p);
        assert!(
            v.iter().any(|x| x.invariant == Invariant::JoinKeysAligned),
            "{v:?}"
        );
    }

    #[test]
    fn incomparable_key_types_are_flagged() {
        let a = attr("a", DataType::Boolean);
        let b = attr("b", DataType::Long);
        let p = PhysicalPlan::ShuffledHashJoin {
            left: Arc::new(local(vec![a.clone()])),
            right: Arc::new(local(vec![b.clone()])),
            left_keys: vec![Expr::Column(a)],
            right_keys: vec![Expr::Column(b)],
            join_type: JoinType::Inner,
            build_side: BuildSide::Right,
            residual: None,
        };
        let v = check_plan(&p);
        assert!(
            v.iter().any(|x| x.invariant == Invariant::JoinKeysAligned),
            "{v:?}"
        );
    }
}
