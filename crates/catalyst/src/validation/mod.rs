//! Plan-integrity checking: static analysis over logical and physical
//! plans (§4.2's debuggability claim, made machine-checked).
//!
//! The paper argues Catalyst's rule-based design is easy to extend and
//! debug; that only holds if a rule that breaks a plan invariant is
//! caught the moment it fires, not three phases later as a wrong result.
//! Production Spark later grew exactly this tooling
//! (`LogicalPlanIntegrity`, `PlanChangeLogger`); this module is the
//! equivalent:
//!
//! - [`PlanValidator::check_logical`] validates a standalone logical plan
//!   (after analysis): no unresolved placeholders, every attribute
//!   reference reachable from children, globally consistent expression
//!   ids, named projection outputs, well-typed expressions, Boolean
//!   predicates, consistent unions, and disjoint join inputs.
//! - [`PlanValidator::check_rewrite`] validates one optimizer rewrite as
//!   a per-rule post-condition: the output schema (names, types, ids)
//!   must survive, and the rewrite must not introduce any new invariant
//!   violation. Violations present *before* the rewrite are not blamed
//!   on the rule that happened to fire next.
//! - [`PlanValidator::check_physical`] validates a physical plan:
//!   references bound to the right child, shuffle-boundary expectations
//!   (hash-join keys present, aligned, and comparable), broadcast
//!   build-side legality, and union shape.
//!
//! The validator plugs into [`crate::rules::RuleExecutor`] through the
//! [`crate::rules::RuleValidator`] trait: under monitored execution every
//! rewrite that changes the plan is checked, and a violating rewrite is
//! rolled back and reported with batch, rule, iteration, invariant, and
//! a structural before/after diff ([`diff::line_diff`]).
//!
//! Validation is on by default in debug builds (so `cargo test` runs the
//! whole corpus under it) and opt-in in release via `CATALYST_VALIDATE=1`
//! — see [`enabled`].

pub mod diff;
mod logical;
mod physical;

use crate::physical::PhysicalPlan;
use crate::plan::LogicalPlan;
use crate::rules::{RuleValidator, RuleViolation};
use std::fmt;
use std::sync::OnceLock;

/// The invariants [`PlanValidator`] checks. Each violation names one.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Invariant {
    /// No `UnresolvedRelation` nodes or unresolved attribute / function /
    /// wildcard expressions remain after analysis.
    NoUnresolvedPlaceholders,
    /// Every attribute a node references is produced by one of its
    /// children (or, for a scan's pushed filters, by the scan itself).
    ReachableReferences,
    /// An expression id maps to one (name, type) everywhere in the plan —
    /// ids are the identity attributes carry through aliasing and
    /// pruning, so a clash makes column resolution ambiguous.
    UniqueAttributeIds,
    /// Every `Project` / `Aggregate` output expression has a stable name
    /// (`Column` or `Alias`); an unnamed output silently vanishes from
    /// `output()` and shrinks the schema.
    NamedOutputs,
    /// Every resolved expression type-checks (`data_type()` succeeds).
    WellTypedExpressions,
    /// Filter predicates, join conditions, and pushed scan filters are
    /// BOOLEAN-typed.
    BooleanPredicates,
    /// Union inputs agree in width and have pairwise-compatible column
    /// types.
    UnionShape,
    /// Join inputs produce disjoint attribute ids (a shared id makes
    /// `left.x = right.x` unresolvable — the self-join hazard).
    DistinctJoinChildren,
    /// Window functions appear only as top-level (aliased) expressions of
    /// a `Window` node, and every frame is well-formed (start bound not
    /// after end bound).
    WindowShape,
    /// An optimizer rewrite preserved the plan's output schema: same
    /// width, and per position the same name, type, and id.
    SchemaPreserved,
    /// Physical: every expression's column references resolve against the
    /// correct child's output.
    PhysicalReferences,
    /// Physical: hash-join key lists are non-empty, equal in length, and
    /// pairwise comparable — the shuffle-boundary expectation for
    /// hash-partitioned joins.
    JoinKeysAligned,
    /// Physical: a broadcast hash join never builds (broadcasts) the
    /// null-producing side of an outer join.
    BuildSideLegal,
}

impl Invariant {
    /// Stable kebab-case name used in reports.
    pub fn name(&self) -> &'static str {
        match self {
            Invariant::NoUnresolvedPlaceholders => "no-unresolved-placeholders",
            Invariant::ReachableReferences => "reachable-references",
            Invariant::UniqueAttributeIds => "unique-attribute-ids",
            Invariant::NamedOutputs => "named-outputs",
            Invariant::WellTypedExpressions => "well-typed-expressions",
            Invariant::BooleanPredicates => "boolean-predicates",
            Invariant::UnionShape => "union-shape",
            Invariant::DistinctJoinChildren => "distinct-join-children",
            Invariant::WindowShape => "window-shape",
            Invariant::SchemaPreserved => "schema-preserved",
            Invariant::PhysicalReferences => "physical-references",
            Invariant::JoinKeysAligned => "join-keys-aligned",
            Invariant::BuildSideLegal => "build-side-legal",
        }
    }
}

impl fmt::Display for Invariant {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// One violated invariant, with a human-readable explanation of where and
/// how.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Violation {
    /// The invariant that broke.
    pub invariant: Invariant,
    /// What exactly went wrong.
    pub message: String,
}

impl Violation {
    pub(crate) fn new(invariant: Invariant, message: impl Into<String>) -> Self {
        Violation {
            invariant,
            message: message.into(),
        }
    }
}

impl fmt::Display for Violation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "[{}] {}", self.invariant, self.message)
    }
}

/// Static checker over logical and physical plans. Stateless; construct
/// freely.
#[derive(Debug, Clone, Copy, Default)]
pub struct PlanValidator;

impl PlanValidator {
    /// A new validator.
    pub fn new() -> Self {
        PlanValidator
    }

    /// Check every standalone-plan invariant on a (supposedly analyzed)
    /// logical plan. Empty result = plan is sound.
    pub fn check_logical(&self, plan: &LogicalPlan) -> Vec<Violation> {
        logical::check_plan(plan)
    }

    /// Check one rewrite `before -> after` as a rule post-condition: the
    /// output schema must be preserved, and `after` must not violate any
    /// invariant `before` already satisfied. Pre-existing violations are
    /// filtered out so they are not blamed on an innocent rule.
    pub fn check_rewrite(&self, before: &LogicalPlan, after: &LogicalPlan) -> Vec<Violation> {
        let baseline = logical::check_plan(before);
        let mut out: Vec<Violation> = logical::check_plan(after)
            .into_iter()
            .filter(|viol| !baseline.contains(viol))
            .collect();
        out.extend(logical::check_schema_preserved(before, after));
        out
    }

    /// Check physical-plan invariants: reference binding, shuffle-boundary
    /// key expectations, broadcast build-side legality, union shape.
    pub fn check_physical(&self, plan: &PhysicalPlan) -> Vec<Violation> {
        physical::check_plan(plan)
    }
}

impl RuleValidator<LogicalPlan> for PlanValidator {
    fn validate(&self, before: &LogicalPlan, after: &LogicalPlan) -> Vec<RuleViolation> {
        self.check_rewrite(before, after)
            .into_iter()
            .map(|v| RuleViolation {
                invariant: v.invariant.name().to_string(),
                message: v.message,
            })
            .collect()
    }

    fn render(&self, plan: &LogicalPlan) -> String {
        plan.to_string()
    }

    fn diff(&self, before: &LogicalPlan, after: &LogicalPlan) -> String {
        diff::line_diff(&self.render(before), &self.render(after))
    }
}

/// Is plan validation enabled for this process?
///
/// The `CATALYST_VALIDATE` environment variable wins when set (`0`,
/// `false`, `off`, `no`, or empty disable; anything else enables).
/// Otherwise validation follows the build profile: on under
/// `debug_assertions` (so tests exercise it), off in release. The answer
/// is computed once and cached.
pub fn enabled() -> bool {
    static ENABLED: OnceLock<bool> = OnceLock::new();
    *ENABLED.get_or_init(|| match std::env::var("CATALYST_VALIDATE") {
        Ok(v) => !matches!(
            v.trim().to_ascii_lowercase().as_str(),
            "" | "0" | "false" | "off" | "no"
        ),
        Err(_) => cfg!(debug_assertions),
    })
}

/// Can values of these two types land in the same hash bucket / union
/// column coherently? Equal types always; distinct numeric types rely on
/// the engine's widening-consistent hashing (`Int 5`, `Long 5`, `Double
/// 5.0` hash alike); `Null` unifies with anything. Everything else (e.g.
/// BOOLEAN keyed against LONG) is a planning bug: the
/// `tightest_common_type` lattice would "unify" them to STRING for schema
/// inference, but no cast was inserted, so rows cannot co-partition.
fn hash_compatible(a: &crate::types::DataType, b: &crate::types::DataType) -> bool {
    use crate::types::DataType::*;
    fn numeric(t: &crate::types::DataType) -> bool {
        t.is_integral() || t.is_floating() || matches!(t, Decimal(_, _))
    }
    a == b || matches!(a, Null) || matches!(b, Null) || (numeric(a) && numeric(b))
}

/// Render a violation list as one report block.
pub fn render_violations(violations: &[Violation]) -> String {
    let mut out = String::new();
    for v in violations {
        out.push_str(&v.to_string());
        out.push('\n');
    }
    out
}
