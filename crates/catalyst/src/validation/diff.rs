//! Structural plan diffing for the plan-change log.
//!
//! Plans render as indented one-node-per-line trees, so a line-based
//! longest-common-subsequence diff gives a readable structural delta:
//! unchanged nodes keep their line, removed nodes get `-`, added nodes
//! get `+`. This is what violation reports and `TraceEvent` plan changes
//! embed.

/// Line-based LCS diff of two renderings. Lines only in `before` are
/// prefixed `- `, lines only in `after` are prefixed `+ `, common lines
/// are prefixed two spaces.
pub fn line_diff(before: &str, after: &str) -> String {
    let a: Vec<&str> = before.lines().collect();
    let b: Vec<&str> = after.lines().collect();
    let n = a.len();
    let m = b.len();
    // lcs[i][j] = length of the LCS of a[i..] and b[j..].
    let mut lcs = vec![vec![0usize; m + 1]; n + 1];
    for i in (0..n).rev() {
        for j in (0..m).rev() {
            lcs[i][j] = if a[i] == b[j] {
                lcs[i + 1][j + 1] + 1
            } else {
                lcs[i + 1][j].max(lcs[i][j + 1])
            };
        }
    }
    let mut out = String::new();
    let (mut i, mut j) = (0, 0);
    while i < n && j < m {
        if a[i] == b[j] {
            out.push_str("  ");
            out.push_str(a[i]);
            out.push('\n');
            i += 1;
            j += 1;
        } else if lcs[i + 1][j] >= lcs[i][j + 1] {
            out.push_str("- ");
            out.push_str(a[i]);
            out.push('\n');
            i += 1;
        } else {
            out.push_str("+ ");
            out.push_str(b[j]);
            out.push('\n');
            j += 1;
        }
    }
    for line in &a[i..] {
        out.push_str("- ");
        out.push_str(line);
        out.push('\n');
    }
    for line in &b[j..] {
        out.push_str("+ ");
        out.push_str(line);
        out.push('\n');
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn identical_inputs_have_no_markers() {
        let d = line_diff("a\nb", "a\nb");
        assert_eq!(d, "  a\n  b\n");
    }

    #[test]
    fn removed_and_added_lines_are_marked() {
        let d = line_diff("Filter x\nScan t", "Scan t");
        assert_eq!(d, "- Filter x\n  Scan t\n");
        let d = line_diff("Scan t", "Limit 5\nScan t");
        assert_eq!(d, "+ Limit 5\n  Scan t\n");
    }

    #[test]
    fn replacement_shows_both_sides() {
        let d = line_diff("A\nB\nC", "A\nX\nC");
        assert!(d.contains("- B"), "{d}");
        assert!(d.contains("+ X"), "{d}");
        assert!(d.contains("  A"), "{d}");
        assert!(d.contains("  C"), "{d}");
    }

    #[test]
    fn empty_sides() {
        assert_eq!(line_diff("", ""), "");
        assert_eq!(line_diff("a", ""), "- a\n");
        assert_eq!(line_diff("", "b"), "+ b\n");
    }
}
