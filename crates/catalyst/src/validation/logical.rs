//! Logical-plan invariant checks (the `check_logical` / `check_rewrite`
//! half of [`super::PlanValidator`]).

use super::{Invariant, Violation};
use crate::expr::{ColumnRef, Expr, ExprId};
use crate::plan::LogicalPlan;
use crate::tree::TreeNode;
use crate::types::DataType;
use std::collections::HashMap;
use std::sync::Arc;

/// Short node label for messages.
fn node_name(plan: &LogicalPlan) -> &'static str {
    match plan {
        LogicalPlan::UnresolvedRelation { .. } => "UnresolvedRelation",
        LogicalPlan::Scan { .. } => "Scan",
        LogicalPlan::External { .. } => "External",
        LogicalPlan::LocalRelation { .. } => "LocalRelation",
        LogicalPlan::Project { .. } => "Project",
        LogicalPlan::Filter { .. } => "Filter",
        LogicalPlan::Join { .. } => "Join",
        LogicalPlan::Aggregate { .. } => "Aggregate",
        LogicalPlan::Sort { .. } => "Sort",
        LogicalPlan::Window { .. } => "Window",
        LogicalPlan::Limit { .. } => "Limit",
        LogicalPlan::Union { .. } => "Union",
        LogicalPlan::Distinct { .. } => "Distinct",
        LogicalPlan::SubqueryAlias { .. } => "SubqueryAlias",
        LogicalPlan::Sample { .. } => "Sample",
    }
}

/// Run every standalone invariant over the plan.
pub(super) fn check_plan(plan: &LogicalPlan) -> Vec<Violation> {
    let mut v = Vec::new();
    check_no_unresolved(plan, &mut v);
    check_reachable_references(plan, &mut v);
    check_unique_ids(plan, &mut v);
    check_named_outputs(plan, &mut v);
    check_types(plan, &mut v);
    check_unions(plan, &mut v);
    check_join_children(plan, &mut v);
    check_windows(plan, &mut v);
    v
}

/// The cross-rewrite invariant: an optimizer rule must not change the
/// plan's output row shape — same width, and per position the same name,
/// type, and attribute id (nullability may legitimately tighten).
pub(super) fn check_schema_preserved(before: &LogicalPlan, after: &LogicalPlan) -> Vec<Violation> {
    let b = before.output();
    let a = after.output();
    if b.len() != a.len() {
        return vec![Violation::new(
            Invariant::SchemaPreserved,
            format!(
                "rewrite changed output width from {} to {} columns",
                b.len(),
                a.len()
            ),
        )];
    }
    let mut v = Vec::new();
    for (i, (x, y)) in b.iter().zip(a.iter()).enumerate() {
        if x.id != y.id || x.name != y.name || x.dtype != y.dtype {
            v.push(Violation::new(
                Invariant::SchemaPreserved,
                format!(
                    "rewrite changed output column {i} from '{}'#{} {} to '{}'#{} {}",
                    x.name, x.id, x.dtype, y.name, y.id, y.dtype
                ),
            ));
        }
    }
    v
}

fn check_no_unresolved(plan: &LogicalPlan, v: &mut Vec<Violation>) {
    plan.for_each(&mut |p| {
        if let LogicalPlan::UnresolvedRelation { name } = p {
            v.push(Violation::new(
                Invariant::NoUnresolvedPlaceholders,
                format!("unresolved relation '{name}'"),
            ));
        }
        for e in p.expressions() {
            e.for_each_node(&mut |x| match x {
                Expr::UnresolvedAttribute { name, .. } => v.push(Violation::new(
                    Invariant::NoUnresolvedPlaceholders,
                    format!("unresolved attribute '{name}' in {}", node_name(p)),
                )),
                Expr::UnresolvedFunction { name, .. } => v.push(Violation::new(
                    Invariant::NoUnresolvedPlaceholders,
                    format!("unresolved function '{name}' in {}", node_name(p)),
                )),
                Expr::Wildcard { .. } => v.push(Violation::new(
                    Invariant::NoUnresolvedPlaceholders,
                    format!("unexpanded wildcard in {}", node_name(p)),
                )),
                _ => {}
            });
        }
    });
}

fn check_reachable_references(plan: &LogicalPlan, v: &mut Vec<Violation>) {
    plan.for_each(&mut |p| {
        // A scan's pushed filters evaluate against its own output; every
        // other node's expressions see the union of its children's
        // outputs.
        let available: Vec<ColumnRef> = match p {
            LogicalPlan::Scan { output, .. } => output.clone(),
            other => other.children().iter().flat_map(|c| c.output()).collect(),
        };
        for e in p.expressions() {
            for r in e.references() {
                if !available.iter().any(|a| a.id == r.id) {
                    v.push(Violation::new(
                        Invariant::ReachableReferences,
                        format!(
                            "{} references '{}'#{} which no child produces (available: {})",
                            node_name(p),
                            r.name,
                            r.id,
                            fmt_attrs(&available)
                        ),
                    ));
                }
            }
        }
    });
}

fn fmt_attrs(attrs: &[ColumnRef]) -> String {
    if attrs.is_empty() {
        return "<none>".into();
    }
    attrs
        .iter()
        .map(|a| format!("'{}'#{}", a.name, a.id))
        .collect::<Vec<_>>()
        .join(", ")
}

fn note_id(
    seen: &mut HashMap<ExprId, (Arc<str>, DataType)>,
    id: ExprId,
    name: &Arc<str>,
    dtype: &DataType,
    v: &mut Vec<Violation>,
) {
    match seen.get(&id) {
        Some((n, t)) => {
            if n.as_ref() != name.as_ref() || t != dtype {
                v.push(Violation::new(
                    Invariant::UniqueAttributeIds,
                    format!("attribute id {id} maps to both '{n}' {t} and '{name}' {dtype}"),
                ));
            }
        }
        None => {
            seen.insert(id, (name.clone(), dtype.clone()));
        }
    }
}

fn check_unique_ids(plan: &LogicalPlan, v: &mut Vec<Violation>) {
    let mut seen: HashMap<ExprId, (Arc<str>, DataType)> = HashMap::new();
    plan.for_each(&mut |p| {
        for c in p.output() {
            note_id(&mut seen, c.id, &c.name, &c.dtype, v);
        }
        for e in p.expressions() {
            e.for_each_node(&mut |x| match x {
                Expr::Column(c) => note_id(&mut seen, c.id, &c.name, &c.dtype, v),
                Expr::Alias { child, name, id } => {
                    if let Ok(t) = child.data_type() {
                        note_id(&mut seen, *id, name, &t, v);
                    }
                }
                _ => {}
            });
        }
    });
    v.dedup();
}

fn check_named_outputs(plan: &LogicalPlan, v: &mut Vec<Violation>) {
    plan.for_each(&mut |p| {
        let exprs: &[Expr] = match p {
            LogicalPlan::Project { exprs, .. } => exprs,
            LogicalPlan::Aggregate { aggregates, .. } => aggregates,
            LogicalPlan::Window { window_exprs, .. } => window_exprs,
            _ => return,
        };
        for e in exprs {
            if e.is_resolved() && e.to_attribute().is_err() {
                v.push(Violation::new(
                    Invariant::NamedOutputs,
                    format!(
                        "{} output expression '{e}' has no stable name — it would silently \
                         vanish from the schema; alias it",
                        node_name(p)
                    ),
                ));
            }
        }
    });
}

fn check_bool(e: &Expr, what: &str, v: &mut Vec<Violation>) {
    if let Ok(t) = e.data_type() {
        if !matches!(t, DataType::Boolean | DataType::Null) {
            v.push(Violation::new(
                Invariant::BooleanPredicates,
                format!("{what} '{e}' has type {t}, expected BOOLEAN"),
            ));
        }
    }
}

fn check_types(plan: &LogicalPlan, v: &mut Vec<Violation>) {
    plan.for_each(&mut |p| {
        for e in p.expressions() {
            // Unresolved expressions are already reported by
            // `NoUnresolvedPlaceholders`; don't double-flag them here.
            if e.is_resolved() {
                if let Err(err) = e.data_type() {
                    v.push(Violation::new(
                        Invariant::WellTypedExpressions,
                        format!(
                            "expression '{e}' in {} fails to type-check: {err}",
                            node_name(p)
                        ),
                    ));
                }
            }
        }
        match p {
            LogicalPlan::Filter { predicate, .. } => check_bool(predicate, "Filter predicate", v),
            LogicalPlan::Join {
                condition: Some(c), ..
            } => check_bool(c, "Join condition", v),
            LogicalPlan::Scan { filters, .. } => {
                for f in filters {
                    check_bool(f, "pushed scan filter", v);
                }
            }
            _ => {}
        }
    });
}

fn check_unions(plan: &LogicalPlan, v: &mut Vec<Violation>) {
    plan.for_each(&mut |p| {
        if let LogicalPlan::Union { inputs } = p {
            let Some(first) = inputs.first() else { return };
            let head = first.output();
            for (i, inp) in inputs.iter().enumerate().skip(1) {
                let o = inp.output();
                if o.len() != head.len() {
                    v.push(Violation::new(
                        Invariant::UnionShape,
                        format!(
                            "union input {i} has {} columns, expected {}",
                            o.len(),
                            head.len()
                        ),
                    ));
                    continue;
                }
                for (a, b) in head.iter().zip(o.iter()) {
                    if !super::hash_compatible(&a.dtype, &b.dtype) {
                        v.push(Violation::new(
                            Invariant::UnionShape,
                            format!(
                                "union input {i} column '{}' has type {} incompatible with {}",
                                b.name, b.dtype, a.dtype
                            ),
                        ));
                    }
                }
            }
        }
    });
}

/// Frame start must not lie after frame end.
fn frame_is_ordered(frame: &crate::expr::WindowFrame) -> bool {
    use crate::expr::FrameBound as B;
    // Rank each bound on a coarse axis; offsets of the same kind compare
    // by magnitude.
    fn rank(b: B) -> i64 {
        match b {
            B::UnboundedPreceding => i64::MIN,
            B::Preceding(n) => -(n.min(i64::MAX as u64 - 1) as i64),
            B::CurrentRow => 0,
            B::Following(n) => n.min(i64::MAX as u64 - 1) as i64,
            B::UnboundedFollowing => i64::MAX,
        }
    }
    rank(frame.start) <= rank(frame.end)
}

fn check_windows(plan: &LogicalPlan, v: &mut Vec<Violation>) {
    plan.for_each(&mut |p| {
        if let LogicalPlan::Window { window_exprs, .. } = p {
            for e in window_exprs {
                // Each output must be a window call at the top (under the
                // naming alias), with no further nesting inside it.
                let inner = match e {
                    Expr::Alias { child, .. } => child.as_ref(),
                    other => other,
                };
                match inner {
                    Expr::WindowFunction {
                        args,
                        partition_by,
                        order_by,
                        frame,
                        ..
                    } => {
                        if !frame_is_ordered(frame) {
                            v.push(Violation::new(
                                Invariant::WindowShape,
                                format!("window frame of '{e}' starts after it ends"),
                            ));
                        }
                        let nested = args
                            .iter()
                            .chain(partition_by)
                            .chain(order_by.iter().map(|o| &o.expr));
                        for n in nested {
                            n.for_each_node(&mut |x| {
                                if matches!(x, Expr::WindowFunction { .. }) {
                                    v.push(Violation::new(
                                        Invariant::WindowShape,
                                        format!("window function nested inside '{e}'"),
                                    ));
                                }
                            });
                        }
                    }
                    _ => v.push(Violation::new(
                        Invariant::WindowShape,
                        format!("Window output '{e}' is not a window-function call"),
                    )),
                }
            }
        } else {
            // Window calls are illegal in every other node's expressions.
            for e in p.expressions() {
                e.for_each_node(&mut |x| {
                    if matches!(x, Expr::WindowFunction { .. }) {
                        v.push(Violation::new(
                            Invariant::WindowShape,
                            format!(
                                "window function '{x}' outside a Window node in {}",
                                node_name(p)
                            ),
                        ));
                    }
                });
            }
        }
    });
}

fn check_join_children(plan: &LogicalPlan, v: &mut Vec<Violation>) {
    plan.for_each(&mut |p| {
        if let LogicalPlan::Join { left, right, .. } = p {
            let lout = left.output();
            for c in right.output() {
                if lout.iter().any(|l| l.id == c.id) {
                    v.push(Violation::new(
                        Invariant::DistinctJoinChildren,
                        format!(
                            "attribute '{}'#{} is produced by both join inputs — references \
                             to it are ambiguous (self-join without re-aliasing?)",
                            c.name, c.id
                        ),
                    ));
                }
            }
        }
    });
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::expr::builders::{col, lit};
    use crate::value::Value;

    fn rel() -> LogicalPlan {
        LogicalPlan::LocalRelation {
            output: vec![
                ColumnRef::new("a", DataType::Long, false),
                ColumnRef::new("b", DataType::String, true),
            ],
            rows: Arc::new(vec![]),
        }
    }

    #[test]
    fn clean_plan_has_no_violations() {
        let base = rel();
        let a = base.output()[0].clone();
        let p = base
            .filter(Expr::Column(a.clone()).gt(lit(1i64)))
            .project(vec![Expr::Column(a)]);
        assert!(check_plan(&p).is_empty(), "{:?}", check_plan(&p));
    }

    #[test]
    fn unresolved_attribute_is_flagged() {
        let p = rel().filter(col("missing").gt(lit(1i64)));
        let v = check_plan(&p);
        assert!(
            v.iter()
                .any(|x| x.invariant == Invariant::NoUnresolvedPlaceholders),
            "{v:?}"
        );
    }

    #[test]
    fn unreachable_reference_is_flagged() {
        let phantom = ColumnRef::new("ghost", DataType::Int, true);
        let p = rel().filter(Expr::Column(phantom).gt(lit(1i64)));
        let v = check_plan(&p);
        assert!(
            v.iter()
                .any(|x| x.invariant == Invariant::ReachableReferences),
            "{v:?}"
        );
    }

    #[test]
    fn conflicting_ids_are_flagged() {
        let base = rel();
        let a = base.output()[0].clone();
        // Same id, different name and type.
        let impostor = ColumnRef {
            name: "zzz".into(),
            dtype: DataType::String,
            ..a.clone()
        };
        let p = LogicalPlan::Join {
            left: Arc::new(base),
            right: Arc::new(LogicalPlan::LocalRelation {
                output: vec![impostor],
                rows: Arc::new(vec![]),
            }),
            join_type: crate::plan::JoinType::Inner,
            condition: None,
        };
        let v = check_plan(&p);
        assert!(
            v.iter()
                .any(|x| x.invariant == Invariant::UniqueAttributeIds),
            "{v:?}"
        );
        assert!(
            v.iter()
                .any(|x| x.invariant == Invariant::DistinctJoinChildren),
            "{v:?}"
        );
    }

    #[test]
    fn unnamed_project_output_is_flagged() {
        let base = rel();
        let a = base.output()[0].clone();
        // a + 1 with no alias: to_attribute() fails, output silently shrinks.
        let p = base.project(vec![Expr::Column(a).add(lit(1i64))]);
        let v = check_plan(&p);
        assert!(
            v.iter().any(|x| x.invariant == Invariant::NamedOutputs),
            "{v:?}"
        );
    }

    #[test]
    fn non_boolean_filter_is_flagged() {
        let base = rel();
        let a = base.output()[0].clone();
        let p = base.filter(Expr::Column(a).add(lit(1i64)));
        let v = check_plan(&p);
        assert!(
            v.iter()
                .any(|x| x.invariant == Invariant::BooleanPredicates),
            "{v:?}"
        );
    }

    #[test]
    fn union_width_mismatch_is_flagged() {
        let wide = rel();
        let narrow = LogicalPlan::LocalRelation {
            output: vec![ColumnRef::new("x", DataType::Long, false)],
            rows: Arc::new(vec![]),
        };
        let p = wide.union(vec![narrow]);
        let v = check_plan(&p);
        assert!(
            v.iter().any(|x| x.invariant == Invariant::UnionShape),
            "{v:?}"
        );
    }

    #[test]
    fn schema_preserved_detects_drops_and_retypes() {
        let base = rel();
        let out = base.output();
        let narrowed = LogicalPlan::empty(vec![out[0].clone()]);
        let v = check_schema_preserved(&base, &narrowed);
        assert!(
            v.iter().any(|x| x.invariant == Invariant::SchemaPreserved),
            "{v:?}"
        );

        let mut retyped = out.clone();
        retyped[0].dtype = DataType::String;
        let v = check_schema_preserved(&base, &LogicalPlan::empty(retyped));
        assert!(
            v.iter().any(|x| x.invariant == Invariant::SchemaPreserved),
            "{v:?}"
        );

        // Identity rewrite is fine.
        assert!(check_schema_preserved(&base, &LogicalPlan::empty(out)).is_empty());
    }

    #[test]
    fn literal_null_predicate_is_tolerated() {
        // PruneFilters handles NULL-literal predicates; they type as Null.
        let p = rel().filter(Expr::Literal(Value::Null));
        let v = check_plan(&p);
        assert!(
            !v.iter()
                .any(|x| x.invariant == Invariant::BooleanPredicates),
            "{v:?}"
        );
    }
}
