//! Catalyst: an extensible relational query optimizer (§4 of *Spark SQL:
//! Relational Data Processing in Spark*, SIGMOD 2015), in Rust.
//!
//! At its core Catalyst is a library for representing trees and applying
//! rules to them ([`tree`], [`rules`]). On top of that sit libraries for
//! relational query processing — expressions ([`expr`]), data types
//! ([`types`]), logical plans ([`plan`]) — and rule sets for each phase of
//! query execution:
//!
//! 1. **Analysis** ([`analysis`]): resolve relations and attributes from a
//!    catalog, give attributes unique ids, propagate and coerce types.
//! 2. **Logical optimization** ([`optimizer`]): constant folding,
//!    predicate pushdown, projection pruning, null propagation, Boolean
//!    simplification, the paper's `DecimalAggregates` rule, and more.
//! 3. **Physical planning** ([`physical`]): translate to physical
//!    operators, choosing join algorithms with a cost model (broadcast vs
//!    shuffled hash join) and pushing projections/filters into data
//!    sources ([`source`]).
//! 4. **Code generation** ([`codegen`]): compile expression trees into
//!    fused, monomorphically typed closures — the Rust analogue of the
//!    paper's quasiquote-based bytecode generation — with the
//!    tree-walking [`interpreter`] as the fallback.
//!
//! Extension points mirror the paper's: user rule batches, planning
//! strategies, data sources, UDFs and user-defined types.

#![warn(missing_docs)]
#![allow(clippy::type_complexity)] // Arc<dyn Fn(...)> closure-table types are the crate's idiom

#[macro_use]
pub mod row;

pub mod adaptive;
pub mod analysis;
pub mod codegen;
pub mod cost;
pub mod error;
pub mod expr;
pub mod interpreter;
pub mod ndv;
pub mod optimizer;
pub mod physical;
pub mod plan;
pub mod rules;
pub mod schema;
pub mod source;
pub mod tree;
pub mod types;
pub mod udt;
pub mod validation;
pub mod value;
pub mod vectorized;

pub use error::{CatalystError, Result};
pub use expr::{col, lit, Expr};
pub use row::Row;
pub use schema::{Schema, SchemaRef};
pub use types::{DataType, StructField};
pub use value::Value;
