//! The three adaptive rules, as pure functions over measured sizes.
//!
//! Each function computes a *decision* — which reduce buckets to merge,
//! which to split, whether a join may be demoted — from observed byte
//! sizes. The stage driver in core's `execution.rs` turns those decisions
//! into engine `ShuffleReadSpec` windows and (for demotion) a candidate
//! plan that must clear [`crate::validation::PlanValidator`] before it is
//! adopted.

use crate::physical::{BuildSide, PhysicalPlan};
use crate::plan::JoinType;
use std::ops::Range;

/// Greedily merge contiguous reduce partitions until adding the next one
/// would push a group past `target` bytes. Every partition lands in
/// exactly one range; a partition already at or above the target gets a
/// range of its own. `sizes.len() == 0` yields no ranges.
pub fn coalesce_partitions(sizes: &[u64], target: u64) -> Vec<Range<usize>> {
    let mut out = Vec::new();
    let mut start = 0usize;
    let mut acc = 0u64;
    for (i, &s) in sizes.iter().enumerate() {
        if i > start && acc + s > target {
            out.push(start..i);
            start = i;
            acc = 0;
        }
        acc += s;
    }
    if start < sizes.len() {
        out.push(start..sizes.len());
    }
    out
}

/// Median of `sizes` (lower median for even lengths); 0 when empty.
pub fn median(sizes: &[u64]) -> u64 {
    if sizes.is_empty() {
        return 0;
    }
    let mut sorted = sizes.to_vec();
    sorted.sort_unstable();
    sorted[(sorted.len() - 1) / 2]
}

/// True when one reduce partition dwarfs the others: its size exceeds
/// `factor` × the median *and* the coalescing target (so uniformly tiny
/// shuffles are never "skewed").
pub fn is_skewed(size: u64, median_size: u64, factor: f64, target: u64) -> bool {
    size > target && (size as f64) > factor * median_size as f64
}

/// Indices of skewed reduce partitions.
pub fn skewed_partitions(sizes: &[u64], factor: f64, target: u64) -> Vec<usize> {
    let med = median(sizes);
    sizes
        .iter()
        .enumerate()
        .filter(|(_, &s)| is_skewed(s, med, factor, target))
        .map(|(i, _)| i)
        .collect()
}

/// Split one skewed reduce partition by its per-map contributions:
/// greedily group map outputs into ranges of at most `target` bytes.
/// Returns a single full range when no useful split exists — all the
/// bytes come from fewer than two of the resulting groups, so extra
/// sub-tasks would not spread the work.
pub fn split_map_ranges(map_sizes: &[u64], target: u64) -> Vec<Range<usize>> {
    let ranges = coalesce_partitions(map_sizes, target);
    let loaded = ranges
        .iter()
        .filter(|r| map_sizes[r.start..r.end].iter().any(|&s| s > 0))
        .count();
    if loaded < 2 {
        return std::iter::once(0..map_sizes.len()).collect();
    }
    ranges
}

/// Legality of demoting a shuffled hash join to a broadcast join with
/// `build` as the built/broadcast side — the same table the static
/// planner and the `BuildSideLegal` invariant use: the null-producing
/// side must be streamed.
pub fn can_demote(join_type: JoinType, build: BuildSide) -> bool {
    match build {
        BuildSide::Right => matches!(join_type, JoinType::Inner | JoinType::Left),
        BuildSide::Left => matches!(join_type, JoinType::Inner | JoinType::Right),
    }
}

/// Legality of splitting one *side* of a shuffled join by map ranges.
/// The split side's rows each land in exactly one sub-partition while the
/// other side is replicated, so the replicated side must not drive
/// unmatched-row emission: splitting the left is legal for Inner/Left
/// joins, splitting the right for Inner/Right. Full joins never split.
pub fn can_split_side(join_type: JoinType, side: BuildSide) -> bool {
    match side {
        BuildSide::Left => matches!(join_type, JoinType::Inner | JoinType::Left),
        BuildSide::Right => matches!(join_type, JoinType::Inner | JoinType::Right),
    }
}

/// The candidate plan for demoting `shj` (a `ShuffledHashJoin`) to a
/// broadcast join building `build`. `None` when the node is not a
/// shuffled hash join or the demotion is illegal for its join type.
pub fn broadcast_candidate(shj: &PhysicalPlan, build: BuildSide) -> Option<PhysicalPlan> {
    match shj {
        PhysicalPlan::ShuffledHashJoin {
            left,
            right,
            left_keys,
            right_keys,
            join_type,
            residual,
            ..
        } if can_demote(*join_type, build) => Some(PhysicalPlan::BroadcastHashJoin {
            left: left.clone(),
            right: right.clone(),
            left_keys: left_keys.clone(),
            right_keys: right_keys.clone(),
            join_type: *join_type,
            build_side: build,
            residual: residual.clone(),
        }),
        _ => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn coalesce_merges_up_to_target() {
        // 10+10+10 fits in 30; 50 stands alone; 5+5 merge.
        assert_eq!(
            coalesce_partitions(&[10, 10, 10, 50, 5, 5], 30),
            vec![0..3, 3..4, 4..6]
        );
        // Everything tiny -> one range.
        assert_eq!(coalesce_partitions(&[1, 1, 1, 1], 100), vec![0..4]);
        // Everything oversized -> one range each.
        assert_eq!(coalesce_partitions(&[40, 40], 30), vec![0..1, 1..2]);
        assert!(coalesce_partitions(&[], 30).is_empty());
    }

    #[test]
    fn coalesce_covers_every_partition_once() {
        let sizes: Vec<u64> = (0..23).map(|i| (i * 7919) % 97).collect();
        let ranges = coalesce_partitions(&sizes, 100);
        let mut covered = vec![0u32; sizes.len()];
        for r in &ranges {
            for i in r.clone() {
                covered[i] += 1;
            }
        }
        assert!(covered.iter().all(|&c| c == 1), "{ranges:?}");
    }

    #[test]
    fn skew_needs_both_median_factor_and_target() {
        let sizes = [10, 10, 10, 10, 400];
        assert_eq!(skewed_partitions(&sizes, 4.0, 50), vec![4]);
        // Below the absolute floor: not skewed even at 40x the median.
        assert!(skewed_partitions(&sizes, 4.0, 1000).is_empty());
        // Uniform: nothing exceeds factor x median.
        assert!(skewed_partitions(&[100, 100, 100], 4.0, 50).is_empty());
        assert!(skewed_partitions(&[], 4.0, 50).is_empty());
    }

    #[test]
    fn split_map_ranges_degenerates_to_full_range() {
        // One dominant map: no useful split.
        assert_eq!(split_map_ranges(&[0, 500, 0], 100), vec![0..3]);
        // Even spread splits.
        assert_eq!(
            split_map_ranges(&[60, 60, 60, 60], 100),
            vec![0..1, 1..2, 2..3, 3..4]
        );
    }

    #[test]
    fn demotion_and_split_legality_tables() {
        use BuildSide as B;
        use JoinType as J;
        assert!(can_demote(J::Inner, B::Right) && can_demote(J::Left, B::Right));
        assert!(!can_demote(J::Right, B::Right) && !can_demote(J::Full, B::Right));
        assert!(can_demote(J::Inner, B::Left) && can_demote(J::Right, B::Left));
        assert!(!can_demote(J::Left, B::Left) && !can_demote(J::Full, B::Left));

        assert!(can_split_side(J::Inner, B::Left) && can_split_side(J::Left, B::Left));
        assert!(!can_split_side(J::Right, B::Left) && !can_split_side(J::Full, B::Left));
        assert!(can_split_side(J::Inner, B::Right) && can_split_side(J::Right, B::Right));
        assert!(!can_split_side(J::Left, B::Right) && !can_split_side(J::Full, B::Right));
    }
}
