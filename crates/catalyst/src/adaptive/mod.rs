//! Adaptive query execution: re-planning from runtime statistics.
//!
//! The cost-based physical planner (§4.3.3 of the Spark SQL paper) picks
//! join strategies from *static* [`crate::physical::Statistics`] guesses,
//! and every exchange runs with a fixed `shuffle_partitions` reducer
//! count. Both are blind to actual data sizes. This module closes the
//! loop the way Spark's Adaptive Query Execution later did: execution
//! proceeds stage by stage — each exchange's map output is materialized
//! first, its real per-bucket byte sizes observed, and the remainder of
//! the plan decided against those *measured* [`RuntimeStatistics`].
//!
//! Three adaptive rules ship here (see [`rules`]):
//! - **partition coalescing** — merge small post-shuffle partitions up to
//!   a target bytes-per-partition;
//! - **dynamic join demotion** — replace a planned shuffled hash join
//!   with a broadcast join when the build side's measured size lands
//!   under the broadcast threshold;
//! - **skew splitting** — split a reducer partition that dwarfs the
//!   median into map-range sub-partitions, replicating the other side.
//!
//! The module is pure: it computes decisions ([`AdaptivePlanChange`]) and
//! plan rewrites from observed sizes but performs no execution itself.
//! The stage driver lives in core's `execution.rs`, which materializes
//! exchanges through the engine's `MaterializedShuffle` and consults
//! these rules before lowering the rest of the plan. Every adopted
//! rewrite must first pass [`crate::validation::PlanValidator`]; a
//! rejected rewrite falls back to the original plan and the query still
//! runs.

pub mod rules;

use crate::physical::metrics::{child_ids, subtree_size};
use crate::physical::PhysicalPlan;
use std::fmt;
use std::sync::Arc;

/// Tuning knobs for the adaptive rules, mirrored from core's `SqlConf`.
#[derive(Debug, Clone, Copy)]
pub struct AdaptiveConfig {
    /// Desired bytes per post-shuffle partition when coalescing.
    pub target_partition_bytes: u64,
    /// A reduce partition is skewed when it exceeds this factor times the
    /// median partition size (and the coalescing target).
    pub skew_factor: f64,
    /// Measured build-side bytes at or under this demote a shuffled hash
    /// join to a broadcast join.
    pub broadcast_threshold: u64,
}

/// Observed statistics of one materialized exchange.
#[derive(Debug, Clone, Default)]
pub struct RuntimeStatistics {
    /// Measured bytes per reduce partition (summed over map outputs).
    pub reduce_bytes: Vec<u64>,
    /// Records written per reduce partition are not tracked per bucket;
    /// total rows across the exchange.
    pub total_rows: u64,
}

impl RuntimeStatistics {
    /// Fold `[map][reduce]` byte sizes into per-reducer totals.
    pub fn from_map_output_sizes(sizes: &[Vec<u64>], num_reduce: usize) -> Self {
        let mut reduce_bytes = vec![0u64; num_reduce];
        for per_map in sizes {
            for (r, b) in per_map.iter().enumerate() {
                reduce_bytes[r] += b;
            }
        }
        RuntimeStatistics {
            reduce_bytes,
            total_rows: 0,
        }
    }

    /// Total measured bytes across the exchange.
    pub fn total_bytes(&self) -> u64 {
        self.reduce_bytes.iter().sum()
    }
}

/// Which adaptive rule fired.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AdaptiveRule {
    /// Merged small post-shuffle partitions.
    CoalescePartitions,
    /// Replaced a shuffled hash join with a broadcast join.
    BroadcastDemotion,
    /// Split a skewed reduce partition into map-range sub-partitions.
    SkewSplit,
}

impl AdaptiveRule {
    /// Stable kebab-case name used in reports.
    pub fn name(&self) -> &'static str {
        match self {
            AdaptiveRule::CoalescePartitions => "coalesce-partitions",
            AdaptiveRule::BroadcastDemotion => "broadcast-demotion",
            AdaptiveRule::SkewSplit => "skew-split",
        }
    }
}

impl fmt::Display for AdaptiveRule {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// One adaptive decision, recorded against the pre-order node id of the
/// operator whose exchange it rewired. Rendered by `explain_analyze`.
#[derive(Clone)]
pub struct AdaptivePlanChange {
    /// Pre-order node id in the initial physical plan.
    pub node_id: usize,
    /// The rule that fired.
    pub rule: AdaptiveRule,
    /// Human-readable summary with the observed numbers.
    pub description: String,
    /// For rules that change the plan tree (demotion), the node that
    /// replaces `node_id` in the final plan.
    pub replacement: Option<PhysicalPlan>,
}

impl fmt::Display for AdaptivePlanChange {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "AdaptivePlanChange[node {}] {}: {}",
            self.node_id, self.rule, self.description
        )
    }
}

impl fmt::Debug for AdaptivePlanChange {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Display::fmt(self, f)
    }
}

/// Pre-order node ids of the operators that induce an exchange — the
/// stage boundaries adaptive execution breaks the plan at. Sort exchanges
/// are listed too even though only joins and aggregates re-plan today
/// (the range partitioner already samples its input).
pub fn exchange_operators(plan: &PhysicalPlan) -> Vec<(usize, String)> {
    fn walk(plan: &PhysicalPlan, id: usize, out: &mut Vec<(usize, String)>) {
        match plan {
            PhysicalPlan::ShuffledHashJoin { .. } | PhysicalPlan::Sort { .. } => {
                out.push((id, plan.node_description()));
            }
            PhysicalPlan::HashAggregate { groupings, .. } if !groupings.is_empty() => {
                out.push((id, plan.node_description()));
            }
            _ => {}
        }
        for (child, cid) in plan.children().iter().zip(child_ids(plan, id)) {
            walk(child, cid, out);
        }
    }
    let mut out = Vec::new();
    walk(plan, 0, &mut out);
    out
}

/// Rebuild `plan` with `children` substituted in order. Panics if the
/// arity does not match — callers only pass children obtained from
/// [`PhysicalPlan::children`] on the same node.
fn with_children(plan: &PhysicalPlan, mut children: Vec<Arc<PhysicalPlan>>) -> PhysicalPlan {
    assert_eq!(
        children.len(),
        plan.children().len(),
        "with_children arity mismatch"
    );
    let mut next = || children.remove(0);
    match plan {
        PhysicalPlan::Scan { .. }
        | PhysicalPlan::ExternalScan { .. }
        | PhysicalPlan::LocalData { .. } => plan.clone(),
        PhysicalPlan::Project { exprs, .. } => PhysicalPlan::Project {
            input: next(),
            exprs: exprs.clone(),
        },
        PhysicalPlan::Filter { predicate, .. } => PhysicalPlan::Filter {
            input: next(),
            predicate: predicate.clone(),
        },
        PhysicalPlan::HashAggregate {
            groupings,
            output_exprs,
            ..
        } => PhysicalPlan::HashAggregate {
            input: next(),
            groupings: groupings.clone(),
            output_exprs: output_exprs.clone(),
        },
        PhysicalPlan::Sort { orders, .. } => PhysicalPlan::Sort {
            input: next(),
            orders: orders.clone(),
        },
        PhysicalPlan::Window {
            window_exprs,
            partition_by,
            order_by,
            ..
        } => PhysicalPlan::Window {
            input: next(),
            window_exprs: window_exprs.clone(),
            partition_by: partition_by.clone(),
            order_by: order_by.clone(),
        },
        PhysicalPlan::TakeOrdered { orders, n, .. } => PhysicalPlan::TakeOrdered {
            input: next(),
            orders: orders.clone(),
            n: *n,
        },
        PhysicalPlan::Limit { n, .. } => PhysicalPlan::Limit {
            input: next(),
            n: *n,
        },
        PhysicalPlan::BroadcastHashJoin {
            left_keys,
            right_keys,
            join_type,
            build_side,
            residual,
            ..
        } => PhysicalPlan::BroadcastHashJoin {
            left: next(),
            right: next(),
            left_keys: left_keys.clone(),
            right_keys: right_keys.clone(),
            join_type: *join_type,
            build_side: *build_side,
            residual: residual.clone(),
        },
        PhysicalPlan::ShuffledHashJoin {
            left_keys,
            right_keys,
            join_type,
            build_side,
            residual,
            ..
        } => PhysicalPlan::ShuffledHashJoin {
            left: next(),
            right: next(),
            left_keys: left_keys.clone(),
            right_keys: right_keys.clone(),
            join_type: *join_type,
            build_side: *build_side,
            residual: residual.clone(),
        },
        PhysicalPlan::NestedLoopJoin {
            condition,
            join_type,
            ..
        } => PhysicalPlan::NestedLoopJoin {
            left: next(),
            right: next(),
            condition: condition.clone(),
            join_type: *join_type,
        },
        PhysicalPlan::Union { .. } => PhysicalPlan::Union {
            inputs: std::mem::take(&mut children),
        },
        PhysicalPlan::Sample { fraction, seed, .. } => PhysicalPlan::Sample {
            input: next(),
            fraction: *fraction,
            seed: *seed,
        },
        PhysicalPlan::Extension { exec, .. } => PhysicalPlan::Extension {
            exec: exec.clone(),
            children: std::mem::take(&mut children),
        },
    }
}

/// Substitute the node at pre-order id `target` with `replacement`,
/// returning the rebuilt tree. Ids are the same pre-order numbering used
/// by [`crate::physical::PlanMetrics`], so a demoted join keeps its
/// metrics slot (the replacement has the same subtree shape).
pub fn substitute_node(
    plan: &PhysicalPlan,
    target: usize,
    replacement: &PhysicalPlan,
) -> PhysicalPlan {
    fn walk(
        plan: &PhysicalPlan,
        id: usize,
        target: usize,
        replacement: &PhysicalPlan,
    ) -> PhysicalPlan {
        if id == target {
            return replacement.clone();
        }
        let subtree_end = id + subtree_size(plan);
        if target <= id || target >= subtree_end {
            return plan.clone();
        }
        let children = plan.children();
        let ids = child_ids(plan, id);
        let rebuilt: Vec<Arc<PhysicalPlan>> = children
            .iter()
            .zip(ids)
            .map(|(c, cid)| Arc::new(walk(c, cid, target, replacement)))
            .collect();
        with_children(plan, rebuilt)
    }
    walk(plan, 0, target, replacement)
}

/// The executed plan: the initial plan with every tree-changing adaptive
/// rewrite applied. Coalescing and skew splitting do not alter the tree
/// (they rewire exchange reads), so they appear only as change events.
pub fn final_plan(initial: &PhysicalPlan, changes: &[AdaptivePlanChange]) -> PhysicalPlan {
    let mut plan = initial.clone();
    for change in changes {
        if let Some(replacement) = &change.replacement {
            plan = substitute_node(&plan, change.node_id, replacement);
        }
    }
    plan
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::expr::builders::{col, lit};
    use crate::expr::{ColumnRef, Expr};
    use crate::physical::BuildSide;
    use crate::plan::JoinType;
    use crate::row::Row;
    use crate::types::DataType;
    use crate::value::Value;

    fn local(name: &str) -> PhysicalPlan {
        PhysicalPlan::LocalData {
            rows: Arc::new(vec![Row::new(vec![Value::Long(1)])]),
            output: vec![ColumnRef::new(name, DataType::Long, false)],
        }
    }

    fn shj() -> PhysicalPlan {
        let left = local("a");
        let right = local("b");
        let lk = vec![Expr::Column(left.output()[0].clone())];
        let rk = vec![Expr::Column(right.output()[0].clone())];
        PhysicalPlan::ShuffledHashJoin {
            left: Arc::new(left),
            right: Arc::new(right),
            left_keys: lk,
            right_keys: rk,
            join_type: JoinType::Inner,
            build_side: BuildSide::Right,
            residual: None,
        }
    }

    #[test]
    fn substitute_replaces_by_preorder_id() {
        let join = shj();
        let filter = PhysicalPlan::Filter {
            input: Arc::new(join.clone()),
            predicate: col("a").gt(lit(0i64)),
        };
        // Pre-order: 0=Filter, 1=SHJ, 2=left, 3=right.
        let demoted = rules::broadcast_candidate(&join, BuildSide::Right).expect("candidate");
        let rebuilt = substitute_node(&filter, 1, &demoted);
        match &rebuilt {
            PhysicalPlan::Filter { input, .. } => {
                assert!(matches!(**input, PhysicalPlan::BroadcastHashJoin { .. }));
            }
            other => panic!("unexpected shape: {other}"),
        }
        // Subtree shape (and thus metric ids) unchanged.
        assert_eq!(subtree_size(&filter), subtree_size(&rebuilt));
        // Untouched target: identical tree back.
        let same = substitute_node(&filter, 2, &local("a"));
        assert_eq!(subtree_size(&same), subtree_size(&filter));
    }

    #[test]
    fn final_plan_applies_only_tree_changes() {
        let join = shj();
        let demoted = rules::broadcast_candidate(&join, BuildSide::Right).expect("candidate");
        let changes = vec![
            AdaptivePlanChange {
                node_id: 0,
                rule: AdaptiveRule::CoalescePartitions,
                description: "8 -> 2 partitions".into(),
                replacement: None,
            },
            AdaptivePlanChange {
                node_id: 0,
                rule: AdaptiveRule::BroadcastDemotion,
                description: "demoted".into(),
                replacement: Some(demoted),
            },
        ];
        let fin = final_plan(&join, &changes);
        assert!(matches!(fin, PhysicalPlan::BroadcastHashJoin { .. }));
    }

    #[test]
    fn exchange_operators_lists_stage_boundaries() {
        let join = shj();
        let ops = exchange_operators(&join);
        assert_eq!(ops.len(), 1);
        assert_eq!(ops[0].0, 0);
        assert!(ops[0].1.contains("ShuffledHashJoin"));
    }

    #[test]
    fn runtime_statistics_fold_map_outputs() {
        let sizes = vec![vec![10, 0, 5], vec![2, 8, 5]];
        let rs = RuntimeStatistics::from_map_output_sizes(&sizes, 3);
        assert_eq!(rs.reduce_bytes, vec![12, 8, 10]);
        assert_eq!(rs.total_bytes(), 30);
    }
}
