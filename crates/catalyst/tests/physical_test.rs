//! Physical planning tests: scan pushdown, cost-based join selection,
//! top-k planning, and the advisory filter conversion.

use catalyst::analysis::{Analyzer, FunctionRegistry, SimpleCatalog};
use catalyst::expr::builders::{col, lit, sum};
use catalyst::expr::{ColumnRef, Expr};
use catalyst::optimizer::Optimizer;
use catalyst::physical::{expr_to_filter, BuildSide, PhysicalPlan, Planner, PlannerConfig};
use catalyst::plan::{JoinType, LogicalPlan};
use catalyst::row::Row;
use catalyst::schema::Schema;
use catalyst::source::{BaseRelation, Filter, MemoryTable, RowIter, ScanCapability};
use catalyst::types::{DataType, StructField};
use catalyst::value::Value;
use std::sync::Arc;

/// A pushdown-capable test relation that evaluates filters exactly.
struct SmartTable {
    inner: MemoryTable,
}

impl SmartTable {
    fn new(rows: usize) -> Self {
        let schema = Arc::new(Schema::new(vec![
            StructField::new("id", DataType::Long, false),
            StructField::new("name", DataType::String, false),
            StructField::new("rank", DataType::Int, false),
        ]));
        let rows: Vec<Row> = (0..rows)
            .map(|i| {
                Row::new(vec![
                    Value::Long(i as i64),
                    Value::str(format!("n{i}")),
                    Value::Int((i % 100) as i32),
                ])
            })
            .collect();
        SmartTable {
            inner: MemoryTable::new("smart", schema, rows, 2),
        }
    }
}

impl BaseRelation for SmartTable {
    fn name(&self) -> String {
        "smart".into()
    }
    fn schema(&self) -> catalyst::schema::SchemaRef {
        self.inner.schema()
    }
    fn size_in_bytes(&self) -> Option<u64> {
        self.inner.size_in_bytes()
    }
    fn row_count(&self) -> Option<u64> {
        self.inner.row_count()
    }
    fn capability(&self) -> ScanCapability {
        ScanCapability::PrunedFilteredScan
    }
    fn num_partitions(&self) -> usize {
        self.inner.num_partitions()
    }
    fn scan_partition(
        &self,
        partition: usize,
        projection: Option<&[usize]>,
        filters: &[Filter],
    ) -> catalyst::Result<RowIter> {
        let all = self.inner.scan_partition(partition, None, &[])?;
        let schema = self.inner.schema();
        let filters = filters.to_vec();
        let proj: Option<Vec<usize>> = projection.map(|p| p.to_vec());
        Ok(Box::new(all.filter_map(move |row| {
            for f in &filters {
                let i = schema.index_of(f.column()).expect("filter column");
                if !f.matches(row.get(i)) {
                    return None;
                }
            }
            Some(match &proj {
                Some(p) => row.project(p),
                None => row,
            })
        })))
    }
    fn handled_filters(&self, filters: &[Filter]) -> Vec<bool> {
        vec![true; filters.len()]
    }
    fn as_any(&self) -> &dyn std::any::Any {
        self
    }
}

fn scan_of(relation: Arc<dyn BaseRelation>) -> LogicalPlan {
    let output = relation
        .schema()
        .fields()
        .iter()
        .map(|f| ColumnRef::new(f.name.clone(), f.dtype.clone(), f.nullable))
        .collect();
    LogicalPlan::Scan {
        relation,
        output,
        filters: vec![],
    }
}

fn prepare(plan: LogicalPlan) -> LogicalPlan {
    let analyzer = Analyzer::new(
        Arc::new(SimpleCatalog::default()),
        Arc::new(FunctionRegistry::default()),
    );
    Optimizer::new().optimize(analyzer.analyze(plan).unwrap())
}

fn local(name: &str, n: i64) -> (LogicalPlan, ColumnRef) {
    let plan = LogicalPlan::LocalRelation {
        output: vec![ColumnRef::new(name, DataType::Long, false)],
        rows: Arc::new((0..n).map(|i| Row::new(vec![Value::Long(i)])).collect()),
    };
    let c = plan.output()[0].clone();
    (plan, c)
}

fn find_scan(p: &PhysicalPlan) -> Option<(Option<Vec<usize>>, Vec<Filter>, bool)> {
    if let PhysicalPlan::Scan {
        projection,
        pushed_filters,
        residual,
        ..
    } = p
    {
        return Some((
            projection.clone(),
            pushed_filters.clone(),
            residual.is_some(),
        ));
    }
    p.children().iter().find_map(|c| find_scan(c))
}

fn has_filter_node(p: &PhysicalPlan) -> bool {
    matches!(p, PhysicalPlan::Filter { .. }) || p.children().iter().any(|c| has_filter_node(c))
}

#[test]
fn scan_pushdown_prunes_columns_and_pushes_filters() {
    let rel: Arc<dyn BaseRelation> = Arc::new(SmartTable::new(100));
    let plan = prepare(
        scan_of(rel)
            .filter(col("rank").gt(lit(50)))
            .project(vec![col("name")]),
    );
    let phys = Planner::default().plan(&plan).unwrap();
    let (projection, pushed, has_residual) = find_scan(&phys).expect("scan node");
    assert!(!pushed.is_empty(), "{phys}");
    assert!(
        !has_residual,
        "exactly-handled filters need no residual: {phys}"
    );
    assert_eq!(projection.as_deref(), Some(&[1usize, 2][..]), "{phys}");
    assert!(!has_filter_node(&phys), "{phys}");
}

#[test]
fn pushdown_disabled_keeps_residual_filter() {
    let rel: Arc<dyn BaseRelation> = Arc::new(SmartTable::new(100));
    let plan = prepare(scan_of(rel).filter(col("rank").gt(lit(50))));
    let planner = Planner::new(PlannerConfig {
        pushdown_enabled: false,
        ..Default::default()
    });
    let phys = planner.plan(&plan).unwrap();
    match &phys {
        PhysicalPlan::Scan {
            pushed_filters,
            residual,
            ..
        } => {
            assert!(pushed_filters.is_empty());
            assert!(residual.is_some());
        }
        other => panic!("expected Scan with residual, got {other}"),
    }
}

#[test]
fn small_table_gets_broadcast_join() {
    let (l, la) = local("a", 100_000);
    let (r, rb) = local("b", 5);
    let join = l.join(
        r,
        JoinType::Inner,
        Some(Expr::Column(la).eq(Expr::Column(rb))),
    );
    let phys = Planner::default().plan(&join).unwrap();
    assert!(
        matches!(
            phys,
            PhysicalPlan::BroadcastHashJoin {
                build_side: BuildSide::Right,
                ..
            }
        ),
        "{phys}"
    );
}

#[test]
fn low_threshold_forces_shuffled_join() {
    let (l, la) = local("a", 1000);
    let (r, rb) = local("b", 1000);
    let join = l.join(
        r,
        JoinType::Inner,
        Some(Expr::Column(la).eq(Expr::Column(rb))),
    );
    let planner = Planner::new(PlannerConfig {
        broadcast_threshold: 16,
        ..Default::default()
    });
    let phys = planner.plan(&join).unwrap();
    assert!(
        matches!(phys, PhysicalPlan::ShuffledHashJoin { .. }),
        "{phys}"
    );
}

#[test]
fn left_join_cannot_broadcast_left_build_side() {
    // LEFT JOIN with a tiny *left* side: building/broadcasting the left
    // table would drop its unmatched rows, so the planner must refuse.
    let (l, la) = local("a", 5);
    let (r, rb) = local("b", 1000);
    let join = l.join(
        r,
        JoinType::Left,
        Some(Expr::Column(la).eq(Expr::Column(rb))),
    );
    let planner = Planner::new(PlannerConfig {
        // Make only the left side broadcastable.
        broadcast_threshold: 100,
        ..Default::default()
    });
    let phys = planner.plan(&join).unwrap();
    assert!(
        matches!(phys, PhysicalPlan::ShuffledHashJoin { .. }),
        "{phys}"
    );
}

#[test]
fn non_equi_join_gets_nested_loop() {
    let (l, la) = local("a", 10);
    let (r, rb) = local("b", 10);
    let join = l.join(
        r,
        JoinType::Inner,
        Some(Expr::Column(la).lt(Expr::Column(rb))),
    );
    let phys = Planner::default().plan(&join).unwrap();
    assert!(
        matches!(phys, PhysicalPlan::NestedLoopJoin { .. }),
        "{phys}"
    );
}

#[test]
fn limit_over_sort_becomes_take_ordered() {
    let (t, x) = local("x", 10);
    let plan = t.sort(vec![Expr::Column(x).desc()]).limit(1);
    let phys = Planner::default().plan(&plan).unwrap();
    assert!(
        matches!(phys, PhysicalPlan::TakeOrdered { n: 1, .. }),
        "{phys}"
    );
}

#[test]
fn aggregate_plans_to_hash_aggregate() {
    let t = LogicalPlan::LocalRelation {
        output: vec![
            ColumnRef::new("k", DataType::String, false),
            ColumnRef::new("v", DataType::Long, false),
        ],
        rows: Arc::new(vec![]),
    };
    let k = t.output()[0].clone();
    let v = t.output()[1].clone();
    let plan = prepare(t.aggregate(
        vec![Expr::Column(k.clone())],
        vec![Expr::Column(k), sum(Expr::Column(v)).alias("s")],
    ));
    let phys = Planner::default().plan(&plan).unwrap();
    assert!(matches!(phys, PhysicalPlan::HashAggregate { .. }), "{phys}");
}

#[test]
fn distinct_plans_to_hash_aggregate() {
    let (t, _) = local("x", 10);
    let phys = Planner::default().plan(&t.distinct()).unwrap();
    assert!(matches!(phys, PhysicalPlan::HashAggregate { .. }), "{phys}");
}

#[test]
fn expr_to_filter_conversions() {
    let c = ColumnRef::new("x", DataType::Int, false);
    let e = Expr::Column(c.clone()).gt(lit(5));
    assert_eq!(
        expr_to_filter(&e),
        Some(Filter::Gt("x".into(), Value::Int(5)))
    );
    // Flipped comparison: 5 < x ⇔ x > 5.
    let e = lit(5).lt(Expr::Column(c.clone()));
    assert_eq!(
        expr_to_filter(&e),
        Some(Filter::Gt("x".into(), Value::Int(5)))
    );
    // Numeric cast around the column is transparent.
    let e = Expr::Column(c.clone())
        .cast(DataType::Long)
        .lt_eq(lit(9i64));
    assert_eq!(
        expr_to_filter(&e),
        Some(Filter::LtEq("x".into(), Value::Long(9)))
    );
    // IN list.
    let e = Expr::Column(c.clone()).in_list(vec![lit(1), lit(2)]);
    assert_eq!(
        expr_to_filter(&e),
        Some(Filter::In("x".into(), vec![Value::Int(1), Value::Int(2)]))
    );
    // Column-to-column comparisons are not in the advisory language.
    let e = Expr::Column(c.clone()).gt(Expr::Column(c));
    assert_eq!(expr_to_filter(&e), None);
}

#[test]
fn table_scan_capability_gets_no_pruning() {
    // MemoryTable is TableScan tier: projection must stay None.
    let schema = Arc::new(Schema::new(vec![
        StructField::new("a", DataType::Int, false),
        StructField::new("b", DataType::Int, false),
    ]));
    let rel: Arc<dyn BaseRelation> = Arc::new(MemoryTable::new(
        "mem",
        schema,
        vec![Row::new(vec![Value::Int(1), Value::Int(2)])],
        1,
    ));
    let plan = prepare(scan_of(rel).project(vec![col("a")]));
    let phys = Planner::default().plan(&plan).unwrap();
    let (projection, _, _) = find_scan(&phys).expect("scan");
    assert!(projection.is_none(), "{phys}");
    // A Project node compensates above the scan.
    assert!(matches!(phys, PhysicalPlan::Project { .. }), "{phys}");
}
