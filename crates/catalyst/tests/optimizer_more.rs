//! Additional optimizer tests: alias elimination, join-condition
//! absorption, null propagation, boolean simplification, the unique-id
//! `col = col` rewrite, and rule tracing.

use catalyst::analysis::{Analyzer, FunctionRegistry, SimpleCatalog};
use catalyst::expr::builders::{col, lit};
use catalyst::expr::{BinaryOperator, ColumnRef, Expr};
use catalyst::optimizer::Optimizer;
use catalyst::plan::{JoinType, LogicalPlan};
use catalyst::row::Row;
use catalyst::tree::TreeNode;
use catalyst::types::DataType;
use catalyst::value::Value;
use std::sync::Arc;

fn table(cols: &[(&str, DataType, bool)]) -> LogicalPlan {
    LogicalPlan::LocalRelation {
        output: cols
            .iter()
            .map(|(n, t, nullable)| ColumnRef::new(*n, t.clone(), *nullable))
            .collect(),
        rows: Arc::new(vec![Row::new(vec![])]),
    }
}

fn analyze(plan: LogicalPlan, tables: Vec<(&str, LogicalPlan)>) -> LogicalPlan {
    let catalog = Arc::new(SimpleCatalog::default());
    for (n, p) in tables {
        catalog.register(n, p);
    }
    Analyzer::new(catalog, Arc::new(FunctionRegistry::default()))
        .analyze(plan)
        .unwrap()
}

fn count_nodes(plan: &LogicalPlan, pred: impl Fn(&LogicalPlan) -> bool) -> usize {
    let mut n = 0;
    plan.for_each(&mut |p| {
        if pred(p) {
            n += 1;
        }
    });
    n
}

#[test]
fn subquery_aliases_are_eliminated() {
    let t = table(&[("x", DataType::Long, false)]);
    let plan = analyze(
        LogicalPlan::UnresolvedRelation { name: "t".into() }
            .subquery_alias("a")
            .subquery_alias("b"),
        vec![("t", t)],
    );
    let opt = Optimizer::new().optimize(plan);
    assert_eq!(
        count_nodes(&opt, |p| matches!(p, LogicalPlan::SubqueryAlias { .. })),
        0,
        "{opt}"
    );
}

#[test]
fn cross_side_equality_moves_into_join_condition() {
    // FROM a, b WHERE a.x = b.y AND a.x > 1 — the equality must become an
    // inner-join condition (so physical planning can hash-join), the
    // single-sided conjunct must push to its side.
    let a = table(&[("x", DataType::Long, false)]);
    let b = table(&[("y", DataType::Long, false)]);
    let plan = analyze(
        LogicalPlan::UnresolvedRelation { name: "a".into() }
            .join(
                LogicalPlan::UnresolvedRelation { name: "b".into() },
                JoinType::Cross,
                None,
            )
            .filter(col("x").eq(col("y")).and(col("x").gt(lit(1i64)))),
        vec![("a", a), ("b", b)],
    );
    let opt = Optimizer::new().optimize(plan);
    let mut join_conditions = 0;
    let mut join_type = None;
    opt.for_each(&mut |p| {
        if let LogicalPlan::Join {
            condition,
            join_type: jt,
            ..
        } = p
        {
            join_type = Some(*jt);
            if condition.is_some() {
                join_conditions += 1;
            }
        }
    });
    assert_eq!(join_conditions, 1, "{opt}");
    assert_eq!(join_type, Some(JoinType::Inner), "{opt}");
    // x > 1 pushed below the join.
    assert_eq!(
        count_nodes(&opt, |p| matches!(p, LogicalPlan::Filter { .. })),
        1,
        "{opt}"
    );
}

#[test]
fn col_eq_col_on_nonnullable_folds_to_true() {
    let t = table(&[("x", DataType::Long, false)]);
    let resolved = analyze(
        LogicalPlan::UnresolvedRelation { name: "t".into() },
        vec![("t", t)],
    );
    // Build x = x with the *same* resolved attribute (same unique id).
    let x = resolved.output()[0].clone();
    let plan = resolved.filter(Expr::Column(x.clone()).eq(Expr::Column(x)));
    let opt = Optimizer::new().optimize(plan);
    // Filter(true) pruned entirely.
    assert_eq!(
        count_nodes(&opt, |p| matches!(p, LogicalPlan::Filter { .. })),
        0,
        "{opt}"
    );
}

#[test]
fn col_eq_col_on_nullable_is_kept() {
    // NULL = NULL is NULL, not true: the rewrite must not fire.
    let t = table(&[("x", DataType::Long, true)]);
    let resolved = analyze(
        LogicalPlan::UnresolvedRelation { name: "t".into() },
        vec![("t", t)],
    );
    let x = resolved.output()[0].clone();
    let plan = resolved.filter(Expr::Column(x.clone()).eq(Expr::Column(x)));
    let opt = Optimizer::new().optimize(plan);
    assert_eq!(
        count_nodes(&opt, |p| matches!(p, LogicalPlan::Filter { .. })),
        1,
        "{opt}"
    );
}

#[test]
fn null_propagation_and_boolean_simplification() {
    let t = table(&[
        ("x", DataType::Long, false),
        ("b", DataType::Boolean, false),
    ]);
    // (x + NULL > 0) OR true  →  true  →  filter removed.
    let plan = analyze(
        LogicalPlan::UnresolvedRelation { name: "t".into() }.filter(
            col("x")
                .add(Expr::Literal(Value::Null))
                .gt(lit(0i64))
                .or(lit(true)),
        ),
        vec![("t", t.clone())],
    );
    let opt = Optimizer::new().optimize(plan);
    assert_eq!(
        count_nodes(&opt, |p| matches!(p, LogicalPlan::Filter { .. })),
        0,
        "{opt}"
    );

    // NOT(NOT(b)) AND true → b.
    let plan = analyze(
        LogicalPlan::UnresolvedRelation { name: "t".into() }
            .filter(col("b").not().not().and(lit(true))),
        vec![("t", t)],
    );
    let opt = Optimizer::new().optimize(plan);
    let mut predicate = None;
    opt.for_each(&mut |p| {
        if let LogicalPlan::Filter { predicate: pr, .. } = p {
            predicate = Some(pr.clone());
        }
    });
    match predicate {
        Some(Expr::Column(c)) => assert_eq!(c.name.as_ref(), "b"),
        other => panic!("expected bare column, got {other:?}"),
    }
}

#[test]
fn is_null_on_nonnullable_column_folds() {
    let t = table(&[("x", DataType::Long, false)]);
    let plan = analyze(
        LogicalPlan::UnresolvedRelation { name: "t".into() }.filter(col("x").is_null()),
        vec![("t", t)],
    );
    let opt = Optimizer::new().optimize(plan);
    // IS NULL(non-nullable) → false → empty relation.
    assert_eq!(
        count_nodes(
            &opt,
            |p| matches!(p, LogicalPlan::LocalRelation { rows, .. } if rows.is_empty())
        ),
        1,
        "{opt}"
    );
}

#[test]
fn between_sugar_folds_with_constants() {
    let t = table(&[("x", DataType::Long, false)]);
    // 5 BETWEEN 1 AND 10 → true.
    let plan = analyze(
        LogicalPlan::UnresolvedRelation { name: "t".into() }
            .filter(lit(5i64).between(lit(1i64), lit(10i64))),
        vec![("t", t)],
    );
    let opt = Optimizer::new().optimize(plan);
    assert_eq!(
        count_nodes(&opt, |p| matches!(p, LogicalPlan::Filter { .. })),
        0,
        "{opt}"
    );
}

#[test]
fn trace_names_every_fired_rule() {
    let a = table(&[("x", DataType::Long, false)]);
    let b = table(&[("y", DataType::Long, false)]);
    let plan = analyze(
        LogicalPlan::UnresolvedRelation { name: "a".into() }
            .join(
                LogicalPlan::UnresolvedRelation { name: "b".into() },
                JoinType::Cross,
                None,
            )
            .filter(
                col("x")
                    .eq(col("y"))
                    .and(col("x").like(lit("1%")).or(lit(true))),
            ),
        vec![("a", a), ("b", b)],
    );
    let (_, trace) = Optimizer::new().optimize_traced(plan);
    let rules: Vec<&str> = trace.iter().map(|e| e.rule.as_str()).collect();
    assert!(rules.contains(&"EliminateSubqueryAliases"), "{rules:?}");
    assert!(rules.contains(&"PushDownPredicate"), "{rules:?}");
    assert!(rules.contains(&"BooleanSimplification"), "{rules:?}");
}

#[test]
fn not_comparisons_fold_via_constant_folding() {
    let t = table(&[("x", DataType::Long, false)]);
    let plan = analyze(
        LogicalPlan::UnresolvedRelation { name: "t".into() }
            .project(vec![lit(3i64).lt(lit(5i64)).not().alias("f")]),
        vec![("t", t)],
    );
    let opt = Optimizer::new().optimize(plan);
    let mut found = false;
    opt.for_each(&mut |p| {
        for e in p.expressions() {
            e.for_each_node(&mut |e| {
                if matches!(e, Expr::Literal(Value::Boolean(false))) {
                    found = true;
                }
            });
        }
    });
    assert!(found, "{opt}");
}

#[test]
fn pushdown_respects_outer_join_null_side() {
    // Filter on the right (null-producing) side of a LEFT join must stay
    // above the join.
    let a = table(&[("x", DataType::Long, false)]);
    let b = table(&[("y", DataType::Long, true)]);
    let plan = analyze(
        LogicalPlan::UnresolvedRelation { name: "a".into() }
            .join(
                LogicalPlan::UnresolvedRelation { name: "b".into() },
                JoinType::Left,
                Some(col("x").eq(col("y"))),
            )
            .filter(col("y").gt(lit(0i64))),
        vec![("a", a), ("b", b)],
    );
    let opt = Optimizer::new().optimize(plan);
    // The filter must sit above the Join, not below it.
    let mut filter_above_join = false;
    opt.for_each(&mut |p| {
        if let LogicalPlan::Filter { input, .. } = p {
            if matches!(&**input, LogicalPlan::Join { .. }) {
                filter_above_join = true;
            }
        }
    });
    assert!(filter_above_join, "{opt}");
}

#[test]
fn in_list_with_literals_folds() {
    let t = table(&[("x", DataType::Long, false)]);
    let plan = analyze(
        LogicalPlan::UnresolvedRelation { name: "t".into() }.filter(lit(2i64).in_list(vec![
            lit(1i64),
            lit(2i64),
            lit(3i64),
        ])),
        vec![("t", t)],
    );
    let opt = Optimizer::new().optimize(plan);
    assert_eq!(
        count_nodes(&opt, |p| matches!(p, LogicalPlan::Filter { .. })),
        0,
        "{opt}"
    );
}

#[test]
fn equality_operator_symbol_roundtrip() {
    // Guard against symbol/display drift used in the remote query log.
    assert_eq!(BinaryOperator::Eq.symbol(), "=");
    assert_eq!(BinaryOperator::NotEq.symbol(), "<>");
    assert!(BinaryOperator::And.is_boolean());
    assert!(BinaryOperator::Lt.is_comparison());
    assert!(BinaryOperator::Mul.is_arithmetic());
}
