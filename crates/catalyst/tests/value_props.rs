//! Property tests on the Value lattice: total ordering, hash/equality
//! consistency, arithmetic laws, and cast behaviors — the invariants
//! grouping, sorting, and shuffling rely on.

use catalyst::types::DataType;
use catalyst::value::Value;
use proptest::prelude::*;
use std::cmp::Ordering;
use std::collections::hash_map::DefaultHasher;
use std::hash::{Hash, Hasher};

fn arb_value() -> impl Strategy<Value = Value> {
    prop_oneof![
        Just(Value::Null),
        any::<bool>().prop_map(Value::Boolean),
        any::<i32>().prop_map(Value::Int),
        any::<i64>().prop_map(Value::Long),
        any::<f32>().prop_map(Value::Float),
        any::<f64>().prop_map(Value::Double),
        "[a-z]{0,8}".prop_map(Value::str),
        (-100_000i32..100_000).prop_map(Value::Date),
        any::<i64>().prop_map(Value::Timestamp),
        (any::<i64>(), 0u8..6).prop_map(|(u, s)| Value::Decimal(u as i128, 18, s)),
    ]
}

fn h(v: &Value) -> u64 {
    let mut s = DefaultHasher::new();
    v.hash(&mut s);
    s.finish()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// total_cmp is reflexive, antisymmetric, and transitive.
    #[test]
    fn total_order_laws(a in arb_value(), b in arb_value(), c in arb_value()) {
        prop_assert_eq!(a.total_cmp(&a), Ordering::Equal);
        prop_assert_eq!(a.total_cmp(&b), b.total_cmp(&a).reverse());
        if a.total_cmp(&b) != Ordering::Greater && b.total_cmp(&c) != Ordering::Greater {
            prop_assert_ne!(a.total_cmp(&c), Ordering::Greater);
        }
    }

    /// Eq values hash identically (HashMap grouping soundness).
    #[test]
    fn eq_implies_same_hash(a in arb_value(), b in arb_value()) {
        if a == b {
            prop_assert_eq!(h(&a), h(&b));
        }
    }

    /// Cross-width numeric equality hashes consistently (Int 5 groups
    /// with Long 5 and Double 5.0 after coercion edge cases).
    #[test]
    fn numeric_widening_hash(v in any::<i32>()) {
        prop_assert_eq!(h(&Value::Int(v)), h(&Value::Long(v as i64)));
        prop_assert_eq!(h(&Value::Long(v as i64)), h(&Value::Double(v as f64)));
        prop_assert_eq!(Value::Int(v), Value::Long(v as i64));
    }

    /// NULL propagates through every arithmetic op.
    #[test]
    fn null_absorbs_arithmetic(v in arb_value()) {
        prop_assert_eq!(Value::Null.add(&v).unwrap(), Value::Null);
        prop_assert_eq!(v.sub(&Value::Null).unwrap(), Value::Null);
        prop_assert_eq!(Value::Null.mul(&v).unwrap(), Value::Null);
        prop_assert_eq!(v.div(&Value::Null).unwrap(), Value::Null);
        prop_assert_eq!(v.rem(&Value::Null).unwrap(), Value::Null);
    }

    /// Integer addition is commutative and matches i64 semantics in range.
    #[test]
    fn int_add_commutes(a in -1_000_000i64..1_000_000, b in -1_000_000i64..1_000_000) {
        let x = Value::Long(a);
        let y = Value::Long(b);
        prop_assert_eq!(x.add(&y).unwrap(), y.add(&x).unwrap());
        prop_assert_eq!(x.add(&y).unwrap(), Value::Long(a + b));
    }

    /// String round-trips through a cast to STRING and back for integers.
    #[test]
    fn long_string_cast_roundtrip(v in any::<i64>()) {
        let s = Value::Long(v).cast_to(&DataType::String).unwrap();
        prop_assert_eq!(s.cast_to(&DataType::Long).unwrap(), Value::Long(v));
    }

    /// Date formatting and parsing are inverse.
    #[test]
    fn date_roundtrip(d in -200_000i32..200_000) {
        let text = catalyst::value::format_date(d);
        prop_assert_eq!(catalyst::value::parse_date(&text), Some(d));
    }

    /// sql_cmp agrees with total_cmp on non-null values.
    #[test]
    fn sql_cmp_consistent(a in arb_value(), b in arb_value()) {
        match a.sql_cmp(&b) {
            None => prop_assert!(a.is_null() || b.is_null()),
            Some(ord) => prop_assert_eq!(ord, a.total_cmp(&b)),
        }
    }

    /// Casting to the value's own type is the identity.
    #[test]
    fn self_cast_is_identity(v in arb_value()) {
        if !v.is_null() {
            let t = v.dtype();
            prop_assert_eq!(v.cast_to(&t).unwrap(), v);
        }
    }
}

#[test]
fn nan_is_orderable_and_hashable() {
    let nan = Value::Double(f64::NAN);
    assert_eq!(nan.total_cmp(&nan), Ordering::Equal);
    assert_eq!(h(&nan), h(&Value::Double(f64::NAN)));
    // NaN sorts after all finite doubles under total order.
    assert_eq!(nan.total_cmp(&Value::Double(f64::INFINITY)), Ordering::Greater);
}
