//! Property tests on the Value lattice: total ordering, hash/equality
//! consistency, arithmetic laws, and cast behaviors — the invariants
//! grouping, sorting, and shuffling rely on.
//!
//! Deterministic seeded sweeps (formerly proptest; rewritten because the
//! build environment vendors only a minimal rand shim).

use catalyst::types::DataType;
use catalyst::value::Value;
use rand::rngs::StdRng;
use rand::{RngCore, RngExt, SeedableRng};
use std::cmp::Ordering;
use std::collections::hash_map::DefaultHasher;
use std::hash::{Hash, Hasher};

fn arb_string(rng: &mut StdRng) -> String {
    let len = rng.random_range(0usize..9);
    (0..len)
        .map(|_| char::from(rng.random_range(b'a'..b'z' + 1)))
        .collect()
}

fn arb_value(rng: &mut StdRng) -> Value {
    match rng.random_range(0u32..10) {
        0 => Value::Null,
        1 => Value::Boolean(rng.random_bool(0.5)),
        2 => Value::Int(rng.next_u64() as i32),
        3 => Value::Long(rng.next_u64() as i64),
        4 => Value::Float(f32::from_bits(rng.next_u64() as u32)),
        5 => Value::Double(f64::from_bits(rng.next_u64())),
        6 => Value::str(arb_string(rng)),
        7 => Value::Date(rng.random_range(-100_000i32..100_000)),
        8 => Value::Timestamp(rng.next_u64() as i64),
        _ => Value::Decimal(rng.next_u64() as i64 as i128, 18, rng.random_range(0u8..6)),
    }
}

fn h(v: &Value) -> u64 {
    let mut s = DefaultHasher::new();
    v.hash(&mut s);
    s.finish()
}

/// total_cmp is reflexive, antisymmetric, and transitive.
#[test]
fn total_order_laws() {
    let mut rng = StdRng::seed_from_u64(0x5EED_1001);
    for _ in 0..256 {
        let a = arb_value(&mut rng);
        let b = arb_value(&mut rng);
        let c = arb_value(&mut rng);
        assert_eq!(a.total_cmp(&a), Ordering::Equal);
        assert_eq!(a.total_cmp(&b), b.total_cmp(&a).reverse());
        if a.total_cmp(&b) != Ordering::Greater && b.total_cmp(&c) != Ordering::Greater {
            assert_ne!(a.total_cmp(&c), Ordering::Greater, "{a:?} {b:?} {c:?}");
        }
    }
}

/// Eq values hash identically (HashMap grouping soundness).
#[test]
fn eq_implies_same_hash() {
    let mut rng = StdRng::seed_from_u64(0x5EED_1002);
    for _ in 0..256 {
        let a = arb_value(&mut rng);
        let b = arb_value(&mut rng);
        if a == b {
            assert_eq!(h(&a), h(&b), "{a:?} == {b:?} but hashes differ");
        }
        // Clones are always equal and must collide.
        assert_eq!(h(&a), h(&a.clone()));
    }
}

/// Cross-width numeric equality hashes consistently (Int 5 groups
/// with Long 5 and Double 5.0 after coercion edge cases).
#[test]
fn numeric_widening_hash() {
    let mut rng = StdRng::seed_from_u64(0x5EED_1003);
    for _ in 0..256 {
        let v = rng.next_u64() as i32;
        assert_eq!(h(&Value::Int(v)), h(&Value::Long(v as i64)));
        assert_eq!(h(&Value::Long(v as i64)), h(&Value::Double(v as f64)));
        assert_eq!(Value::Int(v), Value::Long(v as i64));
    }
}

/// NULL propagates through every arithmetic op.
#[test]
fn null_absorbs_arithmetic() {
    let mut rng = StdRng::seed_from_u64(0x5EED_1004);
    for _ in 0..256 {
        let v = arb_value(&mut rng);
        assert_eq!(Value::Null.add(&v).unwrap(), Value::Null);
        assert_eq!(v.sub(&Value::Null).unwrap(), Value::Null);
        assert_eq!(Value::Null.mul(&v).unwrap(), Value::Null);
        assert_eq!(v.div(&Value::Null).unwrap(), Value::Null);
        assert_eq!(v.rem(&Value::Null).unwrap(), Value::Null);
    }
}

/// Integer addition is commutative and matches i64 semantics in range.
#[test]
fn int_add_commutes() {
    let mut rng = StdRng::seed_from_u64(0x5EED_1005);
    for _ in 0..256 {
        let a = rng.random_range(-1_000_000i64..1_000_000);
        let b = rng.random_range(-1_000_000i64..1_000_000);
        let x = Value::Long(a);
        let y = Value::Long(b);
        assert_eq!(x.add(&y).unwrap(), y.add(&x).unwrap());
        assert_eq!(x.add(&y).unwrap(), Value::Long(a + b));
    }
}

/// String round-trips through a cast to STRING and back for integers.
#[test]
fn long_string_cast_roundtrip() {
    let mut rng = StdRng::seed_from_u64(0x5EED_1006);
    for _ in 0..256 {
        let v = rng.next_u64() as i64;
        let s = Value::Long(v).cast_to(&DataType::String).unwrap();
        assert_eq!(s.cast_to(&DataType::Long).unwrap(), Value::Long(v));
    }
}

/// Date formatting and parsing are inverse.
#[test]
fn date_roundtrip() {
    let mut rng = StdRng::seed_from_u64(0x5EED_1007);
    for _ in 0..256 {
        let d = rng.random_range(-200_000i32..200_000);
        let text = catalyst::value::format_date(d);
        assert_eq!(
            catalyst::value::parse_date(&text),
            Some(d),
            "date {d} via {text}"
        );
    }
}

/// sql_cmp agrees with total_cmp on non-null values.
#[test]
fn sql_cmp_consistent() {
    let mut rng = StdRng::seed_from_u64(0x5EED_1008);
    for _ in 0..256 {
        let a = arb_value(&mut rng);
        let b = arb_value(&mut rng);
        match a.sql_cmp(&b) {
            None => assert!(a.is_null() || b.is_null()),
            Some(ord) => assert_eq!(ord, a.total_cmp(&b), "{a:?} vs {b:?}"),
        }
    }
}

/// Casting to the value's own type is the identity.
#[test]
fn self_cast_is_identity() {
    let mut rng = StdRng::seed_from_u64(0x5EED_1009);
    for _ in 0..256 {
        let v = arb_value(&mut rng);
        if !v.is_null() {
            let t = v.dtype();
            assert_eq!(v.cast_to(&t).unwrap(), v);
        }
    }
}

#[test]
fn nan_is_orderable_and_hashable() {
    let nan = Value::Double(f64::NAN);
    assert_eq!(nan.total_cmp(&nan), Ordering::Equal);
    assert_eq!(h(&nan), h(&Value::Double(f64::NAN)));
    // NaN sorts after all finite doubles under total order.
    assert_eq!(
        nan.total_cmp(&Value::Double(f64::INFINITY)),
        Ordering::Greater
    );
}
