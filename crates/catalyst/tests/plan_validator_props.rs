//! Property tests for the plan-integrity checker: every logical
//! optimizer rule, applied to randomly generated analyzed plans, must
//! preserve the output schema and keep the plan fully resolved — the
//! §4.3 contract that makes rule composition safe.
//!
//! Deterministic seeded sweeps in the style of `value_props.rs` (the
//! build environment vendors only a minimal rand shim).

use catalyst::analysis::{Analyzer, FunctionRegistry, SimpleCatalog};
use catalyst::expr::builders::{col, count, lit, max, min, sum};
use catalyst::expr::{ColumnRef, Expr};
use catalyst::optimizer::{
    BooleanSimplification, CollapseProjects, ColumnPruning, CombineFilters, CombineLimits,
    ConstantFolding, DecimalAggregates, EliminateSubqueryAliases, NullPropagation, Optimizer,
    PruneFilters, PushDownLimit, PushDownPredicate, SimplifyCasts, SimplifyLike,
};
use catalyst::plan::{JoinType, LogicalPlan};
use catalyst::row::Row;
use catalyst::rules::Rule;
use catalyst::types::DataType;
use catalyst::validation::PlanValidator;
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};
use std::sync::Arc;

/// A visible column while generating: name plus enough type info to
/// build well-typed expressions over it.
#[derive(Clone)]
struct GenCol {
    name: String,
    dtype: DataType,
}

fn arb_dtype(rng: &mut StdRng) -> DataType {
    match rng.random_range(0u32..5) {
        0 => DataType::Long,
        1 => DataType::Int,
        2 => DataType::Double,
        3 => DataType::String,
        _ => DataType::Boolean,
    }
}

/// A base table: a guaranteed Long key column (so joins always have a
/// usable equi-key) plus 1..4 random columns.
fn arb_table(rng: &mut StdRng, prefix: &str) -> (Vec<GenCol>, LogicalPlan) {
    let mut cols = vec![GenCol {
        name: format!("{prefix}_k"),
        dtype: DataType::Long,
    }];
    for i in 0..rng.random_range(1usize..4) {
        cols.push(GenCol {
            name: format!("{prefix}_c{i}"),
            dtype: arb_dtype(rng),
        });
    }
    let output = cols
        .iter()
        .map(|c| ColumnRef::new(c.name.as_str(), c.dtype.clone(), rng.random_bool(0.5)))
        .collect();
    let plan = LogicalPlan::LocalRelation {
        output,
        rows: Arc::new(vec![Row::new(vec![])]),
    };
    (cols, plan)
}

/// A well-typed boolean predicate over one of the visible columns.
fn arb_predicate(rng: &mut StdRng, cols: &[GenCol]) -> Expr {
    let c = &cols[rng.random_range(0..cols.len() as u32) as usize];
    let base = match &c.dtype {
        DataType::Long => col(&c.name).gt(lit(rng.random_range(0i64..100))),
        DataType::Int => col(&c.name).lt_eq(lit(rng.random_range(0i64..100) as i32)),
        DataType::Double => col(&c.name).lt(lit(rng.random_range(0i64..100) as f64)),
        DataType::String => {
            if rng.random_bool(0.5) {
                col(&c.name).like(lit("ab%"))
            } else {
                col(&c.name).eq(lit("abc"))
            }
        }
        _ => col(&c.name).is_not_null(),
    };
    match rng.random_range(0u32..4) {
        0 => base.and(lit(true)),
        1 => base.or(lit(1i64).gt(lit(2i64))),
        2 => base.not().not(),
        _ => base,
    }
}

/// Grow a random operator chain over `input`, keeping the visible-column
/// list in sync so every generated expression resolves.
fn grow(rng: &mut StdRng, mut plan: LogicalPlan, mut cols: Vec<GenCol>) -> LogicalPlan {
    let mut computed = 0usize;
    for _ in 0..rng.random_range(1u32..5) {
        match rng.random_range(0u32..8) {
            0 => plan = plan.filter(arb_predicate(rng, &cols)),
            1 => {
                // Random nonempty column subset, sometimes plus a
                // computed alias over a Long column.
                let keep: Vec<usize> = (0..cols.len()).filter(|_| rng.random_bool(0.6)).collect();
                let keep = if keep.is_empty() { vec![0] } else { keep };
                let mut exprs: Vec<Expr> = keep.iter().map(|&i| col(&cols[i].name)).collect();
                let mut new_cols: Vec<GenCol> = keep.iter().map(|&i| cols[i].clone()).collect();
                if let Some(l) = cols.iter().find(|c| c.dtype == DataType::Long) {
                    if rng.random_bool(0.5) {
                        let name = format!("e{computed}");
                        computed += 1;
                        exprs.push(
                            col(&l.name)
                                .add(lit(rng.random_range(1i64..10)))
                                .alias(name.as_str()),
                        );
                        new_cols.push(GenCol {
                            name,
                            dtype: DataType::Long,
                        });
                    }
                }
                plan = plan.project(exprs);
                cols = new_cols;
            }
            2 => {
                // Aggregate: group by one column, aggregate the rest.
                let g = cols[rng.random_range(0..cols.len() as u32) as usize].clone();
                let mut aggs = vec![col(&g.name)];
                let mut new_cols = vec![g.clone()];
                for (i, c) in cols.iter().enumerate().take(2) {
                    if c.name == g.name {
                        continue;
                    }
                    let name = format!("a{i}");
                    let agg = match &c.dtype {
                        DataType::Long | DataType::Int | DataType::Double => {
                            match rng.random_range(0u32..3) {
                                0 => sum(col(&c.name)),
                                1 => min(col(&c.name)),
                                _ => max(col(&c.name)),
                            }
                        }
                        _ => count(col(&c.name)),
                    };
                    aggs.push(agg.alias(name.as_str()));
                    // Aggregate result types are rule-irrelevant here;
                    // mark them String-typed-unknown by never reusing
                    // them in later typed expressions.
                    new_cols.push(GenCol {
                        name,
                        dtype: DataType::Null,
                    });
                }
                plan = plan.aggregate(vec![col(&g.name)], aggs);
                cols = new_cols;
            }
            3 => plan = plan.limit(rng.random_range(1u32..50) as usize),
            4 => plan = plan.distinct(),
            5 => {
                let c = &cols[rng.random_range(0..cols.len() as u32) as usize];
                let order = if rng.random_bool(0.5) {
                    col(&c.name).asc()
                } else {
                    col(&c.name).desc()
                };
                plan = plan.sort(vec![order]);
            }
            6 => {
                let c = &cols[rng.random_range(0..cols.len() as u32) as usize];
                plan = plan.filter(col(&c.name).is_not_null());
            }
            _ => plan = plan.subquery_alias(format!("sq{computed}")),
        }
        // After an aggregate the tracked types for agg outputs are
        // approximate; drop them from the typed-expression pool.
        cols.retain(|c| c.dtype != DataType::Null);
        if cols.is_empty() {
            break;
        }
    }
    plan
}

/// Generate one random analyzed plan: a single-table chain, a two-table
/// equi-join, or a union of two same-shape tables.
fn arb_analyzed_plan(rng: &mut StdRng) -> LogicalPlan {
    let catalog = Arc::new(SimpleCatalog::default());
    let (plan, cols) = match rng.random_range(0u32..4) {
        // Join of two tables on their Long key columns.
        0 => {
            let (lcols, lt) = arb_table(rng, "l");
            let (rcols, rt) = arb_table(rng, "r");
            catalog.register("l", lt);
            catalog.register("r", rt);
            let join = LogicalPlan::UnresolvedRelation { name: "l".into() }.join(
                LogicalPlan::UnresolvedRelation { name: "r".into() },
                if rng.random_bool(0.7) {
                    JoinType::Inner
                } else {
                    JoinType::Left
                },
                Some(col("l_k").eq(col("r_k"))),
            );
            let mut cols = lcols;
            cols.extend(rcols);
            (join, cols)
        }
        // Union of two tables with identical shapes.
        1 => {
            let (cols, t1) = arb_table(rng, "u");
            let t2 = LogicalPlan::LocalRelation {
                output: cols
                    .iter()
                    .map(|c| ColumnRef::new(format!("v_{}", c.name), c.dtype.clone(), true))
                    .collect(),
                rows: Arc::new(vec![Row::new(vec![])]),
            };
            catalog.register("u1", t1);
            catalog.register("u2", t2);
            let union = LogicalPlan::UnresolvedRelation { name: "u1".into() }
                .union(vec![LogicalPlan::UnresolvedRelation { name: "u2".into() }]);
            (union, cols)
        }
        // Single-table chain.
        _ => {
            let (cols, t) = arb_table(rng, "t");
            catalog.register("t", t);
            (LogicalPlan::UnresolvedRelation { name: "t".into() }, cols)
        }
    };
    let plan = grow(rng, plan, cols);
    Analyzer::new(catalog, Arc::new(FunctionRegistry::default()))
        .analyze(plan)
        .expect("generated plan failed analysis")
}

fn all_rules() -> Vec<Box<dyn Rule<LogicalPlan>>> {
    vec![
        Box::new(EliminateSubqueryAliases),
        Box::new(ConstantFolding),
        Box::new(NullPropagation),
        Box::new(BooleanSimplification),
        Box::new(SimplifyCasts),
        Box::new(SimplifyLike),
        Box::new(CombineFilters),
        Box::new(PushDownPredicate),
        Box::new(PruneFilters),
        Box::new(CollapseProjects),
        Box::new(ColumnPruning),
        Box::new(CombineLimits),
        Box::new(PushDownLimit),
        Box::new(DecimalAggregates),
    ]
}

/// Generated plans are themselves valid: analysis output passes every
/// logical invariant (the generator is sound, so failures below mean a
/// rule is at fault, not the input).
#[test]
fn generated_analyzed_plans_pass_all_invariants() {
    let validator = PlanValidator::new();
    let mut rng = StdRng::seed_from_u64(0x5EED_CA70);
    for i in 0..256 {
        let plan = arb_analyzed_plan(&mut rng);
        let violations = validator.check_logical(&plan);
        assert!(
            violations.is_empty(),
            "iteration {i}: {violations:?}\n{plan}"
        );
    }
}

/// Every optimizer rule, applied on its own, preserves the output schema
/// (names, types, attribute ids) and keeps the plan resolved.
#[test]
fn every_rule_preserves_schema_and_resolution() {
    let validator = PlanValidator::new();
    let rules = all_rules();
    let mut rng = StdRng::seed_from_u64(0x5EED_CA71);
    let mut rewrites = 0usize;
    for i in 0..256 {
        let before = arb_analyzed_plan(&mut rng);
        for rule in &rules {
            let out = rule.apply(before.clone());
            if !out.changed {
                continue;
            }
            rewrites += 1;
            let after = out.data;
            let violations = validator.check_rewrite(&before, &after);
            assert!(
                violations.is_empty(),
                "iteration {i}, rule {}: {violations:?}\nbefore:\n{before}\nafter:\n{after}",
                rule.name(),
            );
            assert!(
                after.is_resolved(),
                "iteration {i}, rule {} unresolved:\n{after}",
                rule.name()
            );
        }
    }
    // The sweep is only meaningful if rules actually rewrote plans.
    assert!(
        rewrites > 100,
        "sweep barely exercised the rules: {rewrites} rewrites"
    );
}

/// The full optimizer pipeline, monitored end to end: zero invariant
/// violations, no non-converged batches, and the final plan exposes the
/// exact schema the analyzed plan promised.
#[test]
fn full_pipeline_is_violation_free_on_random_plans() {
    let optimizer = Optimizer::new();
    let validator = PlanValidator::new();
    let mut rng = StdRng::seed_from_u64(0x5EED_CA72);
    let mut total_fires = 0usize;
    for i in 0..256 {
        let analyzed = arb_analyzed_plan(&mut rng);
        let schema = analyzed.output();
        let out = optimizer.optimize_monitored(analyzed);
        assert!(
            out.violations.is_empty(),
            "iteration {i}: {:?}\n{}",
            out.violations,
            out.plan
        );
        assert!(
            out.health.non_converged.is_empty(),
            "iteration {i}: {:?}",
            out.health.non_converged
        );
        let final_schema = out.plan.output();
        assert_eq!(
            final_schema.len(),
            schema.len(),
            "iteration {i}:\n{}",
            out.plan
        );
        for (b, a) in schema.iter().zip(&final_schema) {
            assert_eq!(b.id, a.id, "iteration {i}:\n{}", out.plan);
            assert_eq!(b.name, a.name, "iteration {i}:\n{}", out.plan);
            assert_eq!(b.dtype, a.dtype, "iteration {i}:\n{}", out.plan);
        }
        let end_violations = validator.check_logical(&out.plan);
        assert!(
            end_violations.is_empty(),
            "iteration {i}: {end_violations:?}\n{}",
            out.plan
        );
        total_fires += out.health.rules.iter().map(|h| h.fires).sum::<usize>();
    }
    assert!(
        total_fires > 256,
        "optimizer barely fired on the sweep: {total_fires}"
    );
}
