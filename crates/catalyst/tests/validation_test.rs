//! Acceptance tests for the plan-integrity checker: schema-breaking
//! rules are rejected with a full report (batch, rule, iteration,
//! invariant, plan diff), violating rewrites roll back, non-converging
//! batches surface in the rule-health report, and the regression the
//! validator originally caught (`ConstantFolding` folding aliases away)
//! stays fixed.

use catalyst::analysis::{Analyzer, FunctionRegistry, SimpleCatalog};
use catalyst::expr::builders::{col, lit};
use catalyst::expr::{ColumnRef, Expr};
use catalyst::optimizer::Optimizer;
use catalyst::plan::LogicalPlan;
use catalyst::row::Row;
use catalyst::rules::{Batch, FnRule, TraceKind};
use catalyst::tree::Transformed;
use catalyst::types::DataType;
use catalyst::validation::PlanValidator;
use std::sync::Arc;

fn table(cols: &[(&str, DataType)]) -> LogicalPlan {
    LogicalPlan::LocalRelation {
        output: cols
            .iter()
            .map(|(n, t)| ColumnRef::new(*n, t.clone(), false))
            .collect(),
        rows: Arc::new(vec![Row::new(vec![])]),
    }
}

fn analyze(plan: LogicalPlan, tables: Vec<(&str, LogicalPlan)>) -> LogicalPlan {
    let catalog = Arc::new(SimpleCatalog::default());
    for (n, p) in tables {
        catalog.register(n, p);
    }
    Analyzer::new(catalog, Arc::new(FunctionRegistry::default()))
        .analyze(plan)
        .unwrap()
}

/// A rule that silently drops the first output column of every Project —
/// the crafted schema-breaking rule from the acceptance criteria.
fn drop_first_column_rule() -> Box<dyn catalyst::rules::Rule<LogicalPlan>> {
    Box::new(FnRule::new("DropFirstColumn", |p: LogicalPlan| match p {
        LogicalPlan::Project { input, exprs } if exprs.len() > 1 => {
            Transformed::yes(LogicalPlan::Project {
                input,
                exprs: exprs[1..].to_vec(),
            })
        }
        other => Transformed::no(other),
    }))
}

fn two_column_projection() -> LogicalPlan {
    let t = table(&[("x", DataType::Long), ("y", DataType::Long)]);
    analyze(
        LogicalPlan::UnresolvedRelation { name: "t".into() }.project(vec![col("x"), col("y")]),
        vec![("t", t)],
    )
}

/// Regression test for the bug the validator flushed out of the seed
/// corpus: `ConstantFolding` used to fold `(NOT (3 < 5)) AS f` down to a
/// bare literal, dropping the alias that carries the output name and
/// attribute id — `Project::output()` then silently lost the column.
#[test]
fn constant_folding_keeps_aliased_literal_outputs() {
    let t = table(&[("x", DataType::Long)]);
    let plan = analyze(
        LogicalPlan::UnresolvedRelation { name: "t".into() }
            .project(vec![lit(3i64).lt(lit(5i64)).not().alias("f")]),
        vec![("t", t)],
    );
    let before = plan.output();
    let out = Optimizer::new().optimize_monitored(plan);
    assert!(out.violations.is_empty(), "{:?}", out.violations);
    let after = out.plan.output();
    assert_eq!(
        after.len(),
        1,
        "aliased literal column vanished:\n{}",
        out.plan
    );
    assert_eq!(after[0].name, before[0].name);
    assert_eq!(after[0].id, before[0].id);
    // The fold itself must still happen under the alias.
    let folded = matches!(
        &out.plan,
        LogicalPlan::Project { exprs, .. }
            if matches!(&exprs[0], Expr::Alias { child, .. } if matches!(**child, Expr::Literal(_)))
    );
    assert!(folded, "literal not folded under alias:\n{}", out.plan);
}

#[test]
fn schema_breaking_rule_is_rejected_with_full_report() {
    let plan = two_column_projection();
    let expected_output = plan.output();

    let mut opt = Optimizer::new();
    opt.add_batch(Batch::once("user-bad", vec![drop_first_column_rule()]));
    let out = opt.optimize_monitored(plan);

    // The report names the batch, rule, iteration, and invariant.
    let v = out
        .violations
        .iter()
        .find(|v| v.invariant == "schema-preserved")
        .expect("schema-preserved violation not reported");
    assert_eq!(v.batch, "user-bad");
    assert_eq!(v.rule, "DropFirstColumn");
    assert_eq!(v.iteration, 0);
    assert!(v.message.contains("width"), "{}", v.message);
    // ... and carries a structural before/after plan diff.
    assert!(
        v.diff.lines().any(|l| l.starts_with("- ")),
        "diff:\n{}",
        v.diff
    );
    assert!(
        v.diff.lines().any(|l| l.starts_with("+ ")),
        "diff:\n{}",
        v.diff
    );
    let rendered = v.to_string();
    for needle in [
        "schema-preserved",
        "DropFirstColumn",
        "user-bad",
        "plan diff:",
    ] {
        assert!(
            rendered.contains(needle),
            "missing {needle:?} in:\n{rendered}"
        );
    }

    // The violating rewrite was rolled back: the plan keeps its schema.
    assert_eq!(out.plan.output(), expected_output, "{}", out.plan);

    // And the health report counts the rejection, not a fire.
    let h = out
        .health
        .health_for("user-bad", "DropFirstColumn")
        .unwrap();
    assert_eq!(h.rejected, 1);
    assert_eq!(h.fires, 0);
}

/// In debug builds (validation on by default) the plain `optimize` entry
/// point refuses to return a corrupted plan.
#[test]
#[should_panic(expected = "broke a plan invariant")]
fn optimize_panics_on_schema_breaking_rule() {
    let plan = two_column_projection();
    let mut opt = Optimizer::new();
    opt.add_batch(Batch::once("user-bad", vec![drop_first_column_rule()]));
    let _ = opt.optimize(plan);
}

#[test]
fn oscillating_user_batch_is_reported_non_converged() {
    let t = table(&[("x", DataType::Long)]);
    let plan = analyze(
        LogicalPlan::UnresolvedRelation { name: "t".into() }.limit(7),
        vec![("t", t)],
    );
    let mut opt = Optimizer::new();
    // Toggles LIMIT 7 <-> LIMIT 8 forever: schema-safe but oscillating.
    opt.add_batch(Batch::fixed_point(
        "user-oscillating",
        vec![Box::new(FnRule::new(
            "ToggleLimit",
            |p: LogicalPlan| match p {
                LogicalPlan::Limit { input, n: 7 } => {
                    Transformed::yes(LogicalPlan::Limit { input, n: 8 })
                }
                LogicalPlan::Limit { input, n: 8 } => {
                    Transformed::yes(LogicalPlan::Limit { input, n: 7 })
                }
                other => Transformed::no(other),
            },
        ))],
    ));
    let out = opt.optimize_monitored(plan);
    assert!(out.violations.is_empty(), "{:?}", out.violations);
    assert!(
        out.health
            .non_converged
            .iter()
            .any(|nc| nc.batch == "user-oscillating"),
        "non-convergence not recorded: {:?}",
        out.health.non_converged
    );
    assert!(
        out.trace
            .iter()
            .any(|e| e.kind == TraceKind::NonConvergence && e.batch == "user-oscillating"),
        "no NonConvergence trace event"
    );
    let rendered = out.health.render();
    assert!(rendered.contains("user-oscillating"), "{rendered}");
}

#[test]
fn rule_health_counts_fires_and_renders() {
    let t = table(&[("x", DataType::Long)]);
    let plan = analyze(
        LogicalPlan::UnresolvedRelation { name: "t".into() }.filter(lit(1i64).lt(lit(2i64))),
        vec![("t", t)],
    );
    let out = Optimizer::new().optimize_monitored(plan);
    assert!(out.violations.is_empty(), "{:?}", out.violations);

    let cf = out
        .health
        .health_for("Operator Optimizations", "ConstantFolding")
        .expect("ConstantFolding ran");
    assert!(cf.fires >= 1, "{cf:?}");
    assert!(cf.applications >= cf.fires);
    assert!(cf.effectiveness() > 0.0);

    let pf = out
        .health
        .health_for("Operator Optimizations", "PruneFilters")
        .expect("PruneFilters ran");
    assert!(pf.fires >= 1, "{pf:?}");

    let rendered = out.health.render();
    for needle in [
        "== Rule Health ==",
        "ConstantFolding",
        "PruneFilters",
        "non-converged",
    ] {
        assert!(
            rendered.contains(needle),
            "missing {needle:?} in:\n{rendered}"
        );
    }

    // Every fired rule left a before/after entry in the plan-change log.
    for e in out.trace.iter().filter(|e| e.kind == TraceKind::RuleFired) {
        let change = e.change.as_ref().expect("fired rule without plan change");
        assert_ne!(change.before, change.after, "{e:?}");
        assert!(!change.diff.is_empty());
    }
}

/// `check_rewrite` only blames a rule for violations it introduced:
/// pre-existing quirks in the input plan are filtered out.
#[test]
fn check_rewrite_ignores_preexisting_violations() {
    // A plan referencing an attribute its child never produces.
    let ghost = ColumnRef::new("ghost", DataType::Long, false);
    let t = table(&[("x", DataType::Long)]);
    let bad = LogicalPlan::Filter {
        input: Arc::new(t),
        predicate: Expr::Column(ghost).is_not_null(),
    };
    let validator = PlanValidator::new();
    assert!(!validator.check_logical(&bad).is_empty());
    // An identity "rewrite" over the already-broken plan is not blamed.
    assert!(validator.check_rewrite(&bad, &bad.clone()).is_empty());
}
